/root/repo/target/debug/libtrim_dd.rlib: /root/repo/crates/dd/src/lib.rs
