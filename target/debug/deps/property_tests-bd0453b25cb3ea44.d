/root/repo/target/debug/deps/property_tests-bd0453b25cb3ea44.d: tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-bd0453b25cb3ea44: tests/property_tests.rs

tests/property_tests.rs:
