/root/repo/target/debug/deps/pipeline-e74c0fa053ad3cc0.d: crates/bench/benches/pipeline.rs

/root/repo/target/debug/deps/pipeline-e74c0fa053ad3cc0: crates/bench/benches/pipeline.rs

crates/bench/benches/pipeline.rs:
