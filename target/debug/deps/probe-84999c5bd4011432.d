/root/repo/target/debug/deps/probe-84999c5bd4011432.d: crates/bench/src/bin/probe.rs

/root/repo/target/debug/deps/probe-84999c5bd4011432: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
