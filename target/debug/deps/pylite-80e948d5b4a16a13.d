/root/repo/target/debug/deps/pylite-80e948d5b4a16a13.d: crates/pylite/src/lib.rs crates/pylite/src/ast.rs crates/pylite/src/cost.rs crates/pylite/src/interp.rs crates/pylite/src/lexer.rs crates/pylite/src/parser.rs crates/pylite/src/registry.rs crates/pylite/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libpylite-80e948d5b4a16a13.rmeta: crates/pylite/src/lib.rs crates/pylite/src/ast.rs crates/pylite/src/cost.rs crates/pylite/src/interp.rs crates/pylite/src/lexer.rs crates/pylite/src/parser.rs crates/pylite/src/registry.rs crates/pylite/src/value.rs Cargo.toml

crates/pylite/src/lib.rs:
crates/pylite/src/ast.rs:
crates/pylite/src/cost.rs:
crates/pylite/src/interp.rs:
crates/pylite/src/lexer.rs:
crates/pylite/src/parser.rs:
crates/pylite/src/registry.rs:
crates/pylite/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
