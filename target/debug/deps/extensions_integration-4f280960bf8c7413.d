/root/repo/target/debug/deps/extensions_integration-4f280960bf8c7413.d: tests/extensions_integration.rs

/root/repo/target/debug/deps/extensions_integration-4f280960bf8c7413: tests/extensions_integration.rs

tests/extensions_integration.rs:
