/root/repo/target/debug/deps/trim_rng-322528e5ec1a8d21.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtrim_rng-322528e5ec1a8d21.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
