/root/repo/target/debug/deps/analysis_probes-f86869cd10259efb.d: crates/bench/benches/analysis_probes.rs

/root/repo/target/debug/deps/analysis_probes-f86869cd10259efb: crates/bench/benches/analysis_probes.rs

crates/bench/benches/analysis_probes.rs:
