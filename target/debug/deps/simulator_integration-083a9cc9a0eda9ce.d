/root/repo/target/debug/deps/simulator_integration-083a9cc9a0eda9ce.d: tests/simulator_integration.rs

/root/repo/target/debug/deps/simulator_integration-083a9cc9a0eda9ce: tests/simulator_integration.rs

tests/simulator_integration.rs:
