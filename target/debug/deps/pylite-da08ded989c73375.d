/root/repo/target/debug/deps/pylite-da08ded989c73375.d: crates/pylite/src/lib.rs crates/pylite/src/ast.rs crates/pylite/src/cost.rs crates/pylite/src/interp.rs crates/pylite/src/lexer.rs crates/pylite/src/parser.rs crates/pylite/src/registry.rs crates/pylite/src/value.rs

/root/repo/target/debug/deps/libpylite-da08ded989c73375.rlib: crates/pylite/src/lib.rs crates/pylite/src/ast.rs crates/pylite/src/cost.rs crates/pylite/src/interp.rs crates/pylite/src/lexer.rs crates/pylite/src/parser.rs crates/pylite/src/registry.rs crates/pylite/src/value.rs

/root/repo/target/debug/deps/libpylite-da08ded989c73375.rmeta: crates/pylite/src/lib.rs crates/pylite/src/ast.rs crates/pylite/src/cost.rs crates/pylite/src/interp.rs crates/pylite/src/lexer.rs crates/pylite/src/parser.rs crates/pylite/src/registry.rs crates/pylite/src/value.rs

crates/pylite/src/lib.rs:
crates/pylite/src/ast.rs:
crates/pylite/src/cost.rs:
crates/pylite/src/interp.rs:
crates/pylite/src/lexer.rs:
crates/pylite/src/parser.rs:
crates/pylite/src/registry.rs:
crates/pylite/src/value.rs:
