/root/repo/target/debug/deps/probe-11b3d80a3538956e.d: crates/bench/src/bin/probe.rs

/root/repo/target/debug/deps/probe-11b3d80a3538956e: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
