/root/repo/target/debug/deps/trim_analysis-b9266b64d9adf247.d: crates/analysis/src/lib.rs crates/analysis/src/callgraph.rs crates/analysis/src/engine.rs crates/analysis/src/lints.rs crates/analysis/src/origin.rs

/root/repo/target/debug/deps/libtrim_analysis-b9266b64d9adf247.rlib: crates/analysis/src/lib.rs crates/analysis/src/callgraph.rs crates/analysis/src/engine.rs crates/analysis/src/lints.rs crates/analysis/src/origin.rs

/root/repo/target/debug/deps/libtrim_analysis-b9266b64d9adf247.rmeta: crates/analysis/src/lib.rs crates/analysis/src/callgraph.rs crates/analysis/src/engine.rs crates/analysis/src/lints.rs crates/analysis/src/origin.rs

crates/analysis/src/lib.rs:
crates/analysis/src/callgraph.rs:
crates/analysis/src/engine.rs:
crates/analysis/src/lints.rs:
crates/analysis/src/origin.rs:
