/root/repo/target/debug/deps/trim_apps-357f25b2e7144a91.d: crates/apps/src/lib.rs crates/apps/src/apps.rs crates/apps/src/libgen.rs crates/apps/src/specs.rs

/root/repo/target/debug/deps/trim_apps-357f25b2e7144a91: crates/apps/src/lib.rs crates/apps/src/apps.rs crates/apps/src/libgen.rs crates/apps/src/specs.rs

crates/apps/src/lib.rs:
crates/apps/src/apps.rs:
crates/apps/src/libgen.rs:
crates/apps/src/specs.rs:
