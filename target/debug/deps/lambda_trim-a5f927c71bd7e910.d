/root/repo/target/debug/deps/lambda_trim-a5f927c71bd7e910.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/liblambda_trim-a5f927c71bd7e910.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
