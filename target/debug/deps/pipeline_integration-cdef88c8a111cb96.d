/root/repo/target/debug/deps/pipeline_integration-cdef88c8a111cb96.d: tests/pipeline_integration.rs

/root/repo/target/debug/deps/pipeline_integration-cdef88c8a111cb96: tests/pipeline_integration.rs

tests/pipeline_integration.rs:
