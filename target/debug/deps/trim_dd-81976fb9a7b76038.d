/root/repo/target/debug/deps/trim_dd-81976fb9a7b76038.d: crates/dd/src/lib.rs

/root/repo/target/debug/deps/trim_dd-81976fb9a7b76038: crates/dd/src/lib.rs

crates/dd/src/lib.rs:
