/root/repo/target/debug/deps/trim_profiler-c683919db1056f5e.d: crates/profiler/src/lib.rs

/root/repo/target/debug/deps/libtrim_profiler-c683919db1056f5e.rlib: crates/profiler/src/lib.rs

/root/repo/target/debug/deps/libtrim_profiler-c683919db1056f5e.rmeta: crates/profiler/src/lib.rs

crates/profiler/src/lib.rs:
