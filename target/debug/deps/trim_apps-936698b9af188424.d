/root/repo/target/debug/deps/trim_apps-936698b9af188424.d: crates/apps/src/lib.rs crates/apps/src/apps.rs crates/apps/src/libgen.rs crates/apps/src/specs.rs Cargo.toml

/root/repo/target/debug/deps/libtrim_apps-936698b9af188424.rmeta: crates/apps/src/lib.rs crates/apps/src/apps.rs crates/apps/src/libgen.rs crates/apps/src/specs.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/apps.rs:
crates/apps/src/libgen.rs:
crates/apps/src/specs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
