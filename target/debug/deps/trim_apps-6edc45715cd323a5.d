/root/repo/target/debug/deps/trim_apps-6edc45715cd323a5.d: crates/apps/src/lib.rs crates/apps/src/apps.rs crates/apps/src/libgen.rs crates/apps/src/specs.rs

/root/repo/target/debug/deps/libtrim_apps-6edc45715cd323a5.rlib: crates/apps/src/lib.rs crates/apps/src/apps.rs crates/apps/src/libgen.rs crates/apps/src/specs.rs

/root/repo/target/debug/deps/libtrim_apps-6edc45715cd323a5.rmeta: crates/apps/src/lib.rs crates/apps/src/apps.rs crates/apps/src/libgen.rs crates/apps/src/specs.rs

crates/apps/src/lib.rs:
crates/apps/src/apps.rs:
crates/apps/src/libgen.rs:
crates/apps/src/specs.rs:
