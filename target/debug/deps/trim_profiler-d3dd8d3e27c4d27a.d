/root/repo/target/debug/deps/trim_profiler-d3dd8d3e27c4d27a.d: crates/profiler/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtrim_profiler-d3dd8d3e27c4d27a.rmeta: crates/profiler/src/lib.rs Cargo.toml

crates/profiler/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
