/root/repo/target/debug/deps/trim_core-d26187a76146d808.d: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/debloater.rs crates/core/src/deployment.rs crates/core/src/fallback.rs crates/core/src/incremental.rs crates/core/src/oracle.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/rewrite.rs

/root/repo/target/debug/deps/trim_core-d26187a76146d808: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/debloater.rs crates/core/src/deployment.rs crates/core/src/fallback.rs crates/core/src/incremental.rs crates/core/src/oracle.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/rewrite.rs

crates/core/src/lib.rs:
crates/core/src/attributes.rs:
crates/core/src/debloater.rs:
crates/core/src/deployment.rs:
crates/core/src/fallback.rs:
crates/core/src/incremental.rs:
crates/core/src/oracle.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
crates/core/src/rewrite.rs:
