/root/repo/target/debug/deps/trim_baselines-d2c5077bc2014356.d: crates/baselines/src/lib.rs

/root/repo/target/debug/deps/libtrim_baselines-d2c5077bc2014356.rlib: crates/baselines/src/lib.rs

/root/repo/target/debug/deps/libtrim_baselines-d2c5077bc2014356.rmeta: crates/baselines/src/lib.rs

crates/baselines/src/lib.rs:
