/root/repo/target/debug/deps/lambda_sim-ecd091f90bb11b0f.d: crates/lambda-sim/src/lib.rs crates/lambda-sim/src/metrics.rs crates/lambda-sim/src/platform.rs crates/lambda-sim/src/pool.rs crates/lambda-sim/src/pricing.rs crates/lambda-sim/src/providers.rs crates/lambda-sim/src/snapshot.rs crates/lambda-sim/src/trace.rs

/root/repo/target/debug/deps/liblambda_sim-ecd091f90bb11b0f.rlib: crates/lambda-sim/src/lib.rs crates/lambda-sim/src/metrics.rs crates/lambda-sim/src/platform.rs crates/lambda-sim/src/pool.rs crates/lambda-sim/src/pricing.rs crates/lambda-sim/src/providers.rs crates/lambda-sim/src/snapshot.rs crates/lambda-sim/src/trace.rs

/root/repo/target/debug/deps/liblambda_sim-ecd091f90bb11b0f.rmeta: crates/lambda-sim/src/lib.rs crates/lambda-sim/src/metrics.rs crates/lambda-sim/src/platform.rs crates/lambda-sim/src/pool.rs crates/lambda-sim/src/pricing.rs crates/lambda-sim/src/providers.rs crates/lambda-sim/src/snapshot.rs crates/lambda-sim/src/trace.rs

crates/lambda-sim/src/lib.rs:
crates/lambda-sim/src/metrics.rs:
crates/lambda-sim/src/platform.rs:
crates/lambda-sim/src/pool.rs:
crates/lambda-sim/src/pricing.rs:
crates/lambda-sim/src/providers.rs:
crates/lambda-sim/src/snapshot.rs:
crates/lambda-sim/src/trace.rs:
