/root/repo/target/debug/deps/trim_analysis-5ae85040989578c4.d: crates/analysis/src/lib.rs crates/analysis/src/callgraph.rs crates/analysis/src/engine.rs crates/analysis/src/lints.rs crates/analysis/src/origin.rs Cargo.toml

/root/repo/target/debug/deps/libtrim_analysis-5ae85040989578c4.rmeta: crates/analysis/src/lib.rs crates/analysis/src/callgraph.rs crates/analysis/src/engine.rs crates/analysis/src/lints.rs crates/analysis/src/origin.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/callgraph.rs:
crates/analysis/src/engine.rs:
crates/analysis/src/lints.rs:
crates/analysis/src/origin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
