/root/repo/target/debug/deps/experiments-cb3aa5fda5051e27.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-cb3aa5fda5051e27: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
