/root/repo/target/debug/deps/trim_profiler-df7e2532acf46338.d: crates/profiler/src/lib.rs

/root/repo/target/debug/deps/trim_profiler-df7e2532acf46338: crates/profiler/src/lib.rs

crates/profiler/src/lib.rs:
