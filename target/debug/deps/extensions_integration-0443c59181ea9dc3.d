/root/repo/target/debug/deps/extensions_integration-0443c59181ea9dc3.d: tests/extensions_integration.rs Cargo.toml

/root/repo/target/debug/deps/libextensions_integration-0443c59181ea9dc3.rmeta: tests/extensions_integration.rs Cargo.toml

tests/extensions_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
