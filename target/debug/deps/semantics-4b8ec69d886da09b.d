/root/repo/target/debug/deps/semantics-4b8ec69d886da09b.d: crates/pylite/tests/semantics.rs

/root/repo/target/debug/deps/semantics-4b8ec69d886da09b: crates/pylite/tests/semantics.rs

crates/pylite/tests/semantics.rs:
