/root/repo/target/debug/deps/trim_dd-61856d45d43b48bc.d: crates/dd/src/lib.rs

/root/repo/target/debug/deps/libtrim_dd-61856d45d43b48bc.rlib: crates/dd/src/lib.rs

/root/repo/target/debug/deps/libtrim_dd-61856d45d43b48bc.rmeta: crates/dd/src/lib.rs

crates/dd/src/lib.rs:
