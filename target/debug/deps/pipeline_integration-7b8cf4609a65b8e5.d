/root/repo/target/debug/deps/pipeline_integration-7b8cf4609a65b8e5.d: tests/pipeline_integration.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_integration-7b8cf4609a65b8e5.rmeta: tests/pipeline_integration.rs Cargo.toml

tests/pipeline_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
