/root/repo/target/debug/deps/lambda_trim-c7603d202ee83cb8.d: src/main.rs

/root/repo/target/debug/deps/lambda_trim-c7603d202ee83cb8: src/main.rs

src/main.rs:
