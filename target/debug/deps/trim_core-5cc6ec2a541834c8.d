/root/repo/target/debug/deps/trim_core-5cc6ec2a541834c8.d: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/debloater.rs crates/core/src/deployment.rs crates/core/src/fallback.rs crates/core/src/incremental.rs crates/core/src/oracle.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/rewrite.rs Cargo.toml

/root/repo/target/debug/deps/libtrim_core-5cc6ec2a541834c8.rmeta: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/debloater.rs crates/core/src/deployment.rs crates/core/src/fallback.rs crates/core/src/incremental.rs crates/core/src/oracle.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/rewrite.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/attributes.rs:
crates/core/src/debloater.rs:
crates/core/src/deployment.rs:
crates/core/src/fallback.rs:
crates/core/src/incremental.rs:
crates/core/src/oracle.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
crates/core/src/rewrite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
