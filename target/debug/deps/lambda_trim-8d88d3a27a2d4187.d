/root/repo/target/debug/deps/lambda_trim-8d88d3a27a2d4187.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/lambda_trim-8d88d3a27a2d4187: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
