/root/repo/target/debug/deps/pylite-d512c04ec958094a.d: crates/pylite/src/lib.rs crates/pylite/src/ast.rs crates/pylite/src/cost.rs crates/pylite/src/interp.rs crates/pylite/src/lexer.rs crates/pylite/src/parser.rs crates/pylite/src/registry.rs crates/pylite/src/value.rs

/root/repo/target/debug/deps/pylite-d512c04ec958094a: crates/pylite/src/lib.rs crates/pylite/src/ast.rs crates/pylite/src/cost.rs crates/pylite/src/interp.rs crates/pylite/src/lexer.rs crates/pylite/src/parser.rs crates/pylite/src/registry.rs crates/pylite/src/value.rs

crates/pylite/src/lib.rs:
crates/pylite/src/ast.rs:
crates/pylite/src/cost.rs:
crates/pylite/src/interp.rs:
crates/pylite/src/lexer.rs:
crates/pylite/src/parser.rs:
crates/pylite/src/registry.rs:
crates/pylite/src/value.rs:
