/root/repo/target/debug/deps/lambda_trim-165d75c2ec1dc6e7.d: src/main.rs

/root/repo/target/debug/deps/lambda_trim-165d75c2ec1dc6e7: src/main.rs

src/main.rs:
