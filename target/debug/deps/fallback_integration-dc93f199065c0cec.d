/root/repo/target/debug/deps/fallback_integration-dc93f199065c0cec.d: tests/fallback_integration.rs Cargo.toml

/root/repo/target/debug/deps/libfallback_integration-dc93f199065c0cec.rmeta: tests/fallback_integration.rs Cargo.toml

tests/fallback_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
