/root/repo/target/debug/deps/lambda_sim-956e775af70b0929.d: crates/lambda-sim/src/lib.rs crates/lambda-sim/src/metrics.rs crates/lambda-sim/src/platform.rs crates/lambda-sim/src/pool.rs crates/lambda-sim/src/pricing.rs crates/lambda-sim/src/providers.rs crates/lambda-sim/src/snapshot.rs crates/lambda-sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/liblambda_sim-956e775af70b0929.rmeta: crates/lambda-sim/src/lib.rs crates/lambda-sim/src/metrics.rs crates/lambda-sim/src/platform.rs crates/lambda-sim/src/pool.rs crates/lambda-sim/src/pricing.rs crates/lambda-sim/src/providers.rs crates/lambda-sim/src/snapshot.rs crates/lambda-sim/src/trace.rs Cargo.toml

crates/lambda-sim/src/lib.rs:
crates/lambda-sim/src/metrics.rs:
crates/lambda-sim/src/platform.rs:
crates/lambda-sim/src/pool.rs:
crates/lambda-sim/src/pricing.rs:
crates/lambda-sim/src/providers.rs:
crates/lambda-sim/src/snapshot.rs:
crates/lambda-sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
