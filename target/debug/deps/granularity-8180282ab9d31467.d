/root/repo/target/debug/deps/granularity-8180282ab9d31467.d: crates/bench/benches/granularity.rs

/root/repo/target/debug/deps/granularity-8180282ab9d31467: crates/bench/benches/granularity.rs

crates/bench/benches/granularity.rs:
