/root/repo/target/debug/deps/lambda_trim-fc8ab31464570f6f.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/liblambda_trim-fc8ab31464570f6f.rlib: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/liblambda_trim-fc8ab31464570f6f.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
