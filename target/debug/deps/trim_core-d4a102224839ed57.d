/root/repo/target/debug/deps/trim_core-d4a102224839ed57.d: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/debloater.rs crates/core/src/deployment.rs crates/core/src/fallback.rs crates/core/src/incremental.rs crates/core/src/oracle.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/rewrite.rs

/root/repo/target/debug/deps/libtrim_core-d4a102224839ed57.rlib: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/debloater.rs crates/core/src/deployment.rs crates/core/src/fallback.rs crates/core/src/incremental.rs crates/core/src/oracle.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/rewrite.rs

/root/repo/target/debug/deps/libtrim_core-d4a102224839ed57.rmeta: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/debloater.rs crates/core/src/deployment.rs crates/core/src/fallback.rs crates/core/src/incremental.rs crates/core/src/oracle.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/rewrite.rs

crates/core/src/lib.rs:
crates/core/src/attributes.rs:
crates/core/src/debloater.rs:
crates/core/src/deployment.rs:
crates/core/src/fallback.rs:
crates/core/src/incremental.rs:
crates/core/src/oracle.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
crates/core/src/rewrite.rs:
