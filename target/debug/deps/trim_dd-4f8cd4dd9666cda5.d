/root/repo/target/debug/deps/trim_dd-4f8cd4dd9666cda5.d: crates/dd/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtrim_dd-4f8cd4dd9666cda5.rmeta: crates/dd/src/lib.rs Cargo.toml

crates/dd/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
