/root/repo/target/debug/deps/pylite_ops-bff7d03a9c396608.d: crates/bench/benches/pylite_ops.rs

/root/repo/target/debug/deps/pylite_ops-bff7d03a9c396608: crates/bench/benches/pylite_ops.rs

crates/bench/benches/pylite_ops.rs:
