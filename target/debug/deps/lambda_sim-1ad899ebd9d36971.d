/root/repo/target/debug/deps/lambda_sim-1ad899ebd9d36971.d: crates/lambda-sim/src/lib.rs crates/lambda-sim/src/metrics.rs crates/lambda-sim/src/platform.rs crates/lambda-sim/src/pool.rs crates/lambda-sim/src/pricing.rs crates/lambda-sim/src/providers.rs crates/lambda-sim/src/snapshot.rs crates/lambda-sim/src/trace.rs

/root/repo/target/debug/deps/lambda_sim-1ad899ebd9d36971: crates/lambda-sim/src/lib.rs crates/lambda-sim/src/metrics.rs crates/lambda-sim/src/platform.rs crates/lambda-sim/src/pool.rs crates/lambda-sim/src/pricing.rs crates/lambda-sim/src/providers.rs crates/lambda-sim/src/snapshot.rs crates/lambda-sim/src/trace.rs

crates/lambda-sim/src/lib.rs:
crates/lambda-sim/src/metrics.rs:
crates/lambda-sim/src/platform.rs:
crates/lambda-sim/src/pool.rs:
crates/lambda-sim/src/pricing.rs:
crates/lambda-sim/src/providers.rs:
crates/lambda-sim/src/snapshot.rs:
crates/lambda-sim/src/trace.rs:
