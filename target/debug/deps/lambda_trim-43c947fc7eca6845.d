/root/repo/target/debug/deps/lambda_trim-43c947fc7eca6845.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/liblambda_trim-43c947fc7eca6845.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
