/root/repo/target/debug/deps/trim_rng-e40b70a1653596d1.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/trim_rng-e40b70a1653596d1: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
