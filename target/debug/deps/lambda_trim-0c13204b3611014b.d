/root/repo/target/debug/deps/lambda_trim-0c13204b3611014b.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/liblambda_trim-0c13204b3611014b.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
