/root/repo/target/debug/deps/experiments_bench-191f907a63cb3609.d: crates/bench/benches/experiments_bench.rs

/root/repo/target/debug/deps/experiments_bench-191f907a63cb3609: crates/bench/benches/experiments_bench.rs

crates/bench/benches/experiments_bench.rs:
