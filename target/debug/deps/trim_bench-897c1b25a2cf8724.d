/root/repo/target/debug/deps/trim_bench-897c1b25a2cf8724.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/libtrim_bench-897c1b25a2cf8724.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/libtrim_bench-897c1b25a2cf8724.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/micro.rs:
