/root/repo/target/debug/deps/trim_baselines-d8a9250de1b5fafc.d: crates/baselines/src/lib.rs

/root/repo/target/debug/deps/trim_baselines-d8a9250de1b5fafc: crates/baselines/src/lib.rs

crates/baselines/src/lib.rs:
