/root/repo/target/debug/deps/trim_rng-bb84562e792bbce0.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libtrim_rng-bb84562e792bbce0.rlib: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libtrim_rng-bb84562e792bbce0.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
