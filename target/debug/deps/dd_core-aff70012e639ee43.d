/root/repo/target/debug/deps/dd_core-aff70012e639ee43.d: crates/bench/benches/dd_core.rs

/root/repo/target/debug/deps/dd_core-aff70012e639ee43: crates/bench/benches/dd_core.rs

crates/bench/benches/dd_core.rs:
