/root/repo/target/debug/deps/fallback_integration-00a93f6c78862c8c.d: tests/fallback_integration.rs

/root/repo/target/debug/deps/fallback_integration-00a93f6c78862c8c: tests/fallback_integration.rs

tests/fallback_integration.rs:
