/root/repo/target/debug/deps/trim_analysis-067afdacdea0c04d.d: crates/analysis/src/lib.rs crates/analysis/src/callgraph.rs crates/analysis/src/engine.rs crates/analysis/src/lints.rs crates/analysis/src/origin.rs

/root/repo/target/debug/deps/trim_analysis-067afdacdea0c04d: crates/analysis/src/lib.rs crates/analysis/src/callgraph.rs crates/analysis/src/engine.rs crates/analysis/src/lints.rs crates/analysis/src/origin.rs

crates/analysis/src/lib.rs:
crates/analysis/src/callgraph.rs:
crates/analysis/src/engine.rs:
crates/analysis/src/lints.rs:
crates/analysis/src/origin.rs:
