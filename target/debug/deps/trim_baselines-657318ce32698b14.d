/root/repo/target/debug/deps/trim_baselines-657318ce32698b14.d: crates/baselines/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtrim_baselines-657318ce32698b14.rmeta: crates/baselines/src/lib.rs Cargo.toml

crates/baselines/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
