/root/repo/target/debug/deps/experiments-8fa4a8f2993801df.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-8fa4a8f2993801df: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
