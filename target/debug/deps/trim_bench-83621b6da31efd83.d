/root/repo/target/debug/deps/trim_bench-83621b6da31efd83.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/trim_bench-83621b6da31efd83: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/micro.rs:
