/root/repo/target/debug/deps/simulator_integration-b8364344847b4fb5.d: tests/simulator_integration.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator_integration-b8364344847b4fb5.rmeta: tests/simulator_integration.rs Cargo.toml

tests/simulator_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
