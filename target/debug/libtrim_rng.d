/root/repo/target/debug/libtrim_rng.rlib: /root/repo/crates/rng/src/lib.rs
