/root/repo/target/debug/examples/cost_explorer-967d834e1b58d23a.d: examples/cost_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libcost_explorer-967d834e1b58d23a.rmeta: examples/cost_explorer.rs Cargo.toml

examples/cost_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
