/root/repo/target/debug/examples/custom_library-bd3b9da471c3f342.d: examples/custom_library.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_library-bd3b9da471c3f342.rmeta: examples/custom_library.rs Cargo.toml

examples/custom_library.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
