/root/repo/target/debug/examples/cost_explorer-85ff947b317fc4ff.d: examples/cost_explorer.rs

/root/repo/target/debug/examples/cost_explorer-85ff947b317fc4ff: examples/cost_explorer.rs

examples/cost_explorer.rs:
