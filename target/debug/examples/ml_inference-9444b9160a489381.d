/root/repo/target/debug/examples/ml_inference-9444b9160a489381.d: examples/ml_inference.rs Cargo.toml

/root/repo/target/debug/examples/libml_inference-9444b9160a489381.rmeta: examples/ml_inference.rs Cargo.toml

examples/ml_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
