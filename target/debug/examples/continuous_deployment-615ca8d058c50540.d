/root/repo/target/debug/examples/continuous_deployment-615ca8d058c50540.d: examples/continuous_deployment.rs

/root/repo/target/debug/examples/continuous_deployment-615ca8d058c50540: examples/continuous_deployment.rs

examples/continuous_deployment.rs:
