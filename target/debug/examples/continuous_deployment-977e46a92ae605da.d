/root/repo/target/debug/examples/continuous_deployment-977e46a92ae605da.d: examples/continuous_deployment.rs Cargo.toml

/root/repo/target/debug/examples/libcontinuous_deployment-977e46a92ae605da.rmeta: examples/continuous_deployment.rs Cargo.toml

examples/continuous_deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
