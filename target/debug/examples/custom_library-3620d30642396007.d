/root/repo/target/debug/examples/custom_library-3620d30642396007.d: examples/custom_library.rs

/root/repo/target/debug/examples/custom_library-3620d30642396007: examples/custom_library.rs

examples/custom_library.rs:
