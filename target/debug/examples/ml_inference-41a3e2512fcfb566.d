/root/repo/target/debug/examples/ml_inference-41a3e2512fcfb566.d: examples/ml_inference.rs

/root/repo/target/debug/examples/ml_inference-41a3e2512fcfb566: examples/ml_inference.rs

examples/ml_inference.rs:
