/root/repo/target/debug/examples/quickstart-85490aa0cdcd040e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-85490aa0cdcd040e: examples/quickstart.rs

examples/quickstart.rs:
