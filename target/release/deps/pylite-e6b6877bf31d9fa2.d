/root/repo/target/release/deps/pylite-e6b6877bf31d9fa2.d: crates/pylite/src/lib.rs crates/pylite/src/ast.rs crates/pylite/src/cost.rs crates/pylite/src/interp.rs crates/pylite/src/lexer.rs crates/pylite/src/parser.rs crates/pylite/src/registry.rs crates/pylite/src/value.rs

/root/repo/target/release/deps/libpylite-e6b6877bf31d9fa2.rlib: crates/pylite/src/lib.rs crates/pylite/src/ast.rs crates/pylite/src/cost.rs crates/pylite/src/interp.rs crates/pylite/src/lexer.rs crates/pylite/src/parser.rs crates/pylite/src/registry.rs crates/pylite/src/value.rs

/root/repo/target/release/deps/libpylite-e6b6877bf31d9fa2.rmeta: crates/pylite/src/lib.rs crates/pylite/src/ast.rs crates/pylite/src/cost.rs crates/pylite/src/interp.rs crates/pylite/src/lexer.rs crates/pylite/src/parser.rs crates/pylite/src/registry.rs crates/pylite/src/value.rs

crates/pylite/src/lib.rs:
crates/pylite/src/ast.rs:
crates/pylite/src/cost.rs:
crates/pylite/src/interp.rs:
crates/pylite/src/lexer.rs:
crates/pylite/src/parser.rs:
crates/pylite/src/registry.rs:
crates/pylite/src/value.rs:
