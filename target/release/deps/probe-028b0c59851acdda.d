/root/repo/target/release/deps/probe-028b0c59851acdda.d: crates/bench/src/bin/probe.rs

/root/repo/target/release/deps/probe-028b0c59851acdda: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
