/root/repo/target/release/deps/experiments-8e5513de757235a3.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-8e5513de757235a3: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
