/root/repo/target/release/deps/trim_bench-06eeb5849f3cd943.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/micro.rs

/root/repo/target/release/deps/libtrim_bench-06eeb5849f3cd943.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/micro.rs

/root/repo/target/release/deps/libtrim_bench-06eeb5849f3cd943.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/micro.rs:
