/root/repo/target/release/deps/tmp_scan-c583e5ada9d9958c.d: tests/tmp_scan.rs

/root/repo/target/release/deps/tmp_scan-c583e5ada9d9958c: tests/tmp_scan.rs

tests/tmp_scan.rs:
