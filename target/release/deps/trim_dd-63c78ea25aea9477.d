/root/repo/target/release/deps/trim_dd-63c78ea25aea9477.d: crates/dd/src/lib.rs

/root/repo/target/release/deps/libtrim_dd-63c78ea25aea9477.rlib: crates/dd/src/lib.rs

/root/repo/target/release/deps/libtrim_dd-63c78ea25aea9477.rmeta: crates/dd/src/lib.rs

crates/dd/src/lib.rs:
