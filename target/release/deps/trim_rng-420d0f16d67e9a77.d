/root/repo/target/release/deps/trim_rng-420d0f16d67e9a77.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/libtrim_rng-420d0f16d67e9a77.rlib: crates/rng/src/lib.rs

/root/repo/target/release/deps/libtrim_rng-420d0f16d67e9a77.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
