/root/repo/target/release/deps/analysis_probes-735eb814d56ab9d7.d: crates/bench/benches/analysis_probes.rs

/root/repo/target/release/deps/analysis_probes-735eb814d56ab9d7: crates/bench/benches/analysis_probes.rs

crates/bench/benches/analysis_probes.rs:
