/root/repo/target/release/deps/trim_profiler-6026160e1e80183e.d: crates/profiler/src/lib.rs

/root/repo/target/release/deps/libtrim_profiler-6026160e1e80183e.rlib: crates/profiler/src/lib.rs

/root/repo/target/release/deps/libtrim_profiler-6026160e1e80183e.rmeta: crates/profiler/src/lib.rs

crates/profiler/src/lib.rs:
