/root/repo/target/release/deps/trim_analysis-0233e11ff11b5fc9.d: crates/analysis/src/lib.rs crates/analysis/src/callgraph.rs crates/analysis/src/engine.rs crates/analysis/src/lints.rs crates/analysis/src/origin.rs

/root/repo/target/release/deps/libtrim_analysis-0233e11ff11b5fc9.rlib: crates/analysis/src/lib.rs crates/analysis/src/callgraph.rs crates/analysis/src/engine.rs crates/analysis/src/lints.rs crates/analysis/src/origin.rs

/root/repo/target/release/deps/libtrim_analysis-0233e11ff11b5fc9.rmeta: crates/analysis/src/lib.rs crates/analysis/src/callgraph.rs crates/analysis/src/engine.rs crates/analysis/src/lints.rs crates/analysis/src/origin.rs

crates/analysis/src/lib.rs:
crates/analysis/src/callgraph.rs:
crates/analysis/src/engine.rs:
crates/analysis/src/lints.rs:
crates/analysis/src/origin.rs:
