/root/repo/target/release/deps/trim_apps-d7d02fa9cf89ecc2.d: crates/apps/src/lib.rs crates/apps/src/apps.rs crates/apps/src/libgen.rs crates/apps/src/specs.rs

/root/repo/target/release/deps/libtrim_apps-d7d02fa9cf89ecc2.rlib: crates/apps/src/lib.rs crates/apps/src/apps.rs crates/apps/src/libgen.rs crates/apps/src/specs.rs

/root/repo/target/release/deps/libtrim_apps-d7d02fa9cf89ecc2.rmeta: crates/apps/src/lib.rs crates/apps/src/apps.rs crates/apps/src/libgen.rs crates/apps/src/specs.rs

crates/apps/src/lib.rs:
crates/apps/src/apps.rs:
crates/apps/src/libgen.rs:
crates/apps/src/specs.rs:
