/root/repo/target/release/deps/lambda_trim-d4d377a5cac6673d.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/liblambda_trim-d4d377a5cac6673d.rlib: src/lib.rs src/cli.rs

/root/repo/target/release/deps/liblambda_trim-d4d377a5cac6673d.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
