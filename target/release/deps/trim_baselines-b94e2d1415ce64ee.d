/root/repo/target/release/deps/trim_baselines-b94e2d1415ce64ee.d: crates/baselines/src/lib.rs

/root/repo/target/release/deps/libtrim_baselines-b94e2d1415ce64ee.rlib: crates/baselines/src/lib.rs

/root/repo/target/release/deps/libtrim_baselines-b94e2d1415ce64ee.rmeta: crates/baselines/src/lib.rs

crates/baselines/src/lib.rs:
