/root/repo/target/release/deps/lambda_trim-e69dd5b5d3b0c0a6.d: src/main.rs

/root/repo/target/release/deps/lambda_trim-e69dd5b5d3b0c0a6: src/main.rs

src/main.rs:
