/root/repo/target/release/deps/lambda_sim-fc7e873a1d75704d.d: crates/lambda-sim/src/lib.rs crates/lambda-sim/src/metrics.rs crates/lambda-sim/src/platform.rs crates/lambda-sim/src/pool.rs crates/lambda-sim/src/pricing.rs crates/lambda-sim/src/providers.rs crates/lambda-sim/src/snapshot.rs crates/lambda-sim/src/trace.rs

/root/repo/target/release/deps/liblambda_sim-fc7e873a1d75704d.rlib: crates/lambda-sim/src/lib.rs crates/lambda-sim/src/metrics.rs crates/lambda-sim/src/platform.rs crates/lambda-sim/src/pool.rs crates/lambda-sim/src/pricing.rs crates/lambda-sim/src/providers.rs crates/lambda-sim/src/snapshot.rs crates/lambda-sim/src/trace.rs

/root/repo/target/release/deps/liblambda_sim-fc7e873a1d75704d.rmeta: crates/lambda-sim/src/lib.rs crates/lambda-sim/src/metrics.rs crates/lambda-sim/src/platform.rs crates/lambda-sim/src/pool.rs crates/lambda-sim/src/pricing.rs crates/lambda-sim/src/providers.rs crates/lambda-sim/src/snapshot.rs crates/lambda-sim/src/trace.rs

crates/lambda-sim/src/lib.rs:
crates/lambda-sim/src/metrics.rs:
crates/lambda-sim/src/platform.rs:
crates/lambda-sim/src/pool.rs:
crates/lambda-sim/src/pricing.rs:
crates/lambda-sim/src/providers.rs:
crates/lambda-sim/src/snapshot.rs:
crates/lambda-sim/src/trace.rs:
