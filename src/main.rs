//! The `lambda-trim` command-line tool: debloat, profile, analyze and run
//! pylite serverless applications stored on disk.
//!
//! ```text
//! lambda-trim trim     --app app.py --packages pkgs/ --oracle oracle.txt --out trimmed/
//! lambda-trim profile  --app app.py --packages pkgs/ [--k 20] [--scoring combined]
//! lambda-trim analyze  --app app.py --packages pkgs/
//! lambda-trim run      --app app.py --packages pkgs/ --event '{"n": 3}'
//! lambda-trim simulate --trace trace.csv [--jobs 8] [--out metrics.json]
//! ```

use lambda_trim::cli::{
    load_registry, parse_engine, parse_oracle_file, parse_scoring, write_registry, Args,
};
use std::path::Path;
use std::process::ExitCode;
use trim_core::{trim_app, DebloatOptions};

const USAGE: &str = "\
lambda-trim — cost-driven debloating for serverless function initialization

USAGE:
    lambda-trim <COMMAND> [OPTIONS]

COMMANDS:
    trim      Debloat an application and write the trimmed packages
    profile   Rank imported modules by marginal monetary cost
    analyze   Show imported modules and statically-accessed attributes
    run       Execute the application's handler once
    simulate  Replay an invocation trace through the pool simulator

COMMON OPTIONS:
    --app <FILE>        application source (init code + handler)
    --packages <DIR>    directory of .py modules (virtual site-packages)
    --handler <NAME>    handler name                      [default: handler]

trim:
    --oracle <FILE>     oracle spec: one event literal per line,
                        optionally `EVENT || CONTEXT`
    --out <DIR>         output directory for trimmed packages
    --k <N>             modules to debloat                [default: 20]
    --scoring <M>       combined|time|memory|random      [default: combined]
    --threads <N>       parallel DD probe workers         [default: 1]
    --jobs <N>          parallel static-analysis workers  [default: 1]
    --algorithm <A>     ddmin|greedy                      [default: ddmin]
    --engine <E>        oracle execution tier: vm|tree    [default: vm]
    --no-slice          skip statement-level selective-init slicing of kept
                        modules (on by default; every slice is oracle-verified)
    --wrap              append the fallback wrapper to the app output
    --ic-stats          run the trimmed app once on the VM with inline-cache
                        counters and append per-site hit/miss rates to REPORT.txt

profile:
    --k <N>             how many rows to print            [default: 20]
    --scoring <M>       ranking method                    [default: combined]

analyze:
    --jobs <N>          parallel static-analysis workers  [default: 1]
    --hazards           print only the hazard report: per-module hazard
                        attributes and the lint(s) that produced them
    --json              with --hazards, emit the report as JSON

run:
    --event <LITERAL>   event payload                     [default: {}]
    --context <LITERAL> context payload                   [default: None]

simulate:
    --trace <FILE>      Azure-schema trace CSV (omit to synthesize)
    --functions <N>     synthetic trace size              [default: 400]
    --window-secs <S>   synthetic window length           [default: 86400]
    --seed <N>          trace/reconstruction seed         [default: 10824387]
    --flat              disable diurnal modulation (synthetic only)
    --keep-alive <LIST> comma-separated seconds           [default: 60,900]
    --modes <LIST>      comma-separated standard|restore  [default: both]
    --max-concurrency <N> per-function concurrency cap    [default: none]
    --provisioned <N>   provisioned instances per function[default: 0]
    --jobs <N>          parallel replay workers           [default: 1]
    --stream            stream synthetic arrivals through the pool with
                        bounded memory (fleet scale; synthetic only)
    --out <FILE>        also write the metrics JSON here
";

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let command = args.positional.first().map(String::as_str);
    let result = match command {
        Some("trim") => cmd_trim(&args),
        Some("profile") => cmd_profile(&args),
        Some("analyze") => cmd_analyze(&args),
        Some("run") => cmd_run(&args),
        Some("simulate") => cmd_simulate(&args),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn load_inputs(args: &Args) -> Result<(pylite::Registry, String, String), String> {
    let app_path = args.require("app")?;
    let packages = args.require("packages")?;
    let app_source =
        std::fs::read_to_string(app_path).map_err(|e| format!("reading {app_path}: {e}"))?;
    let registry =
        load_registry(Path::new(packages)).map_err(|e| format!("loading {packages}: {e}"))?;
    let handler = args.get("handler").unwrap_or("handler").to_owned();
    Ok((registry, app_source, handler))
}

fn debloat_options(args: &Args) -> Result<DebloatOptions, String> {
    let mut options = DebloatOptions::default();
    if let Some(k) = args.get("k") {
        options.k = k.parse().map_err(|_| format!("bad --k value `{k}`"))?;
    }
    if let Some(s) = args.get("scoring") {
        options.scoring = parse_scoring(s)?;
    }
    if let Some(t) = args.get("threads") {
        options.threads = t
            .parse()
            .map_err(|_| format!("bad --threads value `{t}`"))?;
    }
    options.jobs = analysis_jobs(args)?;
    if let Some(a) = args.get("algorithm") {
        options.algorithm = match a {
            "ddmin" => trim_core::Algorithm::Ddmin,
            "greedy" => trim_core::Algorithm::Greedy,
            other => {
                return Err(format!(
                    "unknown algorithm `{other}` (expected ddmin|greedy)"
                ))
            }
        };
    }
    if let Some(e) = args.get("engine") {
        options.engine = parse_engine(e)?;
    }
    if let Some(v) = args.get("no-slice") {
        return Err(format!("--no-slice takes no value (got `{v}`)"));
    }
    if args.has_flag("no-slice") {
        options.slice_init = false;
    }
    if options.threads > 1 && matches!(options.algorithm, trim_core::Algorithm::Greedy) {
        return Err(
            "--algorithm greedy is sequential; drop --threads or use --algorithm ddmin".to_owned(),
        );
    }
    Ok(options)
}

fn analysis_jobs(args: &Args) -> Result<usize, String> {
    let Some(j) = args.get("jobs") else {
        return Ok(1);
    };
    let jobs: usize = j.parse().map_err(|_| format!("bad --jobs value `{j}`"))?;
    if jobs == 0 {
        return Err(format!("bad --jobs value `{j}` (must be at least 1)"));
    }
    Ok(jobs)
}

fn cmd_trim(args: &Args) -> Result<(), String> {
    let (registry, app_source, handler) = load_inputs(args)?;
    let oracle_path = args.require("oracle")?;
    let out_dir = args.require("out")?;
    let oracle_content =
        std::fs::read_to_string(oracle_path).map_err(|e| format!("reading {oracle_path}: {e}"))?;
    let spec =
        parse_oracle_file(&oracle_content, &handler).map_err(|e| format!("{oracle_path}: {e}"))?;
    let options = debloat_options(args)?;

    eprintln!(
        "trimming with K={}, scoring={}, {} oracle case(s)...",
        options.k,
        options.scoring.name(),
        spec.cases.len()
    );
    let report = trim_app(&registry, &app_source, &spec, &options).map_err(|e| e.to_string())?;

    let out = Path::new(out_dir);
    write_registry(&report.trimmed, out).map_err(|e| format!("writing {out_dir}: {e}"))?;
    let app_out = if args.has_flag("wrap") {
        let pkg = trim_core::package(&registry, &app_source, &handler, &report);
        pkg.wrapped_app_source
    } else {
        app_source.clone()
    };
    std::fs::write(out.join("app.py"), app_out).map_err(|e| e.to_string())?;
    let mut report_text = trim_core::render_report(&report);
    report_text.push('\n');
    report_text.push_str(&trim_core::render_removals(&report));
    if args.has_flag("ic-stats") {
        report_text.push('\n');
        report_text.push_str(&ic_stats_section(&report.trimmed, &app_source, &spec)?);
    }
    std::fs::write(out.join("REPORT.txt"), &report_text).map_err(|e| e.to_string())?;

    print!("{report_text}");
    println!("trimmed packages written to {out_dir}/ (app: {out_dir}/app.py, report: {out_dir}/REPORT.txt)");
    Ok(())
}

/// One instrumented VM pass over the trimmed application — init plus every
/// oracle case — rendered as the per-site inline-cache section that
/// `trim --ic-stats` appends to REPORT.txt. Sites are the resolved-IR
/// attribute-access ids shared by both engines; rows sort by lookup volume
/// so the hottest `mod.attr` sites lead. Live-handler and module-init
/// lookups report separately: replayed init snapshots skip the caches
/// entirely, so a combined total would swing with `init_snapshots`.
fn ic_stats_section(
    trimmed: &pylite::Registry,
    app_source: &str,
    spec: &trim_core::OracleSpec,
) -> Result<String, String> {
    let mut interp = pylite::Interpreter::new(trimmed.clone());
    interp.engine = pylite::Engine::Vm;
    interp.enable_ic_stats();
    interp
        .exec_main(app_source)
        .map_err(|e| format!("--ic-stats init run failed: {e}"))?;
    for case in &spec.cases {
        let event = trim_core::oracle::parse_literal(&case.event).map_err(|e| e.to_string())?;
        let context = trim_core::oracle::parse_literal(&case.context).map_err(|e| e.to_string())?;
        interp
            .call_handler(&spec.handler, event, context)
            .map_err(|e| format!("--ic-stats handler run failed: {e}"))?;
    }
    let stats = interp.ic_site_stats().expect("ic stats were enabled");
    let mut rows: Vec<(u32, u64, u64)> = stats
        .iter()
        .map(|(site, s)| (*site, s.hits, s.misses))
        .collect();
    rows.sort_by_key(|&(site, h, m)| (std::cmp::Reverse(h + m), site));
    let pct = |h: u64, total: u64| {
        if total == 0 {
            0.0
        } else {
            100.0 * h as f64 / total as f64
        }
    };
    let (hits, misses) = interp.ic_totals();
    let (init_hits, init_misses) = interp.ic_init_totals();
    let mut out = String::new();
    out.push_str("inline-cache sites (vm engine, trimmed registry):\n");
    out.push_str(&format!(
        "  live:  {hits} hit / {misses} miss ({:.1}% hit rate over {} site{})\n",
        pct(hits, hits + misses),
        rows.len(),
        if rows.len() == 1 { "" } else { "s" }
    ));
    out.push_str(&format!(
        "  init:  {init_hits} hit / {init_misses} miss ({:.1}% hit rate; zero when init replays from snapshots)\n",
        pct(init_hits, init_hits + init_misses),
    ));
    for (site, h, m) in rows {
        out.push_str(&format!(
            "  site {site:>4}: {h:>8} hit {m:>8} miss  {:>5.1}% hit rate\n",
            pct(h, h + m)
        ));
    }
    Ok(out)
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    let (registry, app_source, _) = load_inputs(args)?;
    let options = debloat_options(args)?;
    let profile = trim_profiler::profile_app(&app_source, &registry).map_err(|e| e.to_string())?;
    let ranked = trim_profiler::rank_modules(&profile, options.scoring);
    println!(
        "total init {:.3} s, total memory {:.1} MB — ranking by {}",
        profile.total_time_secs,
        profile.total_mem_mb,
        options.scoring.name()
    );
    println!(
        "{:<30} {:>10} {:>10} {:>14}",
        "module", "time s", "mem MB", "score"
    );
    for r in ranked.iter().take(options.k) {
        let cost = profile.module(&r.module).expect("ranked module profiled");
        println!(
            "{:<30} {:>10.4} {:>10.2} {:>14.4}",
            r.module, cost.time_secs, cost.mem_mb, r.score
        );
    }
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let (registry, app_source, handler) = load_inputs(args)?;
    let jobs = analysis_jobs(args)?;
    let program = pylite::parse(&app_source).map_err(|e| e.to_string())?;
    let full = trim_analysis::analyze_full(
        &program,
        &registry,
        &trim_analysis::AnalysisOptions {
            entry: Some(handler),
            jobs,
            ..trim_analysis::AnalysisOptions::default()
        },
    );
    if args.has_flag("hazards") {
        print_hazard_report(&full, args.has_flag("json"));
        return Ok(());
    }
    let analysis = &full.analysis;
    println!("imported modules:");
    for m in &analysis.imported_modules {
        let marker = if registry.contains(m) {
            ""
        } else {
            "  (MISSING)"
        };
        println!("  {m}{marker}");
    }
    println!("\ndefinitely-accessed attributes (excluded from DD):");
    for (module, attrs) in &analysis.accessed {
        println!(
            "  {module}: {}",
            attrs.iter().cloned().collect::<Vec<_>>().join(", ")
        );
    }
    println!(
        "\ncall graph ({} edges, {} nodes reachable from the entry, {} function bodies analyzed):",
        full.call_graph.edges.len(),
        full.call_graph.reachable.len(),
        full.reached_functions.len(),
    );
    for (from, to) in &full.call_graph.edges {
        let marker = if full.call_graph.reachable.contains(to) {
            ""
        } else {
            "  (unreachable)"
        };
        println!("  {from} -> {to}{marker}");
    }
    if !full.lints.is_empty() {
        println!("\nlints:");
        for lint in &full.lints {
            println!("  {lint}");
        }
    }
    if !full.hazard_attrs.is_empty() {
        println!("\nhazardous modules (see `analyze --hazards` for details):");
        for (module, bound) in &full.hazard_attrs {
            let route = if bound.is_top() {
                "deployed untrimmed, conservative fallback"
            } else {
                "attributes pinned, module still trimmed"
            };
            println!("  {module}: {bound}  ({route})");
        }
    }
    Ok(())
}

/// Print the per-module hazard report for `analyze --hazards`: each
/// hazardous module with its attribute bound (pinned set or ⊤) and the
/// hazard lint(s) that produced it. With `json`, the same data as a
/// machine-readable object.
fn print_hazard_report(full: &trim_analysis::FullAnalysis, json: bool) {
    use trim_analysis::lints::Severity;
    let producing_lints = |module: &str| -> Vec<String> {
        full.lints
            .iter()
            .filter(|l| l.severity == Severity::Hazard && l.implicated_module() == Some(module))
            .map(ToString::to_string)
            .collect()
    };
    if json {
        let mut entries = Vec::new();
        for (module, bound) in &full.hazard_attrs {
            let pinned = match bound.attrs() {
                Some(attrs) => {
                    let list: Vec<String> = attrs.iter().map(|a| json_string(a)).collect();
                    format!("[{}]", list.join(", "))
                }
                None => "null".to_owned(),
            };
            let route = if bound.is_top() { "fallback" } else { "pinned" };
            let lints: Vec<String> = producing_lints(module)
                .iter()
                .map(|l| json_string(l))
                .collect();
            entries.push(format!(
                "\n    {{\n      \"module\": {},\n      \"route\": \"{route}\",\n      \"pinned_attrs\": {pinned},\n      \"lints\": [{}]\n    }}",
                json_string(module),
                lints.join(", ")
            ));
        }
        if entries.is_empty() {
            println!("{{\"hazards\": []}}");
        } else {
            println!("{{\n  \"hazards\": [{}\n  ]\n}}", entries.join(","));
        }
        return;
    }
    if full.hazard_attrs.is_empty() {
        println!("no hazards: every module can be trimmed at full attribute granularity");
        return;
    }
    println!("hazardous modules ({}):", full.hazard_attrs.len());
    for (module, bound) in &full.hazard_attrs {
        if bound.is_top() {
            println!("  {module}: {bound} — deployed untrimmed, conservative fallback");
        } else {
            println!("  {module}: pinned attributes {bound} — module still enters delta debugging");
        }
        for lint in producing_lints(module) {
            println!("      {lint}");
        }
    }
}

/// Render `s` as a JSON string literal (quotes, backslashes, control
/// characters escaped).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let (registry, app_source, handler) = load_inputs(args)?;
    let event = args.get("event").unwrap_or("{}").to_owned();
    let context = args.get("context").unwrap_or("None").to_owned();
    let spec = trim_core::OracleSpec {
        handler,
        cases: vec![trim_core::TestCase { event, context }],
    };
    let exec = trim_core::run_app(&registry, &app_source, &spec).map_err(|e| e.to_string())?;
    for line in &exec.stdout {
        println!("{line}");
    }
    println!("=> {}", exec.results[0]);
    eprintln!(
        "init {:.3} s | exec {:.3} s | memory {:.1} MB | extcalls {:?}",
        exec.init_secs, exec.exec_secs, exec.mem_mb, exec.extcalls
    );
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    use lambda_sim::trace::replay::render_metrics_json;
    use lambda_sim::{
        DiurnalProfile, Platform, ReplayOptions, StartMode, TraceConfig, TraceSource,
    };

    let parse_num = |flag: &str, default: f64| -> Result<f64, String> {
        match args.get(flag) {
            Some(v) => v.parse().map_err(|_| format!("bad --{flag} value `{v}`")),
            None => Ok(default),
        }
    };
    let seed: u64 = match args.get("seed") {
        Some(v) => v.parse().map_err(|_| format!("bad --seed value `{v}`"))?,
        None => 0xA57AC3,
    };
    let synth_config = || -> Result<TraceConfig, String> {
        let config = TraceConfig {
            functions: parse_num("functions", 400.0)? as usize,
            window_secs: parse_num("window-secs", 24.0 * 3600.0)?,
            seed,
            diurnal: if args.has_flag("flat") {
                None
            } else {
                Some(DiurnalProfile::default())
            },
        };
        config.validate().map_err(|e| e.to_string())?;
        Ok(config)
    };
    let stream = args.has_flag("stream");
    if stream && args.get("trace").is_some() {
        return Err("--stream replays a synthetic fleet with bounded memory; \
             it cannot be combined with --trace"
            .to_owned());
    }

    let trace = match (stream, args.get("trace")) {
        (true, _) => None,
        (false, Some(path)) => {
            Some(lambda_sim::load_trace_csv(path, seed).map_err(|e| e.to_string())?)
        }
        (false, None) => Some(lambda_sim::generate_trace(&synth_config()?)),
    };

    let mut options = ReplayOptions {
        jobs: analysis_jobs(args)?,
        ..ReplayOptions::default()
    };
    if let Some(list) = args.get("keep-alive") {
        options.keep_alive_secs = list
            .split(',')
            .map(|v| {
                v.trim()
                    .parse()
                    .map_err(|_| format!("bad --keep-alive entry `{v}`"))
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(list) = args.get("modes") {
        options.modes = list
            .split(',')
            .map(|m| match m.trim() {
                "standard" => Ok(StartMode::Standard),
                "restore" => Ok(StartMode::Restore),
                other => Err(format!(
                    "unknown mode `{other}` (expected standard|restore)"
                )),
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(cap) = args.get("max-concurrency") {
        options.max_concurrency = Some(
            cap.parse()
                .map_err(|_| format!("bad --max-concurrency value `{cap}`"))?,
        );
    }
    if let Some(p) = args.get("provisioned") {
        options.provisioned = p
            .parse()
            .map_err(|_| format!("bad --provisioned value `{p}`"))?;
    }

    let header = || {
        println!(
            "{:<10} {:>12} {:>12} {:>10} {:>8} {:>10} {:>10} {:>12}",
            "mode", "keep-alive s", "cold ratio", "queued", "p50 s", "p95 s", "p99 s", "total $"
        )
    };
    #[allow(clippy::too_many_arguments)]
    fn variant_row(
        mode: StartMode,
        keep_alive_secs: f64,
        cold_ratio: f64,
        queued: u64,
        p50: f64,
        p95: f64,
        p99: f64,
        total: f64,
        provider_costs: &[(&'static str, f64)],
    ) {
        println!(
            "{:<10} {:>12.0} {:>12.4} {:>10} {:>8.3} {:>10.3} {:>10.3} {:>12.6}",
            match mode {
                StartMode::Standard => "standard",
                StartMode::Restore => "restore",
            },
            keep_alive_secs,
            cold_ratio,
            queued,
            p50,
            p95,
            p99,
            total
        );
        for (provider, cost) in provider_costs {
            println!("{:<10} {:>26}: ${cost:.6}", "", provider);
        }
    }

    let Some(trace) = trace else {
        // Fleet streaming path: arrivals never materialize, so the sweep
        // scales to fleet sizes whose traces would not fit in memory.
        let config = synth_config()?;
        eprintln!(
            "streaming synthetic fleet: {} functions over {:.0} s ({} job{})",
            config.functions,
            config.window_secs,
            options.jobs,
            if options.jobs == 1 { "" } else { "s" }
        );
        let report = lambda_sim::replay_fleet(&Platform::default(), &config, &options)
            .map_err(|e| e.to_string())?;
        eprintln!("replayed {} invocations per variant", report.invocations);
        header();
        for v in &report.variants {
            variant_row(
                v.mode,
                v.keep_alive_secs,
                v.cold_ratio(),
                v.queued_requests,
                v.e2e_p50_secs,
                v.e2e_p95_secs,
                v.e2e_p99_secs,
                v.total_cost(),
                &v.provider_costs,
            );
        }
        if let Some(out) = args.get("out") {
            std::fs::write(out, lambda_sim::render_fleet_metrics_json(&report) + "\n")
                .map_err(|e| format!("writing {out}: {e}"))?;
            eprintln!("metrics written to {out}");
        }
        return Ok(());
    };

    let source = match trace.source {
        TraceSource::Loaded { .. } => "loaded",
        TraceSource::Synthetic { .. } => "synthetic",
    };
    eprintln!(
        "replaying {source} trace: {} functions, {} invocations over {:.0} s ({} job{})",
        trace.functions.len(),
        trace.invocations(),
        trace.window_secs,
        options.jobs,
        if options.jobs == 1 { "" } else { "s" }
    );
    let report = lambda_sim::replay_trace(&Platform::default(), &trace, &options);
    header();
    for v in &report.variants {
        variant_row(
            v.mode,
            v.keep_alive_secs,
            v.cold_ratio(),
            v.queued_requests,
            v.e2e_p50_secs,
            v.e2e_p95_secs,
            v.e2e_p99_secs,
            v.total_cost(),
            &v.provider_costs,
        );
    }
    if let Some(out) = args.get("out") {
        std::fs::write(out, render_metrics_json(&report) + "\n")
            .map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("metrics written to {out}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(raw: &[&str]) -> Args {
        Args::parse(raw.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn greedy_with_threads_is_rejected_up_front() {
        let err = debloat_options(&args(&["--algorithm", "greedy", "--threads", "4"]))
            .expect_err("greedy cannot use parallel probe workers");
        assert!(err.contains("greedy"), "{err}");
    }

    #[test]
    fn greedy_sequential_and_parallel_ddmin_are_accepted() {
        assert!(debloat_options(&args(&["--algorithm", "greedy"])).is_ok());
        assert!(debloat_options(&args(&["--algorithm", "ddmin", "--threads", "4"])).is_ok());
    }

    #[test]
    fn hazard_flags_parse_as_bare_switches() {
        let a = args(&["analyze", "--hazards", "--json", "--jobs", "2"]);
        assert!(a.has_flag("hazards"));
        assert!(a.has_flag("json"));
        assert_eq!(analysis_jobs(&a).unwrap(), 2);
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(
            json_string("line\nbreak\t\u{1}"),
            "\"line\\nbreak\\t\\u0001\""
        );
    }

    #[test]
    fn engine_flag_is_parsed_and_validated() {
        assert_eq!(
            debloat_options(&args(&[])).unwrap().engine,
            trim_core::Engine::Vm
        );
        assert_eq!(
            debloat_options(&args(&["--engine", "vm"])).unwrap().engine,
            trim_core::Engine::Vm
        );
        assert_eq!(
            debloat_options(&args(&["--engine", "tree"]))
                .unwrap()
                .engine,
            trim_core::Engine::Tree
        );
        let err = debloat_options(&args(&["--engine", "jit"])).expect_err("bad engine rejected");
        assert!(err.contains("unknown engine `jit`"), "{err}");
        assert!(err.contains("expected vm|tree"), "{err}");
    }

    #[test]
    fn ic_stats_section_reports_per_site_rates() {
        let mut registry = pylite::Registry::new();
        registry.set_module("util", "CONST = 5\n");
        let app = "import util\nx = util.CONST\n\
                   def handler(event, context):\n    return util.CONST + event[\"n\"]\n";
        let spec = trim_core::OracleSpec {
            handler: "handler".to_owned(),
            cases: vec![
                trim_core::TestCase::event("{\"n\": 1}"),
                trim_core::TestCase::event("{\"n\": 2}"),
            ],
        };
        let section = ic_stats_section(&registry, app, &spec).expect("instrumented run passes");
        assert!(section.starts_with("inline-cache sites"), "{section}");
        assert!(section.contains("% hit rate"), "{section}");
        // Three reads of the same `util.CONST` sites: the repeats hit.
        assert!(section.contains("hit"), "{section}");
        // Live and init lookups report as separate lines.
        assert!(section.contains("live:"), "{section}");
        assert!(section.contains("init:"), "{section}");
        let err = ic_stats_section(&registry, "import missing\n", &spec)
            .expect_err("broken app surfaces the init failure");
        assert!(err.contains("--ic-stats init run failed"), "{err}");
    }

    #[test]
    fn stream_flag_conflicts_with_trace() {
        let err = cmd_simulate(&args(&["simulate", "--stream", "--trace", "t.csv"]))
            .expect_err("--stream with --trace must be rejected");
        assert!(err.contains("--stream"), "{err}");
        assert!(err.contains("--trace"), "{err}");
    }

    #[test]
    fn stream_simulate_runs_a_small_fleet() {
        let out = std::env::temp_dir().join("lambda_trim_stream_metrics_test.json");
        let out_str = out.to_str().expect("utf8 temp path").to_owned();
        cmd_simulate(&args(&[
            "simulate",
            "--stream",
            "--functions",
            "8",
            "--window-secs",
            "3600",
            "--out",
            &out_str,
        ]))
        .expect("small streamed fleet replays");
        let json = std::fs::read_to_string(&out).expect("metrics written");
        std::fs::remove_file(&out).ok();
        assert!(json.contains("\"variants\""));
        assert!(json.contains("\"functions\": 8"));
    }

    #[test]
    fn jobs_flag_is_parsed_and_validated() {
        assert_eq!(analysis_jobs(&args(&[])).unwrap(), 1);
        assert_eq!(analysis_jobs(&args(&["--jobs", "8"])).unwrap(), 8);
        let opts = debloat_options(&args(&["--jobs", "4"])).unwrap();
        assert_eq!(opts.jobs, 4);
        let err = analysis_jobs(&args(&["--jobs", "0"])).expect_err("zero jobs rejected");
        assert!(err.contains("--jobs"), "{err}");
        let err = analysis_jobs(&args(&["--jobs", "lots"])).expect_err("non-numeric rejected");
        assert!(err.contains("--jobs"), "{err}");
        let err = debloat_options(&args(&["--jobs", "0"])).expect_err("zero jobs rejected");
        assert!(err.contains("--jobs"), "{err}");
    }

    #[test]
    fn no_slice_flag_disables_slicing_and_takes_no_value() {
        assert!(
            debloat_options(&args(&[])).unwrap().slice_init,
            "slicing defaults on"
        );
        let opts = debloat_options(&args(&["--no-slice"])).unwrap();
        assert!(!opts.slice_init);
        // `--no-slice` followed by a bare token would silently swallow it as
        // a value; reject that instead of mis-parsing the command line.
        let err = debloat_options(&args(&["--no-slice", "yes"])).expect_err("value rejected");
        assert!(err.contains("--no-slice takes no value"), "{err}");
        // Followed by another flag it parses as the boolean it is.
        let opts = debloat_options(&args(&["--no-slice", "--jobs", "2"])).unwrap();
        assert!(!opts.slice_init);
        assert_eq!(opts.jobs, 2);
    }
}
