//! # lambda-trim — cost-driven debloating for serverless function initialization
//!
//! A Rust reproduction of *λ-trim: Optimizing Function Initialization in
//! Serverless Applications With Cost-driven Debloating* (ASPLOS '25),
//! including every substrate the paper depends on. This facade crate
//! re-exports the workspace members:
//!
//! | crate | what it is |
//! |---|---|
//! | [`pylite`] | Python-subset interpreter with instrumentable imports |
//! | [`lambda_sim`] | serverless platform simulator: pricing, cold/warm starts, C/R, traces |
//! | [`trim_dd`] | generic Delta Debugging (ddmin + parallel variant) |
//! | [`trim_analysis`] | PyCG-style static analyzer |
//! | [`trim_profiler`] | marginal-cost profiler + module ranking |
//! | [`trim_core`] | the λ-trim pipeline: analyze → profile → debloat → deploy |
//! | [`trim_baselines`] | FaaSLight-style and Vulture-style comparators |
//! | [`trim_apps`] | the 21-application benchmark corpus |
//!
//! # Quickstart
//!
//! ```
//! use lambda_trim::{trim_app, DebloatOptions, OracleSpec, Registry, TestCase};
//!
//! # fn main() -> Result<(), trim_core::TrimError> {
//! let mut registry = Registry::new();
//! registry.set_module(
//!     "veclib",
//!     "def scale(v, k):\n    return v * k\ndef unused_io():\n    return 0\n",
//! );
//! let app = "import veclib\ndef handler(event, context):\n    return veclib.scale(event[\"v\"], 3)\n";
//! let spec = OracleSpec::new(vec![TestCase::event("{\"v\": 7}")]);
//! let report = trim_app(&registry, app, &spec, &DebloatOptions::default())?;
//! assert!(report.after.behavior_eq(&report.before));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cli;

pub use lambda_sim;
pub use pylite;
pub use trim_analysis;
pub use trim_apps;
pub use trim_baselines;
pub use trim_core;
pub use trim_dd;
pub use trim_profiler;

pub use lambda_sim::{AppProfile, Platform, PricingModel, StartMode};
pub use pylite::{Interpreter, Registry};
pub use trim_core::{trim_app, DebloatOptions, OracleSpec, TestCase, TrimError, TrimReport};
