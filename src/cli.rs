//! Filesystem-facing helpers for the `lambda-trim` command-line tool:
//! loading a module registry from a directory of `.py` files, parsing
//! oracle-specification files, and writing a trimmed registry back out.
//!
//! Layout conventions mirror site-packages:
//!
//! ```text
//! packages/
//!   utils.py              -> module `utils`
//!   torch/__init__.py     -> module `torch`
//!   torch/nn.py           -> module `torch.nn`
//!   torch/nn/__init__.py  -> module `torch.nn` (directory package form)
//! ```

use pylite::Registry;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use trim_core::{OracleSpec, TestCase};

/// Load every `.py` file under `dir` into a [`Registry`], mapping paths to
/// dotted module names.
///
/// # Errors
///
/// I/O errors reading the tree, or `InvalidData` for non-UTF-8 sources.
pub fn load_registry(dir: &Path) -> io::Result<Registry> {
    let mut registry = Registry::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        for entry in fs::read_dir(&current)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().and_then(|e| e.to_str()) == Some("py") {
                let module = module_name_for(dir, &path).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("cannot derive module name for {}", path.display()),
                    )
                })?;
                let source = fs::read_to_string(&path)?;
                registry.set_module(module, source);
            }
        }
    }
    Ok(registry)
}

/// Derive the dotted module name of `file` relative to `root`.
pub fn module_name_for(root: &Path, file: &Path) -> Option<String> {
    let rel = file.strip_prefix(root).ok()?;
    let mut parts: Vec<String> = Vec::new();
    for component in rel.components() {
        parts.push(component.as_os_str().to_str()?.to_owned());
    }
    let last = parts.pop()?;
    let stem = last.strip_suffix(".py")?;
    if stem != "__init__" {
        parts.push(stem.to_owned());
    }
    if parts.is_empty() {
        return None;
    }
    Some(parts.join("."))
}

/// Write a registry back to disk under `dir`, packages as directories with
/// `__init__.py`, plain modules as `<name>.py`.
///
/// # Errors
///
/// Any I/O error creating directories or writing files.
pub fn write_registry(registry: &Registry, dir: &Path) -> io::Result<()> {
    for module in registry.module_names() {
        let source = registry.source(&module).expect("listed module has source");
        let path = module_path(registry, dir, &module);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, source)?;
    }
    Ok(())
}

fn module_path(registry: &Registry, dir: &Path, module: &str) -> PathBuf {
    let is_package = !registry.submodules(module).is_empty();
    let mut path = dir.to_path_buf();
    let parts: Vec<&str> = module.split('.').collect();
    for p in &parts[..parts.len() - 1] {
        path.push(p);
    }
    let leaf = parts[parts.len() - 1];
    if is_package {
        path.push(leaf);
        path.push("__init__.py");
    } else {
        path.push(format!("{leaf}.py"));
    }
    path
}

/// Parse an oracle-specification file: one test case per non-empty,
/// non-comment line, either `EVENT` or `EVENT || CONTEXT` (pylite
/// literals).
///
/// ```text
/// # events the trimmed function must answer identically
/// {"n": 3}
/// {"n": -1} || {"request_id": "abc"}
/// ```
///
/// # Errors
///
/// `InvalidData` when a line is not a valid pylite literal.
pub fn parse_oracle_file(content: &str, handler: &str) -> io::Result<OracleSpec> {
    let mut cases = Vec::new();
    for (lineno, raw) in content.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (event, context) = match line.split_once("||") {
            Some((e, c)) => (e.trim().to_owned(), c.trim().to_owned()),
            None => (line.to_owned(), "None".to_owned()),
        };
        // Validate both literals eagerly so errors carry line numbers.
        for (what, lit) in [("event", &event), ("context", &context)] {
            trim_core::oracle::parse_literal(lit).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("oracle line {}: bad {what} literal: {e}", lineno + 1),
                )
            })?;
        }
        cases.push(TestCase { event, context });
    }
    if cases.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oracle file contains no test cases",
        ));
    }
    Ok(OracleSpec {
        handler: handler.to_owned(),
        cases,
    })
}

/// Minimal flag parser: `--key value` pairs plus positional words.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// `--key value` options.
    pub options: Vec<(String, String)>,
    /// Bare `--flag` switches.
    pub flags: Vec<String>,
}

impl Args {
    /// Parse from an iterator of raw arguments (excluding argv[0]).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Args {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = iter.next().expect("peeked");
                        out.options.push((key.to_owned(), v));
                    }
                    _ => out.flags.push(key.to_owned()),
                }
            } else {
                out.positional.push(arg);
            }
        }
        out
    }

    /// The value of option `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the bare flag `key` was passed.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Required option, with a readable error.
    ///
    /// # Errors
    ///
    /// A message naming the missing option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }
}

/// Resolve an `--engine` string to a [`pylite::Engine`]. Thin wrapper over
/// [`trim_core::parse_engine`] — the library owns the accepted tiers and
/// the error message, so the CLI cannot drift from it.
///
/// # Errors
///
/// A message enumerating the valid tiers.
pub fn parse_engine(s: &str) -> Result<pylite::Engine, String> {
    trim_core::parse_engine(s).map_err(|e| e.to_string())
}

/// Resolve a `--scoring` string to a [`trim_profiler::ScoringMethod`].
///
/// # Errors
///
/// A message listing the valid values.
pub fn parse_scoring(s: &str) -> Result<trim_profiler::ScoringMethod, String> {
    match s {
        "combined" => Ok(trim_profiler::ScoringMethod::Combined),
        "time" => Ok(trim_profiler::ScoringMethod::Time),
        "memory" => Ok(trim_profiler::ScoringMethod::Memory),
        "random" => Ok(trim_profiler::ScoringMethod::Random { seed: 7 }),
        other => Err(format!(
            "unknown scoring method `{other}` (expected combined|time|memory|random)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lambda-trim-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn module_names_from_paths() {
        let root = Path::new("/pkgs");
        let name = |p: &str| module_name_for(root, Path::new(p));
        assert_eq!(name("/pkgs/utils.py"), Some("utils".into()));
        assert_eq!(name("/pkgs/torch/__init__.py"), Some("torch".into()));
        assert_eq!(name("/pkgs/torch/nn.py"), Some("torch.nn".into()));
        assert_eq!(name("/pkgs/torch/nn/__init__.py"), Some("torch.nn".into()));
        assert_eq!(name("/pkgs/__init__.py"), None, "root init has no name");
        assert_eq!(name("/elsewhere/x.py"), None);
    }

    #[test]
    fn registry_roundtrip_through_filesystem() {
        let dir = tempdir("roundtrip");
        let mut registry = Registry::new();
        registry.set_module("utils", "def f(x):\n    return x\n");
        registry.set_module("pkg", "from pkg.sub import a\n");
        registry.set_module("pkg.sub", "a = 1\n");
        write_registry(&registry, &dir).unwrap();
        assert!(dir.join("utils.py").exists());
        assert!(dir.join("pkg/__init__.py").exists());
        assert!(dir.join("pkg/sub.py").exists());
        let loaded = load_registry(&dir).unwrap();
        assert_eq!(loaded, registry);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oracle_file_parsing() {
        let spec = parse_oracle_file(
            "# comment\n{\"n\": 1}\n\n{\"n\": 2} || {\"id\": \"x\"}\n",
            "handler",
        )
        .unwrap();
        assert_eq!(spec.cases.len(), 2);
        assert_eq!(spec.cases[1].context, "{\"id\": \"x\"}");
        assert!(parse_oracle_file("", "handler").is_err());
        assert!(parse_oracle_file("not a literal ][", "handler").is_err());
    }

    #[test]
    fn args_parsing() {
        let args = Args::parse(
            ["trim", "--app", "a.py", "--wrap", "--k", "5"]
                .iter()
                .map(|s| (*s).to_owned()),
        );
        assert_eq!(args.positional, vec!["trim"]);
        assert_eq!(args.get("app"), Some("a.py"));
        assert_eq!(args.get("k"), Some("5"));
        assert!(args.has_flag("wrap"));
        assert!(args.require("missing").is_err());
    }

    #[test]
    fn scoring_parsing() {
        assert!(parse_scoring("combined").is_ok());
        assert!(parse_scoring("time").is_ok());
        assert!(parse_scoring("bogus").is_err());
    }
}
