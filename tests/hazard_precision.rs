//! Differential precision tests for per-attribute hazard analysis.
//!
//! Two guarantees, checked against the benchmark corpus:
//!
//! 1. **Superset of removals** — routing hazardous modules through DD with
//!    their hazard attributes pinned (the default) must never remove less
//!    than the blanket whole-module fallback, per module and overall. The
//!    blanket baseline deploys every hazardous module untrimmed, so the
//!    per-attribute trim can only add removals — if it ever removes fewer
//!    attributes from some module, pinning went wrong.
//! 2. **Static ⊇ dynamic** — the statically-bounded hazard attribute set
//!    must cover every hazardous access the app actually performs at
//!    runtime. Each corpus app's `probe` op reaches its main library
//!    through a non-literal `getattr`, so running both probe arms gives
//!    dynamic ground truth to compare the static bound against.

use lambda_trim::trim_analysis::{analyze_full, AnalysisOptions};
use lambda_trim::trim_apps;
use lambda_trim::trim_core::{oracle::parse_literal, HazardMode};
use lambda_trim::{trim_app, DebloatOptions, Interpreter};
use std::collections::BTreeSet;

#[test]
fn per_attribute_removals_are_a_superset_of_blanket() {
    // Full-pipeline differential on a corpus slice (two trims per app is
    // too slow for all 21 in CI; the static-vs-dynamic test below covers
    // every app cheaply).
    let mut recovered_anywhere = false;
    for app in trim_apps::corpus().into_iter().take(6) {
        let run = |hazards: HazardMode| {
            trim_app(
                &app.registry,
                &app.app_source,
                &app.spec,
                &DebloatOptions {
                    hazards,
                    ..DebloatOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("{}: {e}", app.name))
        };
        let pinned = run(HazardMode::PerAttribute);
        let blanket = run(HazardMode::Blanket);

        // Per-attribute routing can only shrink the fallback list.
        let pinned_fb: BTreeSet<&String> = pinned.fallback_modules.iter().collect();
        let blanket_fb: BTreeSet<&String> = blanket.fallback_modules.iter().collect();
        assert!(
            pinned_fb.is_subset(&blanket_fb),
            "{}: per-attribute fallback {pinned_fb:?} must be a subset of blanket {blanket_fb:?}",
            app.name
        );

        // Per module: everything blanket removed, per-attribute removed too.
        for bm in &blanket.modules {
            let removed_blanket: BTreeSet<&String> = bm.removed.iter().collect();
            let removed_pinned: BTreeSet<&String> = pinned
                .modules
                .iter()
                .find(|pm| pm.module == bm.module)
                .map(|pm| pm.removed.iter().collect())
                .unwrap_or_default();
            assert!(
                removed_blanket.is_subset(&removed_pinned),
                "{}/{}: blanket removals must survive per-attribute routing",
                app.name,
                bm.module
            );
        }
        assert!(
            pinned.attrs_removed() >= blanket.attrs_removed(),
            "{}: per-attribute trim removed fewer attributes overall",
            app.name
        );
        if pinned.attrs_removed() > blanket.attrs_removed() {
            recovered_anywhere = true;
        }

        // Both deployments must still satisfy the oracle.
        assert!(pinned.after.behavior_eq(&pinned.before), "{}", app.name);
        assert!(blanket.after.behavior_eq(&blanket.before), "{}", app.name);
    }
    assert!(
        recovered_anywhere,
        "at least one app must recover trim from the blanket fallback"
    );
}

#[test]
fn static_hazard_attrs_cover_dynamic_probe_accesses() {
    for app in trim_apps::corpus() {
        let (lib, [probe_a, probe_b]) = &app.probe;

        // Static side: the probe library must carry a *bounded* hazard set
        // (⊤ would force the whole module back to the blanket fallback).
        let program = lambda_trim::pylite::parse(&app.app_source).expect("corpus app parses");
        let full = analyze_full(
            &program,
            &app.registry,
            &AnalysisOptions {
                entry: Some(app.spec.handler.clone()),
                ..AnalysisOptions::default()
            },
        );
        let bound = full
            .hazard_attrs
            .get(lib)
            .unwrap_or_else(|| panic!("{}: probe library {lib} must be hazardous", app.name));
        let attrs = bound.attrs().unwrap_or_else(|| {
            panic!("{}: hazard bound for {lib} must be finite, got ⊤", app.name)
        });
        for probe in [probe_a, probe_b] {
            assert!(
                attrs.contains(probe),
                "{}: static bound {attrs:?} misses probe attribute {probe}",
                app.name
            );
        }

        // Dynamic side: run both probe arms and collect the ground truth.
        let mut interp = Interpreter::new(app.registry.clone());
        interp
            .exec_main(&app.app_source)
            .unwrap_or_else(|e| panic!("{}: init failed: {e}", app.name));
        for deep in [false, true] {
            let case = app.probe_case(deep);
            let event = parse_literal(&case.event).expect("probe event literal");
            let context = parse_literal(&case.context).expect("probe context literal");
            interp
                .call_handler(&app.spec.handler, event, context)
                .unwrap_or_else(|e| panic!("{}: probe(deep={deep}) failed: {e}", app.name));
        }
        let observed = interp.observed_accesses();
        let lib_observed = observed
            .get(lib)
            .unwrap_or_else(|| panic!("{}: no runtime accesses observed on {lib}", app.name));

        // Both probe arms really execute the hazardous getattr...
        for probe in [probe_a, probe_b] {
            assert!(
                lib_observed.contains(probe),
                "{}: probe attribute {probe} was never accessed at runtime",
                app.name
            );
        }
        // ...and every dynamically-observed hazardous access is inside the
        // static bound: static hazard attrs ⊇ dynamic hazardous accesses.
        let dynamic_hazardous: BTreeSet<&String> = lib_observed
            .iter()
            .filter(|a| *a == probe_a || *a == probe_b)
            .collect();
        assert!(
            dynamic_hazardous.iter().all(|a| attrs.contains(*a)),
            "{}: dynamic hazardous accesses {dynamic_hazardous:?} escape the static bound {attrs:?}",
            app.name
        );
    }
}
