//! Differential test pinning the bytecode VM to the tree-walking reference
//! interpreter, byte for byte.
//!
//! The VM is the default execution tier for every oracle run, so any drift
//! in stdout, exceptions, module namespaces, observed accesses, virtual
//! costs, or trim outcomes would silently change every experiment. Unlike
//! `differential_interning` (which compares against a recorded golden),
//! this test runs the *live* tree-walker next to the VM over the full
//! 21-app corpus and asserts the renderings are identical — including the
//! meter, since virtual cost decides what λ-trim removes — and that
//! mini-corpus trim reports agree across engines and `--jobs`.

use lambda_trim::pylite::{py_repr, Engine, Interpreter};
use lambda_trim::trim_core::oracle::parse_literal;
use lambda_trim::DebloatOptions;
use std::fmt::Write as _;

/// Render one app's full observable surface under `engine`: handler
/// results, stdout, external calls, error (if any), the `__main__` module
/// namespace, observed module-attribute accesses, and the meter.
fn capture_behavior(app: &lambda_trim::trim_apps::BenchApp, engine: Engine) -> String {
    let mut out = String::new();
    let mut it = Interpreter::new(app.registry.clone());
    it.engine = engine;
    let mut error: Option<String> = None;
    match it.exec_main(&app.app_source) {
        Ok(main) => {
            for case in &app.spec.cases {
                let event = parse_literal(&case.event).expect("literal event");
                let context = parse_literal(&case.context).expect("literal context");
                match it.call_handler(&app.spec.handler, event, context) {
                    Ok(v) => writeln!(out, "res| {}", py_repr(&v)).unwrap(),
                    Err(e) => {
                        error = Some(format!("{}: {}", e.kind.class_name(), e.message));
                        break;
                    }
                }
            }
            // The namespace built by top-level execution, in insertion
            // order — the exact thing trimming rewrites.
            let interner = app.registry.interner().clone();
            for key in main.ns.key_syms() {
                let value = main.ns.get(key).expect("key from snapshot");
                writeln!(out, "ns | {} = {}", interner.resolve(key), py_repr(&value)).unwrap();
            }
        }
        Err(e) => error = Some(format!("{}: {}", e.kind.class_name(), e.message)),
    }
    for line in &it.stdout {
        writeln!(out, "out| {line}").unwrap();
    }
    for call in &it.extcalls {
        writeln!(out, "ext| {call}").unwrap();
    }
    if let Some(e) = error {
        writeln!(out, "err| {e}").unwrap();
    }
    for (module, attrs) in it.observed_accesses() {
        let attrs: Vec<&str> = attrs.iter().map(|a| a.as_str()).collect();
        writeln!(out, "obs| {module}: {}", attrs.join(" ")).unwrap();
    }
    writeln!(
        out,
        "met| clock={} mem={} steps={}",
        it.meter.clock_ns(),
        it.meter.mem_bytes(),
        it.meter.steps
    )
    .unwrap();
    out
}

/// Render one app's trim outcome under `engine` with `jobs` analysis
/// workers: per-module kept/removed lists, fallbacks, and cost summary.
fn capture_trim(app: &lambda_trim::trim_apps::BenchApp, engine: Engine, jobs: usize) -> String {
    let mut out = String::new();
    let options = DebloatOptions {
        engine,
        jobs,
        ..DebloatOptions::default()
    };
    let report = lambda_trim::trim_app(&app.registry, &app.app_source, &app.spec, &options)
        .expect("trim succeeds");
    for m in &report.modules {
        writeln!(
            out,
            "mod| {} kept=[{}] removed=[{}] probes={}",
            m.module,
            m.kept.join(","),
            m.removed.join(","),
            m.dd_stats.oracle_invocations
        )
        .unwrap();
    }
    for f in &report.fallback_modules {
        writeln!(out, "fb | {f}").unwrap();
    }
    writeln!(
        out,
        "sum| init {:.9}->{:.9}s mem {:.6}->{:.6}MB",
        report.before.init_secs, report.after.init_secs, report.before.mem_mb, report.after.mem_mb
    )
    .unwrap();
    out
}

#[test]
fn vm_matches_tree_walker_on_full_corpus_behavior() {
    for app in lambda_trim::trim_apps::corpus() {
        let tree = capture_behavior(&app, Engine::Tree);
        let vm = capture_behavior(&app, Engine::Vm);
        if tree != vm {
            for (i, (t, v)) in tree.lines().zip(vm.lines()).enumerate() {
                assert_eq!(
                    v,
                    t,
                    "{}: vm diverged from tree-walker at line {}",
                    app.name,
                    i + 1
                );
            }
            panic!(
                "{}: capture length changed: vm {} vs tree {} lines",
                app.name,
                vm.lines().count(),
                tree.lines().count()
            );
        }
    }
}

#[test]
fn vm_matches_tree_walker_on_trim_results_across_jobs() {
    // Full-corpus trims are minutes-long in debug builds; the mini corpus
    // exercises the same DD/oracle/rewrite machinery at test-friendly cost.
    for app in lambda_trim::trim_apps::mini_corpus() {
        let tree = capture_trim(&app, Engine::Tree, 1);
        for jobs in [1, 2] {
            let vm = capture_trim(&app, Engine::Vm, jobs);
            assert_eq!(
                vm, tree,
                "{}: vm trim (jobs={jobs}) diverged from tree-walker",
                app.name
            );
        }
    }
}
