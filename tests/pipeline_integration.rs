//! Cross-crate integration tests: the full λ-trim pipeline over the
//! benchmark corpus, invariants that must hold for every application, and
//! head-to-head checks against the baseline debloaters.

use lambda_trim::{trim_app, DebloatOptions};
use trim_core::run_app;

/// Every mini-corpus app: trimming preserves behavior and never makes
/// initialization or memory worse.
#[test]
fn trim_preserves_behavior_and_improves_init() {
    for bench in trim_apps::mini_corpus() {
        let report = trim_app(
            &bench.registry,
            &bench.app_source,
            &bench.spec,
            &DebloatOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert!(
            report.after.behavior_eq(&report.before),
            "{}: behavior must be preserved",
            bench.name
        );
        assert!(
            report.after.init_secs <= report.before.init_secs,
            "{}: init must not regress",
            bench.name
        );
        assert!(
            report.after.mem_mb <= report.before.mem_mb,
            "{}: memory must not regress",
            bench.name
        );
        assert!(
            report.attrs_removed() > 0,
            "{}: something trimmed",
            bench.name
        );
    }
}

/// The trimmed registry is independently deployable: a fresh run (new
/// interpreter, no state from the pipeline) still matches the original.
#[test]
fn trimmed_registry_is_deployable() {
    let bench = trim_apps::app("igraph").unwrap();
    let report = trim_app(
        &bench.registry,
        &bench.app_source,
        &bench.spec,
        &DebloatOptions::default(),
    )
    .unwrap();
    let fresh = run_app(&report.trimmed, &bench.app_source, &bench.spec).unwrap();
    assert!(fresh.behavior_eq(&report.before));
}

/// Attribute-granularity DD removes at least as many attributes as the
/// statement-granularity and dead-code baselines (§6.1's claim).
#[test]
fn dd_beats_baselines_on_attributes_removed() {
    for bench in trim_apps::mini_corpus() {
        let dd = trim_app(
            &bench.registry,
            &bench.app_source,
            &bench.spec,
            &DebloatOptions::default(),
        )
        .unwrap();
        let fl = trim_baselines::faaslight_trim(&bench.registry, &bench.app_source, &bench.spec)
            .unwrap();
        let vu =
            trim_baselines::vulture_trim(&bench.registry, &bench.app_source, &bench.spec).unwrap();
        assert!(
            dd.attrs_removed() >= fl.attrs_removed(),
            "{}: DD {} vs FaaSLight {}",
            bench.name,
            dd.attrs_removed(),
            fl.attrs_removed()
        );
        assert!(
            dd.attrs_removed() >= vu.attrs_removed(),
            "{}: DD {} vs Vulture {}",
            bench.name,
            dd.attrs_removed(),
            vu.attrs_removed()
        );
        // And DD's trimmed app must be at least as fast to initialize.
        assert!(dd.after.init_secs <= fl.after.init_secs + 1e-9);
        assert!(dd.after.init_secs <= vu.after.init_secs + 1e-9);
    }
}

/// Parallel DD produces byte-identical trimmed registries.
#[test]
fn parallel_pipeline_matches_sequential() {
    let bench = trim_apps::app("markdown").unwrap();
    let seq = trim_app(
        &bench.registry,
        &bench.app_source,
        &bench.spec,
        &DebloatOptions::default(),
    )
    .unwrap();
    let par = trim_app(
        &bench.registry,
        &bench.app_source,
        &bench.spec,
        &DebloatOptions {
            threads: 4,
            ..DebloatOptions::default()
        },
    )
    .unwrap();
    for module in bench.registry.module_names() {
        assert_eq!(
            seq.trimmed.source(&module),
            par.trimmed.source(&module),
            "module {module} differs between sequential and parallel DD"
        );
    }
}

/// A larger K never yields a worse result than a smaller K (§8.4: growth
/// then plateau).
#[test]
fn k_is_monotone_in_improvement() {
    let bench = trim_apps::app("dna-visualization").unwrap();
    let mut last_init = f64::INFINITY;
    for k in [1usize, 3, 8, 20] {
        let report = trim_app(
            &bench.registry,
            &bench.app_source,
            &bench.spec,
            &DebloatOptions {
                k,
                ..DebloatOptions::default()
            },
        )
        .unwrap();
        assert!(
            report.after.init_secs <= last_init + 1e-9,
            "K={k} made init worse"
        );
        last_init = report.after.init_secs;
    }
}

/// Scoring methods all produce behavior-preserving results; combined is
/// at least as good as random under a restricted K.
#[test]
fn scoring_methods_are_sound() {
    use trim_profiler::ScoringMethod;
    let bench = trim_apps::app("lightgbm").unwrap();
    let mut by_method = Vec::new();
    for method in [
        ScoringMethod::Time,
        ScoringMethod::Memory,
        ScoringMethod::Combined,
        ScoringMethod::Random { seed: 3 },
    ] {
        let report = trim_app(
            &bench.registry,
            &bench.app_source,
            &bench.spec,
            &DebloatOptions {
                k: 2,
                scoring: method,
                ..DebloatOptions::default()
            },
        )
        .unwrap();
        assert!(report.after.behavior_eq(&report.before));
        by_method.push((method.name(), report.after.init_secs));
    }
    let combined = by_method.iter().find(|(n, _)| *n == "combined").unwrap().1;
    let random = by_method.iter().find(|(n, _)| *n == "random").unwrap().1;
    assert!(
        combined <= random + 1e-9,
        "combined ({combined}) must not lose to random ({random})"
    );
}

/// Repeated pipeline runs are fully deterministic.
#[test]
fn pipeline_is_deterministic() {
    let bench = trim_apps::app("markdown").unwrap();
    let a = trim_app(
        &bench.registry,
        &bench.app_source,
        &bench.spec,
        &DebloatOptions::default(),
    )
    .unwrap();
    let b = trim_app(
        &bench.registry,
        &bench.app_source,
        &bench.spec,
        &DebloatOptions::default(),
    )
    .unwrap();
    assert_eq!(a.trimmed, b.trimmed);
    assert_eq!(a.oracle_invocations, b.oracle_invocations);
}

/// The full 21-app corpus loads and passes its own oracles (cheap smoke
/// check; the heavyweight trim sweep lives in the experiments binary).
#[test]
fn full_corpus_smoke() {
    for bench in trim_apps::corpus() {
        let exec = run_app(&bench.registry, &bench.app_source, &bench.spec)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert!(exec.init_secs > 0.0);
        assert!(exec.mem_mb > 0.0);
    }
}

/// §5.1 soundness over the whole corpus: every attribute the
/// interprocedural analysis marks as accessed at load time is actually
/// read when the application initializes (static ⊆ dynamic). An
/// over-approximation here would silently force-keep trimmable attributes.
#[test]
fn static_load_time_accesses_are_observed_dynamically() {
    for bench in trim_apps::corpus() {
        let program = lambda_trim::pylite::parse(&bench.app_source)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let full = lambda_trim::trim_analysis::analyze_full(
            &program,
            &bench.registry,
            &lambda_trim::trim_analysis::AnalysisOptions::default(),
        );
        let mut it = lambda_trim::Interpreter::new(bench.registry.clone());
        it.exec_main(&bench.app_source)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        for (module, attrs) in &full.load_time_accessed {
            let observed = it
                .observed_accesses()
                .get(module)
                .cloned()
                .unwrap_or_default();
            for attr in attrs {
                assert!(
                    observed.contains(attr),
                    "{}: analysis claims {module}.{attr} is read at load time, \
                     but the interpreter never observed it",
                    bench.name
                );
            }
        }
    }
}

/// The interprocedural exclusion sets subsume the app-only (seed-scope)
/// ones for every corpus app — switching the default can only shrink the
/// DD search space, never grow it.
#[test]
fn interprocedural_exclusions_subsume_app_only() {
    let mut grew_somewhere = false;
    for bench in trim_apps::corpus() {
        let program = lambda_trim::pylite::parse(&bench.app_source).unwrap();
        let inter = lambda_trim::trim_analysis::analyze(&program, &bench.registry);
        let app_only = lambda_trim::trim_analysis::analyze_app_only(&program, &bench.registry);
        for (module, attrs) in &app_only.accessed {
            let inter_attrs = inter.accessed_attrs(module);
            for attr in attrs {
                assert!(
                    inter_attrs.contains(attr),
                    "{}: {module}.{attr} lost by interprocedural analysis",
                    bench.name
                );
            }
        }
        let count = |a: &lambda_trim::trim_analysis::Analysis| -> usize {
            a.accessed.values().map(|s| s.len()).sum()
        };
        if count(&inter) > count(&app_only) {
            grew_somewhere = true;
        }
    }
    assert!(
        grew_somewhere,
        "interprocedural analysis should find extra exclusions somewhere in the corpus"
    );
}

/// Probe-count acceptance: with the interprocedural exclusion sets, DD
/// never needs more oracle probes than with the seed-scope sets, and at
/// least one app needs measurably fewer — while converging to the same
/// trimmed deployment.
#[test]
fn interprocedural_probes_never_increase() {
    use lambda_trim::trim_analysis::AnalysisMode;
    let mut reduced_somewhere = false;
    for bench in trim_apps::mini_corpus() {
        let run = |mode| {
            trim_app(
                &bench.registry,
                &bench.app_source,
                &bench.spec,
                &DebloatOptions {
                    analysis: mode,
                    ..DebloatOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name))
        };
        let app_only = run(AnalysisMode::AppOnly);
        let inter = run(AnalysisMode::Interprocedural);
        assert!(
            inter.after.behavior_eq(&app_only.after),
            "{}: modes must agree on behavior",
            bench.name
        );
        assert!(
            inter.oracle_invocations <= app_only.oracle_invocations,
            "{}: interprocedural probes regressed ({} vs {})",
            bench.name,
            inter.oracle_invocations,
            app_only.oracle_invocations
        );
        if inter.oracle_invocations < app_only.oracle_invocations {
            reduced_somewhere = true;
        }
    }
    assert!(
        reduced_somewhere,
        "at least one mini-corpus app must need fewer probes interprocedurally"
    );
}

/// A synthetic app with an opaque (non-literal) getattr on its main
/// library: the lint pass must flag it and the pipeline must deploy that
/// library untrimmed via the conservative fallback route.
#[test]
fn opaque_dynamic_access_routes_module_to_fallback() {
    use lambda_trim::trim_analysis::lints::Severity;
    let bench = trim_apps::app("markdown").unwrap();
    let hazardous_app = format!(
        "{}def probe(event, context):\n    return getattr(markdown, event[\"name\"])\n",
        bench.app_source
    );
    let report = trim_app(
        &bench.registry,
        &hazardous_app,
        &bench.spec,
        &DebloatOptions::default(),
    )
    .unwrap();
    assert!(
        report.fallback_modules.contains(&"markdown".to_string()),
        "markdown must be routed to fallback, got {:?}",
        report.fallback_modules
    );
    assert_eq!(
        report.trimmed.source("markdown"),
        bench.registry.source("markdown"),
        "fallback module deploys untrimmed"
    );
    assert!(report.lints.iter().any(|l| l.severity == Severity::Hazard));
    assert!(report.after.behavior_eq(&report.before));
}
