//! Cross-crate integration tests: the full λ-trim pipeline over the
//! benchmark corpus, invariants that must hold for every application, and
//! head-to-head checks against the baseline debloaters.

use lambda_trim::{trim_app, DebloatOptions};
use trim_core::run_app;

/// Every mini-corpus app: trimming preserves behavior and never makes
/// initialization or memory worse.
#[test]
fn trim_preserves_behavior_and_improves_init() {
    for bench in trim_apps::mini_corpus() {
        let report = trim_app(
            &bench.registry,
            &bench.app_source,
            &bench.spec,
            &DebloatOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert!(
            report.after.behavior_eq(&report.before),
            "{}: behavior must be preserved",
            bench.name
        );
        assert!(
            report.after.init_secs <= report.before.init_secs,
            "{}: init must not regress",
            bench.name
        );
        assert!(
            report.after.mem_mb <= report.before.mem_mb,
            "{}: memory must not regress",
            bench.name
        );
        assert!(report.attrs_removed() > 0, "{}: something trimmed", bench.name);
    }
}

/// The trimmed registry is independently deployable: a fresh run (new
/// interpreter, no state from the pipeline) still matches the original.
#[test]
fn trimmed_registry_is_deployable() {
    let bench = trim_apps::app("igraph").unwrap();
    let report = trim_app(
        &bench.registry,
        &bench.app_source,
        &bench.spec,
        &DebloatOptions::default(),
    )
    .unwrap();
    let fresh = run_app(&report.trimmed, &bench.app_source, &bench.spec).unwrap();
    assert!(fresh.behavior_eq(&report.before));
}

/// Attribute-granularity DD removes at least as many attributes as the
/// statement-granularity and dead-code baselines (§6.1's claim).
#[test]
fn dd_beats_baselines_on_attributes_removed() {
    for bench in trim_apps::mini_corpus() {
        let dd = trim_app(
            &bench.registry,
            &bench.app_source,
            &bench.spec,
            &DebloatOptions::default(),
        )
        .unwrap();
        let fl = trim_baselines::faaslight_trim(&bench.registry, &bench.app_source, &bench.spec)
            .unwrap();
        let vu = trim_baselines::vulture_trim(&bench.registry, &bench.app_source, &bench.spec)
            .unwrap();
        assert!(
            dd.attrs_removed() >= fl.attrs_removed(),
            "{}: DD {} vs FaaSLight {}",
            bench.name,
            dd.attrs_removed(),
            fl.attrs_removed()
        );
        assert!(
            dd.attrs_removed() >= vu.attrs_removed(),
            "{}: DD {} vs Vulture {}",
            bench.name,
            dd.attrs_removed(),
            vu.attrs_removed()
        );
        // And DD's trimmed app must be at least as fast to initialize.
        assert!(dd.after.init_secs <= fl.after.init_secs + 1e-9);
        assert!(dd.after.init_secs <= vu.after.init_secs + 1e-9);
    }
}

/// Parallel DD produces byte-identical trimmed registries.
#[test]
fn parallel_pipeline_matches_sequential() {
    let bench = trim_apps::app("markdown").unwrap();
    let seq = trim_app(
        &bench.registry,
        &bench.app_source,
        &bench.spec,
        &DebloatOptions::default(),
    )
    .unwrap();
    let par = trim_app(
        &bench.registry,
        &bench.app_source,
        &bench.spec,
        &DebloatOptions {
            threads: 4,
            ..DebloatOptions::default()
        },
    )
    .unwrap();
    for module in bench.registry.module_names() {
        assert_eq!(
            seq.trimmed.source(&module),
            par.trimmed.source(&module),
            "module {module} differs between sequential and parallel DD"
        );
    }
}

/// A larger K never yields a worse result than a smaller K (§8.4: growth
/// then plateau).
#[test]
fn k_is_monotone_in_improvement() {
    let bench = trim_apps::app("dna-visualization").unwrap();
    let mut last_init = f64::INFINITY;
    for k in [1usize, 3, 8, 20] {
        let report = trim_app(
            &bench.registry,
            &bench.app_source,
            &bench.spec,
            &DebloatOptions {
                k,
                ..DebloatOptions::default()
            },
        )
        .unwrap();
        assert!(
            report.after.init_secs <= last_init + 1e-9,
            "K={k} made init worse"
        );
        last_init = report.after.init_secs;
    }
}

/// Scoring methods all produce behavior-preserving results; combined is
/// at least as good as random under a restricted K.
#[test]
fn scoring_methods_are_sound() {
    use trim_profiler::ScoringMethod;
    let bench = trim_apps::app("lightgbm").unwrap();
    let mut by_method = Vec::new();
    for method in [
        ScoringMethod::Time,
        ScoringMethod::Memory,
        ScoringMethod::Combined,
        ScoringMethod::Random { seed: 3 },
    ] {
        let report = trim_app(
            &bench.registry,
            &bench.app_source,
            &bench.spec,
            &DebloatOptions {
                k: 2,
                scoring: method,
                ..DebloatOptions::default()
            },
        )
        .unwrap();
        assert!(report.after.behavior_eq(&report.before));
        by_method.push((method.name(), report.after.init_secs));
    }
    let combined = by_method
        .iter()
        .find(|(n, _)| *n == "combined")
        .unwrap()
        .1;
    let random = by_method.iter().find(|(n, _)| *n == "random").unwrap().1;
    assert!(
        combined <= random + 1e-9,
        "combined ({combined}) must not lose to random ({random})"
    );
}

/// Repeated pipeline runs are fully deterministic.
#[test]
fn pipeline_is_deterministic() {
    let bench = trim_apps::app("markdown").unwrap();
    let a = trim_app(
        &bench.registry,
        &bench.app_source,
        &bench.spec,
        &DebloatOptions::default(),
    )
    .unwrap();
    let b = trim_app(
        &bench.registry,
        &bench.app_source,
        &bench.spec,
        &DebloatOptions::default(),
    )
    .unwrap();
    assert_eq!(a.trimmed, b.trimmed);
    assert_eq!(a.oracle_invocations, b.oracle_invocations);
}

/// The full 21-app corpus loads and passes its own oracles (cheap smoke
/// check; the heavyweight trim sweep lives in the experiments binary).
#[test]
fn full_corpus_smoke() {
    for bench in trim_apps::corpus() {
        let exec = run_app(&bench.registry, &bench.app_source, &bench.spec)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert!(exec.init_secs > 0.0);
        assert!(exec.mem_mb > 0.0);
    }
}
