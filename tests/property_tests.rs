//! Randomized property tests over the core invariants: ddmin soundness
//! and 1-minimality, rewriter correctness, pricing monotonicity, parser
//! robustness, and meter additivity.
//!
//! These use a small deterministic in-tree PRNG (`trim-rng`) instead of a
//! property-testing framework so the suite builds offline; each property
//! is exercised over a fixed-seed stream of generated cases.
#![cfg(feature = "property-tests")]

use std::collections::BTreeSet;
use trim_dd::{ddmin, is_one_minimal};
use trim_rng::Rng;

const CASES: usize = 48;

// ---------------------------------------------------------------------------
// Delta Debugging
// ---------------------------------------------------------------------------

/// For monotone "must contain R" oracles, ddmin returns exactly R.
#[test]
fn ddmin_finds_exact_required_set() {
    let mut rng = Rng::seed_from_u64(0xdd01);
    for _ in 0..CASES {
        let n = rng.usize_inclusive(1, 119);
        let mut required = BTreeSet::new();
        for _ in 0..rng.usize_inclusive(0, 7) {
            let i = rng.usize_inclusive(0, 119);
            if i < n {
                required.insert(i);
            }
        }
        let items: Vec<usize> = (0..n).collect();
        let required: Vec<usize> = required.into_iter().collect();
        let mut oracle = |s: &[usize]| required.iter().all(|r| s.contains(r));
        let result = ddmin(&items, &mut oracle).expect("whole set passes");
        assert_eq!(result.minimized, required);
    }
}

/// For arbitrary oracles that accept the whole set, the result always
/// satisfies the oracle and is 1-minimal.
#[test]
fn ddmin_result_is_sound_and_one_minimal() {
    let mut rng = Rng::seed_from_u64(0xdd02);
    for _ in 0..CASES {
        let n = rng.usize_inclusive(1, 39);
        let modulus = rng.usize_inclusive(1, 6);
        let anchor = rng.usize_inclusive(0, 39) % n;
        let items: Vec<usize> = (0..n).collect();
        // Non-monotone oracle: needs the anchor and a size constraint.
        let mut oracle = move |s: &[usize]| {
            s.contains(&anchor) && s.len() % modulus != modulus.saturating_sub(1) % modulus
        };
        if !oracle(&items) {
            continue; // precondition unmet; skip
        }
        let result = ddmin(&items, &mut oracle).expect("whole set passes");
        assert!(oracle(&result.minimized), "result must satisfy oracle");
        assert!(
            is_one_minimal(&result.minimized, &mut oracle),
            "result must be 1-minimal: {:?}",
            result.minimized
        );
    }
}

// ---------------------------------------------------------------------------
// Rewriter
// ---------------------------------------------------------------------------

/// A random module source built from the corpus library generator
/// (arbitrary attr counts, costs, submodule shapes).
fn random_module_source(rng: &mut Rng) -> String {
    let attrs = rng.usize_inclusive(1, 59);
    let sub_attrs = rng.usize_inclusive(0, 19);
    let reexports = rng.usize_inclusive(0, 9);
    let spec = trim_apps::LibSpec {
        name: "randlib",
        prefix: "rl9",
        init_attrs: attrs,
        init_ms: 10.0,
        init_mb: 5.0,
        core_frac: 0.3,
        mem_core_frac: 0.5,
        subs: if sub_attrs == 0 {
            vec![]
        } else {
            vec![trim_apps::SubSpec {
                name: "sub",
                attrs: sub_attrs,
                import_ms: 5.0,
                alloc_mb: 2.0,
                reexports: reexports.min(sub_attrs),
            }]
        },
        deps: vec![],
        disk_mb: 1.0,
    };
    let mut registry = pylite::Registry::new();
    trim_apps::generate_library(&spec, &mut registry);
    registry.source("randlib").unwrap().to_owned()
}

/// Rewriting to any attribute subset yields source that re-parses and
/// whose attribute set is exactly the kept subset.
#[test]
fn rewrite_output_reparses_with_exact_attrs() {
    let mut rng = Rng::seed_from_u64(0x5e11);
    for _ in 0..CASES {
        let source = random_module_source(&mut rng);
        let program = pylite::parse(&source).expect("generated source parses");
        let attrs = trim_core::module_attributes(&program);
        let keep: BTreeSet<String> = attrs.iter().filter(|_| rng.bool()).cloned().collect();
        let rewritten = trim_core::rewrite_module(&program, &keep);
        let out = pylite::unparse(&rewritten);
        let reparsed = pylite::parse(&out).expect("rewritten source parses");
        let new_attrs: BTreeSet<String> = trim_core::module_attributes(&reparsed)
            .into_iter()
            .collect();
        assert_eq!(new_attrs, keep);
    }
}

/// unparse(parse(x)) re-parses to the same AST for generated sources.
#[test]
fn unparse_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x5e12);
    for _ in 0..CASES {
        let source = random_module_source(&mut rng);
        let p1 = pylite::parse(&source).unwrap();
        let out = pylite::unparse(&p1);
        let p2 = pylite::parse(&out).unwrap();
        assert_eq!(p1, p2);
    }
}

// ---------------------------------------------------------------------------
// Parser robustness
// ---------------------------------------------------------------------------

/// The parser never panics — it returns Ok or Err on arbitrary input.
#[test]
fn parser_never_panics() {
    let mut rng = Rng::seed_from_u64(0x9a21);
    for _ in 0..200 {
        let len = rng.usize_inclusive(0, 200);
        let input: String = (0..len)
            .map(|_| char::from_u32(rng.usize_inclusive(1, 0x2FF) as u32).unwrap_or(' '))
            .collect();
        let _ = pylite::parse(&input);
    }
}

/// Arbitrary printable ASCII restricted to structure characters.
#[test]
fn parser_never_panics_structured() {
    const ALPHABET: &[u8] = b"abcxyz0189 ()[]{}:=.,#\"'\n+-";
    let mut rng = Rng::seed_from_u64(0x9a22);
    for _ in 0..200 {
        let len = rng.usize_inclusive(0, 200);
        let input: String = (0..len)
            .map(|_| ALPHABET[rng.usize_inclusive(0, ALPHABET.len() - 1)] as char)
            .collect();
        let _ = pylite::parse(&input);
    }
}

// ---------------------------------------------------------------------------
// Pricing
// ---------------------------------------------------------------------------

/// Cost is monotone non-decreasing in both duration and memory.
#[test]
fn pricing_is_monotone() {
    let mut rng = Rng::seed_from_u64(0xca41);
    let pricing = lambda_sim::PricingModel::aws();
    for _ in 0..CASES {
        let mem = 1.0 + rng.f64() * 11_999.0;
        let dur = rng.f64() * 100_000.0;
        let dmem = rng.f64() * 2_000.0;
        let ddur = rng.f64() * 10_000.0;
        let base = pricing.invocation_cost(mem, dur);
        assert!(pricing.invocation_cost(mem + dmem, dur) >= base - 1e-15);
        assert!(pricing.invocation_cost(mem, dur + ddur) >= base - 1e-15);
        assert!(base >= 0.0);
    }
}

/// Billed duration is always >= the raw duration and aligned to the
/// rounding granularity.
#[test]
fn billing_rounds_up() {
    let mut rng = Rng::seed_from_u64(0xca42);
    for _ in 0..CASES {
        let dur = rng.f64() * 1_000_000.0;
        for model in [
            lambda_sim::PricingModel::aws(),
            lambda_sim::PricingModel::gcp(),
            lambda_sim::PricingModel::azure(),
        ] {
            let billed = model.billed_duration_ms(dur);
            assert!(billed >= dur - 1e-9);
        }
    }
}

/// Configured memory always covers the footprint (above the minimum)
/// and respects platform bounds.
#[test]
fn configured_memory_covers_footprint() {
    let mut rng = Rng::seed_from_u64(0xca43);
    let pricing = lambda_sim::PricingModel::aws();
    for _ in 0..CASES {
        let mem = rng.f64() * 20_000.0;
        let configured = pricing.configured_memory_mb(mem);
        assert!(configured >= 128);
        assert!(configured <= 10_240);
        if mem <= 10_240.0 {
            assert!(configured as f64 >= mem.min(10_240.0).floor().min(configured as f64));
        }
    }
}

// ---------------------------------------------------------------------------
// Pool simulator
// ---------------------------------------------------------------------------

/// Random sorted arrival vector with bursts: mixes exponential-ish gaps
/// with runs of identical timestamps so concurrency pressure actually
/// occurs.
fn random_arrivals(rng: &mut Rng) -> Vec<f64> {
    let n = rng.usize_inclusive(0, 120);
    let mut arrivals = Vec::with_capacity(n);
    let mut t = 0.0;
    while arrivals.len() < n {
        t += rng.f64() * 40.0;
        // With probability ~1/3, a simultaneous burst.
        let burst = if rng.usize_inclusive(0, 2) == 0 {
            rng.usize_inclusive(2, 12)
        } else {
            1
        };
        for _ in 0..burst.min(n - arrivals.len()) {
            arrivals.push(t);
        }
    }
    arrivals
}

/// `simulate_pool_ext` never runs more than `max_concurrency` requests at
/// any instant, over randomized arrival sets, caps, and app profiles
/// (the concurrency-accounting bugfix's acceptance property).
#[test]
fn ext_pool_never_exceeds_concurrency_cap() {
    let platform = lambda_sim::Platform::default();
    let mut rng = Rng::seed_from_u64(0x0B00_7CA9);
    for case in 0..CASES {
        let arrivals = random_arrivals(&mut rng);
        let cap = rng.usize_inclusive(1, 6);
        let app = lambda_sim::AppProfile::new(
            "prop",
            rng.f64() * 500.0,
            rng.f64() * 3.0,
            0.01 + rng.f64() * 30.0,
            64.0 + rng.f64() * 1024.0,
        );
        let options = lambda_sim::PoolOptions {
            keep_alive_secs: rng.f64() * 900.0,
            max_concurrency: Some(cap),
            provisioned: rng.usize_inclusive(0, 2).min(cap),
            ..lambda_sim::PoolOptions::default()
        };
        let mut deltas: Vec<(f64, i64)> = Vec::new();
        let stats =
            lambda_sim::simulate_pool_ext_traced(&platform, &app, &arrivals, &options, |e| {
                assert!(e.start >= e.arrival, "dispatch cannot precede arrival");
                assert!(e.finish > e.start, "execution takes time");
                deltas.push((e.start, 1));
                deltas.push((e.finish, -1));
            });
        assert_eq!(stats.invocations() as usize, arrivals.len());
        // Sweep: at equal timestamps, releases (-1) before claims (+1).
        deltas.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let (mut cur, mut peak) = (0i64, 0i64);
        for (_, d) in &deltas {
            cur += d;
            peak = peak.max(cur);
        }
        assert!(
            peak as usize <= cap,
            "case {case}: instantaneous concurrency {peak} exceeds cap {cap} \
             ({} arrivals, keep-alive {:.1})",
            arrivals.len(),
            options.keep_alive_secs
        );
    }
}

/// With provisioned/cap features off, the extended pool is exactly the
/// basic keep-alive pool — over random (not just evenly spaced) arrivals.
#[test]
fn ext_pool_matches_basic_pool_on_random_arrivals() {
    let platform = lambda_sim::Platform::default();
    let mut rng = Rng::seed_from_u64(0xd1ff);
    for _ in 0..CASES {
        let arrivals = random_arrivals(&mut rng);
        let keep_alive = rng.f64() * 1200.0;
        let mode = if rng.bool() {
            lambda_sim::StartMode::Standard
        } else {
            lambda_sim::StartMode::Restore
        };
        let app = lambda_sim::AppProfile::new(
            "prop",
            rng.f64() * 500.0,
            rng.f64() * 3.0,
            0.01 + rng.f64() * 30.0,
            64.0 + rng.f64() * 1024.0,
        );
        let basic = lambda_sim::simulate_pool(&platform, &app, &arrivals, keep_alive, mode);
        let ext = lambda_sim::simulate_pool_ext(
            &platform,
            &app,
            &arrivals,
            &lambda_sim::PoolOptions {
                keep_alive_secs: keep_alive,
                mode,
                provisioned: 0,
                max_concurrency: None,
                ..lambda_sim::PoolOptions::default()
            },
        );
        assert_eq!(basic.cold_starts, ext.cold_starts);
        assert_eq!(basic.warm_starts, ext.warm_starts);
        assert_eq!(ext.queued_requests, 0);
        assert!((basic.total_cost - ext.invocation_cost).abs() < 1e-12);
        assert!((basic.total_e2e_secs - ext.total_e2e_secs).abs() < 1e-9);
    }
}

/// The event-driven pool engine is byte-identical to the retained naive
/// oracle — ExtPoolStats and the full traced PoolEvent stream — over
/// randomized bursty workloads spanning provisioned instances, concurrency
/// caps (including `Some(0)` and `Some(1)`), zero keep-alive, and both
/// start modes. The instantaneous concurrency of the event engine must
/// also respect the cap.
#[test]
fn event_pool_engine_matches_naive_oracle_on_random_workloads() {
    let platform = lambda_sim::Platform::default();
    let mut rng = Rng::seed_from_u64(0xeb9_0a5e);
    for case in 0..CASES {
        let arrivals = random_arrivals(&mut rng);
        let cap = match rng.usize_inclusive(0, 3) {
            0 => None,
            1 => Some(rng.usize_inclusive(0, 1)),
            _ => Some(rng.usize_inclusive(2, 8)),
        };
        let app = lambda_sim::AppProfile::new(
            "prop",
            rng.f64() * 500.0,
            rng.f64() * 3.0,
            0.01 + rng.f64() * 30.0,
            64.0 + rng.f64() * 1024.0,
        );
        let options = lambda_sim::PoolOptions {
            keep_alive_secs: if rng.usize_inclusive(0, 3) == 0 {
                0.0
            } else {
                rng.f64() * 900.0
            },
            max_concurrency: cap,
            provisioned: rng.usize_inclusive(0, 3),
            mode: if rng.bool() {
                lambda_sim::StartMode::Standard
            } else {
                lambda_sim::StartMode::Restore
            },
            ..lambda_sim::PoolOptions::default()
        };
        let mut naive_events = Vec::new();
        let naive =
            lambda_sim::simulate_pool_ext_naive_traced(&platform, &app, &arrivals, &options, |e| {
                naive_events.push(e)
            });
        let mut event_events = Vec::new();
        let mut deltas: Vec<(f64, i64)> = Vec::new();
        let event =
            lambda_sim::simulate_pool_ext_traced(&platform, &app, &arrivals, &options, |e| {
                deltas.push((e.start, 1));
                deltas.push((e.finish, -1));
                event_events.push(e);
            });
        assert_eq!(naive, event, "case {case}: stats diverged");
        assert_eq!(naive_events, event_events, "case {case}: events diverged");
        if let Some(cap) = cap {
            deltas.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let (mut cur, mut peak) = (0i64, 0i64);
            for (_, d) in &deltas {
                cur += d;
                peak = peak.max(cur);
            }
            assert!(
                peak as usize <= cap.max(1),
                "case {case}: concurrency {peak} exceeds cap {cap}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Interpreter metering
// ---------------------------------------------------------------------------

/// Running the same program twice in fresh interpreters produces
/// identical meters (determinism), and the meter is additive: a program
/// doing A;B costs at least as much as A.
#[test]
fn meter_is_deterministic_and_additive() {
    let mut rng = Rng::seed_from_u64(0x3e71);
    for _ in 0..16 {
        let reps_a = rng.usize_inclusive(1, 19);
        let reps_b = rng.usize_inclusive(1, 19);
        let stmt = "x = 1 + 2\n";
        let prog_a: String = stmt.repeat(reps_a);
        let prog_ab: String = stmt.repeat(reps_a + reps_b);
        let run = |src: &str| {
            let mut it = pylite::Interpreter::new(pylite::Registry::new());
            it.exec_main(src).unwrap();
            (it.meter.clock_ns(), it.meter.mem_bytes())
        };
        let (t1, m1) = run(&prog_a);
        let (t1b, m1b) = run(&prog_a);
        assert_eq!((t1, m1), (t1b, m1b), "deterministic");
        let (t2, m2) = run(&prog_ab);
        assert!(t2 > t1);
        assert!(m2 >= m1);
    }
}

// ---------------------------------------------------------------------------
// Trim invariants on generated libraries
// ---------------------------------------------------------------------------

/// For any generated library and any usage subset, trimming preserves
/// behavior and the trimmed namespace is a subset of the original.
#[test]
fn trim_on_random_library_is_sound() {
    let mut rng = Rng::seed_from_u64(0x7a91);
    for _ in 0..8 {
        let attrs = rng.usize_inclusive(5, 39);
        let spec = trim_apps::LibSpec {
            name: "randlib",
            prefix: "rl9",
            init_attrs: attrs,
            init_ms: 20.0,
            init_mb: 8.0,
            core_frac: 0.3,
            mem_core_frac: 0.5,
            subs: vec![],
            deps: vec![],
            disk_mb: 1.0,
        };
        let mut registry = pylite::Registry::new();
        trim_apps::generate_library(&spec, &mut registry);
        // Use a handful of function attributes chosen by random bits.
        let mut app = String::from("import randlib\n");
        let mut uses = Vec::new();
        for bit_i in 0..8 {
            let idx = bit_i * 5; // function-kind attributes
            if rng.bool() && idx < attrs {
                uses.push(trim_apps::attr_name("rl9", idx));
            }
        }
        for (k, u) in uses.iter().enumerate() {
            app.push_str(&format!("_u{k} = randlib.{u}\n"));
        }
        app.push_str("def handler(event, context):\n    return event[\"n\"]\n");
        let spec_oracle =
            lambda_trim::OracleSpec::new(vec![lambda_trim::TestCase::event("{\"n\": 5}")]);
        let report = lambda_trim::trim_app(
            &registry,
            &app,
            &spec_oracle,
            &lambda_trim::DebloatOptions::default(),
        )
        .expect("pipeline runs");
        assert!(report.after.behavior_eq(&report.before));
        // Namespace subset check.
        let orig = pylite::parse(registry.source("randlib").unwrap()).unwrap();
        let trimmed = pylite::parse(report.trimmed.source("randlib").unwrap()).unwrap();
        let orig_attrs: BTreeSet<String> =
            trim_core::module_attributes(&orig).into_iter().collect();
        let trimmed_attrs: BTreeSet<String> =
            trim_core::module_attributes(&trimmed).into_iter().collect();
        assert!(trimmed_attrs.is_subset(&orig_attrs));
        // Every used attribute survived.
        for u in &uses {
            assert!(trimmed_attrs.contains(u), "used attr {u} must survive");
        }
    }
}

// ---------------------------------------------------------------------------
// Incremental re-analysis
// ---------------------------------------------------------------------------

/// Generate a random module source over a fixed universe of module names:
/// plain assignments, functions, and cross-module imports/accesses.
fn random_analysis_module(rng: &mut Rng, universe: &[String], this: usize) -> String {
    let mut src = String::new();
    for _ in 0..rng.usize_inclusive(0, 2) {
        let dep = rng.usize_inclusive(0, universe.len() - 1);
        if dep != this {
            src.push_str(&format!("import {}\n", universe[dep]));
        }
    }
    for a in 0..rng.usize_inclusive(1, 4) {
        src.push_str(&format!("val{a} = {}\n", rng.usize_inclusive(0, 9)));
    }
    for f in 0..rng.usize_inclusive(0, 2) {
        let dep = rng.usize_inclusive(0, universe.len() - 1);
        if dep != this && rng.bool() {
            src.push_str(&format!(
                "def fn{f}(x):\n    return {}.val0\n",
                universe[dep]
            ));
        } else {
            src.push_str(&format!("def fn{f}(x):\n    return x + {f}\n"));
        }
    }
    src
}

/// After arbitrary registry edits (rewrite / remove / re-add), analysis
/// through a warm summary cache is identical to analysis from scratch.
#[test]
fn incremental_reanalysis_matches_from_scratch() {
    use lambda_trim::trim_analysis::{analyze_full, AnalysisOptions, FullAnalysis};

    fn assert_same(a: &FullAnalysis, b: &FullAnalysis, what: &str) {
        assert_eq!(a.analysis, b.analysis, "{what}: analysis");
        assert_eq!(
            a.load_time_accessed, b.load_time_accessed,
            "{what}: load_time"
        );
        assert_eq!(a.module_bindings, b.module_bindings, "{what}: bindings");
        assert_eq!(a.lints, b.lints, "{what}: lints");
        assert_eq!(a.hazard_modules, b.hazard_modules, "{what}: hazards");
        assert_eq!(a.hazard_attrs, b.hazard_attrs, "{what}: hazard attrs");
        assert_eq!(a.call_graph, b.call_graph, "{what}: call graph");
        assert_eq!(a.reached_functions, b.reached_functions, "{what}: reached");
    }

    let mut rng = Rng::seed_from_u64(0x1ac5);
    for case in 0..24 {
        let universe: Vec<String> = (0..rng.usize_inclusive(3, 6))
            .map(|i| format!("mod{i}"))
            .collect();
        let mut registry = pylite::Registry::new();
        for (i, name) in universe.iter().enumerate() {
            let src = random_analysis_module(&mut rng, &universe, i);
            registry.set_module(name, src);
        }
        let mut app = String::new();
        for name in &universe {
            if rng.bool() {
                app.push_str(&format!("import {name}\nx_{name} = {name}.val0\n"));
            }
        }
        app.push_str("def handler(event, context):\n    return event\n");
        let program = pylite::parse(&app).expect("generated app parses");

        let cache = lambda_trim::trim_analysis::summary::SummaryCache::shared();
        let warm_opts = AnalysisOptions {
            summary_cache: Some(cache.clone()),
            ..AnalysisOptions::default()
        };
        analyze_full(&program, &registry, &warm_opts); // prime

        for edit in 0..rng.usize_inclusive(1, 3) {
            let victim = &universe[rng.usize_inclusive(0, universe.len() - 1)];
            match rng.usize_inclusive(0, 2) {
                0 => {
                    let i = universe.iter().position(|n| n == victim).unwrap();
                    let src = random_analysis_module(&mut rng, &universe, i);
                    registry.set_module(victim, src);
                }
                1 => {
                    registry.remove_module(victim);
                }
                _ => {
                    registry.set_module(victim, "restored = 1\n");
                }
            }
            let incremental = analyze_full(&program, &registry, &warm_opts);
            let scratch = analyze_full(&program, &registry, &AnalysisOptions::default());
            assert_same(
                &scratch,
                &incremental,
                &format!("case {case}, edit {edit} ({victim})"),
            );
        }
    }
}

/// A random module whose public surface the hazard lattice must track:
/// `a0`/`a1` always exist (the apps below getattr them), plus a random
/// tail of functions, constants and an occasional underscore-private.
fn random_hazardous_module(rng: &mut Rng) -> String {
    let n = rng.usize_inclusive(2, 10);
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("def a{i}(x):\n    return x + {i}\n"));
    }
    for c in 0..rng.usize_inclusive(0, 2) {
        src.push_str(&format!("C{c} = {}\n", rng.usize_inclusive(0, 9)));
    }
    if rng.bool() {
        src.push_str("_private = 7\n");
    }
    src
}

/// Random edits to a *hazardous* module: incremental re-analysis through a
/// warm summary cache yields hazard sets byte-identical to analysis from
/// scratch, for every hazard kind (bounded getattr, opaque getattr,
/// star-import, module rebinding). Every case includes a surface-shrinking
/// edit, which exercises the engine's poison-retry escalation (a rebuilt
/// shard whose published surface shrank forces the pessimistic rebuild of
/// its reverse read-dependency cone).
#[test]
fn incremental_hazard_sets_match_scratch_on_hazardous_edits() {
    use lambda_trim::trim_analysis::{analyze_full, AnalysisOptions};

    const APPS: [&str; 4] = [
        // Bounded getattr: hazard attrs = {a0, a1}.
        "import hz\ndef handler(event, context):\n    key = \"a0\" if event else \"a1\"\n    return getattr(hz, key)(1)\n",
        // Opaque getattr: hazard attrs = hz's full binding surface (top).
        "import hz\ndef handler(event, context):\n    return getattr(hz, event[\"k\"])(1)\n",
        // Star import: hazard attrs = hz's public binding surface.
        "from hz import *\ndef handler(event, context):\n    return a0(1)\n",
        // Module rebinding via del.
        "import hz\ndef handler(event, context):\n    r = hz.a0(1)\n    del hz\n    return r\n",
    ];

    let mut rng = Rng::seed_from_u64(0x4a2a);
    for case in 0..24 {
        let app = APPS[case % APPS.len()];
        let program = pylite::parse(app).expect("hazard app parses");
        let mut registry = pylite::Registry::new();
        registry.set_module("hz", random_hazardous_module(&mut rng));
        registry.set_module("helper", "def go(x):\n    return x\n");

        let cache = lambda_trim::trim_analysis::summary::SummaryCache::shared();
        let warm_opts = AnalysisOptions {
            summary_cache: Some(cache.clone()),
            ..AnalysisOptions::default()
        };
        analyze_full(&program, &registry, &warm_opts); // prime

        for edit in 0..3 {
            let old_hz = registry.source("hz").expect("hz present").to_owned();
            match edit {
                // A fresh random surface: may grow or shrink.
                0 => registry.set_module("hz", random_hazardous_module(&mut rng)),
                // A guaranteed shrink to the minimal surface — the
                // published surface of `hz` loses names, poisoning the
                // optimistic incremental attempt.
                1 => registry
                    .set_module("hz", "def a0(x):\n    return x\ndef a1(x):\n    return x\n"),
                // Grow it back plus an unrelated-module edit in the same
                // round, so the cone spans multiple shards.
                _ => {
                    registry.set_module("hz", random_hazardous_module(&mut rng));
                    registry.set_module("helper", "def go(x):\n    return x + 1\n");
                }
            }
            let edited = registry.source("hz") != Some(old_hz.as_str()) || edit == 2;
            let runs_before = cache.incremental_runs();
            let incremental = analyze_full(&program, &registry, &warm_opts);
            assert!(
                !edited || cache.incremental_runs() > runs_before,
                "case {case}, edit {edit}: a real edit must take the incremental path"
            );
            let scratch = analyze_full(&program, &registry, &AnalysisOptions::default());
            assert_eq!(
                format!("{:?}", scratch.hazard_attrs),
                format!("{:?}", incremental.hazard_attrs),
                "case {case}, edit {edit}: incremental hazard set must be byte-identical to scratch"
            );
            assert_eq!(
                scratch.hazard_modules, incremental.hazard_modules,
                "case {case}, edit {edit}"
            );
            assert_eq!(scratch.lints, incremental.lints, "case {case}, edit {edit}");
        }
    }
}

// ---------------------------------------------------------------------------
// Bytecode VM vs tree-walker differential
// ---------------------------------------------------------------------------

/// A random expression over already-bound names: literals, arithmetic,
/// comparisons (including chains), boolean operators, containers,
/// subscripts and conditionals. May raise at runtime — both engines must
/// then raise identically.
fn random_vm_expr(rng: &mut Rng, vars: &[String], depth: usize) -> String {
    let leaf = depth == 0 || rng.usize_inclusive(0, 2) == 0;
    if leaf {
        return match rng.usize_inclusive(0, 4) {
            0 => format!("{}", rng.usize_inclusive(0, 99)),
            1 if !vars.is_empty() => vars[rng.usize_inclusive(0, vars.len() - 1)].clone(),
            2 => format!("\"s{}\"", rng.usize_inclusive(0, 9)),
            3 => "True".to_owned(),
            _ => format!("{}", rng.usize_inclusive(0, 9)),
        };
    }
    let a = random_vm_expr(rng, vars, depth - 1);
    let b = random_vm_expr(rng, vars, depth - 1);
    match rng.usize_inclusive(0, 9) {
        0 => format!("({a} + {b})"),
        1 => format!("({a} * {b})"),
        2 => format!("({a} - {b})"),
        3 => format!("({a} < {b})"),
        4 => {
            let c = random_vm_expr(rng, vars, depth - 1);
            format!("({a} < {b} < {c})")
        }
        5 => format!("({a} and {b})"),
        6 => format!("({a} or {b})"),
        7 => format!("[{a}, {b}]"),
        8 => format!("({a} if {b} else {})", random_vm_expr(rng, vars, depth - 1)),
        _ => format!("(not {a})"),
    }
}

/// Append one random statement (possibly a compound with a nested block).
fn random_vm_stmt(rng: &mut Rng, vars: &mut Vec<String>, out: &mut String, indent: usize) {
    let pad = "    ".repeat(indent);
    let deep = indent >= 2;
    match rng.usize_inclusive(0, if deep { 4 } else { 9 }) {
        0 | 1 => {
            let name = format!("v{}", vars.len());
            let e = random_vm_expr(rng, vars, 2);
            out.push_str(&format!("{pad}{name} = {e}\n"));
            vars.push(name);
        }
        2 => {
            let e = random_vm_expr(rng, vars, 2);
            out.push_str(&format!("{pad}print({e})\n"));
        }
        3 if !vars.is_empty() => {
            let v = &vars[rng.usize_inclusive(0, vars.len() - 1)];
            let e = random_vm_expr(rng, vars, 1);
            out.push_str(&format!("{pad}{v} = {v} + {e}\n"));
        }
        4 => {
            let name = format!("v{}", vars.len());
            let cond = random_vm_expr(rng, vars, 1);
            let body = random_vm_expr(rng, vars, 1);
            out.push_str(&format!(
                "{pad}{name} = [i * 2 for i in range({}) if {cond} or i > {body}]\n",
                rng.usize_inclusive(0, 6)
            ));
            vars.push(name);
        }
        5 => {
            let cond = random_vm_expr(rng, vars, 1);
            out.push_str(&format!("{pad}if {cond}:\n"));
            random_vm_stmt(rng, vars, out, indent + 1);
            if rng.bool() {
                out.push_str(&format!("{pad}else:\n"));
                random_vm_stmt(rng, vars, out, indent + 1);
            }
        }
        6 => {
            let name = format!("v{}", vars.len());
            let n = rng.usize_inclusive(0, 5);
            out.push_str(&format!("{pad}{name} = 0\n"));
            vars.push(name.clone());
            out.push_str(&format!("{pad}while {name} < {n}:\n"));
            out.push_str(&format!("{pad}    {name} = {name} + 1\n"));
            if rng.bool() {
                out.push_str(&format!(
                    "{pad}    if {name} == {}:\n{pad}        {}\n",
                    rng.usize_inclusive(1, 5),
                    if rng.bool() { "break" } else { "continue" }
                ));
            }
            random_vm_stmt(rng, vars, out, indent + 1);
        }
        7 => {
            let name = format!("it{}", vars.len());
            let e = random_vm_expr(rng, vars, 1);
            out.push_str(&format!(
                "{pad}for {name} in [{e}, {}]:\n",
                random_vm_expr(rng, vars, 1)
            ));
            vars.push(name);
            random_vm_stmt(rng, vars, out, indent + 1);
        }
        8 => {
            out.push_str(&format!("{pad}try:\n"));
            random_vm_stmt(rng, vars, out, indent + 1);
            out.push_str(&format!("{pad}except Exception as exc:\n"));
            out.push_str(&format!("{pad}    print(\"caught\", exc)\n"));
            if rng.bool() {
                out.push_str(&format!("{pad}finally:\n"));
                out.push_str(&format!("{pad}    print(\"fin\")\n"));
            }
        }
        _ => {
            let fname = format!("f{}", vars.len());
            let ret = random_vm_expr(rng, vars, 2);
            out.push_str(&format!("{pad}def {fname}(x):\n{pad}    return {ret}\n"));
            let arg = random_vm_expr(rng, vars, 1);
            let name = format!("v{}", vars.len());
            out.push_str(&format!("{pad}{name} = {fname}({arg})\n"));
            vars.push(name);
        }
    }
}

/// Random small programs through both engines: results (or errors),
/// stdout, virtual clock, simulated memory and step counts must be
/// byte-identical. This is the randomized arm of the VM differential —
/// the curated arm is `tests/differential_vm.rs`.
#[test]
fn vm_and_tree_walker_agree_on_random_programs() {
    let mut rng = Rng::seed_from_u64(0xb17ec0de);
    for case in 0..96 {
        let mut source = String::new();
        let mut vars = Vec::new();
        for _ in 0..rng.usize_inclusive(2, 7) {
            random_vm_stmt(&mut rng, &mut vars, &mut source, 0);
        }
        let run = |engine: pylite::Engine| {
            let mut it = pylite::Interpreter::new(pylite::Registry::new());
            it.engine = engine;
            let result = it.exec_main(&source).map(|_| ()).map_err(|e| e.to_string());
            (
                result,
                it.stdout.clone(),
                it.meter.clock_ns(),
                it.meter.mem_bytes(),
                it.meter.steps,
            )
        };
        let tree = run(pylite::Engine::Tree);
        let vm = run(pylite::Engine::Vm);
        assert_eq!(tree, vm, "case {case}: engines diverged on:\n{source}");
    }
}
