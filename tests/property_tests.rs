//! Property-based tests (proptest) over the core invariants:
//! ddmin soundness and 1-minimality, rewriter correctness, pricing
//! monotonicity, parser robustness, and meter additivity.

use proptest::prelude::*;
use std::collections::BTreeSet;
use trim_dd::{ddmin, is_one_minimal};

// ---------------------------------------------------------------------------
// Delta Debugging
// ---------------------------------------------------------------------------

proptest! {
    /// For monotone "must contain R" oracles, ddmin returns exactly R.
    #[test]
    fn ddmin_finds_exact_required_set(
        n in 1usize..120,
        seed_indices in proptest::collection::btree_set(0usize..120, 0..8)
    ) {
        let items: Vec<usize> = (0..n).collect();
        let required: Vec<usize> = seed_indices.into_iter().filter(|i| *i < n).collect();
        let mut oracle = |s: &[usize]| required.iter().all(|r| s.contains(r));
        let result = ddmin(&items, &mut oracle).expect("whole set passes");
        prop_assert_eq!(result.minimized, required);
    }

    /// For arbitrary oracles that accept the whole set, the result always
    /// satisfies the oracle and is 1-minimal.
    #[test]
    fn ddmin_result_is_sound_and_one_minimal(
        n in 1usize..40,
        modulus in 1usize..7,
        anchor in 0usize..40,
    ) {
        let items: Vec<usize> = (0..n).collect();
        let anchor = anchor % n;
        // Non-monotone oracle: needs the anchor and a size constraint.
        let mut oracle = move |s: &[usize]| {
            s.contains(&anchor) && s.len() % modulus != modulus.saturating_sub(1) % modulus
        };
        if !oracle(&items) {
            return Ok(()); // precondition unmet; skip
        }
        let result = ddmin(&items, &mut oracle).expect("whole set passes");
        prop_assert!(oracle(&result.minimized), "result must satisfy oracle");
        prop_assert!(
            is_one_minimal(&result.minimized, &mut oracle),
            "result must be 1-minimal: {:?}",
            result.minimized
        );
    }
}

// ---------------------------------------------------------------------------
// Rewriter
// ---------------------------------------------------------------------------

/// A strategy producing random module sources built from the corpus
/// library generator (arbitrary attr counts, costs, submodule shapes).
fn arb_module_source() -> impl Strategy<Value = String> {
    (1usize..60, 0usize..20, 0usize..10).prop_map(|(attrs, sub_attrs, reexports)| {
        let spec = trim_apps::LibSpec {
            name: "randlib",
            prefix: "rl9",
            init_attrs: attrs,
            init_ms: 10.0,
            init_mb: 5.0,
            core_frac: 0.3,
            mem_core_frac: 0.5,
            subs: if sub_attrs == 0 {
                vec![]
            } else {
                vec![trim_apps::SubSpec {
                    name: "sub",
                    attrs: sub_attrs,
                    import_ms: 5.0,
                    alloc_mb: 2.0,
                    reexports: reexports.min(sub_attrs),
                }]
            },
            deps: vec![],
            disk_mb: 1.0,
        };
        let mut registry = pylite::Registry::new();
        trim_apps::generate_library(&spec, &mut registry);
        registry.source("randlib").unwrap().to_owned()
    })
}

proptest! {
    /// Rewriting to any attribute subset yields source that re-parses and
    /// whose attribute set is exactly the kept subset.
    #[test]
    fn rewrite_output_reparses_with_exact_attrs(
        source in arb_module_source(),
        keep_mask in proptest::collection::vec(any::<bool>(), 100)
    ) {
        let program = pylite::parse(&source).expect("generated source parses");
        let attrs = trim_core::module_attributes(&program);
        let keep: BTreeSet<String> = attrs
            .iter()
            .enumerate()
            .filter(|(i, _)| keep_mask.get(*i).copied().unwrap_or(false))
            .map(|(_, a)| a.clone())
            .collect();
        let rewritten = trim_core::rewrite_module(&program, &keep);
        let out = pylite::unparse(&rewritten);
        let reparsed = pylite::parse(&out).expect("rewritten source parses");
        let new_attrs: BTreeSet<String> =
            trim_core::module_attributes(&reparsed).into_iter().collect();
        prop_assert_eq!(new_attrs, keep);
    }

    /// unparse(parse(x)) re-parses to the same AST for generated sources.
    #[test]
    fn unparse_roundtrip(source in arb_module_source()) {
        let p1 = pylite::parse(&source).unwrap();
        let out = pylite::unparse(&p1);
        let p2 = pylite::parse(&out).unwrap();
        prop_assert_eq!(p1, p2);
    }
}

// ---------------------------------------------------------------------------
// Parser robustness
// ---------------------------------------------------------------------------

proptest! {
    /// The parser never panics — it returns Ok or Err on arbitrary input.
    #[test]
    fn parser_never_panics(input in "\\PC*") {
        let _ = pylite::parse(&input);
    }

    /// Arbitrary printable ASCII with structure characters.
    #[test]
    fn parser_never_panics_structured(input in "[a-z0-9 ()\\[\\]{}:=.,#\"'\\n+-]*") {
        let _ = pylite::parse(&input);
    }
}

// ---------------------------------------------------------------------------
// Pricing
// ---------------------------------------------------------------------------

proptest! {
    /// Cost is monotone non-decreasing in both duration and memory.
    #[test]
    fn pricing_is_monotone(
        mem in 1.0f64..12_000.0,
        dur in 0.0f64..100_000.0,
        dmem in 0.0f64..2_000.0,
        ddur in 0.0f64..10_000.0,
    ) {
        let pricing = lambda_sim::PricingModel::aws();
        let base = pricing.invocation_cost(mem, dur);
        prop_assert!(pricing.invocation_cost(mem + dmem, dur) >= base - 1e-15);
        prop_assert!(pricing.invocation_cost(mem, dur + ddur) >= base - 1e-15);
        prop_assert!(base >= 0.0);
    }

    /// Billed duration is always >= the raw duration and aligned to the
    /// rounding granularity.
    #[test]
    fn billing_rounds_up(dur in 0.0f64..1_000_000.0) {
        for model in [
            lambda_sim::PricingModel::aws(),
            lambda_sim::PricingModel::gcp(),
            lambda_sim::PricingModel::azure(),
        ] {
            let billed = model.billed_duration_ms(dur);
            prop_assert!(billed >= dur - 1e-9);
        }
    }

    /// Configured memory always covers the footprint (above the minimum)
    /// and respects platform bounds.
    #[test]
    fn configured_memory_covers_footprint(mem in 0.0f64..20_000.0) {
        let pricing = lambda_sim::PricingModel::aws();
        let configured = pricing.configured_memory_mb(mem);
        prop_assert!(configured >= 128);
        prop_assert!(configured <= 10_240);
        if mem <= 10_240.0 {
            prop_assert!(configured as f64 >= mem.min(10_240.0).floor().min(configured as f64));
        }
    }
}

// ---------------------------------------------------------------------------
// Interpreter metering
// ---------------------------------------------------------------------------

proptest! {
    /// Running the same program twice in fresh interpreters produces
    /// identical meters (determinism), and the meter is additive: a program
    /// doing A;B costs at least as much as A.
    #[test]
    fn meter_is_deterministic_and_additive(
        reps_a in 1usize..20,
        reps_b in 1usize..20,
    ) {
        let stmt = "x = 1 + 2\n";
        let prog_a: String = stmt.repeat(reps_a);
        let prog_ab: String = stmt.repeat(reps_a + reps_b);
        let run = |src: &str| {
            let mut it = pylite::Interpreter::new(pylite::Registry::new());
            it.exec_main(src).unwrap();
            (it.meter.clock_ns(), it.meter.mem_bytes())
        };
        let (t1, m1) = run(&prog_a);
        let (t1b, m1b) = run(&prog_a);
        prop_assert_eq!((t1, m1), (t1b, m1b), "deterministic");
        let (t2, m2) = run(&prog_ab);
        prop_assert!(t2 > t1);
        prop_assert!(m2 >= m1);
    }
}

// ---------------------------------------------------------------------------
// Trim invariants on generated libraries
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// For any generated library and any usage subset, trimming preserves
    /// behavior and the trimmed namespace is a subset of the original.
    #[test]
    fn trim_on_random_library_is_sound(
        attrs in 5usize..40,
        used_bits in proptest::collection::vec(any::<bool>(), 8)
    ) {
        let spec = trim_apps::LibSpec {
            name: "randlib",
            prefix: "rl9",
            init_attrs: attrs,
            init_ms: 20.0,
            init_mb: 8.0,
            core_frac: 0.3,
            mem_core_frac: 0.5,
            subs: vec![],
            deps: vec![],
            disk_mb: 1.0,
        };
        let mut registry = pylite::Registry::new();
        trim_apps::generate_library(&spec, &mut registry);
        // Use a handful of function attributes chosen by the bit vector.
        let mut app = String::from("import randlib\n");
        let mut uses = Vec::new();
        for (bit_i, bit) in used_bits.iter().enumerate() {
            let idx = bit_i * 5; // function-kind attributes
            if *bit && idx < attrs {
                uses.push(trim_apps::attr_name("rl9", idx));
            }
        }
        for (k, u) in uses.iter().enumerate() {
            app.push_str(&format!("_u{k} = randlib.{u}\n"));
        }
        app.push_str("def handler(event, context):\n    return event[\"n\"]\n");
        let spec_oracle = lambda_trim::OracleSpec::new(vec![
            lambda_trim::TestCase::event("{\"n\": 5}"),
        ]);
        let report = lambda_trim::trim_app(
            &registry,
            &app,
            &spec_oracle,
            &lambda_trim::DebloatOptions::default(),
        )
        .expect("pipeline runs");
        prop_assert!(report.after.behavior_eq(&report.before));
        // Namespace subset check.
        let orig = pylite::parse(registry.source("randlib").unwrap()).unwrap();
        let trimmed = pylite::parse(report.trimmed.source("randlib").unwrap()).unwrap();
        let orig_attrs: BTreeSet<String> =
            trim_core::module_attributes(&orig).into_iter().collect();
        let trimmed_attrs: BTreeSet<String> =
            trim_core::module_attributes(&trimmed).into_iter().collect();
        prop_assert!(trimmed_attrs.is_subset(&orig_attrs));
        // Every used attribute survived.
        for u in &uses {
            prop_assert!(trimmed_attrs.contains(u), "used attr {u} must survive");
        }
    }
}
