//! Differential test pinning statement-level selective-init slicing to
//! unsliced execution.
//!
//! Slicing (`DebloatOptions::slice_init`, default on) drops init
//! statements that feed nothing a kept module's attribute surface needs.
//! The contract: slicing is unobservable except in init cost — handler
//! results, stdout, external calls, and the values of every kept
//! attribute must be byte-identical, and trim decisions (kept/removed
//! attribute sets) must not depend on whether slicing runs. This test
//! slices every module of the full 21-app corpus under both engines, runs
//! mini-corpus trims across `--engine tree|vm` and `--jobs` ∈ {1, 2, 8},
//! and property-tests the static slice on randomized init bodies.

use lambda_trim::pylite::{py_repr, Engine, Interpreter, Registry};
use lambda_trim::trim_core::oracle::{parse_literal, run_app};
use lambda_trim::trim_core::{module_attributes, slice_modules};
use lambda_trim::DebloatOptions;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Render an app's observable surface plus the values of every attribute
/// the registry's modules currently define. Unlike the memo differential,
/// whole-namespace comparison would be wrong here: a dropped `for` loop
/// legitimately removes its (non-attribute) loop variable from the module
/// namespace, so only kept-attribute bindings are compared.
fn capture_surface(
    registry: &Registry,
    app: &lambda_trim::trim_apps::BenchApp,
    engine: Engine,
) -> String {
    let mut out = String::new();
    let mut it = Interpreter::new(registry.clone());
    it.engine = engine;
    let mut error: Option<String> = None;
    match it.exec_main(&app.app_source) {
        Ok(_) => {
            for case in &app.spec.cases {
                let event = parse_literal(&case.event).expect("literal event");
                let context = parse_literal(&case.context).expect("literal context");
                match it.call_handler(&app.spec.handler, event, context) {
                    Ok(v) => writeln!(out, "res| {}", py_repr(&v)).unwrap(),
                    Err(e) => {
                        error = Some(format!("{}: {}", e.kind.class_name(), e.message));
                        break;
                    }
                }
            }
            let interner = registry.interner().clone();
            for name in it.loaded_modules() {
                let Ok(program) = registry.parse_module(&name) else {
                    continue;
                };
                let module = it.module(&name).expect("loaded module");
                for attr in module_attributes(&program) {
                    let key = interner.intern(&attr);
                    let value = module
                        .ns
                        .get(key)
                        .map_or_else(|| "<unbound>".to_owned(), |v| py_repr(&v));
                    writeln!(out, "lib| {name}.{attr} = {value}").unwrap();
                }
            }
        }
        Err(e) => error = Some(format!("{}: {}", e.kind.class_name(), e.message)),
    }
    for line in &it.stdout {
        writeln!(out, "out| {line}").unwrap();
    }
    for call in &it.extcalls {
        writeln!(out, "ext| {call}").unwrap();
    }
    if let Some(e) = error {
        writeln!(out, "err| {e}").unwrap();
    }
    out
}

#[test]
fn sliced_modules_match_unsliced_on_full_corpus() {
    let mut total_removed = 0usize;
    for app in lambda_trim::trim_apps::corpus() {
        for engine in [Engine::Vm, Engine::Tree] {
            let options = DebloatOptions {
                engine,
                ..DebloatOptions::default()
            };
            let expected = match run_app(&app.registry, &app.app_source, &app.spec) {
                Ok(e) => e,
                // Apps whose baseline errors have nothing to slice against.
                Err(_) => continue,
            };
            let unsliced = capture_surface(&app.registry, &app, engine);
            let mut work = app.registry.clone();
            let candidates = work.module_names();
            let reports = slice_modules(
                &mut work,
                &app.app_source,
                &app.spec,
                &expected,
                &candidates,
                &BTreeSet::new(),
                &options,
            )
            .unwrap_or_else(|e| panic!("{} ({engine:?}): {e}", app.name));
            total_removed += reports.iter().map(|r| r.stmts_removed()).sum::<usize>();
            for r in &reports {
                assert!(
                    r.stmts_after <= r.stmts_before,
                    "{}/{}: slice grew",
                    app.name,
                    r.module
                );
            }
            let sliced = capture_surface(&work, &app, engine);
            assert_eq!(
                sliced, unsliced,
                "{} ({engine:?}): slicing changed the observable surface",
                app.name
            );
        }
    }
    assert!(
        total_removed > 0,
        "the corpus must exercise actual statement removal"
    );
}

/// Render a trim's DD outcome (engine/jobs/slice-invariant) and its
/// slice outcome (identical across the slice-on grid).
fn capture_trim(
    app: &lambda_trim::trim_apps::BenchApp,
    engine: Engine,
    jobs: usize,
    slice_init: bool,
) -> (String, String, f64) {
    let options = DebloatOptions {
        engine,
        jobs,
        slice_init,
        ..DebloatOptions::default()
    };
    let report = lambda_trim::trim_app(&app.registry, &app.app_source, &app.spec, &options)
        .expect("trim succeeds");
    let mut dd = String::new();
    for m in &report.modules {
        writeln!(
            dd,
            "mod| {} kept=[{}] removed=[{}] probes={}",
            m.module,
            m.kept.join(","),
            m.removed.join(","),
            m.dd_stats.oracle_invocations
        )
        .unwrap();
    }
    for f in &report.fallback_modules {
        writeln!(dd, "fb | {f}").unwrap();
    }
    let mut slice = String::new();
    for s in &report.slices {
        writeln!(
            slice,
            "slc| {} kept={}/{} pinned={} refined={} fallback={}",
            s.module, s.stmts_after, s.stmts_before, s.pinned, s.refined, s.fell_back
        )
        .unwrap();
    }
    writeln!(
        slice,
        "sum| init {:.9}s mem {:.6}MB",
        report.after.init_secs, report.after.mem_mb
    )
    .unwrap();
    (dd, slice, report.after.init_secs)
}

#[test]
fn slice_on_trims_match_slice_off_dd_results_across_engines_and_jobs() {
    for app in lambda_trim::trim_apps::mini_corpus() {
        let (dd_off, _, init_off) = capture_trim(&app, Engine::Vm, 1, false);
        let mut slice_grid: Option<String> = None;
        for engine in [Engine::Vm, Engine::Tree] {
            for jobs in [1usize, 2, 8] {
                let (dd_on, slice_on, init_on) = capture_trim(&app, engine, jobs, true);
                assert_eq!(
                    dd_on, dd_off,
                    "{} ({engine:?}, jobs={jobs}): slicing changed DD results",
                    app.name
                );
                assert!(
                    init_on <= init_off,
                    "{} ({engine:?}, jobs={jobs}): slicing must never cost init time \
                     ({init_on} vs {init_off})",
                    app.name
                );
                match &slice_grid {
                    None => slice_grid = Some(slice_on),
                    Some(first) => assert_eq!(
                        &slice_on, first,
                        "{} ({engine:?}, jobs={jobs}): slice outcome varies across the grid",
                        app.name
                    ),
                }
            }
        }
    }
}

/// Randomized property: for straight-line-ish init bodies drawn from a
/// small grammar, the *static* slice (no oracle involved) already
/// preserves every seed attribute's value, stdout, and external calls —
/// i.e. slicing never drops a statement the oracle needs. The grammar
/// stays inside what the def-use analysis models exactly; the oracle
/// fallback in `slice_modules` covers everything beyond it.
#[cfg(feature = "property-tests")]
#[test]
fn random_init_bodies_slice_soundly() {
    use lambda_trim::trim_analysis::slice::{slice_init, sliced_program};
    use lambda_trim::trim_core::{OracleSpec, TestCase};
    use trim_rng::Rng;

    const NAMES: [&str; 6] = ["a", "b", "c", "d", "e", "f"];
    let mut rng = Rng::seed_from_u64(0x51C3);
    let mut total_dropped = 0usize;
    for round in 0..150 {
        // Generate a module body where every name is defined before use.
        let mut defined: Vec<&str> = Vec::new();
        let mut src = String::new();
        let operand = |rng: &mut Rng, defined: &[&str]| -> String {
            if defined.is_empty() || rng.bool() {
                format!("{}", rng.usize_inclusive(0, 9))
            } else {
                defined[rng.usize_inclusive(0, defined.len() - 1)].to_owned()
            }
        };
        for i in 0..rng.usize_inclusive(4, 14) {
            match rng.usize_inclusive(0, 6) {
                0 | 1 => {
                    let target = NAMES[rng.usize_inclusive(0, NAMES.len() - 1)];
                    let lhs = operand(&mut rng, &defined);
                    let rhs = operand(&mut rng, &defined);
                    let op = if rng.bool() { "+" } else { "*" };
                    let _ = writeln!(src, "{target} = {lhs} {op} {rhs}");
                    if !defined.contains(&target) {
                        defined.push(target);
                    }
                }
                2 if !defined.is_empty() => {
                    let target = defined[rng.usize_inclusive(0, defined.len() - 1)];
                    let rhs = operand(&mut rng, &defined);
                    let _ = writeln!(src, "{target} += {rhs}");
                }
                3 if !defined.is_empty() => {
                    let x = defined[rng.usize_inclusive(0, defined.len() - 1)];
                    let _ = writeln!(src, "print({x})");
                }
                4 => {
                    let _ = writeln!(src, "__lt_work__({})", rng.usize_inclusive(1, 40));
                }
                5 if !defined.is_empty() => {
                    // A bounded loop rebinding an existing name; range is
                    // non-empty so the iteration variable always binds.
                    let target = defined[rng.usize_inclusive(0, defined.len() - 1)];
                    let _ = writeln!(
                        src,
                        "for it{i} in range({}):\n    {target} = {target} + it{i}",
                        rng.usize_inclusive(1, 3)
                    );
                }
                _ => {
                    let _ = writeln!(src, "__lt_extcall__(\"svc{}\")", rng.usize_inclusive(0, 3));
                }
            }
        }
        if defined.is_empty() {
            continue;
        }
        // Seed: a random subset of the defined names (possibly empty).
        let seed: BTreeSet<String> = defined
            .iter()
            .filter(|_| rng.bool())
            .map(|n| (*n).to_owned())
            .collect();
        let program = lambda_trim::pylite::parse(&src).expect("generated source parses");
        let slice = slice_init(&program, &seed, false);
        total_dropped += slice.total - slice.kept.len();
        let sliced_src = lambda_trim::pylite::unparse(&sliced_program(&program, &slice.kept));

        let reads = if seed.is_empty() {
            "0".to_owned()
        } else {
            format!(
                "[{}]",
                seed.iter()
                    .map(|n| format!("m.{n}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        let app = format!("import m\ndef handler(event, context):\n    return {reads}\n");
        let spec = OracleSpec::new(vec![TestCase::event("{}")]);
        let mut live_reg = Registry::new();
        live_reg.set_module("m", src.clone());
        let mut sliced_reg = Registry::new();
        sliced_reg.set_module("m", sliced_src.clone());
        let live = run_app(&live_reg, &app, &spec)
            .unwrap_or_else(|e| panic!("round {round}: live run failed: {e:?}\n{src}"));
        let sliced = run_app(&sliced_reg, &app, &spec).unwrap_or_else(|e| {
            panic!("round {round}: sliced run failed: {e:?}\n{src}--\n{sliced_src}")
        });
        assert!(
            sliced.behavior_eq(&live),
            "round {round}: slice changed behavior\nseed: {seed:?}\n{src}--\n{sliced_src}"
        );
        assert!(
            sliced.init_secs <= live.init_secs,
            "round {round}: slice made init slower"
        );
    }
    assert!(total_dropped > 0, "the grammar must exercise real drops");
}
