//! Integration tests for the serverless platform simulator working against
//! real (measured) corpus applications and generated traces.

use lambda_sim::{
    generate_trace, nearest_function, simulate_pool, AppProfile, CheckpointModel, Platform,
    SnapStartPricing, StartMode, TraceConfig,
};

fn measured_profile(name: &str) -> AppProfile {
    let bench = trim_apps::app(name).expect("corpus app");
    let exec = trim_core::run_app(&bench.registry, &bench.app_source, &bench.spec).unwrap();
    AppProfile::new(
        name,
        bench.image_mb,
        exec.init_secs,
        exec.exec_secs,
        exec.mem_mb,
    )
}

#[test]
fn cold_starts_cost_more_than_warm_for_every_app() {
    let platform = Platform::default();
    for bench in trim_apps::mini_corpus() {
        let profile = measured_profile(&bench.name);
        let cold = platform.cold_invocation(&profile, StartMode::Standard);
        let warm = platform.warm_invocation(&profile);
        assert!(cold.e2e_secs() > warm.e2e_secs(), "{}", bench.name);
        assert!(cold.cost >= warm.cost, "{}", bench.name);
        assert!(cold.billed_ms >= warm.billed_ms, "{}", bench.name);
    }
}

#[test]
fn keep_alive_monotonically_reduces_cold_starts() {
    let platform = Platform::default();
    let profile = measured_profile("markdown");
    let trace = generate_trace(&TraceConfig {
        functions: 5,
        window_secs: 24.0 * 3600.0,
        seed: 99,
        diurnal: None,
    });
    let arrivals = trace
        .functions
        .iter()
        .max_by_key(|f| f.arrivals.len())
        .unwrap()
        .arrivals
        .clone();
    let mut last_cold = u64::MAX;
    for keep_alive in [30.0, 300.0, 3600.0, 24.0 * 3600.0] {
        let stats = simulate_pool(
            &platform,
            &profile,
            &arrivals,
            keep_alive,
            StartMode::Standard,
        );
        assert!(
            stats.cold_starts <= last_cold,
            "longer keep-alive must not add cold starts"
        );
        assert_eq!(stats.invocations(), arrivals.len() as u64);
        last_cold = stats.cold_starts;
    }
    assert!(last_cold >= 1, "the first request is always cold");
}

#[test]
fn restore_mode_helps_slow_init_apps_only() {
    let platform = Platform::default();
    let slow = measured_profile("resnet"); // multi-second init
    let fast = measured_profile("markdown"); // tens of ms init
    let slow_std = platform.cold_invocation(&slow, StartMode::Standard);
    let slow_cr = platform.cold_invocation(&slow, StartMode::Restore);
    assert!(slow_cr.e2e_secs() < slow_std.e2e_secs());
    let fast_std = platform.cold_invocation(&fast, StartMode::Standard);
    let fast_cr = platform.cold_invocation(&fast, StartMode::Restore);
    assert!(
        fast_cr.phases.function_init_secs > fast_std.phases.function_init_secs,
        "CRIU's fixed overhead hurts sub-0.1s inits (§8.6)"
    );
}

#[test]
fn snapstart_cache_dominates_for_rarely_invoked_functions() {
    // Figure 13's core finding: for most functions, C/R support costs more
    // than the function itself.
    let platform = Platform::default();
    let pricing = SnapStartPricing::default();
    let ckpt = CheckpointModel::default();
    let profile = measured_profile("lightgbm");
    // Five invocations a day.
    let arrivals: Vec<f64> = (0..5).map(|i| i as f64 * 17_000.0).collect();
    let stats = simulate_pool(&platform, &profile, &arrivals, 900.0, StartMode::Restore);
    let snapshot_mb = ckpt.snapshot_mb(profile.mem_mb);
    let snap_cost = pricing.window_cost(snapshot_mb, 24.0 * 3600.0, stats.cold_starts);
    assert!(
        snap_cost > stats.total_cost,
        "cache+restore (${snap_cost:.6}) should exceed invocation cost (${:.6})",
        stats.total_cost
    );
}

#[test]
fn l2_matching_is_scale_aware() {
    let trace = generate_trace(&TraceConfig::default());
    let small = nearest_function(&trace.functions, 64.0, 20.0).unwrap();
    let large = nearest_function(&trace.functions, 1800.0, 15_000.0).unwrap();
    assert!(small.mem_mb < large.mem_mb);
}

#[test]
fn trimmed_profile_shrinks_snapshot_and_restore() {
    let ckpt = CheckpointModel::default();
    let bench = trim_apps::app("dna-visualization").unwrap();
    let report = lambda_trim::trim_app(
        &bench.registry,
        &bench.app_source,
        &bench.spec,
        &lambda_trim::DebloatOptions::default(),
    )
    .unwrap();
    let pre = ckpt.snapshot_mb(report.before.mem_mb);
    let post = ckpt.snapshot_mb(report.after.mem_mb);
    assert!(post < pre, "trimming must shrink the checkpoint (Table 3)");
    assert!(ckpt.restore_secs(post) < ckpt.restore_secs(pre));
}

#[test]
fn pool_handles_empty_and_burst_arrivals() {
    let platform = Platform::default();
    let profile = measured_profile("igraph");
    let empty = simulate_pool(&platform, &profile, &[], 900.0, StartMode::Standard);
    assert_eq!(empty.invocations(), 0);
    assert_eq!(empty.total_cost, 0.0);
    let burst: Vec<f64> = vec![0.0; 50];
    let stats = simulate_pool(&platform, &profile, &burst, 900.0, StartMode::Standard);
    assert_eq!(
        stats.cold_starts, 50,
        "simultaneous arrivals all cold-start"
    );
    assert_eq!(stats.peak_instances, 50);
}
