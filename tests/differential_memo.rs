//! Differential test pinning init-snapshot replay to live execution,
//! byte for byte.
//!
//! Init-snapshot memoization (`DebloatOptions::init_snapshots`, default on)
//! replays recorded module initializations on later probes instead of
//! re-running module bodies. The whole design rests on replay being
//! unobservable except in wall-clock time: stdout, external calls, module
//! namespaces, observed accesses, the virtual meter, and therefore every
//! trim decision must be identical with the cache on or off. This test
//! runs the full 21-app corpus live next to captured-then-replayed runs
//! under both engines, and asserts mini-corpus trim reports agree between
//! replay-on and replay-off across `--jobs` (trims over the full corpus
//! are minutes-long in debug builds; see `differential_vm` for the same
//! trade-off).

use lambda_trim::pylite::{py_repr, Engine, Interpreter};
use lambda_trim::trim_core::oracle::parse_literal;
use lambda_trim::DebloatOptions;
use std::fmt::Write as _;

/// Render one app's full observable surface under `engine`, with
/// init-snapshot recording/replay enabled iff `snapshots`: handler
/// results, stdout, external calls, error (if any), the `__main__` module
/// namespace, every loaded library module's namespace (the exact objects
/// replay rebuilds), observed module-attribute accesses, and the meter.
fn capture_behavior(
    app: &lambda_trim::trim_apps::BenchApp,
    engine: Engine,
    snapshots: bool,
) -> String {
    let mut out = String::new();
    let mut it = Interpreter::new(app.registry.clone());
    it.engine = engine;
    if snapshots {
        it.enable_init_snapshots();
    }
    let mut error: Option<String> = None;
    match it.exec_main(&app.app_source) {
        Ok(main) => {
            for case in &app.spec.cases {
                let event = parse_literal(&case.event).expect("literal event");
                let context = parse_literal(&case.context).expect("literal context");
                match it.call_handler(&app.spec.handler, event, context) {
                    Ok(v) => writeln!(out, "res| {}", py_repr(&v)).unwrap(),
                    Err(e) => {
                        error = Some(format!("{}: {}", e.kind.class_name(), e.message));
                        break;
                    }
                }
            }
            let interner = app.registry.interner().clone();
            for key in main.ns.key_syms() {
                let value = main.ns.get(key).expect("key from snapshot");
                writeln!(out, "ns | {} = {}", interner.resolve(key), py_repr(&value)).unwrap();
            }
            // Library module namespaces in load order: replay rebuilds
            // these from the snapshot arena, so enumerate them fully
            // (which also forces any still-deferred bindings).
            for name in it.loaded_modules() {
                let module = it.module(&name).expect("loaded module");
                for key in module.ns.key_syms() {
                    let value = module.ns.get(key).expect("key from snapshot");
                    writeln!(
                        out,
                        "lib| {name}.{} = {}",
                        interner.resolve(key),
                        py_repr(&value)
                    )
                    .unwrap();
                }
            }
        }
        Err(e) => error = Some(format!("{}: {}", e.kind.class_name(), e.message)),
    }
    for line in &it.stdout {
        writeln!(out, "out| {line}").unwrap();
    }
    for call in &it.extcalls {
        writeln!(out, "ext| {call}").unwrap();
    }
    if let Some(e) = error {
        writeln!(out, "err| {e}").unwrap();
    }
    for (module, attrs) in it.observed_accesses() {
        let attrs: Vec<&str> = attrs.iter().map(|a| a.as_str()).collect();
        writeln!(out, "obs| {module}: {}", attrs.join(" ")).unwrap();
    }
    writeln!(
        out,
        "met| clock={} mem={} steps={}",
        it.meter.clock_ns(),
        it.meter.mem_bytes(),
        it.meter.steps
    )
    .unwrap();
    out
}

/// Render one app's trim outcome under `engine` with `jobs` analysis
/// workers and the snapshot cache on or off.
fn capture_trim(
    app: &lambda_trim::trim_apps::BenchApp,
    engine: Engine,
    jobs: usize,
    init_snapshots: bool,
) -> String {
    let mut out = String::new();
    let options = DebloatOptions {
        engine,
        jobs,
        init_snapshots,
        ..DebloatOptions::default()
    };
    let report = lambda_trim::trim_app(&app.registry, &app.app_source, &app.spec, &options)
        .expect("trim succeeds");
    for m in &report.modules {
        writeln!(
            out,
            "mod| {} kept=[{}] removed=[{}] probes={}",
            m.module,
            m.kept.join(","),
            m.removed.join(","),
            m.dd_stats.oracle_invocations
        )
        .unwrap();
    }
    for f in &report.fallback_modules {
        writeln!(out, "fb | {f}").unwrap();
    }
    writeln!(
        out,
        "sum| init {:.9}->{:.9}s mem {:.6}->{:.6}MB",
        report.before.init_secs, report.after.init_secs, report.before.mem_mb, report.after.mem_mb
    )
    .unwrap();
    out
}

#[test]
fn replay_matches_live_on_full_corpus_behavior() {
    for app in lambda_trim::trim_apps::corpus() {
        for engine in [Engine::Vm, Engine::Tree] {
            let live = capture_behavior(&app, engine, false);
            // First snapshot run records, second replays from the store.
            let captured = capture_behavior(&app, engine, true);
            let hits_before = app.registry.snapshot_store().stats().hits;
            let replayed = capture_behavior(&app, engine, true);
            let hits_after = app.registry.snapshot_store().stats().hits;
            assert_eq!(
                captured, live,
                "{} ({engine:?}): capture run diverged from live",
                app.name
            );
            assert_eq!(
                replayed, live,
                "{} ({engine:?}): replay run diverged from live",
                app.name
            );
            // Guard against a vacuous pass: apps with registry imports
            // must actually have replayed something on the second run.
            if !app.registry.module_names().is_empty() && hits_after == hits_before {
                let stats = app.registry.snapshot_store().stats();
                assert!(
                    stats.ineligible > 0 || stats.captures == 0,
                    "{} ({engine:?}): no replay hits yet nothing was ineligible ({stats:?})",
                    app.name
                );
            }
        }
    }
}

#[test]
fn replay_matches_disabled_on_trim_reports_across_engines_and_jobs() {
    for app in lambda_trim::trim_apps::mini_corpus() {
        for engine in [Engine::Vm, Engine::Tree] {
            let off = capture_trim(&app, engine, 1, false);
            for jobs in [1, 2, 8] {
                let on = capture_trim(&app, engine, jobs, true);
                assert_eq!(
                    on, off,
                    "{} ({engine:?}, jobs={jobs}): snapshot replay changed the trim report",
                    app.name
                );
            }
        }
    }
}
