//! Differential tests guarding the sharded parallel fixpoint rewrite.
//!
//! The engine's determinism contract: the analysis result is a function of
//! the program and the registry alone — never of the thread schedule. The
//! tests here render the *complete* analysis output (accesses, bindings,
//! lints, call graph, reached functions) for every corpus application at
//! `jobs` = 1, 2 and 8 and require byte-identical renderings, then check
//! that full pipeline trims agree byte-for-byte too.

use lambda_trim::trim_analysis::{analyze_full, AnalysisOptions, FullAnalysis};
use lambda_trim::trim_apps;
use lambda_trim::{trim_app, DebloatOptions};
use std::fmt::Write as _;

/// Canonical rendering of everything the analysis produces. Comparing text
/// (not structs) keeps failure diffs readable and covers ordering too.
fn render(full: &FullAnalysis) -> String {
    let mut out = String::new();
    for m in &full.analysis.imported_modules {
        writeln!(out, "imp| {m}").unwrap();
    }
    for m in &full.analysis.direct_imports {
        writeln!(out, "dir| {m}").unwrap();
    }
    for (m, attrs) in &full.analysis.accessed {
        let attrs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        writeln!(out, "acc| {m}: {}", attrs.join(" ")).unwrap();
    }
    for (m, attrs) in &full.load_time_accessed {
        let attrs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        writeln!(out, "load| {m}: {}", attrs.join(" ")).unwrap();
    }
    for (m, names) in &full.module_bindings {
        let names: Vec<&str> = names.iter().map(String::as_str).collect();
        writeln!(out, "bind| {m}: {}", names.join(" ")).unwrap();
    }
    for lint in &full.lints {
        writeln!(out, "lint| {lint}").unwrap();
    }
    for m in &full.hazard_modules {
        writeln!(out, "hazard| {m}").unwrap();
    }
    for (m, bound) in &full.hazard_attrs {
        writeln!(out, "hattr| {m}: {bound}").unwrap();
    }
    for (from, to) in &full.call_graph.edges {
        writeln!(out, "edge| {from} -> {to}").unwrap();
    }
    for node in &full.call_graph.reachable {
        writeln!(out, "reach| {node}").unwrap();
    }
    for f in &full.reached_functions {
        writeln!(out, "func| {f}").unwrap();
    }
    out
}

#[test]
fn corpus_analysis_is_schedule_independent() {
    for app in trim_apps::corpus() {
        let program = lambda_trim::pylite::parse(&app.app_source).expect("corpus app parses");
        let run = |jobs: usize| {
            render(&analyze_full(
                &program,
                &app.registry,
                &AnalysisOptions {
                    jobs,
                    ..AnalysisOptions::default()
                },
            ))
        };
        let serial = run(1);
        for jobs in [2, 8] {
            assert_eq!(
                serial,
                run(jobs),
                "{}: jobs={jobs} analysis must be byte-identical to serial",
                app.name
            );
        }
    }
}

#[test]
fn corpus_trim_results_are_schedule_independent() {
    // Full-pipeline determinism on a slice of the corpus (the whole corpus
    // through the pipeline ×2 is needlessly slow for CI; the analysis-only
    // differential above covers every app).
    for app in trim_apps::corpus().into_iter().take(6) {
        let run = |jobs: usize| {
            trim_app(
                &app.registry,
                &app.app_source,
                &app.spec,
                &DebloatOptions {
                    jobs,
                    ..DebloatOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("{}: {e}", app.name))
        };
        let serial = run(1);
        let parallel = run(8);
        for module in serial.trimmed.module_names() {
            assert_eq!(
                serial.trimmed.source(&module),
                parallel.trimmed.source(&module),
                "{}/{module}: jobs=8 trim must be byte-identical to serial",
                app.name
            );
        }
        assert_eq!(serial.lints, parallel.lints, "{}", app.name);
        assert_eq!(
            serial.fallback_modules, parallel.fallback_modules,
            "{}",
            app.name
        );
        assert_eq!(
            serial.pinned_hazard_attrs, parallel.pinned_hazard_attrs,
            "{}",
            app.name
        );
        assert!(parallel.after.behavior_eq(&serial.after), "{}", app.name);
    }
}
