//! Differential test guarding the interned-symbol interpreter rewrite.
//!
//! The interpreter's switch to interned symbols, a resolved IR, and inline
//! attribute caches must be behavior-preserving down to the byte: virtual
//! costs decide what λ-trim removes, so any drift in stdout, exceptions,
//! observed accesses, or trim outcomes would silently change every
//! experiment. This test renders the full corpus behavior (plus mini-corpus
//! trim results) to a canonical text form and compares it against a golden
//! fixture captured from the pre-interning interpreter.
//!
//! Regenerate the fixture with:
//!
//! ```text
//! LT_UPDATE_GOLDEN=1 cargo test --test differential_interning
//! ```

use lambda_trim::trim_core::oracle::parse_literal;
use lambda_trim::{DebloatOptions, Interpreter};
use std::fmt::Write as _;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/interning_behavior.txt"
);

/// Render one app's observable behavior: stdout, external calls, handler
/// results, any exception, and the observed module-attribute accesses.
fn capture_behavior(out: &mut String, app: &lambda_trim::trim_apps::BenchApp) {
    writeln!(out, "== {}", app.name).unwrap();
    let mut it = Interpreter::new(app.registry.clone());
    let mut error: Option<String> = None;
    match it.exec_main(&app.app_source) {
        Ok(_main) => {
            for case in &app.spec.cases {
                let event = parse_literal(&case.event).expect("literal event");
                let context = parse_literal(&case.context).expect("literal context");
                match it.call_handler(&app.spec.handler, event, context) {
                    Ok(v) => writeln!(out, "res| {}", lambda_trim::pylite::py_repr(&v)).unwrap(),
                    Err(e) => {
                        error = Some(format!("{}: {}", e.kind.class_name(), e.message));
                        break;
                    }
                }
            }
        }
        Err(e) => error = Some(format!("{}: {}", e.kind.class_name(), e.message)),
    }
    for line in &it.stdout {
        writeln!(out, "out| {line}").unwrap();
    }
    for call in &it.extcalls {
        writeln!(out, "ext| {call}").unwrap();
    }
    if let Some(e) = error {
        writeln!(out, "err| {e}").unwrap();
    }
    for (module, attrs) in it.observed_accesses() {
        let attrs: Vec<&str> = attrs.iter().map(|a| a.as_str()).collect();
        writeln!(out, "obs| {module}: {}", attrs.join(" ")).unwrap();
    }
}

/// Render the trim outcome of one app: per-module kept/removed attribute
/// lists (in original order) plus any conservative fallback modules.
fn capture_trim(out: &mut String, app: &lambda_trim::trim_apps::BenchApp) {
    writeln!(out, "== trim:{}", app.name).unwrap();
    let report = lambda_trim::trim_app(
        &app.registry,
        &app.app_source,
        &app.spec,
        &DebloatOptions::default(),
    )
    .expect("trim succeeds");
    for m in &report.modules {
        writeln!(
            out,
            "mod| {} kept=[{}] removed=[{}]",
            m.module,
            m.kept.join(","),
            m.removed.join(",")
        )
        .unwrap();
    }
    for f in &report.fallback_modules {
        writeln!(out, "fb | {f}").unwrap();
    }
}

fn capture() -> String {
    let mut out = String::new();
    for app in lambda_trim::trim_apps::corpus() {
        capture_behavior(&mut out, &app);
    }
    // Full-corpus trims are minutes-long in debug builds; the mini corpus
    // exercises the same DD/oracle/rewrite machinery at test-friendly cost.
    for app in lambda_trim::trim_apps::mini_corpus() {
        capture_trim(&mut out, &app);
    }
    out
}

#[test]
fn interning_preserves_observable_behavior_and_trim_results() {
    let actual = capture();
    if std::env::var("LT_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, &actual).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden fixture exists; regenerate with LT_UPDATE_GOLDEN=1");
    if actual != golden {
        // Point at the first divergent line rather than dumping both blobs.
        for (i, (a, g)) in actual.lines().zip(golden.lines()).enumerate() {
            assert_eq!(
                a,
                g,
                "behavior diverged from the pre-interning interpreter at line {}",
                i + 1
            );
        }
        panic!(
            "behavior capture length changed: {} vs golden {} lines",
            actual.lines().count(),
            golden.lines().count()
        );
    }
}
