//! Golden-fixture trace-replay test (tier-1): parses the checked-in
//! Azure-schema CSV sample, replays it through the extended pool across
//! all StartMode x keep-alive variants, and pins down determinism — the
//! rendered metrics must be byte-identical across repeated runs and
//! across worker counts.

use lambda_sim::trace::replay::render_metrics_json;
use lambda_sim::{
    load_trace_csv, replay_trace, ArrivalClass, Platform, ReplayOptions, TraceSource,
};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/azure_trace_sample.csv"
);
const SEED: u64 = 0xA57AC3;

#[test]
fn golden_fixture_parses_with_expected_shape() {
    let trace = load_trace_csv(FIXTURE, SEED).expect("fixture parses");
    assert_eq!(trace.functions.len(), 24, "24 functions in the fixture");
    assert_eq!(trace.window_secs, 120.0 * 60.0, "120 minute columns");
    assert_eq!(trace.source, TraceSource::Loaded { seed: SEED });
    assert!(trace.invocations() > 0);
    // The trigger mix covers every arrival class.
    for class in [
        ArrivalClass::Periodic,
        ArrivalClass::Poisson,
        ArrivalClass::Bursty,
        ArrivalClass::Rare,
    ] {
        assert!(
            trace.functions.iter().any(|f| f.class == class),
            "fixture should contain a {class:?} function"
        );
    }
    // Arrival reconstruction respects the window and ordering.
    for f in &trace.functions {
        assert!(f.arrivals.windows(2).all(|w| w[0] <= w[1]), "{}", f.name);
        assert!(
            f.arrivals
                .iter()
                .all(|&t| (0.0..trace.window_secs).contains(&t)),
            "{}: arrivals must lie in [0, window)",
            f.name
        );
    }
}

#[test]
fn golden_fixture_replay_is_deterministic_across_runs_and_jobs() {
    let platform = Platform::default();
    let trace = load_trace_csv(FIXTURE, SEED).expect("fixture parses");

    let run = |jobs: usize| {
        let report = replay_trace(
            &platform,
            &trace,
            &ReplayOptions {
                jobs,
                ..ReplayOptions::default()
            },
        );
        render_metrics_json(&report)
    };

    let sequential = run(1);
    assert_eq!(sequential, run(1), "repeated runs must be byte-identical");
    assert_eq!(
        sequential,
        run(8),
        "worker count must not change the metrics"
    );

    // Reloading the CSV from scratch reproduces the same metrics too
    // (loader + reconstruction are deterministic end to end).
    let reloaded = load_trace_csv(FIXTURE, SEED).expect("fixture parses");
    let report = replay_trace(&platform, &reloaded, &ReplayOptions::default());
    assert_eq!(sequential, render_metrics_json(&report));
}

#[test]
fn golden_fixture_replay_metrics_are_sane() {
    let platform = Platform::default();
    let trace = load_trace_csv(FIXTURE, SEED).expect("fixture parses");
    let report = replay_trace(&platform, &trace, &ReplayOptions::default());

    assert_eq!(report.window_secs, trace.window_secs);
    assert_eq!(report.functions.len(), trace.functions.len());
    assert_eq!(report.variants.len(), 4, "2 modes x 2 keep-alive settings");
    for v in &report.variants {
        assert_eq!(v.invocations, trace.invocations() as u64);
        assert_eq!(v.cold_starts + v.warm_starts, v.invocations);
        assert!(v.cold_starts > 0, "a fresh pool always cold-starts");
        assert!(v.e2e_p50_secs <= v.e2e_p95_secs);
        assert!(v.e2e_p95_secs <= v.e2e_p99_secs);
        assert!(v.total_cost() > 0.0);
        assert!(!v.provider_costs.is_empty());
    }
}
