//! Golden-fixture trace-replay test (tier-1): parses the checked-in
//! Azure-schema CSV sample, replays it through the extended pool across
//! all StartMode x keep-alive variants, and pins down determinism — the
//! rendered metrics must be byte-identical across repeated runs and
//! across worker counts.
//!
//! Also pins the event-driven pool engine byte-identical (stats + traced
//! events) to the retained naive oracle across the fixture, the streaming
//! synthetic generator byte-identical to the materialized path (including
//! diurnal/weekend thinning and the timer exemption), and the streamed
//! fleet replay deterministic across `--jobs` ∈ {1, 2, 8}.

use lambda_sim::trace::replay::render_metrics_json;
use lambda_sim::{
    generate_trace, load_trace_csv, render_fleet_metrics_json, replay_fleet, replay_trace,
    simulate_pool_ext_naive_traced, simulate_pool_ext_traced, synthesize_function, AppProfile,
    ArrivalClass, DiurnalProfile, Platform, PoolOptions, ReplayOptions, TraceConfig, TraceSource,
};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/azure_trace_sample.csv"
);
/// A fixture whose every function has all-zero minute counts — the
/// all-filtered / zero-arrival shape that must replay to explicit
/// zero-stat slots instead of NaN percentiles.
const ZERO_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/azure_trace_zero_sample.csv"
);
const SEED: u64 = 0xA57AC3;

#[test]
fn golden_fixture_parses_with_expected_shape() {
    let trace = load_trace_csv(FIXTURE, SEED).expect("fixture parses");
    assert_eq!(trace.functions.len(), 24, "24 functions in the fixture");
    assert_eq!(trace.window_secs, 120.0 * 60.0, "120 minute columns");
    assert_eq!(trace.source, TraceSource::Loaded { seed: SEED });
    assert!(trace.invocations() > 0);
    // The trigger mix covers every arrival class.
    for class in [
        ArrivalClass::Periodic,
        ArrivalClass::Poisson,
        ArrivalClass::Bursty,
        ArrivalClass::Rare,
    ] {
        assert!(
            trace.functions.iter().any(|f| f.class == class),
            "fixture should contain a {class:?} function"
        );
    }
    // Arrival reconstruction respects the window and ordering.
    for f in &trace.functions {
        assert!(f.arrivals.windows(2).all(|w| w[0] <= w[1]), "{}", f.name);
        assert!(
            f.arrivals
                .iter()
                .all(|&t| (0.0..trace.window_secs).contains(&t)),
            "{}: arrivals must lie in [0, window)",
            f.name
        );
    }
}

#[test]
fn golden_fixture_replay_is_deterministic_across_runs_and_jobs() {
    let platform = Platform::default();
    let trace = load_trace_csv(FIXTURE, SEED).expect("fixture parses");

    let run = |jobs: usize| {
        let report = replay_trace(
            &platform,
            &trace,
            &ReplayOptions {
                jobs,
                ..ReplayOptions::default()
            },
        );
        render_metrics_json(&report)
    };

    let sequential = run(1);
    assert_eq!(sequential, run(1), "repeated runs must be byte-identical");
    assert_eq!(
        sequential,
        run(8),
        "worker count must not change the metrics"
    );

    // Reloading the CSV from scratch reproduces the same metrics too
    // (loader + reconstruction are deterministic end to end).
    let reloaded = load_trace_csv(FIXTURE, SEED).expect("fixture parses");
    let report = replay_trace(&platform, &reloaded, &ReplayOptions::default());
    assert_eq!(sequential, render_metrics_json(&report));
}

#[test]
fn event_engine_matches_naive_oracle_on_golden_fixture() {
    // The tentpole differential: the event-driven engine must be
    // byte-identical — ExtPoolStats and the full PoolEvent stream — to the
    // retained naive engine on every fixture function, under uncapped,
    // capped, and provisioned pools.
    let platform = Platform::default();
    let trace = load_trace_csv(FIXTURE, SEED).expect("fixture parses");
    for function in &trace.functions {
        let app = AppProfile::new(
            function.name.clone(),
            64.0,
            0.5,
            function.duration_ms / 1000.0,
            function.mem_mb,
        );
        for (max_concurrency, provisioned, keep_alive_secs) in [
            (None, 0, 900.0),
            (None, 0, 0.0),
            (Some(2), 0, 60.0),
            (Some(4), 2, 900.0),
        ] {
            let pool = PoolOptions {
                keep_alive_secs,
                max_concurrency,
                provisioned,
                window_secs: trace.window_secs,
                ..PoolOptions::default()
            };
            let mut naive_events = Vec::new();
            let naive =
                simulate_pool_ext_naive_traced(&platform, &app, &function.arrivals, &pool, |e| {
                    naive_events.push(e)
                });
            let mut event_events = Vec::new();
            let event = simulate_pool_ext_traced(&platform, &app, &function.arrivals, &pool, |e| {
                event_events.push(e)
            });
            assert_eq!(naive, event, "{}: stats diverged", function.name);
            assert_eq!(
                naive_events, event_events,
                "{}: traced events diverged",
                function.name
            );
        }
    }
}

#[test]
fn streaming_synthetic_arrivals_match_materialized_path() {
    // Satellite: iterator-based arrivals byte-identical to the materialized
    // Vec<f64> path for fixed seeds — flat, diurnal-thinned over a
    // multi-day window (exercising weekend thinning), and the timer
    // exemption (Periodic functions identical with and without diurnal).
    for (seed, window_secs, diurnal) in [
        (SEED, 24.0 * 3600.0, None),
        (SEED, 7.0 * 24.0 * 3600.0, Some(DiurnalProfile::default())),
        (
            77,
            7.0 * 24.0 * 3600.0,
            Some(DiurnalProfile {
                weekend_factor: 0.3,
                ..DiurnalProfile::default()
            }),
        ),
    ] {
        let config = TraceConfig {
            functions: 80,
            window_secs,
            seed,
            diurnal,
        };
        let trace = generate_trace(&config);
        for (id, f) in trace.functions.iter().enumerate() {
            let synth = synthesize_function(&config, id);
            let streamed: Vec<f64> = synth.arrivals().collect();
            assert_eq!(
                f.arrivals, streamed,
                "seed {seed} fn{id}: streamed arrivals != materialized"
            );
        }
        if config.diurnal.is_some() {
            // Timer exemption: Periodic streams ignore the diurnal profile.
            let flat = TraceConfig {
                diurnal: None,
                ..config.clone()
            };
            for id in 0..config.functions {
                let modulated = synthesize_function(&config, id);
                let unmodulated = synthesize_function(&flat, id);
                if modulated.class == ArrivalClass::Periodic {
                    let a: Vec<f64> = modulated.arrivals().collect();
                    let b: Vec<f64> = unmodulated.arrivals().collect();
                    assert_eq!(a, b, "fn{id}: timers must not be thinned");
                }
            }
        }
    }
}

#[test]
fn streamed_fleet_replay_is_deterministic_across_jobs() {
    // The fleet path holds no trace in memory, so determinism must come
    // from slotted aggregation — pin byte-identity at jobs ∈ {1, 2, 8}.
    let platform = Platform::default();
    let config = TraceConfig {
        functions: 120,
        window_secs: 6.0 * 3600.0,
        seed: SEED,
        diurnal: Some(DiurnalProfile::default()),
    };
    let renders: Vec<String> = [1usize, 2, 8]
        .into_iter()
        .map(|jobs| {
            let options = ReplayOptions {
                jobs,
                ..ReplayOptions::default()
            };
            render_fleet_metrics_json(
                &replay_fleet(&platform, &config, &options).expect("valid fleet config"),
            )
        })
        .collect();
    assert_eq!(renders[0], renders[1], "jobs=1 vs jobs=2");
    assert_eq!(renders[0], renders[2], "jobs=1 vs jobs=8");
}

#[test]
fn streamed_fleet_counts_match_materialized_replay() {
    // The streamed fleet and the materialized replay must agree exactly on
    // counts and costs for the same config (percentiles are histogram
    // estimates in the fleet path and are checked in-crate).
    let platform = Platform::default();
    let config = TraceConfig {
        functions: 60,
        window_secs: 4.0 * 3600.0,
        seed: 7,
        diurnal: Some(DiurnalProfile::default()),
    };
    let options = ReplayOptions::default();
    let fleet = replay_fleet(&platform, &config, &options).expect("valid fleet config");
    let replay = replay_trace(&platform, &generate_trace(&config), &options);
    assert_eq!(fleet.invocations, replay.variants[0].invocations);
    for (fv, rv) in fleet.variants.iter().zip(&replay.variants) {
        assert_eq!(fv.cold_starts, rv.cold_starts);
        assert_eq!(fv.warm_starts, rv.warm_starts);
        assert_eq!(fv.queued_requests, rv.queued_requests);
        assert_eq!(fv.invocation_cost, rv.invocation_cost);
        assert_eq!(fv.snapstart_cost, rv.snapstart_cost);
        assert_eq!(fv.provider_costs, rv.provider_costs);
    }
}

#[test]
fn zero_arrival_fixture_replays_to_explicit_zero_stats() {
    let platform = Platform::default();
    let trace = load_trace_csv(ZERO_FIXTURE, SEED).expect("zero fixture parses");
    assert_eq!(trace.functions.len(), 3);
    assert_eq!(trace.invocations(), 0, "every minute column is zero");

    let report = replay_trace(&platform, &trace, &ReplayOptions::default());
    for f in &report.functions {
        assert_eq!(f.invocations, 0);
        for v in &f.variants {
            assert_eq!(v.stats.invocations(), 0, "{}: zero-stat slot", f.name);
            assert!(v.e2e_secs.is_empty(), "{}: no E2E samples", f.name);
        }
    }
    for v in &report.variants {
        assert_eq!(v.invocations, 0);
        assert_eq!(v.cold_ratio(), 0.0);
        assert_eq!(
            (v.e2e_p50_secs, v.e2e_p95_secs, v.e2e_p99_secs),
            (0.0, 0.0, 0.0),
            "empty percentile inputs must yield explicit zeros"
        );
        assert!(v.cold_ratio_cdf.is_empty());
        // Restore mode still bills the snapshot cache storage for the
        // window, so the share can be 1.0 — but never NaN.
        assert!((0.0..=1.0).contains(&v.snapstart_share));
        assert_eq!(v.invocation_cost, 0.0);
        for &(_, cost) in &v.provider_costs {
            assert_eq!(cost, 0.0, "no invocations, no per-invocation bill");
        }
    }
    let json = render_metrics_json(&report);
    assert!(!json.contains("NaN"), "{json}");
    assert!(!json.contains("inf"), "{json}");
}

#[test]
fn golden_fixture_replay_metrics_are_sane() {
    let platform = Platform::default();
    let trace = load_trace_csv(FIXTURE, SEED).expect("fixture parses");
    let report = replay_trace(&platform, &trace, &ReplayOptions::default());

    assert_eq!(report.window_secs, trace.window_secs);
    assert_eq!(report.functions.len(), trace.functions.len());
    assert_eq!(report.variants.len(), 4, "2 modes x 2 keep-alive settings");
    for v in &report.variants {
        assert_eq!(v.invocations, trace.invocations() as u64);
        assert_eq!(v.cold_starts + v.warm_starts, v.invocations);
        assert!(v.cold_starts > 0, "a fresh pool always cold-starts");
        assert!(v.e2e_p50_secs <= v.e2e_p95_secs);
        assert!(v.e2e_p95_secs <= v.e2e_p99_secs);
        assert!(v.total_cost() > 0.0);
        assert!(!v.provider_costs.is_empty());
    }
}
