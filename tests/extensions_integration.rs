//! Integration tests for the extension features: deployment packaging,
//! continuous debloating, provider comparison, and the extended pool —
//! exercised against real corpus applications.

use lambda_trim::{trim_app, DebloatOptions};
use trim_core::{package, retrim_with_log, TrimLog};

#[test]
fn deployment_package_round_trip_on_corpus_app() {
    let bench = trim_apps::app("markdown").unwrap();
    let report = trim_app(
        &bench.registry,
        &bench.app_source,
        &bench.spec,
        &DebloatOptions::default(),
    )
    .unwrap();
    let pkg = package(
        &bench.registry,
        &bench.app_source,
        &bench.spec.handler,
        &report,
    );
    // The wrapped trimmed app answers normal oracle inputs directly…
    let mut it = pylite::Interpreter::new(pkg.trimmed.clone());
    it.exec_main(&pkg.wrapped_app_source).unwrap();
    let event = trim_core::oracle::parse_literal(&bench.spec.cases[0].event).unwrap();
    let out = it
        .call_handler(&pkg.handler, event, pylite::Value::None)
        .unwrap();
    assert_eq!(pylite::py_repr(&out), report.before.results[0]);
    // …and converts the rare input's AttributeError into a structured
    // fallback response instead of crashing.
    let mut it2 = pylite::Interpreter::new(pkg.trimmed.clone());
    it2.exec_main(&pkg.wrapped_app_source).unwrap();
    let rare = trim_core::oracle::parse_literal(&bench.rare_case().event).unwrap();
    let out2 = it2
        .call_handler(&pkg.handler, rare, pylite::Value::None)
        .unwrap();
    assert!(pylite::py_repr(&out2).contains("\"fallback\": True"));
    assert!(it2.extcalls.iter().any(|c| c.starts_with("lambda:")));
}

#[test]
fn continuous_debloating_across_an_app_update() {
    // Simulate a deployment cycle: trim v1, ship, then the developer edits
    // the handler (same imports) and re-trims with the saved log.
    let bench = trim_apps::app("igraph").unwrap();
    let v1 = trim_app(
        &bench.registry,
        &bench.app_source,
        &bench.spec,
        &DebloatOptions::default(),
    )
    .unwrap();
    let log = TrimLog::from_report(&v1);
    // v2: the handler gains a constant offset — behaviorally different but
    // structurally identical usage.
    let v2_source = bench.app_source.replace(
        "    n = event.get(\"n\", 1)",
        "    n = event.get(\"n\", 1) + 0",
    );
    assert_ne!(v2_source, bench.app_source);
    let v2 = retrim_with_log(
        &bench.registry,
        &v2_source,
        &bench.spec,
        &log,
        &DebloatOptions::default(),
    )
    .unwrap();
    assert!(v2.after.behavior_eq(&v2.before));
    assert!(v2.seeded_modules > 0, "unchanged imports reuse the log");
    assert!(v2.oracle_invocations < v1.oracle_invocations);
}

#[test]
fn provider_quotes_rank_trim_savings_by_granularity() {
    // The same trim saves more on AWS (1 ms rounding) than on Azure (1 s):
    // fine-grained billing rewards fine-grained debloating.
    let bench = trim_apps::app("lightgbm").unwrap();
    let report = trim_app(
        &bench.registry,
        &bench.app_source,
        &bench.spec,
        &DebloatOptions::default(),
    )
    .unwrap();
    let before = lambda_sim::AppProfile::new(
        "b",
        bench.image_mb,
        report.before.init_secs,
        report.before.exec_secs,
        report.before.mem_mb,
    );
    let after = lambda_sim::AppProfile::new(
        "a",
        bench.image_mb,
        report.after.init_secs,
        report.after.exec_secs,
        report.after.mem_mb,
    );
    let qb = lambda_sim::quote_all(&before);
    let qa = lambda_sim::quote_all(&after);
    for (b, a) in qb.iter().zip(qa.iter()) {
        assert!(
            a.cold_cost <= b.cold_cost,
            "{}: trimming must not raise cost",
            b.provider
        );
    }
    let saving = |provider: &str| {
        let b = qb
            .iter()
            .find(|q| q.provider == provider)
            .unwrap()
            .cold_cost;
        let a = qa
            .iter()
            .find(|q| q.provider == provider)
            .unwrap()
            .cold_cost;
        (b - a) / b
    };
    assert!(
        saving("AWS Lambda") >= saving("Azure Functions") - 1e-9,
        "coarse rounding can only hide savings, not amplify them"
    );
}

#[test]
fn extended_pool_composes_with_trimmed_profiles() {
    let bench = trim_apps::app("dna-visualization").unwrap();
    let report = trim_app(
        &bench.registry,
        &bench.app_source,
        &bench.spec,
        &DebloatOptions::default(),
    )
    .unwrap();
    let platform = lambda_sim::Platform::default();
    let profile = lambda_sim::AppProfile::new(
        "t",
        bench.image_mb,
        report.after.init_secs,
        report.after.exec_secs,
        report.after.mem_mb,
    );
    let arrivals: Vec<f64> = (0..30).map(|i| i as f64 * 120.0).collect();
    let stats = lambda_sim::simulate_pool_ext(
        &platform,
        &profile,
        &arrivals,
        &lambda_sim::PoolOptions {
            provisioned: 1,
            max_concurrency: Some(4),
            ..lambda_sim::PoolOptions::default()
        },
    );
    assert_eq!(stats.invocations(), 30);
    assert_eq!(
        stats.cold_starts, 0,
        "one provisioned slot absorbs this rate"
    );
    assert!(stats.total_cost() > 0.0);
}

#[test]
fn report_renderer_on_corpus_trim() {
    let bench = trim_apps::app("markdown").unwrap();
    let report = trim_app(
        &bench.registry,
        &bench.app_source,
        &bench.spec,
        &DebloatOptions::default(),
    )
    .unwrap();
    let text = trim_core::render_report(&report);
    assert!(text.contains("markdown"));
    assert!(text.contains("identical on the oracle set"));
    let removals = trim_core::render_removals(&report);
    assert!(!removals.is_empty());
}
