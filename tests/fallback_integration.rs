//! Integration tests for the §5.4 deployment fallback over real corpus
//! applications: over-trimmed functions recover via the original instance,
//! and feeding the failing input back into the oracle repairs the trim.

use lambda_trim::{trim_app, DebloatOptions};
use trim_core::{invoke_with_fallback, FallbackInstanceState};

#[test]
fn rare_inputs_trigger_fallback_and_recover() {
    for bench in trim_apps::mini_corpus() {
        let report = trim_app(
            &bench.registry,
            &bench.app_source,
            &bench.spec,
            &DebloatOptions::default(),
        )
        .unwrap();
        let case = bench.rare_case();
        let (outcome, cost) = invoke_with_fallback(
            &report.trimmed,
            &bench.registry,
            &bench.app_source,
            &bench.spec.handler,
            &case,
            FallbackInstanceState::Cold,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert!(
            outcome.fell_back(),
            "{}: getattr on a trimmed attribute must fall back",
            bench.name
        );
        // The answer matches what the original app would produce directly.
        let mut rare_spec = bench.spec.clone();
        rare_spec.cases = vec![case];
        let original = trim_core::run_app(&bench.registry, &bench.app_source, &rare_spec).unwrap();
        assert_eq!(outcome.result(), original.results[0], "{}", bench.name);
        assert!(cost.setup_secs > 0.0);
        assert!(cost.fallback_init_secs > 0.0, "cold fallback pays init");
    }
}

#[test]
fn warm_fallback_is_cheaper_than_cold() {
    let bench = trim_apps::app("dna-visualization").unwrap();
    let report = trim_app(
        &bench.registry,
        &bench.app_source,
        &bench.spec,
        &DebloatOptions::default(),
    )
    .unwrap();
    let case = bench.rare_case();
    let (_, cold) = invoke_with_fallback(
        &report.trimmed,
        &bench.registry,
        &bench.app_source,
        &bench.spec.handler,
        &case,
        FallbackInstanceState::Cold,
    )
    .unwrap();
    let (_, warm) = invoke_with_fallback(
        &report.trimmed,
        &bench.registry,
        &bench.app_source,
        &bench.spec.handler,
        &case,
        FallbackInstanceState::Warm,
    )
    .unwrap();
    assert!(warm.e2e_cold_secs() < cold.e2e_cold_secs());
    assert_eq!(warm.fallback_init_secs, 0.0);
}

#[test]
fn oracle_repair_eliminates_fallback() {
    // §5.4's prescribed workflow: add the failing input to the oracle set
    // and re-run λ-trim.
    let bench = trim_apps::app("markdown").unwrap();
    let mut repaired_spec = bench.spec.clone();
    repaired_spec.cases.push(bench.rare_case());
    let report = trim_app(
        &bench.registry,
        &bench.app_source,
        &repaired_spec,
        &DebloatOptions::default(),
    )
    .unwrap();
    let (outcome, _) = invoke_with_fallback(
        &report.trimmed,
        &bench.registry,
        &bench.app_source,
        &repaired_spec.handler,
        &bench.rare_case(),
        FallbackInstanceState::Cold,
    )
    .unwrap();
    assert!(
        !outcome.fell_back(),
        "after repairing the oracle the rare attribute must survive trimming"
    );
}

#[test]
fn normal_inputs_never_fall_back_after_trim() {
    let bench = trim_apps::app("igraph").unwrap();
    let report = trim_app(
        &bench.registry,
        &bench.app_source,
        &bench.spec,
        &DebloatOptions::default(),
    )
    .unwrap();
    for case in &bench.spec.cases {
        let (outcome, cost) = invoke_with_fallback(
            &report.trimmed,
            &bench.registry,
            &bench.app_source,
            &bench.spec.handler,
            case,
            FallbackInstanceState::Cold,
        )
        .unwrap();
        assert!(!outcome.fell_back(), "oracle-covered inputs run direct");
        assert_eq!(cost.setup_secs, 0.0, "no wrapper overhead on direct path");
    }
}
