//! ML-inference scenario: trim the paper's `resnet` benchmark application
//! and deploy both versions to the simulated serverless platform.
//!
//! ```text
//! cargo run --release --example ml_inference
//! ```
//!
//! This is the workload the paper's introduction motivates: a PyTorch
//! image-classification function whose Function Initialization dominates
//! both cold-start latency and the bill (Figure 1).

use lambda_trim::{trim_app, AppProfile, DebloatOptions, Platform, StartMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = trim_apps::app("resnet").expect("resnet is in the corpus");
    println!(
        "app: {} (image {:.0} MB, libraries: torch, numpy, PIL)",
        bench.name, bench.image_mb
    );

    println!("running λ-trim (K=20, marginal-monetary-cost ranking)...");
    let report = trim_app(
        &bench.registry,
        &bench.app_source,
        &bench.spec,
        &DebloatOptions::default(),
    )?;
    let torch = report
        .modules
        .iter()
        .find(|m| m.module == "torch")
        .expect("torch was debloated");
    println!(
        "torch: kept {}/{} attributes ({} removed, {} oracle probes)",
        torch.attrs_after,
        torch.attrs_before,
        torch.removed.len(),
        torch.dd_stats.oracle_invocations
    );

    // Deploy both versions to the platform simulator and compare cold starts.
    let platform = Platform::default();
    let before = AppProfile::new(
        "resnet",
        bench.image_mb,
        report.before.init_secs,
        report.before.exec_secs,
        report.before.mem_mb,
    );
    let after = AppProfile::new(
        "resnet-trimmed",
        bench.image_mb,
        report.after.init_secs,
        report.after.exec_secs,
        report.after.mem_mb,
    );
    let cold_b = platform.cold_invocation(&before, StartMode::Standard);
    let cold_a = platform.cold_invocation(&after, StartMode::Standard);
    println!("\n                       original    trimmed");
    println!(
        "cold-start E2E (s)     {:>8.2}   {:>8.2}  ({:.2}x speedup)",
        cold_b.e2e_secs(),
        cold_a.e2e_secs(),
        cold_b.e2e_secs() / cold_a.e2e_secs()
    );
    println!(
        "billed duration (ms)   {:>8.0}   {:>8.0}",
        cold_b.billed_ms, cold_a.billed_ms
    );
    println!(
        "memory footprint (MB)  {:>8.1}   {:>8.1}",
        before.mem_mb, after.mem_mb
    );
    println!(
        "cost per 100K colds($) {:>8.2}   {:>8.2}  ({:.0}% cheaper)",
        cold_b.cost * 1e5,
        cold_a.cost * 1e5,
        (1.0 - cold_a.cost / cold_b.cost) * 100.0
    );
    let warm_b = platform.warm_invocation(&before);
    let warm_a = platform.warm_invocation(&after);
    println!(
        "warm cost per 100K ($) {:>8.2}   {:>8.2}  (memory savings apply to EVERY request)",
        warm_b.cost * 1e5,
        warm_a.cost * 1e5
    );
    Ok(())
}
