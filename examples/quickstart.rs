//! Quickstart: debloat a small serverless application end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a tiny virtual "site-packages" with one bloated library, defines
//! a Lambda-style handler and an oracle specification, runs the λ-trim
//! pipeline, and prints the before/after library source plus the measured
//! savings.

use lambda_trim::{trim_app, DebloatOptions, OracleSpec, Registry, TestCase};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A library with useful *and* useless parts. The useless parts carry
    //    real initialization cost: `__lt_work__(ms)` models import-time
    //    compute and `__lt_alloc__(mb)` models memory the import pins.
    let mut registry = Registry::new();
    registry.set_module(
        "mlkit",
        concat!(
            "from mlkit.models import Net, LegacyNet\n",
            "from mlkit.metrics import accuracy\n",
            "_calibration_tables = __lt_alloc__(80)\n",
            "_warmup = __lt_work__(350)\n",
            "def predict(x):\n",
            "    return Net().forward(x)\n",
            "def train_loop(data):\n",
            "    return accuracy(data)\n",
        ),
    );
    registry.set_module(
        "mlkit.models",
        concat!(
            "__lt_work__(120)\n",
            "class Net:\n",
            "    def forward(self, x):\n",
            "        return x * 2 + 1\n",
            "class LegacyNet:\n",
            "    def forward(self, x):\n",
            "        return x\n",
        ),
    );
    registry.set_module(
        "mlkit.metrics",
        "__lt_work__(200)\n_lookup = __lt_alloc__(40)\ndef accuracy(data):\n    return 1.0\n",
    );

    // 2. The serverless application: initialization code + a handler.
    let app = concat!(
        "import mlkit\n",
        "def handler(event, context):\n",
        "    return mlkit.predict(event[\"x\"])\n",
    );

    // 3. The oracle specification: inputs for which the debloated program
    //    must behave identically (§5 of the paper).
    let spec = OracleSpec::new(vec![
        TestCase::event("{\"x\": 1}"),
        TestCase::event("{\"x\": -10}"),
    ]);

    // 4. Run the pipeline: static analysis -> cost profiling -> DD debloat.
    let report = trim_app(&registry, app, &spec, &DebloatOptions::default())?;

    println!("--- original mlkit/__init__.py ---");
    println!("{}", registry.source("mlkit").unwrap());
    println!("--- debloated mlkit/__init__.py ---");
    println!("{}", report.trimmed.source("mlkit").unwrap());

    println!("attributes removed : {}", report.attrs_removed());
    println!(
        "function init      : {:.3} s -> {:.3} s  ({:.0}% better)",
        report.before.init_secs,
        report.after.init_secs,
        report.init_improvement() * 100.0
    );
    println!(
        "memory footprint   : {:.1} MB -> {:.1} MB ({:.0}% better)",
        report.before.mem_mb,
        report.after.mem_mb,
        report.mem_improvement() * 100.0
    );
    println!(
        "oracle probes      : {} (simulated debloat time {:.1} s)",
        report.oracle_invocations, report.debloat_secs
    );
    assert!(report.after.behavior_eq(&report.before));
    println!("behavior preserved : yes");
    Ok(())
}
