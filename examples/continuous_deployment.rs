//! Continuous deployment cycle (§9 future work, implemented): trim v1 of a
//! function, package it with the fallback wrapper, ship an update, and
//! re-trim seeded by the previous run's log — far cheaper than a cold trim.
//!
//! ```text
//! cargo run --release --example continuous_deployment
//! ```

use lambda_trim::{trim_app, DebloatOptions, OracleSpec, Registry, TestCase};
use trim_core::{package, render_report, retrim_with_log, TrimLog};

fn registry() -> Registry {
    let mut r = Registry::new();
    r.set_module(
        "etl",
        concat!(
            "from etl.readers import CsvReader, ParquetReader\n",
            "from etl.writers import JsonWriter, XmlWriter\n",
            "_buffers = __lt_alloc__(45)\n",
            "_codec_init = __lt_work__(220)\n",
            "def extract(row):\n    return CsvReader().read(row)\n",
            "def load(row):\n    return JsonWriter().write(row)\n",
            "def transform(row):\n    return row * 2\n",
        ),
    );
    r.set_module(
        "etl.readers",
        concat!(
            "__lt_work__(80)\n",
            "class CsvReader:\n    def read(self, row):\n        return row + 1\n",
            "class ParquetReader:\n    def read(self, row):\n        return row\n",
        ),
    );
    r.set_module(
        "etl.writers",
        concat!(
            "__lt_work__(90)\n_schemas = __lt_alloc__(20)\n",
            "class JsonWriter:\n    def write(self, row):\n        return row * 10\n",
            "class XmlWriter:\n    def write(self, row):\n        return row\n",
        ),
    );
    r
}

const APP_V1: &str = concat!(
    "import etl\n",
    "def handler(event, context):\n",
    "    return etl.load(etl.extract(event[\"row\"]))\n",
);

// v2 adds the transform step — same imports, new call pattern.
const APP_V2: &str = concat!(
    "import etl\n",
    "def handler(event, context):\n",
    "    return etl.load(etl.transform(etl.extract(event[\"row\"])))\n",
);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = OracleSpec::new(vec![TestCase::event("{\"row\": 4}")]);

    // ---- Release 1: cold trim + deployment package --------------------
    println!("== release 1: cold trim ==");
    let v1 = trim_app(&registry(), APP_V1, &spec, &DebloatOptions::default())?;
    print!("{}", render_report(&v1));
    let pkg = package(&registry(), APP_V1, "handler", &v1);
    println!(
        "deployed: trimmed image {} bytes of code (original {}), wrapper installed\n",
        pkg.trimmed_code_bytes(),
        pkg.original_code_bytes()
    );

    // Persist the debloating log for the next release.
    let log = TrimLog::from_report(&v1);

    // ---- Release 2: the developer updates the handler -----------------
    println!("== release 2: seeded re-trim after the code update ==");
    let v2 = retrim_with_log(&registry(), APP_V2, &spec, &log, &DebloatOptions::default())?;
    println!(
        "seeded modules: {} | cold modules: {} | oracle probes: {} (cold run used {})",
        v2.seeded_modules, v2.cold_modules, v2.oracle_invocations, v1.oracle_invocations
    );
    assert!(v2.after.behavior_eq(&v2.before));
    println!(
        "v2 init {:.3} s, memory {:.1} MB — behavior verified against the updated baseline",
        v2.after.init_secs, v2.after.mem_mb
    );

    // The new handler's result flows through transform: 4 -> 5 -> 10 -> 100.
    let check = trim_core::run_app(&v2.trimmed, APP_V2, &spec)?;
    println!("v2 oracle result: {}", check.results[0]);
    assert_eq!(check.results[0], "100");

    // ---- The saved log keeps improving: persist v2's version ----------
    let next_log = v2.log();
    println!(
        "log now tracks {} modules for the next release",
        next_log.kept.len()
    );
    Ok(())
}
