//! Bring-your-own-library: define a custom library with a dynamic
//! (`getattr`-based) access pattern, trim it, trigger the §5.4 fallback,
//! and repair the oracle set the way the paper prescribes.
//!
//! ```text
//! cargo run --release --example custom_library
//! ```

use lambda_trim::{trim_app, DebloatOptions, OracleSpec, Registry, TestCase};
use trim_core::{invoke_with_fallback, FallbackInstanceState};

fn registry() -> Registry {
    let mut r = Registry::new();
    r.set_module(
        "imgproc",
        concat!(
            "__lt_work__(150)\n",
            "_filters = __lt_alloc__(25)\n",
            "def thumbnail(img):\n",
            "    return img + \":thumb\"\n",
            "def grayscale(img):\n",
            "    return img + \":gray\"\n",
            "def rotate(img):\n",
            "    return img + \":rot\"\n",
            "def watermark(img):\n",
            "    return img + \":wm\"\n",
        ),
    );
    r
}

// The handler picks the operation *dynamically* — exactly the Python
// pattern (§4) that defeats static debloaters and demands an oracle.
const APP: &str = concat!(
    "import imgproc\n",
    "def handler(event, context):\n",
    "    op = event[\"op\"]\n",
    "    fn = getattr(imgproc, op)\n",
    "    return fn(event[\"img\"])\n",
);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The user supplies test cases for thumbnail and grayscale only.
    let spec = OracleSpec::new(vec![
        TestCase::event("{\"op\": \"thumbnail\", \"img\": \"cat.png\"}"),
        TestCase::event("{\"op\": \"grayscale\", \"img\": \"dog.png\"}"),
    ]);
    let report = trim_app(&registry(), APP, &spec, &DebloatOptions::default())?;
    println!(
        "--- trimmed imgproc ---\n{}",
        report.trimmed.source("imgproc").unwrap()
    );
    println!(
        "removed: {:?} (DD can't see getattr targets — only the oracle protects them)",
        report
            .modules
            .iter()
            .flat_map(|m| m.removed.clone())
            .collect::<Vec<_>>()
    );

    // A production request uses `rotate`, which was trimmed. The deployment
    // wrapper catches the AttributeError and re-invokes the original
    // function as an independent instance (§5.4).
    let rare = TestCase::event("{\"op\": \"rotate\", \"img\": \"map.png\"}");
    let (outcome, cost) = invoke_with_fallback(
        &report.trimmed,
        &registry(),
        APP,
        "handler",
        &rare,
        FallbackInstanceState::Cold,
    )?;
    println!("\nproduction request op=rotate:");
    println!("  fell back : {}", outcome.fell_back());
    println!("  response  : {}", outcome.result());
    println!(
        "  E2E cold  : {:.3} s (trimmed init {:.3} + setup {:.3} + original init {:.3} + exec {:.3})",
        cost.e2e_cold_secs(),
        cost.trimmed_init_secs,
        cost.setup_secs,
        cost.fallback_init_secs,
        cost.fallback_exec_secs
    );

    // The fix the paper prescribes: add the failing input to the oracle set
    // and re-run λ-trim.
    let repaired_spec = OracleSpec::new(vec![
        TestCase::event("{\"op\": \"thumbnail\", \"img\": \"cat.png\"}"),
        TestCase::event("{\"op\": \"grayscale\", \"img\": \"dog.png\"}"),
        rare.clone(),
    ]);
    let repaired = trim_app(&registry(), APP, &repaired_spec, &DebloatOptions::default())?;
    let (outcome2, _) = invoke_with_fallback(
        &repaired.trimmed,
        &registry(),
        APP,
        "handler",
        &rare,
        FallbackInstanceState::Cold,
    )?;
    println!("\nafter adding the failing input to the oracle and re-trimming:");
    println!(
        "  fell back : {} (rotate now survives trimming)",
        outcome2.fell_back()
    );
    println!("  response  : {}", outcome2.result());
    assert!(!outcome2.fell_back());
    Ok(())
}
