//! Cost-model exploration: pricing rules, keep-alive sensitivity, and the
//! SnapStart checkpoint/restore trade-off (§2.1 and §8.6 of the paper).
//!
//! ```text
//! cargo run --release --example cost_explorer
//! ```

use lambda_sim::{
    generate_trace, simulate_pool, AppProfile, CheckpointModel, Platform, PricingModel,
    SnapStartPricing, StartMode, TraceConfig,
};

fn main() {
    // -- Equation (1): pricing anatomy -----------------------------------
    let aws = PricingModel::aws();
    println!("Equation (1): C = ConfiguredMemory x BilledDuration x UnitPrice");
    for (mem_mb, dur_ms) in [(64.0, 80.0), (512.0, 1_234.5), (3_000.0, 10_500.0)] {
        println!(
            "  footprint {:>6.0} MB, duration {:>8.1} ms -> configured {:>5} MB, billed {:>8.0} ms, ${:.8}",
            mem_mb,
            dur_ms,
            aws.configured_memory_mb(mem_mb),
            aws.billed_duration_ms(dur_ms),
            aws.invocation_cost(mem_mb, dur_ms)
        );
    }
    println!(
        "  note the 128 MB minimum: a 30 MB function bills like a 128 MB one\n   (this hides trim's memory benefit for tiny apps, §8.1)"
    );

    // -- Rounding granularities across providers -------------------------
    println!("\nBilling granularity (150 ms of work):");
    for (name, model) in [
        ("AWS (1 ms)", PricingModel::aws()),
        ("GCP (100 ms)", PricingModel::gcp()),
        ("Azure (1 s)", PricingModel::azure()),
    ] {
        println!(
            "  {name:<14} bills {:>6.0} ms",
            model.billed_duration_ms(150.0)
        );
    }

    // -- Keep-alive sensitivity over a bursty trace ----------------------
    let platform = Platform::default();
    let app = AppProfile::new("demo", 120.0, 1.2, 0.3, 512.0);
    let trace = generate_trace(&TraceConfig {
        functions: 1,
        window_secs: 24.0 * 3600.0,
        seed: 42,
        diurnal: None,
    });
    let arrivals = &trace.functions[0].arrivals;
    println!(
        "\nKeep-alive sensitivity ({} arrivals over 24 h, class {:?}):",
        arrivals.len(),
        trace.functions[0].class
    );
    println!("  keep-alive   cold starts   cold %   total cost $");
    for (label, ka) in [("1 min", 60.0), ("15 min", 900.0), ("60 min", 3600.0)] {
        let stats = simulate_pool(&platform, &app, arrivals, ka, StartMode::Standard);
        println!(
            "  {:<11} {:>11} {:>7.1}% {:>14.6}",
            label,
            stats.cold_starts,
            stats.cold_fraction() * 100.0,
            stats.total_cost
        );
    }

    // -- The SnapStart trade-off (§8.6) -----------------------------------
    let ckpt = CheckpointModel::default();
    let snap = SnapStartPricing::default();
    println!("\nSnapStart trade-off for the same function, 15 min keep-alive:");
    let stats = simulate_pool(&platform, &app, arrivals, 900.0, StartMode::Restore);
    let snapshot_mb = ckpt.snapshot_mb(app.mem_mb);
    let cache = snap.cache_cost(snapshot_mb, 24.0 * 3600.0);
    let restores = snap.restore_cost(snapshot_mb) * stats.cold_starts as f64;
    println!(
        "  snapshot {snapshot_mb:.0} MB | invocation cost ${:.6} | cache ${cache:.6} | restores ${restores:.6}",
        stats.total_cost
    );
    let share = (cache + restores) / (stats.total_cost + cache + restores) * 100.0;
    println!(
        "  SnapStart overhead = {share:.0}% of the total bill — the paper's Figure 13 point: \
         \n  C/R support often costs more than running the function."
    );
    println!(
        "  restore beats re-running init when init > {:.2} s (this app inits in {:.2} s)",
        ckpt.restore_secs(snapshot_mb),
        app.init_secs
    );
}
