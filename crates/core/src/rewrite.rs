//! AST rewriting: produce a module that keeps only a chosen attribute set
//! (§6.3 — "the original `__init__.py` file is retrieved and then modified
//! based on the attributes that DD currently tests", via a single traversal).

use pylite::ast::{Program, Stmt};
use std::collections::BTreeSet;

/// Rewrite `program` so that only top-level attributes in `keep` remain.
///
/// * `def` / `class` definitions whose name is not kept are dropped;
/// * `x = ...` assignments are dropped when none of their targets is kept;
/// * `import m` clauses are dropped when their bound name is not kept;
/// * `from m import a, b` lists are *filtered* — individual names drop out
///   (the finer-than-statement granularity that §6.1 argues for);
/// * every other statement (bare expressions, conditionals, loops, try
///   blocks, magic-attribute assignments) is left untouched;
/// * an empty result body becomes a single `pass` (Figure 7b).
pub fn rewrite_module(program: &Program, keep: &BTreeSet<String>) -> Program {
    let mut body = Vec::with_capacity(program.body.len());
    for stmt in &program.body {
        match stmt {
            Stmt::FuncDef(f) => {
                if keep.contains(&f.name) || crate::attributes::is_magic(&f.name) {
                    body.push(stmt.clone());
                }
            }
            Stmt::ClassDef(c) => {
                if keep.contains(&c.name) || crate::attributes::is_magic(&c.name) {
                    body.push(stmt.clone());
                }
            }
            Stmt::Assign { targets, .. } => {
                let names = targets.iter().flat_map(assigned_names).collect::<Vec<_>>();
                let keep_stmt = names.is_empty()
                    || names
                        .iter()
                        .any(|n| keep.contains(n) || crate::attributes::is_magic(n));
                if keep_stmt {
                    body.push(stmt.clone());
                }
            }
            Stmt::Import { items } => {
                let kept: Vec<_> = items
                    .iter()
                    .filter(|i| keep.contains(i.bound_name()))
                    .cloned()
                    .collect();
                if !kept.is_empty() {
                    body.push(Stmt::Import { items: kept });
                }
            }
            Stmt::FromImport { module, names } => {
                let kept: Vec<_> = names
                    .iter()
                    .filter(|(n, a)| keep.contains(a.as_deref().unwrap_or(n)))
                    .cloned()
                    .collect();
                if !kept.is_empty() {
                    body.push(Stmt::FromImport {
                        module: module.clone(),
                        names: kept,
                    });
                }
            }
            other => body.push(other.clone()),
        }
    }
    if body.is_empty() {
        body.push(Stmt::Pass);
    }
    Program { body }
}

fn assigned_names(target: &pylite::ast::Expr) -> Vec<String> {
    use pylite::ast::Expr;
    match target {
        Expr::Name(n) => vec![n.clone()],
        Expr::Tuple(items) | Expr::List(items) => items.iter().flat_map(assigned_names).collect(),
        _ => Vec::new(),
    }
}

/// Rewrite module source text directly: parse, rewrite, unparse.
///
/// # Errors
///
/// Returns the parse error if `source` is not valid pylite.
pub fn rewrite_source(source: &str, keep: &BTreeSet<String>) -> Result<String, pylite::ParseError> {
    let program = pylite::parse(source)?;
    Ok(pylite::unparse(&rewrite_module(&program, keep)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::module_attributes;
    use pylite::parse;

    fn keep(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| (*s).to_owned()).collect()
    }

    const TORCH_INIT: &str = "from torch.nn import Linear, MSELoss\nfrom torch.optim import SGD\nclass tensor:\n    def __init__(self, data):\n        self.data = data\ndef add(t1, t2):\n    return t1\ndef view(t, dim1, dim2):\n    return t\n";

    #[test]
    fn figure7_debloating_example() {
        // Figure 7: keeping {tensor, add, view, Linear} drops MSELoss from
        // the from-import list and removes the torch.optim import entirely.
        let p = parse(TORCH_INIT).unwrap();
        let out = rewrite_module(&p, &keep(&["tensor", "add", "view", "Linear"]));
        let src = pylite::unparse(&out);
        assert!(src.contains("from torch.nn import Linear\n"));
        assert!(!src.contains("MSELoss"));
        assert!(!src.contains("torch.optim"));
        assert!(src.contains("class tensor"));
        assert!(src.contains("def add"));
    }

    #[test]
    fn rewrite_preserves_attribute_subset_exactly() {
        let p = parse(TORCH_INIT).unwrap();
        let kept = keep(&["tensor", "SGD"]);
        let out = rewrite_module(&p, &kept);
        let attrs: BTreeSet<String> = module_attributes(&out).into_iter().collect();
        assert_eq!(attrs, kept);
    }

    #[test]
    fn empty_keep_set_becomes_pass() {
        let p = parse("x = 1\ndef f():\n    pass\n").unwrap();
        let out = rewrite_module(&p, &BTreeSet::new());
        assert_eq!(pylite::unparse(&out), "pass\n");
    }

    #[test]
    fn non_binding_statements_are_untouched() {
        let p = parse("print(\"hi\")\nx = 1\nif True:\n    helper_state = 2\n").unwrap();
        let out = rewrite_module(&p, &BTreeSet::new());
        let src = pylite::unparse(&out);
        assert!(src.contains("print(\"hi\")"));
        assert!(src.contains("if True:"));
        assert!(!src.contains("x = 1"));
    }

    #[test]
    fn magic_assignments_survive() {
        let p = parse("__version__ = \"1.0\"\nx = 1\n").unwrap();
        let out = rewrite_module(&p, &BTreeSet::new());
        let src = pylite::unparse(&out);
        assert!(src.contains("__version__"));
        assert!(!src.contains("x = 1"));
    }

    #[test]
    fn import_aliases_are_respected() {
        let p = parse("import numpy as np, pandas as pd\n").unwrap();
        let out = rewrite_module(&p, &keep(&["np"]));
        let src = pylite::unparse(&out);
        assert!(src.contains("numpy as np"));
        assert!(!src.contains("pandas"));
    }

    #[test]
    fn rewritten_source_reparses() {
        let p = parse(TORCH_INIT).unwrap();
        for kept in [
            keep(&["tensor"]),
            keep(&["Linear", "view"]),
            keep(&[]),
            keep(&["tensor", "add", "view", "Linear", "MSELoss", "SGD"]),
        ] {
            let out = rewrite_module(&p, &kept);
            let src = pylite::unparse(&out);
            assert!(
                pylite::parse(&src).is_ok(),
                "rewritten source must parse:\n{src}"
            );
        }
    }

    #[test]
    fn full_keep_set_is_identity_on_attributes() {
        let p = parse(TORCH_INIT).unwrap();
        let all: BTreeSet<String> = module_attributes(&p).into_iter().collect();
        let out = rewrite_module(&p, &all);
        assert_eq!(module_attributes(&out), module_attributes(&p));
    }

    #[test]
    fn rewrite_source_helper() {
        let src = rewrite_source("a = 1\nb = 2\n", &keep(&["b"])).unwrap();
        assert_eq!(src, "b = 2\n");
        assert!(rewrite_source("def broken(:\n", &keep(&[])).is_err());
    }
}
