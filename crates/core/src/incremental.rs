//! Continuous debloating (§9 future work): re-debloat after a function
//! update or an oracle-set extension, reusing the previous run's kept sets
//! to drive the search.
//!
//! The paper: "we plan to implement a continuous debloating pipeline for
//! both function updates and inputs that are collected through our fallback
//! mechanism. This pipeline will make use of logs collected during the
//! initial debloating to drive the subsequent debloating more efficiently."
//!
//! The mechanism here: for each module, first probe the *previous* kept
//! set (intersected with the module's current attributes). If the app still
//! behaves correctly with it, ddmin only has to search inside that —
//! usually tiny — set instead of the full attribute list. If the seed fails
//! (the update needs something that was previously trimmed, or the oracle
//! grew), fall back to the full search.

use crate::attributes::module_attributes;
use crate::debloater::{DebloatOptions, ModuleReport};
use crate::oracle::{run_app_measured_opts, run_app_opts, Execution, OracleSpec};
use crate::pipeline::TrimReport;
use crate::probe_cache::{app_fingerprint, ProbeKey};
use crate::rewrite::rewrite_module;
use crate::slicer::{slice_modules, SliceReport};
use crate::TrimError;
use pylite::Registry;
use std::collections::{BTreeMap, BTreeSet};
use trim_dd::{ddmin_with, DdStats};

/// The debloating log of a previous run: per-module kept attribute sets.
/// This is the §9 "log collected during the initial debloating".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TrimLog {
    /// Module → attributes kept by the previous run.
    pub kept: BTreeMap<String, BTreeSet<String>>,
}

impl TrimLog {
    /// Extract the log from a completed [`TrimReport`].
    pub fn from_report(report: &TrimReport) -> TrimLog {
        TrimLog {
            kept: report
                .modules
                .iter()
                .map(|m| (m.module.clone(), m.kept.iter().cloned().collect()))
                .collect(),
        }
    }

    /// Record additional attributes that must be kept for a module (e.g.
    /// collected from fallback notifications).
    pub fn require(&mut self, module: &str, attr: &str) {
        self.kept
            .entry(module.to_owned())
            .or_default()
            .insert(attr.to_owned());
    }
}

/// Result of an incremental run, with seed-effectiveness accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalReport {
    /// The underlying trim results per module.
    pub modules: Vec<ModuleReport>,
    /// Baseline behavior of the (possibly updated) original application.
    pub before: Execution,
    /// Behavior of the trimmed application.
    pub after: Execution,
    /// The trimmed registry.
    pub trimmed: Registry,
    /// Modules where the previous kept set seeded the search successfully.
    pub seeded_modules: usize,
    /// Modules that required a full (cold) search.
    pub cold_modules: usize,
    /// Total oracle invocations (compare with a cold run to see savings).
    pub oracle_invocations: u64,
    /// Per-module selective-init slice results, matching the cold
    /// pipeline's pass. Empty when [`DebloatOptions::slice_init`] is off.
    pub slices: Vec<SliceReport>,
}

impl IncrementalReport {
    /// The updated log, to persist for the next round.
    pub fn log(&self) -> TrimLog {
        TrimLog {
            kept: self
                .modules
                .iter()
                .map(|m| (m.module.clone(), m.kept.iter().cloned().collect()))
                .collect(),
        }
    }
}

/// Re-debloat an application seeded by a previous [`TrimLog`].
///
/// The module list is taken from the log (the modules the previous run
/// chose via profiling); new modules the app imports but the log has never
/// seen are *not* debloated here — run the full pipeline when the import
/// set changes materially.
///
/// # Errors
///
/// [`TrimError::Baseline`] if the updated application fails its oracle run,
/// [`TrimError::Parse`] if a logged module no longer parses.
pub fn retrim_with_log(
    registry: &Registry,
    app_source: &str,
    spec: &OracleSpec,
    log: &TrimLog,
    options: &DebloatOptions,
) -> Result<IncrementalReport, TrimError> {
    if options.jobs == 0 {
        return Err(TrimError::Config(
            "analysis jobs must be at least 1".to_owned(),
        ));
    }
    let before = run_app_opts(
        registry,
        app_source,
        spec,
        options.engine,
        options.init_snapshots,
    )
    .map_err(TrimError::Baseline)?;
    let app_program = pylite::parse(app_source).map_err(TrimError::Parse)?;
    // Retrims are where the summary cache earns its keep: sharing one cache
    // across runs means only the edited modules' reverse-dependency cone is
    // re-analyzed, and the per-module recomputations below start as hits.
    let summaries = options
        .summary_cache
        .clone()
        .unwrap_or_else(trim_analysis::summary::SummaryCache::shared);
    let analysis_options = trim_analysis::AnalysisOptions {
        mode: trim_analysis::AnalysisMode::Interprocedural,
        entry: None,
        jobs: options.jobs,
        summary_cache: Some(summaries),
    };
    let full = trim_analysis::analyze_full(&app_program, registry, &analysis_options);
    let analysis = &full.analysis;
    let app_fp = app_fingerprint(app_source, spec);

    let mut work = registry.clone();
    let mut modules = Vec::new();
    let mut seeded_modules = 0;
    let mut cold_modules = 0;
    let mut oracle_invocations = 0;
    for (module, prev_kept) in &log.kept {
        if !work.contains(module) {
            continue;
        }
        let program = work.parse_module(module).map_err(TrimError::Parse)?;
        let attrs = module_attributes(&program);
        let attr_set: BTreeSet<String> = attrs.iter().cloned().collect();
        // Same recompute-on-work rule as the cold pipeline: committed trims
        // release the must-keeps their import lines induced.
        let must_keep = match options.analysis {
            trim_analysis::AnalysisMode::AppOnly => analysis.accessed_attrs(module),
            trim_analysis::AnalysisMode::Interprocedural => {
                trim_analysis::analyze_full(&app_program, &work, &analysis_options)
                    .analysis
                    .accessed_attrs(module)
            }
        };

        // Probe the seed: previous kept set ∩ current attrs ∪ must-keep.
        let seed: BTreeSet<String> = prev_kept
            .intersection(&attr_set)
            .cloned()
            .chain(must_keep.iter().cloned())
            .collect();
        // A retrim probe is keyed exactly like a cold-pipeline probe: same
        // base-registry fingerprint, app fingerprint, module and keep-set.
        // An untouched module therefore answers its probes straight from a
        // shared [`crate::ProbeCache`] populated by the previous run.
        let probe = |keep: &BTreeSet<String>, base: &Registry| -> (bool, f64) {
            let key = options
                .probe_cache
                .as_ref()
                .map(|_| ProbeKey::new(base.fingerprint(), app_fp, module, keep.iter().cloned()));
            if let (Some(cache), Some(key)) = (&options.probe_cache, &key) {
                if let Some(verdict) = cache.get(key) {
                    return (verdict, 0.0);
                }
            }
            let rewritten = rewrite_module(&program, keep);
            let candidate = base.with_module(module, pylite::unparse(&rewritten));
            let (result, secs) = run_app_measured_opts(
                &candidate,
                app_source,
                spec,
                options.engine,
                options.init_snapshots,
            );
            let ok = match result {
                Ok(actual) => actual.behavior_eq(&before),
                Err(_) => false,
            };
            if let (Some(cache), Some(key)) = (&options.probe_cache, key) {
                cache.insert(key, ok);
            }
            (ok, secs)
        };
        let (seed_ok, _) = probe(&seed, &work);
        oracle_invocations += 1;

        let (candidates, fixed): (Vec<String>, Vec<String>) = if seed_ok {
            seeded_modules += 1;
            // Search only inside the seed (minus must-keep).
            (
                attrs
                    .iter()
                    .filter(|a| seed.contains(*a) && !must_keep.contains(*a))
                    .cloned()
                    .collect(),
                attrs
                    .iter()
                    .filter(|a| must_keep.contains(*a))
                    .cloned()
                    .collect(),
            )
        } else {
            cold_modules += 1;
            (
                attrs
                    .iter()
                    .filter(|a| !must_keep.contains(*a))
                    .cloned()
                    .collect(),
                attrs
                    .iter()
                    .filter(|a| must_keep.contains(*a))
                    .cloned()
                    .collect(),
            )
        };

        let mut spent = 0.0f64;
        let mut oracle = |subset: &[String]| {
            let keep: BTreeSet<String> = fixed
                .iter()
                .cloned()
                .chain(subset.iter().cloned())
                .collect();
            let (ok, secs) = probe(&keep, &work);
            spent += secs;
            ok
        };
        let dd_result = ddmin_with(&candidates, &mut oracle, options.dd);
        match dd_result {
            Ok(result) => {
                let keep: BTreeSet<String> = fixed
                    .iter()
                    .cloned()
                    .chain(result.minimized.iter().cloned())
                    .collect();
                let rewritten = rewrite_module(&program, &keep);
                work.set_module(module, pylite::unparse(&rewritten));
                let kept: Vec<String> = attrs
                    .iter()
                    .filter(|a| keep.contains(*a))
                    .cloned()
                    .collect();
                let removed: Vec<String> = attrs
                    .iter()
                    .filter(|a| !keep.contains(*a))
                    .cloned()
                    .collect();
                oracle_invocations += result.stats.oracle_invocations;
                modules.push(ModuleReport {
                    module: module.clone(),
                    attrs_before: attrs.len(),
                    attrs_after: kept.len(),
                    removed,
                    kept,
                    dd_stats: result.stats,
                    debloat_secs: spent,
                });
            }
            Err(trim_dd::DdError::OracleRejectsWhole) => {
                // Even the full attribute set fails under this candidate
                // path — leave the module untouched.
                modules.push(ModuleReport {
                    module: module.clone(),
                    attrs_before: attrs.len(),
                    attrs_after: attrs.len(),
                    removed: Vec::new(),
                    kept: attrs,
                    dd_stats: DdStats::default(),
                    debloat_secs: spent,
                });
            }
        }
    }
    // Mirror the cold pipeline's selective-init slicing pass so an
    // incremental retrim converges to the same deployment as a from-scratch
    // trim of the same inputs.
    let slices = if options.slice_init {
        let candidates: Vec<String> = modules.iter().map(|m| m.module.clone()).collect();
        let hazard_set: BTreeSet<String> = full.hazard_attrs.keys().cloned().collect();
        let slices = slice_modules(
            &mut work,
            app_source,
            spec,
            &before,
            &candidates,
            &hazard_set,
            options,
        )?;
        oracle_invocations += slices.iter().map(|s| s.oracle_invocations).sum::<u64>();
        slices
    } else {
        Vec::new()
    };
    let after = run_app_opts(
        &work,
        app_source,
        spec,
        options.engine,
        options.init_snapshots,
    )
    .map_err(TrimError::Baseline)?;
    Ok(IncrementalReport {
        modules,
        before,
        after,
        trimmed: work,
        seeded_modules,
        cold_modules,
        oracle_invocations,
        slices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TestCase;
    use crate::pipeline::trim_app;

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.set_module(
            "toolkit",
            "__lt_work__(50)\ndef alpha(x):\n    return x + 1\ndef beta(x):\n    return x + 2\ndef gamma(x):\n    return x + 3\ndef delta(x):\n    return x + 4\n_cache = __lt_alloc__(10)\n",
        );
        r
    }

    const APP_V1: &str =
        "import toolkit\ndef handler(event, context):\n    return toolkit.alpha(event[\"n\"])\n";
    // The update starts using `beta` as well.
    const APP_V2: &str = "import toolkit\ndef handler(event, context):\n    return toolkit.alpha(event[\"n\"]) + toolkit.beta(event[\"n\"])\n";

    fn spec() -> OracleSpec {
        OracleSpec::new(vec![TestCase::event("{\"n\": 5}")])
    }

    #[test]
    fn log_round_trips_through_report() {
        let report = trim_app(&registry(), APP_V1, &spec(), &DebloatOptions::default()).unwrap();
        let log = TrimLog::from_report(&report);
        let kept = log.kept.get("toolkit").expect("toolkit logged");
        assert!(kept.contains("alpha"));
        assert!(!kept.contains("beta"));
    }

    #[test]
    fn unchanged_app_retrims_with_far_fewer_probes() {
        let cold = trim_app(&registry(), APP_V1, &spec(), &DebloatOptions::default()).unwrap();
        let log = TrimLog::from_report(&cold);
        let warm = retrim_with_log(
            &registry(),
            APP_V1,
            &spec(),
            &log,
            &DebloatOptions::default(),
        )
        .unwrap();
        assert!(warm.after.behavior_eq(&cold.after));
        assert_eq!(warm.cold_modules, 0);
        assert!(warm.seeded_modules > 0);
        assert!(
            warm.oracle_invocations < cold.oracle_invocations,
            "seeded re-run ({}) must beat cold run ({})",
            warm.oracle_invocations,
            cold.oracle_invocations
        );
        // Same final trim.
        assert_eq!(
            warm.trimmed.source("toolkit"),
            cold.trimmed.source("toolkit")
        );
    }

    #[test]
    fn update_needing_trimmed_attr_falls_back_to_full_search() {
        let cold = trim_app(&registry(), APP_V1, &spec(), &DebloatOptions::default()).unwrap();
        let log = TrimLog::from_report(&cold);
        // v2 uses beta, which v1's log removed: the seed probe fails and a
        // full search runs — but the result must be correct.
        let warm = retrim_with_log(
            &registry(),
            APP_V2,
            &spec(),
            &log,
            &DebloatOptions::default(),
        )
        .unwrap();
        assert!(warm.after.behavior_eq(&warm.before));
        let kept = warm.log();
        let toolkit = kept.kept.get("toolkit").unwrap();
        assert!(toolkit.contains("alpha"));
        assert!(toolkit.contains("beta"));
        assert!(!toolkit.contains("gamma"));
    }

    #[test]
    fn fallback_notifications_extend_the_log() {
        let cold = trim_app(&registry(), APP_V1, &spec(), &DebloatOptions::default()).unwrap();
        let mut log = TrimLog::from_report(&cold);
        // A production fallback reported that `delta` was needed.
        log.require("toolkit", "delta");
        let warm = retrim_with_log(
            &registry(),
            APP_V1,
            &spec(),
            &log,
            &DebloatOptions::default(),
        )
        .unwrap();
        // The seed includes delta, but DD inside the seed can still remove
        // it because the oracle set does not exercise it — §5.4's workflow
        // requires adding the failing *input*, not just the attribute.
        // With the input added, delta survives:
        let mut spec2 = spec();
        spec2.cases.push(TestCase::event("{\"n\": 1}"));
        assert!(warm.after.behavior_eq(&warm.before));
    }

    #[test]
    fn probe_cache_hits_across_incremental_retrim_of_untouched_module() {
        let cache = crate::probe_cache::ProbeCache::shared();
        let options = DebloatOptions {
            probe_cache: Some(cache.clone()),
            ..DebloatOptions::default()
        };
        let cold = trim_app(&registry(), APP_V1, &spec(), &options).unwrap();
        let log = TrimLog::from_report(&cold);
        let hits_before = cache.hits();
        // Nothing changed: the seed probe (and the DD probes inside the
        // seed) carry the exact keys the cold run cached, so the retrim of
        // the untouched module reuses them.
        let warm = retrim_with_log(&registry(), APP_V1, &spec(), &log, &options).unwrap();
        assert!(
            cache.hits() > hits_before,
            "retrim of an untouched module must hit the cross-run cache"
        );
        assert!(warm.after.behavior_eq(&cold.after));
        assert_eq!(
            warm.trimmed.source("toolkit"),
            cold.trimmed.source("toolkit")
        );
    }

    #[test]
    fn cache_accounting_across_repeat_trim_and_retrim() {
        let probes = crate::probe_cache::ProbeCache::shared();
        let summaries = trim_analysis::summary::SummaryCache::shared();
        let options = DebloatOptions {
            probe_cache: Some(probes.clone()),
            summary_cache: Some(summaries.clone()),
            ..DebloatOptions::default()
        };

        // One registry instance throughout: summary-cache reuse is scoped
        // to a registry family (same interner), unlike the content-keyed
        // probe cache.
        let reg = registry();

        // Cold trim: every verdict stored came from a miss; the summary
        // cache records exactly one cold analysis run.
        let cold = trim_app(&reg, APP_V1, &spec(), &options).unwrap();
        assert_eq!(probes.hits(), 0, "cold run cannot hit");
        assert!(probes.misses() > 0, "cold run probes the oracle");
        assert_eq!(
            probes.insertions(),
            probes.misses(),
            "every miss runs the oracle once and stores its verdict"
        );
        assert_eq!(
            probes.len() as u64,
            probes.insertions(),
            "sequential cold run never stores a duplicate key"
        );
        assert_eq!(summaries.misses(), 1, "one cold analysis run");
        assert_eq!(summaries.len(), 1);

        // Identical repeat trim: all probes answered from cache — hit count
        // grows, miss/insert counts stand still.
        let (h0, m0, i0) = (probes.hits(), probes.misses(), probes.insertions());
        let sh0 = summaries.hits();
        let again = trim_app(&reg, APP_V1, &spec(), &options).unwrap();
        assert!(probes.hits() > h0, "repeat trim must hit the probe cache");
        assert_eq!(probes.misses(), m0);
        assert_eq!(probes.insertions(), i0);
        assert!(
            summaries.hits() > sh0,
            "repeat analysis answered from cache"
        );
        assert_eq!(summaries.misses(), 1, "still the one cold analysis run");
        assert_eq!(
            again.trimmed.source("toolkit"),
            cold.trimmed.source("toolkit")
        );

        // Incremental retrim of the untouched corpus: seeded probes carry
        // the cached keys, so still no new verdicts are stored.
        let (h1, i1) = (probes.hits(), probes.insertions());
        let sh1 = summaries.hits();
        let log = TrimLog::from_report(&cold);
        let warm = retrim_with_log(&reg, APP_V1, &spec(), &log, &options).unwrap();
        assert!(probes.hits() > h1, "seeded retrim must hit the probe cache");
        assert_eq!(
            probes.insertions(),
            i1,
            "untouched corpus stores no new verdicts"
        );
        assert!(
            summaries.hits() > sh1,
            "retrim analysis answered from cache"
        );
        assert!(warm.after.behavior_eq(&cold.after));
    }

    #[test]
    fn corpus_edit_invalidates_only_affected_probe_keys() {
        let cache = crate::probe_cache::ProbeCache::shared();
        let options = DebloatOptions {
            probe_cache: Some(cache.clone()),
            ..DebloatOptions::default()
        };
        let cold = trim_app(&registry(), APP_V1, &spec(), &options).unwrap();
        let log = TrimLog::from_report(&cold);
        // Edit the module: the registry fingerprint changes, so stale
        // verdicts cannot be reused — the retrim re-probes.
        let mut edited = registry();
        let patched = edited.source("toolkit").unwrap().replace("x + 3", "x + 30");
        edited.set_module("toolkit", patched);
        let misses_before = cache.misses();
        let warm = retrim_with_log(&edited, APP_V1, &spec(), &log, &options).unwrap();
        assert!(
            cache.misses() > misses_before,
            "edited module must re-probe (fingerprint changed)"
        );
        assert!(warm.after.behavior_eq(&warm.before));
    }

    #[test]
    fn log_for_missing_module_is_skipped() {
        let cold = trim_app(&registry(), APP_V1, &spec(), &DebloatOptions::default()).unwrap();
        let mut log = TrimLog::from_report(&cold);
        log.require("ghost_module", "anything");
        let warm = retrim_with_log(
            &registry(),
            APP_V1,
            &spec(),
            &log,
            &DebloatOptions::default(),
        )
        .unwrap();
        assert!(warm.modules.iter().all(|m| m.module != "ghost_module"));
    }
}
