//! The DD-based debloater (§5.3, §6.3): minimize one module's attribute set
//! subject to the oracle, then commit the rewritten module to the working
//! registry.

use crate::attributes::module_attributes;
use crate::oracle::{run_app_measured_opts, Execution, OracleSpec};
use crate::probe_cache::{app_fingerprint, ProbeCache, ProbeKey};
use crate::rewrite::rewrite_module;
use crate::TrimError;
use pylite::{Engine, Registry};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use trim_dd::{ddmin_parallel, ddmin_with, greedy_min, DdOptions, DdStats};

/// Which minimization algorithm the debloater runs per module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Algorithm 1 of the paper: ddmin (1-minimal, super-linear probes).
    #[default]
    Ddmin,
    /// Greedy one-pass removal (§8.3 speed-up direction): linear probes,
    /// may keep more attributes under non-monotone dependencies.
    Greedy,
}

/// How the pipeline treats modules implicated by a hazard lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HazardMode {
    /// Per-attribute precision (the default): a hazard with a bounded
    /// attribute set pins those attributes into DD's must-keep seed and the
    /// module is still trimmed; only an unbounded (⊤) hazard routes the
    /// module to the conservative fallback deployment.
    #[default]
    PerAttribute,
    /// Any hazard routes the whole module to the fallback deployment
    /// (the pre-per-attribute behavior; kept as the comparison baseline).
    Blanket,
}

/// Configuration of a debloating run.
#[derive(Debug, Clone)]
pub struct DebloatOptions {
    /// Number of top-ranked modules to debloat (`K`, default 20 per §8.4).
    pub k: usize,
    /// Profiler scoring method (default: the paper's marginal monetary cost).
    pub scoring: trim_profiler::ScoringMethod,
    /// Underlying DD options.
    pub dd: DdOptions,
    /// Worker threads for DD probe evaluation (1 = the paper's sequential
    /// algorithm; >1 = the §9 future-work parallelization).
    pub threads: usize,
    /// Minimization algorithm (parallel probing requires [`Algorithm::Ddmin`]).
    pub algorithm: Algorithm,
    /// Static-analysis coverage used to seed the must-keep exclusion sets
    /// (§5.1). Interprocedural (the default) yields larger exclusion sets
    /// and therefore fewer DD probes; app-only reproduces the seed scope.
    pub analysis: trim_analysis::AnalysisMode,
    /// Cross-run oracle-verdict cache keyed by (registry fingerprint, app
    /// fingerprint, module, keep-set). Share one [`ProbeCache`] across
    /// analysis-mode comparisons and incremental retrims to skip probes
    /// whose inputs have not changed. `None` disables cross-run caching.
    pub probe_cache: Option<Arc<ProbeCache>>,
    /// Worker threads for the sharded static-analysis fixpoint (1 = serial;
    /// any value produces bit-identical analyses). Independent of
    /// [`DebloatOptions::threads`], which parallelizes DD probing.
    pub jobs: usize,
    /// Cross-run static-analysis summary cache. Share one
    /// [`trim_analysis::summary::SummaryCache`] across retrims so registry
    /// edits only re-analyze the changed modules' dependency cone. `None`
    /// still caches within a single pipeline run (a run-local cache is
    /// created), just not across runs.
    pub summary_cache: Option<Arc<trim_analysis::summary::SummaryCache>>,
    /// Hazard routing: per-attribute pinning (default) or the blanket
    /// whole-module fallback baseline.
    pub hazards: HazardMode,
    /// Execution tier for oracle runs: the bytecode VM (default) or the
    /// tree-walking reference interpreter. Both are byte-identical in
    /// behavior and metering; `Tree` exists as the differential baseline
    /// and an escape hatch.
    pub engine: Engine,
    /// Init-snapshot memoization (default: on): oracle runs record module
    /// initializations into the registry family's shared
    /// [`pylite::SnapshotStore`] and replay them on later probes whose
    /// import cone is unchanged. Replay is byte-identical to live
    /// execution, so this only affects wall-clock speed, never results;
    /// `false` forces every probe to run module bodies live.
    pub init_snapshots: bool,
    /// Statement-level selective-init slicing (default: on): after DD has
    /// minimized each module's attribute surface, drop the init statements
    /// whose work feeds nothing the surviving surface needs (bare meter
    /// calls, dead priming loops). Every slice is probe-verified against
    /// the baseline behavior before commit and falls back to the unsliced
    /// body on any mismatch; `false` (`--no-slice`) skips the pass.
    pub slice_init: bool,
}

impl PartialEq for DebloatOptions {
    /// Options compare by configuration; two option sets sharing (or both
    /// lacking) the same probe-cache instance are equal.
    fn eq(&self, other: &Self) -> bool {
        self.k == other.k
            && self.scoring == other.scoring
            && self.dd == other.dd
            && self.threads == other.threads
            && self.algorithm == other.algorithm
            && self.analysis == other.analysis
            && self.jobs == other.jobs
            && self.hazards == other.hazards
            && self.engine == other.engine
            && self.init_snapshots == other.init_snapshots
            && self.slice_init == other.slice_init
            && match (&self.probe_cache, &other.probe_cache) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
            && match (&self.summary_cache, &other.summary_cache) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

impl Default for DebloatOptions {
    fn default() -> Self {
        DebloatOptions {
            k: 20,
            scoring: trim_profiler::ScoringMethod::Combined,
            dd: DdOptions::default(),
            threads: 1,
            algorithm: Algorithm::Ddmin,
            analysis: trim_analysis::AnalysisMode::default(),
            probe_cache: None,
            jobs: 1,
            summary_cache: None,
            hazards: HazardMode::default(),
            engine: Engine::default(),
            init_snapshots: true,
            slice_init: true,
        }
    }
}

/// The valid `--engine` values, in documentation order.
pub const ENGINE_TIERS: [(&str, &str); 2] = [
    ("vm", "bytecode VM (default)"),
    ("tree", "tree-walking reference interpreter"),
];

/// Parse a `--engine` CLI value. Accepts `vm` (the bytecode tier, default)
/// and `tree` (the tree-walking reference interpreter).
///
/// # Errors
///
/// [`TrimError::Config`] for any other value.
pub fn parse_engine(s: &str) -> Result<Engine, TrimError> {
    match s {
        "vm" => Ok(Engine::Vm),
        "tree" => Ok(Engine::Tree),
        other => {
            let tiers = ENGINE_TIERS
                .iter()
                .map(|(name, what)| format!("`{name}` — {what}"))
                .collect::<Vec<_>>()
                .join(", ");
            Err(TrimError::Config(format!(
                "unknown engine `{other}` (expected vm|tree): valid tiers are {tiers}"
            )))
        }
    }
}

/// The result of debloating one module.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleReport {
    /// Dotted module name.
    pub module: String,
    /// Attribute count before debloating (Table 3 "Pre").
    pub attrs_before: usize,
    /// Attribute count after debloating (Table 3 "Post").
    pub attrs_after: usize,
    /// Attributes removed by DD, in original order.
    pub removed: Vec<String>,
    /// Attributes kept (must-keep ∪ DD survivors), in original order.
    pub kept: Vec<String>,
    /// DD run statistics.
    pub dd_stats: DdStats,
    /// Simulated debloating time: the virtual seconds all oracle probes for
    /// this module consumed (Table 3 "Debloat Time").
    pub debloat_secs: f64,
}

/// Debloat `module` in `work` (in place): run attribute-granularity DD with
/// the oracle "the app still behaves like `expected`", then rewrite the
/// module source in the registry with only the surviving attributes.
///
/// `must_keep` is the static analyzer's definitely-accessed set — excluded
/// from the DD search and always retained (§5.1/§6.3 step 3).
///
/// # Errors
///
/// [`TrimError::Parse`] if the module does not parse. A module whose full
/// attribute set fails the oracle (flaky oracle, hidden coupling) is left
/// untouched and reported with zero removals rather than erroring.
pub fn debloat_module(
    work: &mut Registry,
    app_source: &str,
    spec: &OracleSpec,
    expected: &Execution,
    module: &str,
    must_keep: &BTreeSet<String>,
    options: &DebloatOptions,
) -> Result<ModuleReport, TrimError> {
    let program = work.parse_module(module).map_err(TrimError::Parse)?;
    let attrs = module_attributes(&program);
    let attrs_before = attrs.len();
    // Step 3 of §6.3: candidates = all attributes except the definitely
    // accessed ones (magic attributes are already excluded by extraction).
    let fixed: Vec<String> = attrs
        .iter()
        .filter(|a| must_keep.contains(*a))
        .cloned()
        .collect();
    let candidates: Vec<String> = attrs
        .iter()
        .filter(|a| !must_keep.contains(*a))
        .cloned()
        .collect();

    let spent = Arc::new(AtomicU64::new(0));
    let make_keep = {
        let fixed = fixed.clone();
        move |subset: &[String]| -> BTreeSet<String> {
            fixed
                .iter()
                .cloned()
                .chain(subset.iter().cloned())
                .collect()
        }
    };

    // One probe = one copy-on-write overlay over the working registry: the
    // base's sources and parse results are shared (O(modules) pointer
    // bumps), only the rewritten module gets a fresh entry. Verdicts are
    // memoized in the cross-run probe cache when one is attached.
    let app_fp = app_fingerprint(app_source, spec);
    let probe = |keep: &BTreeSet<String>, base: &Registry, spent: &AtomicU64| -> bool {
        let key = options
            .probe_cache
            .as_ref()
            .map(|_| ProbeKey::new(base.fingerprint(), app_fp, module, keep.iter().cloned()));
        if let (Some(cache), Some(key)) = (&options.probe_cache, &key) {
            if let Some(verdict) = cache.get(key) {
                return verdict;
            }
        }
        let rewritten = rewrite_module(&program, keep);
        let candidate_registry = base.with_module(module, pylite::unparse(&rewritten));
        let (result, secs) = run_app_measured_opts(
            &candidate_registry,
            app_source,
            spec,
            options.engine,
            options.init_snapshots,
        );
        spent.fetch_add((secs * 1e9) as u64, Ordering::Relaxed);
        let verdict = match result {
            Ok(actual) => actual.behavior_eq(expected),
            Err(_) => false,
        };
        if let (Some(cache), Some(key)) = (&options.probe_cache, key) {
            cache.insert(key, verdict);
        }
        verdict
    };

    let dd_result = if options.threads > 1 {
        // Parallel probing: Registry is Send + Sync, so workers share the
        // same COW base snapshot and run the identical overlay probe —
        // no source snapshots, no per-probe re-parsing.
        if options.algorithm == Algorithm::Greedy {
            return Err(TrimError::Config(
                "greedy minimization is sequential; use threads = 1 or Algorithm::Ddmin".to_owned(),
            ));
        }
        let base = work.clone();
        let probe = &probe;
        let make_keep = &make_keep;
        let spent_nanos = &spent;
        let factory = move || {
            let base = base.clone();
            Box::new(move |subset: &[String]| probe(&make_keep(subset), &base, spent_nanos))
                as Box<dyn FnMut(&[String]) -> bool + Send>
        };
        ddmin_parallel(&candidates, factory, options.threads, options.dd)
    } else {
        let mut oracle = |subset: &[String]| probe(&make_keep(subset), work, &spent);
        match options.algorithm {
            Algorithm::Ddmin => ddmin_with(&candidates, &mut oracle, options.dd),
            Algorithm::Greedy => greedy_min(&candidates, &mut oracle),
        }
    };

    let debloat_secs = spent.load(Ordering::Relaxed) as f64 / 1e9;
    match dd_result {
        Ok(result) => {
            let survivors: BTreeSet<String> = result.minimized.iter().cloned().collect();
            let keep: BTreeSet<String> = fixed.iter().cloned().chain(survivors).collect();
            let rewritten = rewrite_module(&program, &keep);
            let original_source = work.source(module).expect("module has source").to_owned();
            work.set_module(module, pylite::unparse(&rewritten));
            // Defense in depth: re-verify the committed module against the
            // oracle (the candidate that passed probing also passes here,
            // but this guards against any rewrite/commit divergence — the
            // §5.4 philosophy of never making the app worse).
            let (verify, verify_secs) = run_app_measured_opts(
                work,
                app_source,
                spec,
                options.engine,
                options.init_snapshots,
            );
            let committed_ok = matches!(&verify, Ok(actual) if actual.behavior_eq(expected));
            if !committed_ok {
                work.set_module(module, original_source);
                return Ok(ModuleReport {
                    module: module.to_owned(),
                    attrs_before,
                    attrs_after: attrs_before,
                    removed: Vec::new(),
                    kept: attrs,
                    dd_stats: result.stats,
                    debloat_secs: debloat_secs + verify_secs,
                });
            }
            let kept: Vec<String> = attrs
                .iter()
                .filter(|a| keep.contains(*a))
                .cloned()
                .collect();
            let removed: Vec<String> = attrs
                .iter()
                .filter(|a| !keep.contains(*a))
                .cloned()
                .collect();
            Ok(ModuleReport {
                module: module.to_owned(),
                attrs_before,
                attrs_after: kept.len(),
                removed,
                kept,
                dd_stats: result.stats,
                debloat_secs: debloat_secs + verify_secs,
            })
        }
        Err(trim_dd::DdError::OracleRejectsWhole) => {
            // The untouched module somehow fails — leave it alone (§5.4's
            // philosophy: never make the app worse).
            Ok(ModuleReport {
                module: module.to_owned(),
                attrs_before,
                attrs_after: attrs_before,
                removed: Vec::new(),
                kept: attrs,
                dd_stats: DdStats::default(),
                debloat_secs,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{run_app, TestCase};

    fn torch_registry() -> Registry {
        let mut r = Registry::new();
        r.set_module(
            "torch",
            "from torch.nn import Linear, MSELoss\nfrom torch.optim import SGD\nclass tensor:\n    def __init__(self, data):\n        self.data = data\ndef add(t1, t2):\n    return tensor(t1.data + t2.data)\ndef view(t, dim1, dim2):\n    return t\n",
        );
        r.set_module(
            "torch.nn",
            "class Linear:\n    def __init__(self, a, b):\n        self.a = a\n        self.b = b\n    def forward(self, x):\n        return x\nclass MSELoss:\n    pass\n",
        );
        r.set_module("torch.optim", "__lt_work__(50)\nclass SGD:\n    pass\n");
        r
    }

    // Figure 5's running example.
    const APP: &str = "import torch\nx = torch.tensor([1.0, 2.0])\ny = torch.tensor([3.0, 4.0])\nz = torch.view(torch.add(x, y), 2, 1)\nmodel = torch.nn.Linear(2, 1)\ndef handler(event, context):\n    return model.forward(z.data)\n";

    fn spec() -> OracleSpec {
        OracleSpec::new(vec![TestCase::event("{}")])
    }

    #[test]
    fn running_example_removes_mseloss_and_sgd() {
        let mut work = torch_registry();
        let expected = run_app(&work, APP, &spec()).unwrap();
        let report = debloat_module(
            &mut work,
            APP,
            &spec(),
            &expected,
            "torch",
            &BTreeSet::new(),
            &DebloatOptions::default(),
        )
        .unwrap();
        assert!(report.removed.contains(&"SGD".to_owned()));
        for needed in ["tensor", "add", "view"] {
            assert!(
                report.kept.contains(&needed.to_owned()),
                "{needed} must survive"
            );
        }
        // The app reaches Linear through `torch.nn.Linear`, so the from-import
        // only has to keep *one* name as an anchor that loads torch.nn — a
        // 1-minimal result keeps exactly one of {Linear, MSELoss} (CPython's
        // submodule binding gives the paper's artifact the same freedom).
        let nn_anchors = ["Linear", "MSELoss"]
            .iter()
            .filter(|a| report.kept.contains(&(**a).to_owned()))
            .count();
        assert_eq!(nn_anchors, 1, "exactly one torch.nn anchor survives");
        let src = work.source("torch").unwrap();
        assert!(!src.contains("torch.optim"), "optim import dropped:\n{src}");
        // Result still behaves identically.
        let after = run_app(&work, APP, &spec()).unwrap();
        assert!(after.behavior_eq(&expected));
        // And is faster to initialize (torch.optim's __lt_work__ skipped).
        assert!(after.init_secs < expected.init_secs);
    }

    #[test]
    fn must_keep_attributes_survive_without_probing() {
        let mut work = torch_registry();
        let expected = run_app(&work, APP, &spec()).unwrap();
        let must_keep: BTreeSet<String> = ["SGD"].iter().map(|s| (*s).to_owned()).collect();
        let report = debloat_module(
            &mut work,
            APP,
            &spec(),
            &expected,
            "torch",
            &must_keep,
            &DebloatOptions::default(),
        )
        .unwrap();
        assert!(report.kept.contains(&"SGD".to_owned()));
        assert!(!report.removed.contains(&"SGD".to_owned()));
    }

    #[test]
    fn parallel_debloat_matches_sequential() {
        let spec = spec();
        let mut seq_work = torch_registry();
        let expected = run_app(&seq_work, APP, &spec).unwrap();
        let seq = debloat_module(
            &mut seq_work,
            APP,
            &spec,
            &expected,
            "torch",
            &BTreeSet::new(),
            &DebloatOptions::default(),
        )
        .unwrap();
        let mut par_work = torch_registry();
        let par = debloat_module(
            &mut par_work,
            APP,
            &spec,
            &expected,
            "torch",
            &BTreeSet::new(),
            &DebloatOptions {
                threads: 4,
                ..DebloatOptions::default()
            },
        )
        .unwrap();
        assert_eq!(seq.kept, par.kept);
        assert_eq!(seq.removed, par.removed);
        assert_eq!(seq_work.source("torch"), par_work.source("torch"));
    }

    #[test]
    fn greedy_with_parallel_probes_is_a_config_error() {
        let mut work = torch_registry();
        let expected = run_app(&work, APP, &spec()).unwrap();
        let err = debloat_module(
            &mut work,
            APP,
            &spec(),
            &expected,
            "torch",
            &BTreeSet::new(),
            &DebloatOptions {
                threads: 4,
                algorithm: Algorithm::Greedy,
                ..DebloatOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, TrimError::Config(_)));
        assert_eq!(
            work.source("torch"),
            torch_registry().source("torch"),
            "rejected configuration must not touch the registry"
        );
    }

    #[test]
    fn probe_cache_answers_repeat_runs_without_new_probes() {
        let cache = crate::probe_cache::ProbeCache::shared();
        let options = DebloatOptions {
            probe_cache: Some(cache.clone()),
            ..DebloatOptions::default()
        };
        let spec = spec();
        let mut work1 = torch_registry();
        let expected = run_app(&work1, APP, &spec).unwrap();
        let first = debloat_module(
            &mut work1,
            APP,
            &spec,
            &expected,
            "torch",
            &BTreeSet::new(),
            &options,
        )
        .unwrap();
        let misses_after_first = cache.misses();
        assert!(misses_after_first > 0, "cold run populates the cache");
        // Identical inputs: every probe answers from the cache, so the run
        // spends zero simulated oracle time.
        let mut work2 = torch_registry();
        let second = debloat_module(
            &mut work2,
            APP,
            &spec,
            &expected,
            "torch",
            &BTreeSet::new(),
            &options,
        )
        .unwrap();
        assert_eq!(first.kept, second.kept);
        assert_eq!(work1.source("torch"), work2.source("torch"));
        assert_eq!(
            cache.misses(),
            misses_after_first,
            "warm run must not miss the probe cache"
        );
        assert!(cache.hits() > 0);
    }

    #[test]
    fn parallel_debloat_shares_the_probe_cache() {
        let cache = crate::probe_cache::ProbeCache::shared();
        let spec = spec();
        let mut seq_work = torch_registry();
        let expected = run_app(&seq_work, APP, &spec).unwrap();
        let seq = debloat_module(
            &mut seq_work,
            APP,
            &spec,
            &expected,
            "torch",
            &BTreeSet::new(),
            &DebloatOptions {
                probe_cache: Some(cache.clone()),
                ..DebloatOptions::default()
            },
        )
        .unwrap();
        let hits_before = cache.hits();
        let mut par_work = torch_registry();
        let par = debloat_module(
            &mut par_work,
            APP,
            &spec,
            &expected,
            "torch",
            &BTreeSet::new(),
            &DebloatOptions {
                threads: 4,
                probe_cache: Some(cache.clone()),
                ..DebloatOptions::default()
            },
        )
        .unwrap();
        assert_eq!(seq.kept, par.kept);
        assert_eq!(seq_work.source("torch"), par_work.source("torch"));
        assert!(
            cache.hits() > hits_before,
            "parallel workers must reuse sequential verdicts"
        );
    }

    #[test]
    fn debloat_accumulates_probe_time() {
        let mut work = torch_registry();
        let expected = run_app(&work, APP, &spec()).unwrap();
        let report = debloat_module(
            &mut work,
            APP,
            &spec(),
            &expected,
            "torch",
            &BTreeSet::new(),
            &DebloatOptions::default(),
        )
        .unwrap();
        assert!(report.debloat_secs > 0.0);
        assert!(report.dd_stats.oracle_invocations > 0);
    }

    #[test]
    fn greedy_algorithm_matches_ddmin_here() {
        let spec = spec();
        let mut dd_work = torch_registry();
        let expected = run_app(&dd_work, APP, &spec).unwrap();
        let dd = debloat_module(
            &mut dd_work,
            APP,
            &spec,
            &expected,
            "torch",
            &BTreeSet::new(),
            &DebloatOptions::default(),
        )
        .unwrap();
        let mut greedy_work = torch_registry();
        let greedy = debloat_module(
            &mut greedy_work,
            APP,
            &spec,
            &expected,
            "torch",
            &BTreeSet::new(),
            &DebloatOptions {
                algorithm: Algorithm::Greedy,
                ..DebloatOptions::default()
            },
        )
        .unwrap();
        // Both are sound; on this (mostly monotone) module they agree on
        // what can go.
        assert_eq!(dd.attrs_after, greedy.attrs_after);
        let after = run_app(&greedy_work, APP, &spec).unwrap();
        assert!(after.behavior_eq(&expected));
    }

    #[test]
    fn submodule_can_be_debloated_independently() {
        let mut work = torch_registry();
        let expected = run_app(&work, APP, &spec()).unwrap();
        let report = debloat_module(
            &mut work,
            APP,
            &spec(),
            &expected,
            "torch.nn",
            &BTreeSet::new(),
            &DebloatOptions::default(),
        )
        .unwrap();
        // torch/__init__ does `from torch.nn import Linear, MSELoss`, so both
        // survive in torch.nn (the oracle catches the dependency) — but the
        // DD process must terminate and keep behavior intact.
        assert!(report.kept.contains(&"Linear".to_owned()));
        let after = run_app(&work, APP, &spec()).unwrap();
        assert!(after.behavior_eq(&expected));
    }

    #[test]
    fn parse_engine_accepts_both_tiers() {
        assert_eq!(parse_engine("vm").unwrap(), Engine::Vm);
        assert_eq!(parse_engine("tree").unwrap(), Engine::Tree);
    }

    #[test]
    fn parse_engine_rejects_unknown_values() {
        for bad in ["", "VM", "jit", "treewalker"] {
            match parse_engine(bad) {
                Err(TrimError::Config(msg)) => {
                    assert!(msg.contains(&format!("unknown engine `{bad}`")), "{msg}");
                    assert!(msg.contains("expected vm|tree"), "{msg}");
                }
                other => panic!("expected Config error for {bad:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn tree_engine_probes_identically() {
        let mut vm_work = torch_registry();
        let expected = run_app(&vm_work, APP, &spec()).unwrap();
        let vm_report = debloat_module(
            &mut vm_work,
            APP,
            &spec(),
            &expected,
            "torch.nn",
            &BTreeSet::new(),
            &DebloatOptions::default(),
        )
        .unwrap();
        let mut tree_work = torch_registry();
        let tree_report = debloat_module(
            &mut tree_work,
            APP,
            &spec(),
            &expected,
            "torch.nn",
            &BTreeSet::new(),
            &DebloatOptions {
                engine: Engine::Tree,
                ..DebloatOptions::default()
            },
        )
        .unwrap();
        assert_eq!(vm_report, tree_report);
        assert_eq!(vm_work.fingerprint(), tree_work.fingerprint());
    }
}
