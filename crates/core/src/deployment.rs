//! Deployment packaging (§5.4): bundle the trimmed application with a
//! fallback wrapper, ready to upload alongside the original function.
//!
//! The wrapper is generated as pylite source and runs *inside* the deployed
//! function: it calls the real handler and, on `AttributeError`, invokes
//! the original function as an independent serverless instance (modeled by
//! an external call) and returns a structured fallback response carrying
//! the notification the user should feed back into the oracle set.

use crate::pipeline::TrimReport;
use pylite::Registry;

/// The name the wrapper rebinds the user handler to.
pub const ORIGINAL_HANDLER_BINDING: &str = "__lt_user_handler__";

/// The external service the wrapper "invokes" on fallback (stands in for a
/// cross-function Lambda invocation).
pub const FALLBACK_SERVICE: &str = "lambda";

/// A deployable bundle: the trimmed image (modules + wrapped app) plus the
/// untouched original image that serves as the fallback target.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentPackage {
    /// The trimmed function's site-packages.
    pub trimmed: Registry,
    /// The trimmed function's application source, wrapped with the §5.4
    /// fallback handler.
    pub wrapped_app_source: String,
    /// The original (fallback) function's site-packages.
    pub original: Registry,
    /// The original function's application source (unwrapped).
    pub original_app_source: String,
    /// Name of the handler entry point (same for both functions).
    pub handler: String,
}

impl DeploymentPackage {
    /// Total source bytes of the trimmed image (code-size accounting).
    pub fn trimmed_code_bytes(&self) -> u64 {
        self.trimmed.total_source_bytes() + self.wrapped_app_source.len() as u64
    }

    /// Total source bytes of the original image.
    pub fn original_code_bytes(&self) -> u64 {
        self.original.total_source_bytes() + self.original_app_source.len() as u64
    }
}

/// Generate the §5.4 wrapper around `handler` as pylite source, to be
/// appended to the trimmed application.
///
/// During normal operation the wrapper adds one function call — the
/// negligible overhead §5.4 describes. On `AttributeError` it issues the
/// cross-function invocation and returns a response dict with the fallback
/// notification.
pub fn wrapper_source(handler: &str) -> String {
    format!(
        concat!(
            "{orig} = {handler}\n",
            "def {handler}(event, context):\n",
            "    try:\n",
            "        return {orig}(event, context)\n",
            "    except AttributeError as e:\n",
            "        __lt_extcall__(\"{service}\", \"invoke-original\", str(e))\n",
            "        return {{\"fallback\": True, \"notification\": str(e)}}\n",
        ),
        orig = ORIGINAL_HANDLER_BINDING,
        handler = handler,
        service = FALLBACK_SERVICE,
    )
}

/// Package a completed trim into a deployable bundle.
pub fn package(
    original_registry: &Registry,
    app_source: &str,
    handler: &str,
    report: &TrimReport,
) -> DeploymentPackage {
    let mut wrapped = String::with_capacity(app_source.len() + 256);
    wrapped.push_str(app_source);
    if !wrapped.ends_with('\n') {
        wrapped.push('\n');
    }
    wrapped.push_str(&wrapper_source(handler));
    DeploymentPackage {
        trimmed: report.trimmed.clone(),
        wrapped_app_source: wrapped,
        original: original_registry.clone(),
        original_app_source: app_source.to_owned(),
        handler: handler.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{parse_literal, OracleSpec, TestCase};
    use crate::pipeline::trim_app;
    use crate::DebloatOptions;
    use pylite::Interpreter;

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.set_module(
            "svc",
            "__lt_work__(40)\ndef common(x):\n    return x * 2\ndef rare(x):\n    return x * 100\n",
        );
        r
    }

    const APP: &str = "import svc\ndef handler(event, context):\n    if event[\"op\"] == \"rare\":\n        return getattr(svc, \"rare\")(event[\"n\"])\n    return svc.common(event[\"n\"])\n";

    fn packaged() -> DeploymentPackage {
        let r = registry();
        let spec = OracleSpec::new(vec![TestCase::event("{\"op\": \"c\", \"n\": 3}")]);
        let report = trim_app(&r, APP, &spec, &DebloatOptions::default()).unwrap();
        package(&r, APP, "handler", &report)
    }

    fn invoke(pkg_registry: &Registry, app: &str, event: &str) -> (pylite::Value, Interpreter) {
        let mut it = Interpreter::new(pkg_registry.clone());
        it.exec_main(app).expect("wrapped app initializes");
        let event = parse_literal(event).unwrap();
        let out = it
            .call_handler("handler", event, pylite::Value::None)
            .expect("wrapper never raises AttributeError");
        (out, it)
    }

    #[test]
    fn wrapper_passes_through_normal_requests() {
        let pkg = packaged();
        let (out, it) = invoke(
            &pkg.trimmed,
            &pkg.wrapped_app_source,
            "{\"op\": \"c\", \"n\": 21}",
        );
        assert_eq!(pylite::py_repr(&out), "42");
        assert!(
            !it.extcalls.iter().any(|c| c.starts_with("lambda:")),
            "no cross-function call on the direct path"
        );
    }

    #[test]
    fn wrapper_catches_deleted_attribute_and_notifies() {
        let pkg = packaged();
        // `rare` is only reachable via getattr and absent from the oracle:
        // trimmed away.
        let (out, it) = invoke(
            &pkg.trimmed,
            &pkg.wrapped_app_source,
            "{\"op\": \"rare\", \"n\": 2}",
        );
        let repr = pylite::py_repr(&out);
        assert!(repr.contains("\"fallback\": True"), "got {repr}");
        assert!(repr.contains("rare"), "notification names the attribute");
        assert!(it
            .extcalls
            .iter()
            .any(|c| c.starts_with("lambda:invoke-original")));
    }

    #[test]
    fn original_image_still_serves_rare_requests() {
        let pkg = packaged();
        let (out, _) = invoke(
            &pkg.original,
            &pkg.original_app_source,
            "{\"op\": \"rare\", \"n\": 2}",
        );
        assert_eq!(pylite::py_repr(&out), "200");
    }

    #[test]
    fn trimmed_image_is_smaller() {
        let pkg = packaged();
        assert!(pkg.trimmed_code_bytes() < pkg.original_code_bytes() + 512);
        assert!(pkg.trimmed.total_source_bytes() < pkg.original.total_source_bytes());
    }

    #[test]
    fn wrapper_source_is_valid_pylite() {
        let src = wrapper_source("handler");
        // Must parse standalone after a stub handler definition.
        let full = format!("def handler(event, context):\n    return 1\n{src}");
        assert!(pylite::parse(&full).is_ok());
    }

    #[test]
    fn wrapper_does_not_mask_other_exceptions() {
        let pkg = packaged();
        let mut it = Interpreter::new(pkg.trimmed.clone());
        it.exec_main(&pkg.wrapped_app_source).unwrap();
        // Missing "op" key → KeyError, which must propagate unchanged.
        let event = parse_literal("{\"n\": 1}").unwrap();
        let err = it
            .call_handler("handler", event, pylite::Value::None)
            .unwrap_err();
        assert!(matches!(err.kind, pylite::ExcKind::KeyError));
    }
}
