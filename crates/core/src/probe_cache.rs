//! Cross-run memoization of DD oracle verdicts (§8.3 scalability).
//!
//! A DD probe's verdict is fully determined by the *base* registry content,
//! the application + oracle spec, the module being rewritten, and the kept
//! attribute set — the rewrite itself is deterministic. [`ProbeCache`] keys
//! verdicts on exactly that tuple, using the registry's incremental content
//! [fingerprint](pylite::Registry::fingerprint), so probe results are shared
//!
//! * across analysis-mode comparisons (app-only vs interprocedural runs of
//!   the same app probe many identical candidates),
//! * across incremental retrims (a retrim after a small corpus edit only
//!   re-probes modules whose fingerprint-relevant inputs changed), and
//! * across threads (the cache is `Send + Sync`; share it via `Arc`).
//!
//! This sits *above* the per-run subset cache inside `trim-dd`: that one
//! dedupes subsets within a single `ddmin` run, this one survives runs.

use crate::oracle::OracleSpec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// The identity of one oracle probe.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProbeKey {
    /// Content fingerprint of the base registry the probe overlays.
    pub registry_fingerprint: u64,
    /// Fingerprint of the application source + oracle spec.
    pub app_fingerprint: u64,
    /// The module whose attribute set is being minimized.
    pub module: String,
    /// The kept attribute set (sorted, deduplicated).
    pub keep: Vec<String>,
}

impl ProbeKey {
    /// Build a key from the probe's inputs. `keep` may arrive in any order.
    pub fn new(
        registry_fingerprint: u64,
        app_fingerprint: u64,
        module: &str,
        keep: impl IntoIterator<Item = String>,
    ) -> Self {
        let mut keep: Vec<String> = keep.into_iter().collect();
        keep.sort();
        keep.dedup();
        ProbeKey {
            registry_fingerprint,
            app_fingerprint,
            module: module.to_owned(),
            keep,
        }
    }
}

/// Stable fingerprint of the application source and oracle specification —
/// the probe-verdict inputs the registry fingerprint does not cover.
pub fn app_fingerprint(app_source: &str, spec: &OracleSpec) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        h ^= 0xfe;
        h = h.wrapping_mul(PRIME);
    };
    eat(app_source.as_bytes());
    eat(spec.handler.as_bytes());
    for case in &spec.cases {
        eat(case.event.as_bytes());
        eat(case.context.as_bytes());
    }
    h
}

/// A thread-safe map from [`ProbeKey`] to oracle verdict, with hit/miss
/// accounting. Share one across pipeline runs via [`ProbeCache::shared`].
#[derive(Default)]
pub struct ProbeCache {
    map: RwLock<HashMap<ProbeKey, bool>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
}

impl std::fmt::Debug for ProbeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProbeCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("insertions", &self.insertions())
            .finish()
    }
}

impl ProbeCache {
    /// An empty cache behind an `Arc`, ready to share across runs/threads.
    pub fn shared() -> Arc<ProbeCache> {
        Arc::new(ProbeCache::default())
    }

    /// Cached verdict for `key`, if any. Counts a hit or a miss.
    pub fn get(&self, key: &ProbeKey) -> Option<bool> {
        let v = self
            .map
            .read()
            .expect("probe cache poisoned")
            .get(key)
            .copied();
        match v {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        v
    }

    /// Record a verdict. Counts an insertion even when `key` was already
    /// present — the counter tracks oracle runs whose verdict was stored,
    /// not distinct keys (use [`ProbeCache::len`] for those).
    pub fn insert(&self, key: ProbeKey, verdict: bool) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.map
            .write()
            .expect("probe cache poisoned")
            .insert(key, verdict);
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.map.read().expect("probe cache poisoned").len()
    }

    /// Whether the cache holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to the oracle.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Verdicts stored via [`ProbeCache::insert`] (including overwrites).
    pub fn insertions(&self) -> u64 {
        self.insertions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TestCase;

    #[test]
    fn key_normalizes_keep_order() {
        let a = ProbeKey::new(1, 2, "m", ["b".to_owned(), "a".to_owned()]);
        let b = ProbeKey::new(1, 2, "m", ["a".to_owned(), "b".to_owned(), "a".to_owned()]);
        assert_eq!(a, b);
    }

    #[test]
    fn get_insert_and_accounting() {
        let cache = ProbeCache::shared();
        let key = ProbeKey::new(1, 2, "m", ["a".to_owned()]);
        assert_eq!(cache.get(&key), None);
        cache.insert(key.clone(), true);
        assert_eq!(cache.get(&key), Some(true));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.insertions(), 1);
        assert_eq!(cache.len(), 1);
        // Overwriting a verdict counts as an insertion but not a new key.
        cache.insert(key.clone(), false);
        assert_eq!(cache.insertions(), 2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key), Some(false));
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn app_fingerprint_separates_inputs() {
        let spec = OracleSpec::new(vec![TestCase::event("{}")]);
        let a = app_fingerprint("import x\n", &spec);
        let b = app_fingerprint("import y\n", &spec);
        assert_ne!(a, b);
        let spec2 = OracleSpec::new(vec![TestCase::event("{\"n\": 1}")]);
        assert_ne!(
            app_fingerprint("import x\n", &spec),
            app_fingerprint("import x\n", &spec2)
        );
        assert_eq!(a, app_fingerprint("import x\n", &spec));
    }

    #[test]
    fn cache_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProbeCache>();
    }

    #[test]
    fn cache_hits_are_unaffected_by_symbol_numbering() {
        // Interned symbol ids are an in-memory acceleration detail; two
        // registries with identical module content must produce identical
        // probe keys even when their interners numbered names differently.
        let mut r1 = pylite::Registry::new();
        r1.set_module("m", "alpha = 1\nbeta = 2\n");
        let mut r2 = pylite::Registry::new();
        r2.set_module("m", "alpha = 1\nbeta = 2\n");
        for junk in ["zzz", "gamma", "alpha_skew", "beta"] {
            r2.interner().intern(junk);
        }
        r1.resolve_module("m").unwrap();
        r2.resolve_module("m").unwrap();
        assert_ne!(
            r1.interner().lookup("beta"),
            r2.interner().lookup("beta"),
            "numbering really diverged"
        );

        let spec = OracleSpec::new(vec![TestCase::event("{}")]);
        let app = app_fingerprint("import m\n", &spec);
        let k1 = ProbeKey::new(r1.fingerprint(), app, "m", ["alpha".to_owned()]);
        let k2 = ProbeKey::new(r2.fingerprint(), app, "m", ["alpha".to_owned()]);
        assert_eq!(k1, k2, "probe keys stay content-based");

        let cache = ProbeCache::shared();
        cache.insert(k1, true);
        assert_eq!(
            cache.get(&k2),
            Some(true),
            "verdict reused across numberings"
        );
    }
}
