//! # trim-core — the λ-trim pipeline
//!
//! The paper's primary contribution: a cost-driven debloater for serverless
//! Python(-subset) applications. The pipeline (§4, Figure 3) is
//!
//! ```text
//! app + oracle spec ──> static analyzer ──> cost profiler ──> DD debloater
//!                          (§5.1)              (§5.2)            (§5.3)
//!                                                                  │
//!                                   deployable trimmed registry <──┘
//!                                       (+ fallback wrapper, §5.4)
//! ```
//!
//! * [`attributes`] — attribute-granularity decomposition of modules (§6.1);
//! * [`rewrite`] — single-traversal AST rewriting to a kept attribute set;
//! * [`oracle`] — test-case execution and behavioral equivalence (§5.3);
//! * [`debloater`] — per-module Delta Debugging with probe isolation (§6.3);
//! * [`slicer`] — statement-level selective-init slicing of kept modules;
//! * [`pipeline`] — the full analyzer → profiler → debloater flow;
//! * [`fallback`] — the AttributeError-catching deployment wrapper (§5.4).
//!
//! # Example
//!
//! ```
//! use pylite::Registry;
//! use trim_core::{trim_app, DebloatOptions, OracleSpec, TestCase};
//!
//! # fn main() -> Result<(), trim_core::TrimError> {
//! let mut registry = Registry::new();
//! registry.set_module(
//!     "mathlib",
//!     "def double(x):\n    return x * 2\ndef unused():\n    return 0\n",
//! );
//! let app = "import mathlib\ndef handler(event, context):\n    return mathlib.double(event[\"n\"])\n";
//! let spec = OracleSpec::new(vec![TestCase::event("{\"n\": 3}")]);
//!
//! let report = trim_app(&registry, app, &spec, &DebloatOptions::default())?;
//! assert!(report.after.behavior_eq(&report.before));
//! assert_eq!(report.attrs_removed(), 1); // `unused` is gone
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod attributes;
pub mod debloater;
pub mod deployment;
pub mod fallback;
pub mod incremental;
pub mod oracle;
pub mod pipeline;
pub mod probe_cache;
pub mod report;
pub mod rewrite;
pub mod slicer;

use std::fmt;

pub use attributes::{is_magic, module_attributes};
pub use debloater::{
    debloat_module, parse_engine, Algorithm, DebloatOptions, HazardMode, ModuleReport, ENGINE_TIERS,
};
pub use deployment::{package, wrapper_source, DeploymentPackage};
pub use fallback::{
    invoke_with_fallback, FallbackCost, FallbackInstanceState, FallbackOutcome, FALLBACK_SETUP_SECS,
};
pub use incremental::{retrim_with_log, IncrementalReport, TrimLog};
pub use oracle::{
    oracle_passes, run_app, run_app_measured, run_app_measured_opts, run_app_measured_with,
    run_app_opts, run_app_with, Execution, OracleSpec, TestCase,
};
pub use pipeline::{trim_app, trim_corpus_parallel, CorpusJob, TrimReport};
pub use probe_cache::{app_fingerprint, ProbeCache, ProbeKey};
pub use pylite::Engine;
pub use report::{render as render_report, render_removals};
pub use rewrite::{rewrite_module, rewrite_source};
pub use slicer::{slice_modules, SliceReport};
pub use trim_analysis::AnalysisMode;

/// Errors from the λ-trim pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum TrimError {
    /// A module or the application failed to parse.
    Parse(pylite::ParseError),
    /// The unmodified application failed its own oracle run — DD requires
    /// the original program to satisfy the oracle.
    Baseline(pylite::PyErr),
    /// The requested option combination is unsupported (e.g. greedy
    /// minimization with parallel probe workers).
    Config(String),
}

impl fmt::Display for TrimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrimError::Parse(e) => write!(f, "parse error: {e}"),
            TrimError::Baseline(e) => write!(f, "baseline application run failed: {e}"),
            TrimError::Config(msg) => write!(f, "unsupported configuration: {msg}"),
        }
    }
}

impl std::error::Error for TrimError {}
