//! Deployment with fallbacks (§5.4): wrap the debloated handler; if an
//! input ever touches a deleted attribute, the resulting `AttributeError`
//! triggers an invocation of the *original* function as an independent
//! serverless instance, and the wrapper returns that response plus a
//! notification about the failing input.

use crate::oracle::{parse_literal, TestCase};
use pylite::{py_repr, ExcKind, Interpreter, PyErr, Registry};

/// How a wrapped invocation completed.
#[derive(Debug, Clone, PartialEq)]
pub enum FallbackOutcome {
    /// The debloated function handled the request directly.
    Direct {
        /// `repr` of the handler's return value.
        result: String,
    },
    /// A deleted attribute was touched; the original function answered.
    FellBack {
        /// `repr` of the *original* function's return value.
        result: String,
        /// The `AttributeError` that triggered the fallback — the
        /// notification the user should feed back into the oracle set.
        error: PyErr,
    },
}

impl FallbackOutcome {
    /// The response payload regardless of path.
    pub fn result(&self) -> &str {
        match self {
            FallbackOutcome::Direct { result } | FallbackOutcome::FellBack { result, .. } => result,
        }
    }

    /// Whether the fallback path ran.
    pub fn fell_back(&self) -> bool {
        matches!(self, FallbackOutcome::FellBack { .. })
    }
}

/// Virtual-time cost components of a wrapped invocation, for Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FallbackCost {
    /// Initialization time of the trimmed function (s).
    pub trimmed_init_secs: f64,
    /// Execution time spent in the trimmed function before returning or
    /// hitting the deleted attribute (s).
    pub trimmed_exec_secs: f64,
    /// Wrapper setup + communication overhead (s). ~50 ms per §8.7.
    pub setup_secs: f64,
    /// Initialization time of the fallback (original) instance (s);
    /// zero when no fallback ran or the fallback instance was warm.
    pub fallback_init_secs: f64,
    /// Execution time of the fallback instance (s); zero when unused.
    pub fallback_exec_secs: f64,
}

impl FallbackCost {
    /// End-to-end seconds for a *cold* trimmed instance (init included).
    pub fn e2e_cold_secs(&self) -> f64 {
        self.trimmed_init_secs
            + self.trimmed_exec_secs
            + self.setup_secs
            + self.fallback_init_secs
            + self.fallback_exec_secs
    }

    /// End-to-end seconds when the trimmed instance was warm.
    pub fn e2e_warm_secs(&self) -> f64 {
        self.trimmed_exec_secs + self.setup_secs + self.fallback_init_secs + self.fallback_exec_secs
    }
}

/// Wrapper setup + inter-function communication overhead (§8.7: ≈50 ms).
pub const FALLBACK_SETUP_SECS: f64 = 0.050;

/// Whether the fallback (original) instance is cold or warm when invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackInstanceState {
    /// The original function must cold-start (pays its full init).
    Cold,
    /// A warm original instance exists (exec only).
    Warm,
}

/// Invoke the trimmed application's handler for one test case, falling back
/// to the original application on `AttributeError` (§5.4).
///
/// `fallback_state` controls whether the original instance pays its
/// initialization (cold) or not (warm) — the four combinations of Table 4.
///
/// # Errors
///
/// Errors other than `AttributeError` (and failures of the original function
/// itself) propagate: the wrapper only catches deleted-attribute accesses.
pub fn invoke_with_fallback(
    trimmed: &Registry,
    original: &Registry,
    app_source: &str,
    handler: &str,
    case: &TestCase,
    fallback_state: FallbackInstanceState,
) -> Result<(FallbackOutcome, FallbackCost), PyErr> {
    let mut cost = FallbackCost::default();
    let mut interp = Interpreter::new(trimmed.clone());
    // Initialization of the trimmed function. An AttributeError here (e.g.
    // an import-time access to a deleted attribute) also triggers fallback.
    let init_result = interp.exec_main(app_source);
    cost.trimmed_init_secs = interp.meter.clock_secs();
    let exec_result = init_result.and_then(|_| {
        let before = interp.meter.clock_secs();
        let event = parse_literal(&case.event)?;
        let context = parse_literal(&case.context)?;
        let r = interp.call_handler(handler, event, context);
        cost.trimmed_exec_secs = interp.meter.clock_secs() - before;
        r
    });
    match exec_result {
        Ok(v) => Ok((
            FallbackOutcome::Direct {
                result: py_repr(&v),
            },
            cost,
        )),
        Err(e) if matches!(e.kind, ExcKind::AttributeError) => {
            cost.setup_secs = FALLBACK_SETUP_SECS;
            // Invoke the original function as an independent instance.
            let mut orig = Interpreter::new(original.clone());
            orig.exec_main(app_source)?;
            let init = orig.meter.clock_secs();
            if fallback_state == FallbackInstanceState::Cold {
                cost.fallback_init_secs = init;
            }
            let before = orig.meter.clock_secs();
            let event = parse_literal(&case.event)?;
            let context = parse_literal(&case.context)?;
            let v = orig.call_handler(handler, event, context)?;
            cost.fallback_exec_secs = orig.meter.clock_secs() - before;
            Ok((
                FallbackOutcome::FellBack {
                    result: py_repr(&v),
                    error: e,
                },
                cost,
            ))
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn original() -> Registry {
        let mut r = Registry::new();
        r.set_module(
            "lib",
            "__lt_work__(400)\ndef used(x):\n    return x + 1\ndef rare(x):\n    return x * 100\n",
        );
        r
    }

    fn over_trimmed() -> Registry {
        // `rare` was removed because the oracle set never exercised it.
        let mut r = Registry::new();
        r.set_module("lib", "__lt_work__(60)\ndef used(x):\n    return x + 1\n");
        r
    }

    const APP: &str = "import lib\ndef handler(event, context):\n    if event[\"mode\"] == \"rare\":\n        return lib.rare(event[\"n\"])\n    return lib.used(event[\"n\"])\n";

    #[test]
    fn common_input_runs_direct() {
        let (outcome, cost) = invoke_with_fallback(
            &over_trimmed(),
            &original(),
            APP,
            "handler",
            &TestCase::event("{\"mode\": \"common\", \"n\": 5}"),
            FallbackInstanceState::Cold,
        )
        .unwrap();
        assert_eq!(outcome, FallbackOutcome::Direct { result: "6".into() });
        assert_eq!(cost.setup_secs, 0.0, "no wrapper overhead on direct path");
        assert_eq!(cost.fallback_exec_secs, 0.0);
    }

    #[test]
    fn deleted_attribute_triggers_fallback_with_correct_result() {
        let (outcome, cost) = invoke_with_fallback(
            &over_trimmed(),
            &original(),
            APP,
            "handler",
            &TestCase::event("{\"mode\": \"rare\", \"n\": 5}"),
            FallbackInstanceState::Cold,
        )
        .unwrap();
        assert!(outcome.fell_back());
        assert_eq!(outcome.result(), "500", "original function's answer");
        match outcome {
            FallbackOutcome::FellBack { error, .. } => {
                assert!(matches!(error.kind, ExcKind::AttributeError));
                assert!(error.message.contains("rare"));
            }
            _ => unreachable!(),
        }
        assert!(cost.setup_secs > 0.0);
        assert!(cost.fallback_init_secs >= 0.1, "cold fallback pays init");
        assert!(cost.fallback_exec_secs > 0.0);
    }

    #[test]
    fn warm_fallback_skips_original_init() {
        let case = TestCase::event("{\"mode\": \"rare\", \"n\": 2}");
        let (_, cold) = invoke_with_fallback(
            &over_trimmed(),
            &original(),
            APP,
            "handler",
            &case,
            FallbackInstanceState::Cold,
        )
        .unwrap();
        let (_, warm) = invoke_with_fallback(
            &over_trimmed(),
            &original(),
            APP,
            "handler",
            &case,
            FallbackInstanceState::Warm,
        )
        .unwrap();
        assert_eq!(warm.fallback_init_secs, 0.0);
        assert!(warm.e2e_warm_secs() < cold.e2e_cold_secs());
    }

    #[test]
    fn non_attribute_errors_propagate() {
        let err = invoke_with_fallback(
            &over_trimmed(),
            &original(),
            APP,
            "handler",
            &TestCase::event("{\"n\": 1}"), // missing "mode" key → KeyError
            FallbackInstanceState::Cold,
        )
        .unwrap_err();
        assert!(matches!(err.kind, ExcKind::KeyError));
    }

    #[test]
    fn cold_e2e_dominated_by_fallback_when_triggered() {
        // §8.7: cold fallback roughly doubles the E2E latency.
        let case = TestCase::event("{\"mode\": \"rare\", \"n\": 2}");
        let (_, cost) = invoke_with_fallback(
            &over_trimmed(),
            &original(),
            APP,
            "handler",
            &case,
            FallbackInstanceState::Cold,
        )
        .unwrap();
        let fallback_share =
            (cost.fallback_init_secs + cost.fallback_exec_secs) / cost.e2e_cold_secs();
        assert!(fallback_share > 0.5);
    }
}
