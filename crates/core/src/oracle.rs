//! The oracle: run an application against its test cases and compare
//! observable behavior (§5.3).
//!
//! A λ-trim oracle specification is a set of inputs (each an `event` plus a
//! `context`) for which the debloated program must produce the same output
//! as the original. "Output" is the captured standard output, the handler's
//! return values, and the log of external-service calls — the serverless
//! side-effect surface §5.3 identifies (local side effects are ignorable
//! because instances are stateless).

use pylite::ast::Expr;
use pylite::{parse_expr, py_repr, Engine, ExcKind, Interpreter, PyErr, Registry, Value};

/// One oracle test case: the JSON-like event and the invocation context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCase {
    /// pylite literal source for the `event` argument, e.g. `{"n": 3}`.
    pub event: String,
    /// pylite literal source for the `context` argument (default `None`).
    pub context: String,
}

impl TestCase {
    /// A test case with the given event literal and a `None` context.
    pub fn event(event: impl Into<String>) -> Self {
        TestCase {
            event: event.into(),
            context: "None".into(),
        }
    }
}

/// The oracle specification: handler name plus test cases (§5, "each test
/// must contain an event and a context").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleSpec {
    /// Name of the lambda handler bound at module top level.
    pub handler: String,
    /// The input test cases (the paper uses 1–3 per application).
    pub cases: Vec<TestCase>,
}

impl OracleSpec {
    /// Spec with the conventional handler name `handler`.
    pub fn new(cases: Vec<TestCase>) -> Self {
        OracleSpec {
            handler: "handler".into(),
            cases,
        }
    }
}

/// The observable behavior of one application run over all test cases,
/// plus the measurements every experiment consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// Captured stdout lines (initialization + all handler calls).
    pub stdout: Vec<String>,
    /// External-service call log.
    pub extcalls: Vec<String>,
    /// `repr` of each handler return value, in case order.
    pub results: Vec<String>,
    /// Function Initialization time in virtual seconds.
    pub init_secs: f64,
    /// Mean handler execution time per case in virtual seconds.
    pub exec_secs: f64,
    /// Peak simulated memory in MB.
    pub mem_mb: f64,
}

impl Execution {
    /// Behavioral equivalence: same stdout, external calls and results.
    /// Timings and memory are *not* compared — they are what trimming is
    /// supposed to change.
    pub fn behavior_eq(&self, other: &Execution) -> bool {
        self.stdout == other.stdout
            && self.extcalls == other.extcalls
            && self.results == other.results
    }
}

/// Evaluate a literal expression (possibly nested containers) to a [`Value`].
///
/// # Errors
///
/// `TypeError` if the expression contains anything but literals.
pub fn eval_literal(e: &Expr) -> Result<Value, PyErr> {
    match e {
        Expr::None => Ok(Value::None),
        Expr::True => Ok(Value::Bool(true)),
        Expr::False => Ok(Value::Bool(false)),
        Expr::Int(v) => Ok(Value::Int(*v)),
        Expr::Float(v) => Ok(Value::Float(*v)),
        Expr::Str(s) => Ok(Value::str(s)),
        Expr::List(items) => Ok(Value::list(
            items.iter().map(eval_literal).collect::<Result<_, _>>()?,
        )),
        Expr::Tuple(items) => Ok(Value::tuple(
            items.iter().map(eval_literal).collect::<Result<_, _>>()?,
        )),
        Expr::Dict(pairs) => {
            let mut out = Vec::with_capacity(pairs.len());
            for (k, v) in pairs {
                out.push((eval_literal(k)?, eval_literal(v)?));
            }
            Ok(Value::dict(out))
        }
        Expr::Unary {
            op: pylite::ast::UnaryOp::Neg,
            operand,
        } => match eval_literal(operand)? {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(PyErr::type_error(format!(
                "cannot negate literal of type {}",
                other.type_name()
            ))),
        },
        _ => Err(PyErr::type_error(
            "oracle events must be literal expressions",
        )),
    }
}

/// Parse a literal source string to a [`Value`].
///
/// # Errors
///
/// `ValueError` on parse failure, `TypeError` on non-literal content.
pub fn parse_literal(source: &str) -> Result<Value, PyErr> {
    let e = parse_expr(source)
        .map_err(|err| PyErr::new(ExcKind::ValueError, format!("bad literal: {err}")))?;
    eval_literal(&e)
}

/// Run the application (initialization + every oracle case) in a fresh,
/// isolated interpreter and capture its observable behavior.
///
/// # Errors
///
/// Any pylite exception raised during initialization or by the handler.
pub fn run_app(
    registry: &Registry,
    app_source: &str,
    spec: &OracleSpec,
) -> Result<Execution, PyErr> {
    run_app_measured(registry, app_source, spec).0
}

/// Like [`run_app`], but on an explicit execution tier — the bytecode VM
/// (the default) or the tree-walking reference interpreter.
///
/// # Errors
///
/// Any pylite exception raised during initialization or by the handler.
pub fn run_app_with(
    registry: &Registry,
    app_source: &str,
    spec: &OracleSpec,
    engine: Engine,
) -> Result<Execution, PyErr> {
    run_app_measured_with(registry, app_source, spec, engine).0
}

/// Like [`run_app_with`], with the init-snapshot switch of
/// [`run_app_measured_opts`].
///
/// # Errors
///
/// Any pylite exception raised during initialization or by the handler.
pub fn run_app_opts(
    registry: &Registry,
    app_source: &str,
    spec: &OracleSpec,
    engine: Engine,
    init_snapshots: bool,
) -> Result<Execution, PyErr> {
    run_app_measured_opts(registry, app_source, spec, engine, init_snapshots).0
}

/// Like [`run_app`], but also returns the virtual time the probe consumed
/// regardless of success — the quantity the debloater accumulates into the
/// per-application "debloating time" of Table 3.
pub fn run_app_measured(
    registry: &Registry,
    app_source: &str,
    spec: &OracleSpec,
) -> (Result<Execution, PyErr>, f64) {
    run_app_measured_with(registry, app_source, spec, Engine::default())
}

/// [`run_app_measured`] on an explicit execution tier. Both engines meter
/// virtual time identically (the bytecode differential pins this), so the
/// returned measurement is engine-independent.
pub fn run_app_measured_with(
    registry: &Registry,
    app_source: &str,
    spec: &OracleSpec,
    engine: Engine,
) -> (Result<Execution, PyErr>, f64) {
    run_app_measured_opts(registry, app_source, spec, engine, false)
}

/// [`run_app_measured_with`] with an init-snapshot switch: when
/// `init_snapshots` is true, module initializations are recorded into — and
/// replayed from — the registry family's shared
/// [`pylite::SnapshotStore`], so repeated probes over the same import cone
/// skip re-executing module bodies. Replay is byte-identical to live
/// execution (the differential suites pin this), so the returned
/// [`Execution`] and measurement are unaffected by the switch.
pub fn run_app_measured_opts(
    registry: &Registry,
    app_source: &str,
    spec: &OracleSpec,
    engine: Engine,
    init_snapshots: bool,
) -> (Result<Execution, PyErr>, f64) {
    let mut interp = Interpreter::new(registry.clone());
    interp.engine = engine;
    if init_snapshots {
        interp.enable_init_snapshots();
    }
    let result = run_app_inner(&mut interp, app_source, spec);
    let spent = interp.meter.clock_secs();
    (result, spent)
}

fn run_app_inner(
    interp: &mut Interpreter,
    app_source: &str,
    spec: &OracleSpec,
) -> Result<Execution, PyErr> {
    interp.exec_main(app_source)?;
    let init_secs = interp.meter.clock_secs();
    let mut results = Vec::with_capacity(spec.cases.len());
    let exec_start = interp.meter.clock_secs();
    for case in &spec.cases {
        let event = parse_literal(&case.event)?;
        let context = parse_literal(&case.context)?;
        let out = interp.call_handler(&spec.handler, event, context)?;
        results.push(py_repr(&out));
    }
    let exec_total = interp.meter.clock_secs() - exec_start;
    let exec_secs = if spec.cases.is_empty() {
        0.0
    } else {
        exec_total / spec.cases.len() as f64
    };
    Ok(Execution {
        stdout: interp.stdout.clone(),
        extcalls: interp.extcalls.clone(),
        results,
        init_secs,
        exec_secs,
        mem_mb: interp.meter.mem_mb(),
    })
}

/// An oracle closure over (registry, app, spec, expected behavior): returns
/// `true` iff the app still runs and behaves identically.
pub fn oracle_passes(
    registry: &Registry,
    app_source: &str,
    spec: &OracleSpec,
    expected: &Execution,
) -> bool {
    match run_app(registry, app_source, spec) {
        Ok(actual) => actual.behavior_eq(expected),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.set_module(
            "mathlib",
            "def double(x):\n    return x * 2\ndef unused():\n    return 999\n",
        );
        r
    }

    const APP: &str =
        "import mathlib\ndef handler(event, context):\n    return mathlib.double(event[\"n\"])\n";

    fn spec() -> OracleSpec {
        OracleSpec::new(vec![
            TestCase::event("{\"n\": 3}"),
            TestCase::event("{\"n\": -5}"),
        ])
    }

    #[test]
    fn run_app_captures_results_and_timing() {
        let e = run_app(&registry(), APP, &spec()).unwrap();
        assert_eq!(e.results, vec!["6", "-10"]);
        assert!(e.init_secs > 0.0);
        assert!(e.exec_secs > 0.0);
        assert!(e.mem_mb > 0.0);
    }

    #[test]
    fn behavior_eq_ignores_timing() {
        let a = run_app(&registry(), APP, &spec()).unwrap();
        let mut b = a.clone();
        b.init_secs = 999.0;
        b.mem_mb = 999.0;
        assert!(a.behavior_eq(&b));
    }

    #[test]
    fn behavior_eq_detects_result_changes() {
        let a = run_app(&registry(), APP, &spec()).unwrap();
        let mut b = a.clone();
        b.results[0] = "7".into();
        assert!(!a.behavior_eq(&b));
    }

    #[test]
    fn oracle_passes_on_equivalent_rewrite() {
        let expected = run_app(&registry(), APP, &spec()).unwrap();
        let mut trimmed = registry();
        trimmed.set_module("mathlib", "def double(x):\n    return x * 2\n");
        assert!(oracle_passes(&trimmed, APP, &spec(), &expected));
    }

    #[test]
    fn oracle_fails_on_behavior_change() {
        let expected = run_app(&registry(), APP, &spec()).unwrap();
        let mut broken = registry();
        broken.set_module("mathlib", "def double(x):\n    return x * 3\n");
        assert!(!oracle_passes(&broken, APP, &spec(), &expected));
    }

    #[test]
    fn oracle_fails_on_crash() {
        let expected = run_app(&registry(), APP, &spec()).unwrap();
        let mut broken = registry();
        broken.set_module("mathlib", "pass\n");
        assert!(!oracle_passes(&broken, APP, &spec(), &expected));
    }

    #[test]
    fn extcalls_are_part_of_behavior() {
        let mut r = Registry::new();
        r.set_module(
            "svc",
            "def put(x):\n    __lt_extcall__(\"s3\", \"put\", x)\n",
        );
        let app = "import svc\ndef handler(event, context):\n    svc.put(event)\n    return None\n";
        let spec = OracleSpec::new(vec![TestCase::event("\"payload\"")]);
        let expected = run_app(&r, app, &spec).unwrap();
        assert_eq!(expected.extcalls, vec!["s3:put:payload"]);
        let mut silent = r.clone();
        silent.set_module("svc", "def put(x):\n    pass\n");
        assert!(
            !oracle_passes(&silent, app, &spec, &expected),
            "dropping the external call must fail the oracle"
        );
    }

    #[test]
    fn literal_parsing_covers_containers() {
        let v = parse_literal("{\"a\": [1, 2.5, None], \"b\": (True, -3)}").unwrap();
        assert_eq!(py_repr(&v), "{\"a\": [1, 2.5, None], \"b\": (True, -3)}");
    }

    #[test]
    fn literal_rejects_calls() {
        assert!(parse_literal("f(1)").is_err());
        assert!(parse_literal("not a literal ][").is_err());
    }

    #[test]
    fn module_isolation_prevents_cache_pollution() {
        // §7 "Module isolation": measurements must come from a fresh
        // interpreter. A shared interpreter's sys.modules cache makes the
        // second run's import time collapse to ~zero — the exact bug the
        // paper's per-phase process spawning avoids.
        let r = registry();
        let a = run_app(&r, APP, &spec()).unwrap();
        let b = run_app(&r, APP, &spec()).unwrap();
        assert_eq!(a.init_secs, b.init_secs, "fresh runs measure identically");
        let mut shared = pylite::Interpreter::new(r.clone());
        shared.exec_main(APP).unwrap();
        let first = shared.meter.clock_secs();
        // Re-importing inside the same interpreter hits the module cache.
        let before = shared.meter.clock_secs();
        shared.import_module("mathlib").unwrap();
        let cached_cost = shared.meter.clock_secs() - before;
        assert!(
            cached_cost < first / 10.0,
            "cached import is nearly free — shared-interpreter profiling would be wrong"
        );
    }

    #[test]
    fn empty_case_list_is_valid() {
        let spec = OracleSpec::new(vec![]);
        let e = run_app(&registry(), APP, &spec).unwrap();
        assert!(e.results.is_empty());
        assert_eq!(e.exec_secs, 0.0);
    }
}
