//! Attribute-granularity decomposition of a module (§6.1).
//!
//! When a Python module is imported, every top-level statement executes in
//! program order and each *binding* statement adds an attribute to the module
//! namespace. λ-trim runs DD at this attribute granularity: coarser than
//! statements for function/class definitions (a whole def is one attribute),
//! identical for `import` statements, and *finer* for `from m import a, b, c`
//! — each imported name is its own attribute, so unused names can be trimmed
//! out of the list individually.

use pylite::ast::{Program, Stmt};

/// Whether a name is a magic/dunder attribute (`__file__`, `__name__`, …).
/// Magic attributes are excluded from DD (§6.3).
pub fn is_magic(name: &str) -> bool {
    name.len() > 4 && name.starts_with("__") && name.ends_with("__")
}

/// Extract the top-level attributes a module's body defines, in first-binding
/// order, without duplicates.
///
/// Statements that do not bind a top-level name (bare expressions, loops,
/// conditionals, try blocks) define no attributes and are never touched by
/// the rewriter ("all other code is untouched", §6.3).
pub fn module_attributes(program: &Program) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    let mut push = |name: &str, out: &mut Vec<String>| {
        if !is_magic(name) && seen.insert(name.to_owned()) {
            out.push(name.to_owned());
        }
    };
    for stmt in &program.body {
        match stmt {
            Stmt::FuncDef(f) => push(&f.name, &mut out),
            Stmt::ClassDef(c) => push(&c.name, &mut out),
            Stmt::Assign { targets, .. } => {
                for t in targets {
                    for name in target_names(t) {
                        push(&name, &mut out);
                    }
                }
            }
            Stmt::Import { items } => {
                for item in items {
                    push(item.bound_name(), &mut out);
                }
            }
            Stmt::FromImport { names, .. } => {
                for (name, alias) in names {
                    push(alias.as_deref().unwrap_or(name), &mut out);
                }
            }
            _ => {}
        }
    }
    out
}

fn target_names(target: &pylite::ast::Expr) -> Vec<String> {
    use pylite::ast::Expr;
    match target {
        Expr::Name(n) => vec![n.clone()],
        Expr::Tuple(items) | Expr::List(items) => items.iter().flat_map(target_names).collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pylite::parse;

    #[test]
    fn collects_defs_classes_assigns_imports() {
        let p = parse(
            "import boto3\nfrom torch.nn import Linear, MSELoss as L\nx = 1\ndef f():\n    pass\nclass C:\n    pass\n",
        )
        .unwrap();
        assert_eq!(
            module_attributes(&p),
            vec!["boto3", "Linear", "L", "x", "f", "C"]
        );
    }

    #[test]
    fn dotted_import_binds_top_package() {
        let p = parse("import torch.nn\nimport torch.optim as opt\n").unwrap();
        assert_eq!(module_attributes(&p), vec!["torch", "opt"]);
    }

    #[test]
    fn duplicates_keep_first_position() {
        let p = parse("x = 1\ny = 2\nx = 3\n").unwrap();
        assert_eq!(module_attributes(&p), vec!["x", "y"]);
    }

    #[test]
    fn magic_attributes_are_excluded() {
        let p = parse("__version__ = \"1.0\"\n__all__ = []\nreal = 1\n").unwrap();
        assert_eq!(module_attributes(&p), vec!["real"]);
    }

    #[test]
    fn non_binding_statements_define_nothing() {
        let p =
            parse("print(\"side effect\")\nif x:\n    y = 1\nfor i in []:\n    pass\n").unwrap();
        assert!(module_attributes(&p).is_empty());
    }

    #[test]
    fn tuple_assignment_binds_each_name() {
        let p = parse("a, b = (1, 2)\n").unwrap();
        assert_eq!(module_attributes(&p), vec!["a", "b"]);
    }

    #[test]
    fn is_magic_matches_dunders_only() {
        assert!(is_magic("__file__"));
        assert!(is_magic("__version__"));
        assert!(!is_magic("__x")); // not a closing dunder
        assert!(!is_magic("version"));
        assert!(!is_magic("____")); // too short to be a real dunder name
    }
}
