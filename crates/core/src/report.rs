//! Human-readable rendering of trim results — the `REPORT.txt` the CLI
//! writes next to a trimmed deployment, and the summary the examples print.

use crate::pipeline::TrimReport;
use std::fmt::Write as _;

/// Render a [`TrimReport`] as an aligned plain-text report.
pub fn render(report: &TrimReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "λ-trim report");
    let _ = writeln!(out, "=============");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<30} {:>6} {:>6} {:>8} {:>8} {:>12}",
        "module", "pre", "post", "removed", "probes", "debloat s"
    );
    for m in &report.modules {
        let _ = writeln!(
            out,
            "{:<30} {:>6} {:>6} {:>8} {:>8} {:>12.1}",
            m.module,
            m.attrs_before,
            m.attrs_after,
            m.removed.len(),
            m.dd_stats.oracle_invocations,
            m.debloat_secs
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "function init : {:.3} s -> {:.3} s ({:+.1}%)",
        report.before.init_secs,
        report.after.init_secs,
        -report.init_improvement() * 100.0
    );
    let _ = writeln!(
        out,
        "memory        : {:.1} MB -> {:.1} MB ({:+.1}%)",
        report.before.mem_mb,
        report.after.mem_mb,
        -report.mem_improvement() * 100.0
    );
    let _ = writeln!(
        out,
        "attributes    : {} removed across {} modules",
        report.attrs_removed(),
        report.modules.len()
    );
    let _ = writeln!(
        out,
        "oracle probes : {} (simulated debloat time {:.1} s)",
        report.oracle_invocations, report.debloat_secs
    );
    if !report.slices.is_empty() {
        let before: usize = report.slices.iter().map(|s| s.stmts_before).sum();
        let _ = writeln!(
            out,
            "init slicing  : {} of {} init statements removed across {} modules",
            report.init_stmts_removed(),
            before,
            report.slices.len()
        );
        for s in &report.slices {
            let note = if s.fell_back {
                " (fallback: unsliced)"
            } else if s.refined {
                " (oracle-refined)"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  {:<28} {:>4} / {:>4} statements kept{note}",
                s.module, s.stmts_after, s.stmts_before
            );
        }
    }
    let _ = writeln!(
        out,
        "behavior      : {}",
        if report.after.behavior_eq(&report.before) {
            "identical on the oracle set"
        } else {
            "MISMATCH — do not deploy"
        }
    );
    if !report.fallback_modules.is_empty() {
        let _ = writeln!(
            out,
            "fallback      : {} deployed untrimmed (hazard lints)",
            report.fallback_modules.join(", ")
        );
    }
    for (module, attrs) in &report.pinned_hazard_attrs {
        let _ = writeln!(
            out,
            "pinned        : {module} keeps {{{}}} (hazard-bounded attributes)",
            attrs.iter().cloned().collect::<Vec<_>>().join(", ")
        );
    }
    if !report.lints.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "lints:");
        for lint in &report.lints {
            let _ = writeln!(out, "  {lint}");
        }
    }
    out
}

/// Render the per-module removed-attribute lists (the §5.4 notification
/// payload users consult when extending their oracle set).
pub fn render_removals(report: &TrimReport) -> String {
    let mut out = String::new();
    for m in &report.modules {
        if m.removed.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "[{}] removed {} attribute(s):",
            m.module,
            m.removed.len()
        );
        for chunk in m.removed.chunks(6) {
            let _ = writeln!(out, "    {}", chunk.join(", "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{OracleSpec, TestCase};
    use crate::pipeline::trim_app;
    use crate::DebloatOptions;
    use pylite::Registry;

    fn sample_report() -> TrimReport {
        let mut r = Registry::new();
        r.set_module(
            "lib",
            "def used(x):\n    return x\ndef dead_a(x):\n    return x\ndef dead_b(x):\n    return x\n",
        );
        let app = "import lib\ndef handler(event, context):\n    return lib.used(event[\"n\"])\n";
        let spec = OracleSpec::new(vec![TestCase::event("{\"n\": 1}")]);
        trim_app(&r, app, &spec, &DebloatOptions::default()).unwrap()
    }

    #[test]
    fn render_mentions_every_module_and_verdict() {
        let report = sample_report();
        let text = render(&report);
        assert!(text.contains("lib"));
        assert!(text.contains("identical on the oracle set"));
        assert!(text.contains("function init"));
        assert!(text.contains("oracle probes"));
        assert!(text.contains("init slicing"), "{text}");
        assert!(text.contains("statements kept"), "{text}");
    }

    #[test]
    fn render_removals_lists_attributes() {
        let report = sample_report();
        let text = render_removals(&report);
        assert!(text.contains("dead_a"));
        assert!(text.contains("dead_b"));
        assert!(!text.contains("used,"), "kept attrs are not listed");
    }

    #[test]
    fn render_is_stable_across_runs() {
        assert_eq!(render(&sample_report()), render(&sample_report()));
    }
}
