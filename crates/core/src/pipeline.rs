//! The end-to-end λ-trim pipeline (§4, Figure 3): static analyzer →
//! cost profiler → DD debloater, producing a deployable trimmed registry.

use crate::debloater::{debloat_module, DebloatOptions, HazardMode, ModuleReport};
use crate::oracle::{run_app_opts, Execution, OracleSpec};
use crate::slicer::{slice_modules, SliceReport};
use crate::TrimError;
use pylite::Registry;
use std::collections::{BTreeMap, BTreeSet};
use trim_analysis::lints::Lint;
use trim_analysis::{AnalysisMode, AnalysisOptions};
use trim_profiler::{profile_app, top_k};

/// The complete result of trimming one application.
#[derive(Debug, Clone, PartialEq)]
pub struct TrimReport {
    /// Per-module debloating reports, in debloat order (profiler rank).
    pub modules: Vec<ModuleReport>,
    /// Baseline behavior/measurements of the original application.
    pub before: Execution,
    /// Behavior/measurements of the trimmed application.
    pub after: Execution,
    /// The trimmed registry, directly deployable (§5.4).
    pub trimmed: Registry,
    /// Total simulated debloating time (Table 3).
    pub debloat_secs: f64,
    /// Total oracle invocations across all modules.
    pub oracle_invocations: u64,
    /// Static-analysis lint findings (unused imports, nonexistent
    /// attributes, debloat-soundness hazards).
    pub lints: Vec<Lint>,
    /// Top-K modules that were *not* DD-debloated because a hazard lint
    /// implicated them with an unbounded (⊤) attribute set — or with any
    /// hazard under [`HazardMode::Blanket`]: they deploy untrimmed (the
    /// conservative §5.4 fallback) rather than risking an unsound trim.
    pub fallback_modules: Vec<String>,
    /// Hazard attributes pinned into DD's must-keep seed, per module that
    /// was still trimmed despite a *bounded* hazard implicating it
    /// (empty under [`HazardMode::Blanket`]).
    pub pinned_hazard_attrs: BTreeMap<String, BTreeSet<String>>,
    /// Per-module selective-init slice results (statements kept/total),
    /// in debloat order. Empty when [`DebloatOptions::slice_init`] is off.
    pub slices: Vec<SliceReport>,
}

impl TrimReport {
    /// Total attributes removed across all debloated modules.
    pub fn attrs_removed(&self) -> usize {
        self.modules.iter().map(|m| m.removed.len()).sum()
    }

    /// Initialization-time improvement, as a fraction of the original.
    pub fn init_improvement(&self) -> f64 {
        if self.before.init_secs <= 0.0 {
            0.0
        } else {
            (self.before.init_secs - self.after.init_secs) / self.before.init_secs
        }
    }

    /// Total init statements removed by selective-init slicing.
    pub fn init_stmts_removed(&self) -> usize {
        self.slices.iter().map(SliceReport::stmts_removed).sum()
    }

    /// Memory improvement, as a fraction of the original.
    pub fn mem_improvement(&self) -> f64 {
        if self.before.mem_mb <= 0.0 {
            0.0
        } else {
            (self.before.mem_mb - self.after.mem_mb) / self.before.mem_mb
        }
    }
}

/// Run the full λ-trim pipeline on an application.
///
/// 1. Execute the original once to capture the expected behavior (the
///    strong-oracle baseline) and baseline measurements.
/// 2. Statically analyze the program for imported modules and
///    definitely-accessed attributes (§5.1).
/// 3. Profile every imported module's marginal cost and rank the top-K by
///    the configured scoring method (§5.2).
/// 4. Debloat each top-K module with attribute-granularity DD, committing
///    each module's trimmed source before moving to the next (§5.3/§6.3).
///
/// # Errors
///
/// [`TrimError::Parse`] if the application source does not parse,
/// [`TrimError::Baseline`] if the original application fails its own oracle
/// run — DD requires `O(P) = T` on the unmodified program.
pub fn trim_app(
    registry: &Registry,
    app_source: &str,
    spec: &OracleSpec,
    options: &DebloatOptions,
) -> Result<TrimReport, TrimError> {
    if options.jobs == 0 {
        return Err(TrimError::Config(
            "analysis jobs must be at least 1".to_owned(),
        ));
    }
    // 1. Baseline run (with init snapshots when enabled, warming the
    //    registry family's shared snapshot store for the DD probes).
    let before = run_app_opts(
        registry,
        app_source,
        spec,
        options.engine,
        options.init_snapshots,
    )
    .map_err(TrimError::Baseline)?;

    // 2. Static analysis: accesses, call graph, lints and hazard routing.
    // All analysis runs in this pipeline share one summary cache (the
    // caller's, or a run-local one): the first per-module must-keep
    // recomputation below sees the identical registry and is answered from
    // cache instead of re-running the fixpoint, and later recomputations
    // against the partially-trimmed registry are incremental.
    let program = pylite::parse(app_source).map_err(TrimError::Parse)?;
    let summaries = options
        .summary_cache
        .clone()
        .unwrap_or_else(trim_analysis::summary::SummaryCache::shared);
    let analysis_options = AnalysisOptions {
        mode: options.analysis,
        entry: None,
        jobs: options.jobs,
        summary_cache: Some(summaries),
    };
    let full = trim_analysis::analyze_full(&program, registry, &analysis_options);

    // Conservative replayability gate: modules the static analyzer
    // implicates in a debloat-soundness hazard (opaque getattr, foreign
    // mutation through aliases) are denied snapshot capture/replay and
    // always run their init live. The deny set lives in the registry
    // family's shared store, so it also covers snapshots captured before
    // this point (replay re-checks the deny set per candidate and per
    // dependency).
    if options.init_snapshots {
        let store = registry.snapshot_store();
        for module in full.hazard_attrs.keys() {
            store.deny(module);
        }
    }

    // 3. Cost profiling + top-K ranking.
    let profile = profile_app(app_source, registry).map_err(TrimError::Baseline)?;
    let targets: Vec<String> = top_k(&profile, options.scoring, options.k)
        .into_iter()
        .filter(|m| registry.contains(m))
        .collect();

    // 4. Debloat each target in rank order, committing as we go. Modules a
    //    hazard lint implicates with a *bounded* attribute set still enter
    //    DD with those attributes pinned into the must-keep seed; only an
    //    unbounded (⊤) hazard — or any hazard under the blanket baseline —
    //    makes the accessed set unknowable and routes the module to the
    //    conservative fallback deployment (§5.4).
    let mut work = registry.clone();
    let mut modules = Vec::with_capacity(targets.len());
    let mut fallback_modules = Vec::new();
    let mut pinned_hazard_attrs: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for module in &targets {
        let pinned: Option<BTreeSet<String>> = match full.hazard_attrs.get(module) {
            None => None,
            Some(bound) => match (options.hazards, bound.attrs()) {
                (HazardMode::PerAttribute, Some(attrs)) => Some(attrs.clone()),
                _ => {
                    fallback_modules.push(module.clone());
                    continue;
                }
            },
        };
        // Interprocedural exclusion sets depend on library code, so they are
        // recomputed against the *working* registry: once a parent module's
        // trim drops a re-export line, the stale must-keeps it induced on
        // its submodules are released for this module's DD run.
        // The first recomputation sees an untouched working registry and is
        // a summary-cache hit (no second fixpoint); later ones re-analyze
        // only the trimmed modules' reverse-dependency cone.
        let mut must_keep = match options.analysis {
            AnalysisMode::AppOnly => full.analysis.accessed_attrs(module),
            AnalysisMode::Interprocedural => {
                trim_analysis::analyze_full(&program, &work, &analysis_options)
                    .analysis
                    .accessed_attrs(module)
            }
        };
        if let Some(attrs) = pinned {
            must_keep.extend(attrs.iter().cloned());
            pinned_hazard_attrs.insert(module.clone(), attrs);
        }
        let report = debloat_module(
            &mut work, app_source, spec, &before, module, &must_keep, options,
        )?;
        modules.push(report);
    }

    // 5. Statement-level selective-init slicing over the modules DD kept:
    //    drop the init statements feeding nothing the surviving attribute
    //    surface needs. The oracle is the soundness authority (probe
    //    failure → ddmax refinement → unsliced fallback), and hazard-
    //    implicated modules slice in conservative mode.
    let slices = if options.slice_init {
        let candidates: Vec<String> = modules.iter().map(|m| m.module.clone()).collect();
        let hazard_set: BTreeSet<String> = full.hazard_attrs.keys().cloned().collect();
        slice_modules(
            &mut work,
            app_source,
            spec,
            &before,
            &candidates,
            &hazard_set,
            options,
        )?
    } else {
        Vec::new()
    };

    let after = run_app_opts(
        &work,
        app_source,
        spec,
        options.engine,
        options.init_snapshots,
    )
    .map_err(TrimError::Baseline)?;
    debug_assert!(
        after.behavior_eq(&before),
        "trimmed application must be oracle-equivalent"
    );
    let debloat_secs = modules.iter().map(|m| m.debloat_secs).sum::<f64>()
        + slices.iter().map(|s| s.slice_secs).sum::<f64>();
    let oracle_invocations = modules
        .iter()
        .map(|m| m.dd_stats.oracle_invocations)
        .sum::<u64>()
        + slices.iter().map(|s| s.oracle_invocations).sum::<u64>();
    Ok(TrimReport {
        modules,
        before,
        after,
        trimmed: work,
        debloat_secs,
        oracle_invocations,
        lints: full.lints,
        fallback_modules,
        pinned_hazard_attrs,
        slices,
    })
}

/// One independently trimmable application of a corpus.
#[derive(Debug, Clone)]
pub struct CorpusJob {
    /// Display name (used only by callers; trimming ignores it).
    pub name: String,
    /// The app's virtual site-packages.
    pub registry: Registry,
    /// Application (handler) source.
    pub app_source: String,
    /// Oracle specification.
    pub spec: OracleSpec,
}

/// Trim every application of a corpus on a pool of `threads` worker
/// threads, one app per worker at a time (apps are independent; `Registry`
/// is `Send + Sync`, so no snapshotting is needed).
///
/// Results come back in job order and are **deterministic**: each app's
/// trim is the same whatever thread ran it, so the output is byte-identical
/// to calling [`trim_app`] sequentially over the same jobs.
pub fn trim_corpus_parallel(
    jobs: &[CorpusJob],
    options: &DebloatOptions,
    threads: usize,
) -> Vec<Result<TrimReport, TrimError>> {
    let threads = threads.max(1).min(jobs.len().max(1));
    if threads <= 1 {
        return jobs
            .iter()
            .map(|j| trim_app(&j.registry, &j.app_source, &j.spec, options))
            .collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<Result<TrimReport, TrimError>>> = Vec::new();
    results.resize_with(jobs.len(), || None);
    let results = std::sync::Mutex::new(results);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let report = trim_app(&job.registry, &job.app_source, &job.spec, options);
                results.lock().expect("corpus results poisoned")[i] = Some(report);
            });
        }
    });
    results
        .into_inner()
        .expect("corpus results poisoned")
        .into_iter()
        .map(|r| r.expect("every corpus job produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TestCase;

    fn corpus() -> Registry {
        let mut r = Registry::new();
        r.set_module(
            "mlkit",
            "from mlkit.models import Net, OldNet\nfrom mlkit.losses import MSE\n_cache = __lt_alloc__(30)\n__lt_work__(80)\ndef predict(x):\n    return Net().run(x)\ndef train(x):\n    return MSE()\n",
        );
        r.set_module(
            "mlkit.models",
            "__lt_work__(40)\n_weights = __lt_alloc__(20)\nclass Net:\n    def run(self, x):\n        return x * 2\nclass OldNet:\n    pass\n",
        );
        r.set_module(
            "mlkit.losses",
            "__lt_work__(60)\n_buf = __lt_alloc__(25)\nclass MSE:\n    pass\n",
        );
        r.set_module("util", "__lt_work__(10)\ndef fmt(x):\n    return str(x)\n");
        r
    }

    const APP: &str = "import mlkit\nimport util\ndef handler(event, context):\n    return util.fmt(mlkit.predict(event[\"n\"]))\n";

    fn spec() -> OracleSpec {
        OracleSpec::new(vec![TestCase::event("{\"n\": 21}")])
    }

    #[test]
    fn pipeline_trims_and_preserves_behavior() {
        let report = trim_app(&corpus(), APP, &spec(), &DebloatOptions::default()).unwrap();
        assert!(report.after.behavior_eq(&report.before));
        assert_eq!(report.after.results, vec!["\"42\""]);
        assert!(report.attrs_removed() > 0, "something must be trimmed");
        // `train`/`MSE` are unused — mlkit.losses should no longer load.
        let src = report.trimmed.source("mlkit").unwrap();
        assert!(
            !src.contains("losses"),
            "unused loss import dropped:\n{src}"
        );
        assert!(
            report.after.init_secs < report.before.init_secs,
            "init time improves ({} -> {})",
            report.before.init_secs,
            report.after.init_secs
        );
        assert!(report.after.mem_mb < report.before.mem_mb);
    }

    #[test]
    fn pipeline_reports_debloat_accounting() {
        let report = trim_app(&corpus(), APP, &spec(), &DebloatOptions::default()).unwrap();
        assert!(report.debloat_secs > 0.0);
        assert!(report.oracle_invocations > 0);
        assert!(report.init_improvement() > 0.0);
        assert!(report.mem_improvement() > 0.0);
    }

    #[test]
    fn k_limits_module_count() {
        let report = trim_app(
            &corpus(),
            APP,
            &spec(),
            &DebloatOptions {
                k: 1,
                ..DebloatOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.modules.len(), 1);
    }

    #[test]
    fn hazardous_module_takes_fallback() {
        // Opaque getattr on mlkit: its accessed set is statically
        // unknowable, so mlkit must deploy untrimmed.
        let app = "import mlkit\nimport util\ndef handler(event, context):\n    return util.fmt(mlkit.predict(event[\"n\"]))\ndef diag(event, context):\n    return getattr(mlkit, event)\n";
        let r = corpus();
        let report = trim_app(&r, app, &spec(), &DebloatOptions::default()).unwrap();
        assert_eq!(report.fallback_modules, vec!["mlkit".to_string()]);
        assert_eq!(
            report.trimmed.source("mlkit"),
            r.source("mlkit"),
            "hazardous module must be left untouched"
        );
        assert!(report
            .lints
            .iter()
            .any(|l| l.severity == trim_analysis::lints::Severity::Hazard));
        assert!(
            !report.modules.iter().any(|m| m.module == "mlkit"),
            "no DD run for the fallback module"
        );
        assert!(report.after.behavior_eq(&report.before));
    }

    #[test]
    fn bounded_hazard_pins_attrs_and_still_trims() {
        // The getattr name is bounded by string-value analysis to
        // {predict, train}: mlkit stays trimmable with those attributes
        // pinned into must-keep instead of falling back wholesale.
        let app = "import mlkit\nimport util\ndef handler(event, context):\n    key = \"predict\" if event[\"n\"] > 0 else \"train\"\n    fn = getattr(mlkit, key)\n    return util.fmt(fn(event[\"n\"]))\n";
        let report = trim_app(&corpus(), app, &spec(), &DebloatOptions::default()).unwrap();
        assert!(
            report.fallback_modules.is_empty(),
            "a bounded hazard must not route to fallback: {:?}",
            report.fallback_modules
        );
        let pinned = report.pinned_hazard_attrs.get("mlkit").unwrap();
        assert_eq!(
            pinned,
            &BTreeSet::from(["predict".to_owned(), "train".to_owned()])
        );
        assert!(
            report.modules.iter().any(|m| m.module == "mlkit"),
            "mlkit must get a DD run"
        );
        assert!(
            report.attrs_removed() > 0,
            "something must still be trimmed"
        );
        // `train` is pinned even though no oracle case reaches it, so the
        // loss machinery it needs must survive the trim.
        let src = report.trimmed.source("mlkit").unwrap();
        assert!(src.contains("train"), "pinned attribute kept:\n{src}");
        assert!(report.after.behavior_eq(&report.before));
    }

    #[test]
    fn blanket_mode_reproduces_whole_module_fallback() {
        let app = "import mlkit\nimport util\ndef handler(event, context):\n    key = \"predict\" if event[\"n\"] > 0 else \"train\"\n    fn = getattr(mlkit, key)\n    return util.fmt(fn(event[\"n\"]))\n";
        let r = corpus();
        let report = trim_app(
            &r,
            app,
            &spec(),
            &DebloatOptions {
                hazards: HazardMode::Blanket,
                ..DebloatOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.fallback_modules, vec!["mlkit".to_string()]);
        assert!(report.pinned_hazard_attrs.is_empty());
        assert_eq!(
            report.trimmed.source("mlkit"),
            r.source("mlkit"),
            "blanket mode must leave the hazardous module untouched"
        );
    }

    #[test]
    fn interprocedural_needs_fewer_probes_than_app_only() {
        let run = |mode| {
            trim_app(
                &corpus(),
                APP,
                &spec(),
                &DebloatOptions {
                    analysis: mode,
                    ..DebloatOptions::default()
                },
            )
            .unwrap()
        };
        let app_only = run(AnalysisMode::AppOnly);
        let inter = run(AnalysisMode::Interprocedural);
        // Same final deployment, cheaper search: the eager library-import
        // exclusions skip the probes the seed wasted discovering that
        // import-needed attributes cannot be removed.
        assert!(inter.after.behavior_eq(&app_only.after));
        assert_eq!(
            inter.trimmed.total_source_bytes(),
            app_only.trimmed.total_source_bytes(),
            "both modes must converge to the same trim"
        );
        assert!(
            inter.oracle_invocations < app_only.oracle_invocations,
            "interprocedural exclusions must save probes ({} vs {})",
            inter.oracle_invocations,
            app_only.oracle_invocations
        );
    }

    #[test]
    fn probe_cache_shares_verdicts_across_analysis_modes() {
        let cache = crate::probe_cache::ProbeCache::shared();
        let run = |mode| {
            trim_app(
                &corpus(),
                APP,
                &spec(),
                &DebloatOptions {
                    analysis: mode,
                    probe_cache: Some(cache.clone()),
                    ..DebloatOptions::default()
                },
            )
            .unwrap()
        };
        let app_only = run(AnalysisMode::AppOnly);
        let hits_after_first = cache.hits();
        let inter = run(AnalysisMode::Interprocedural);
        assert!(
            cache.hits() > hits_after_first,
            "the second mode must reuse verdicts the first mode cached"
        );
        assert!(inter.after.behavior_eq(&app_only.after));
        assert_eq!(
            inter.trimmed.total_source_bytes(),
            app_only.trimmed.total_source_bytes()
        );
    }

    #[test]
    fn corpus_parallel_matches_sequential_byte_for_byte() {
        let jobs: Vec<CorpusJob> = vec![
            CorpusJob {
                name: "mlkit-app".into(),
                registry: corpus(),
                app_source: APP.into(),
                spec: spec(),
            },
            CorpusJob {
                name: "util-only".into(),
                registry: corpus(),
                app_source:
                    "import util\ndef handler(event, context):\n    return util.fmt(event[\"n\"])\n"
                        .into(),
                spec: spec(),
            },
            CorpusJob {
                name: "train-app".into(),
                registry: corpus(),
                app_source:
                    "import mlkit\ndef handler(event, context):\n    mlkit.train(event[\"n\"])\n    return mlkit.predict(event[\"n\"])\n"
                        .into(),
                spec: spec(),
            },
        ];
        let options = DebloatOptions::default();
        let seq = trim_corpus_parallel(&jobs, &options, 1);
        let par = trim_corpus_parallel(&jobs, &options, 4);
        assert_eq!(seq.len(), par.len());
        for (job, (s, p)) in jobs.iter().zip(seq.iter().zip(par.iter())) {
            let s = s.as_ref().unwrap_or_else(|e| panic!("{}: {e}", job.name));
            let p = p.as_ref().unwrap_or_else(|e| panic!("{}: {e}", job.name));
            for module in s.trimmed.module_names() {
                assert_eq!(
                    s.trimmed.source(&module),
                    p.trimmed.source(&module),
                    "{}/{module}: parallel corpus trim must be byte-identical",
                    job.name
                );
            }
            assert!(p.after.behavior_eq(&s.after));
        }
    }

    #[test]
    fn failing_baseline_is_an_error() {
        let r = corpus();
        let bad_app = "import mlkit\ndef handler(event, context):\n    return missing_name\n";
        let err = trim_app(&r, bad_app, &spec(), &DebloatOptions::default()).unwrap_err();
        assert!(matches!(err, TrimError::Baseline(_)));
    }

    #[test]
    fn unparsable_app_is_an_error() {
        let err = trim_app(
            &corpus(),
            "def broken(:\n",
            &spec(),
            &DebloatOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, TrimError::Baseline(_) | TrimError::Parse(_)));
    }

    #[test]
    fn trimmed_registry_is_smaller_or_equal_in_source() {
        let r = corpus();
        let report = trim_app(&r, APP, &spec(), &DebloatOptions::default()).unwrap();
        assert!(report.trimmed.total_source_bytes() <= r.total_source_bytes());
    }
}
