//! Statement-level selective-init slicing (DESIGN.md §15): after DD has
//! minimized a module's *attribute* surface, drop the init *statements*
//! that feed nothing the surviving surface needs.
//!
//! Attribute-granular rewriting removes unused bindings, but a kept module
//! still executes every remaining top-level statement at init — including
//! bare expression statements (`__lt_work__(...)` warm-up loops, cache
//! priming) that define no attribute at all and are therefore invisible to
//! DD's search space. This pass closes that gap: the interprocedural
//! engine's slice pass ([`trim_analysis::slice`]) computes the backward
//! def-use slice of the init body seeded with the module's current
//! (post-DD) attribute set, pinning side-effecting statements, and the DD
//! oracle stays the soundness authority — every sliced module is probed
//! against the baseline behavior before commit, and any mismatch is
//! refined with [`trim_dd::ddmax_with`] (find the *maximal* droppable
//! statement subset) or abandoned entirely, mirroring the §11 hazard
//! fallback: a module we cannot slice soundly deploys with its full init
//! body.

use crate::attributes::module_attributes;
use crate::debloater::DebloatOptions;
use crate::oracle::{run_app_measured_opts, Execution, OracleSpec};
use crate::TrimError;
use pylite::Registry;
use std::collections::BTreeSet;
use trim_analysis::slice::{slice_init, sliced_program};
use trim_dd::ddmax_with;

/// The result of slicing one module's init body.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceReport {
    /// Dotted module name.
    pub module: String,
    /// Top-level statement count before slicing (post-DD source).
    pub stmts_before: usize,
    /// Top-level statement count after slicing (equal to `stmts_before`
    /// when the slice was full or the oracle forced a fallback).
    pub stmts_after: usize,
    /// Statements retained because they were pinned as side-effecting.
    pub pinned: usize,
    /// Whether the whole-slice probe failed and ddmax refinement ran.
    pub refined: bool,
    /// Whether the module fell back to its unsliced init body (probe and
    /// refinement both failed to drop anything soundly).
    pub fell_back: bool,
    /// Simulated seconds spent in slice-probe oracle runs.
    pub slice_secs: f64,
    /// Oracle invocations spent probing slices of this module.
    pub oracle_invocations: u64,
}

impl SliceReport {
    /// Init statements this module no longer executes.
    pub fn stmts_removed(&self) -> usize {
        self.stmts_before - self.stmts_after
    }
}

/// Slice each candidate module's init body in `work`, in place.
///
/// `candidates` are the modules DD already trimmed (fallback modules are
/// deliberately absent — a module too hazardous to trim is too hazardous
/// to slice). `hazard_modules` selects the conservative pinning mode for
/// modules a bounded hazard implicated. Every commit is probe-verified
/// against `expected`; an unsliceable module is left byte-identical.
///
/// # Errors
///
/// [`TrimError::Parse`] if a candidate module no longer parses.
pub fn slice_modules(
    work: &mut Registry,
    app_source: &str,
    spec: &OracleSpec,
    expected: &Execution,
    candidates: &[String],
    hazard_modules: &BTreeSet<String>,
    options: &DebloatOptions,
) -> Result<Vec<SliceReport>, TrimError> {
    let mut reports = Vec::with_capacity(candidates.len());
    for module in candidates {
        if !work.contains(module) {
            continue;
        }
        let program = work.parse_module(module).map_err(TrimError::Parse)?;
        // The seed is the module's *current* attribute surface: everything
        // DD kept is reachable by the app (or pinned by analysis), so every
        // definition site feeding it must survive.
        let seed: BTreeSet<String> = module_attributes(&program).into_iter().collect();
        let slice = slice_init(&program, &seed, hazard_modules.contains(module));
        let total = slice.total;
        if slice.is_full() {
            reports.push(SliceReport {
                module: module.clone(),
                stmts_before: total,
                stmts_after: total,
                pinned: slice.pinned.len(),
                refined: false,
                fell_back: false,
                slice_secs: 0.0,
                oracle_invocations: 0,
            });
            continue;
        }

        let mut secs = 0.0f64;
        let mut invocations = 0u64;
        // One probe = one copy-on-write overlay, exactly like a DD probe:
        // the sliced source replaces the module, everything else is shared.
        let mut probe = |kept: &[usize], base: &Registry| -> bool {
            let candidate =
                base.with_module(module, pylite::unparse(&sliced_program(&program, kept)));
            let (result, s) = run_app_measured_opts(
                &candidate,
                app_source,
                spec,
                options.engine,
                options.init_snapshots,
            );
            secs += s;
            invocations += 1;
            matches!(&result, Ok(actual) if actual.behavior_eq(expected))
        };

        let mut refined = false;
        let mut fell_back = false;
        let committed: Option<Vec<usize>> = if probe(&slice.kept, work) {
            Some(slice.kept.clone())
        } else {
            // The static slice overshot (a dropped statement mattered after
            // all). The slice was a *candidate*, never a promise: ask DD
            // for the 1-maximal droppable subset of the statements the
            // slice wanted gone.
            refined = true;
            let droppable = slice.dropped();
            let mut oracle = |dropped: &[usize]| -> bool {
                let drop: BTreeSet<usize> = dropped.iter().copied().collect();
                let kept: Vec<usize> = (0..total).filter(|i| !drop.contains(i)).collect();
                probe(&kept, work)
            };
            match ddmax_with(&droppable, &mut oracle, options.dd) {
                Ok(result) if !result.minimized.is_empty() => {
                    let drop: BTreeSet<usize> = result.minimized.iter().copied().collect();
                    Some((0..total).filter(|i| !drop.contains(i)).collect())
                }
                // Nothing droppable — or even the drop-nothing baseline
                // failed (flaky oracle): deploy the unsliced body.
                _ => {
                    fell_back = true;
                    None
                }
            }
        };
        if let Some(kept) = &committed {
            // Commit the exact source the passing probe ran.
            work.set_module(module, pylite::unparse(&sliced_program(&program, kept)));
        }
        reports.push(SliceReport {
            module: module.clone(),
            stmts_before: total,
            stmts_after: committed.as_ref().map_or(total, Vec::len),
            pinned: slice.pinned.len(),
            refined,
            fell_back,
            slice_secs: secs,
            oracle_invocations: invocations,
        });
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{run_app, TestCase};

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.set_module(
            "heavy",
            "__lt_work__(90)\n_scratch = __lt_alloc__(40)\ndef go(x):\n    return x + 1\n",
        );
        r
    }

    const APP: &str =
        "import heavy\ndef handler(event, context):\n    return heavy.go(event[\"n\"])\n";

    fn spec() -> OracleSpec {
        OracleSpec::new(vec![TestCase::event("{\"n\": 1}")])
    }

    #[test]
    fn slices_behavior_dead_init_work() {
        let mut work = registry();
        let expected = run_app(&work, APP, &spec()).unwrap();
        let reports = slice_modules(
            &mut work,
            APP,
            &spec(),
            &expected,
            &["heavy".to_owned()],
            &BTreeSet::new(),
            &DebloatOptions::default(),
        )
        .unwrap();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        // `_scratch` is a module attribute (DD has not removed it here), so
        // its alloc stays; the bare __lt_work__ statement goes.
        assert_eq!(r.stmts_before, 3);
        assert_eq!(r.stmts_after, 2);
        assert!(!r.refined && !r.fell_back);
        assert!(r.oracle_invocations >= 1);
        let src = work.source("heavy").unwrap();
        assert!(!src.contains("__lt_work__"), "init work dropped:\n{src}");
        let after = run_app(&work, APP, &spec()).unwrap();
        assert!(after.behavior_eq(&expected));
        assert!(after.init_secs < expected.init_secs, "init got cheaper");
    }

    #[test]
    fn full_slice_skips_probing() {
        let mut r = Registry::new();
        r.set_module("lean", "def go(x):\n    return x\n");
        let app = "import lean\ndef handler(event, context):\n    return lean.go(event[\"n\"])\n";
        let expected = run_app(&r, app, &spec()).unwrap();
        let mut work = r.clone();
        let reports = slice_modules(
            &mut work,
            app,
            &spec(),
            &expected,
            &["lean".to_owned()],
            &BTreeSet::new(),
            &DebloatOptions::default(),
        )
        .unwrap();
        assert_eq!(reports[0].stmts_removed(), 0);
        assert_eq!(reports[0].oracle_invocations, 0, "full slice never probes");
        assert_eq!(work.source("lean"), r.source("lean"));
    }

    #[test]
    fn oracle_refines_an_overshooting_slice() {
        // `print` at init is pinned, but `_state` priming via a *pure-looking*
        // assignment that the handler observes through its result is the
        // overshoot shape: the slice drops `limit = len(seq)` (no kept attr
        // uses it statically... except the handler reads it via getattr-free
        // direct access the seed can't see if we seed with a subset). We
        // emulate that by seeding only {go}: `limit` is then behavior-live
        // but slice-dead, so the whole-slice probe fails and ddmax must
        // re-pin exactly the statements `limit` needs.
        let mut r = Registry::new();
        r.set_module(
            "tricky",
            "__lt_work__(30)\nseq = [1, 2, 3]\nlimit = len(seq)\ndef go(x):\n    return x\n",
        );
        let app = "import tricky\ndef handler(event, context):\n    return tricky.limit + tricky.go(event[\"n\"])\n";
        let expected = run_app(&r, app, &spec()).unwrap();
        let work = r.clone();
        let seed_only_go: BTreeSet<String> = ["go".to_owned()].into();
        let program = work.parse_module("tricky").unwrap();
        let slice = slice_init(&program, &seed_only_go, false);
        assert_eq!(slice.kept, vec![3], "the narrow seed drops limit and seq");
        // Drive slice_modules through a registry whose attribute surface
        // *is* the narrow seed: rewrite tricky so module_attributes sees
        // {go} yet the app still needs `limit`. Simplest faithful route:
        // call the probe path directly via a handcrafted candidate list is
        // not possible, so assert the refinement contract at the ddmax
        // level instead — the maximal droppable subset keeps seq and limit.
        let probe = |kept: &[usize], base: &Registry| -> bool {
            let cand = base.with_module("tricky", pylite::unparse(&sliced_program(&program, kept)));
            let (result, _) = run_app_measured_opts(&cand, app, &spec(), pylite::Engine::Vm, true);
            matches!(&result, Ok(actual) if actual.behavior_eq(&expected))
        };
        assert!(!probe(&slice.kept, &work), "narrow slice breaks the app");
        let droppable = slice.dropped();
        let total = slice.total;
        let mut oracle = |dropped: &[usize]| -> bool {
            let drop: BTreeSet<usize> = dropped.iter().copied().collect();
            let kept: Vec<usize> = (0..total).filter(|i| !drop.contains(i)).collect();
            probe(&kept, &work)
        };
        let refined = ddmax_with(&droppable, &mut oracle, Default::default()).unwrap();
        let drop: BTreeSet<usize> = refined.minimized.iter().copied().collect();
        assert_eq!(
            drop,
            BTreeSet::from([0]),
            "only the __lt_work__ statement is truly droppable"
        );
    }

    #[test]
    fn hazard_module_slices_conservatively() {
        let mut work = Registry::new();
        work.set_module(
            "dyn",
            "__lt_work__(20)\nimport heavy_dep\nx = 1\ndef go(n):\n    return n\n",
        );
        work.set_module("heavy_dep", "__lt_work__(10)\n");
        let app = "import dyn\ndef handler(event, context):\n    return dyn.go(event[\"n\"])\n";
        let expected = run_app(&work, app, &spec()).unwrap();
        let hazards: BTreeSet<String> = ["dyn".to_owned()].into();
        let reports = slice_modules(
            &mut work,
            app,
            &spec(),
            &expected,
            &["dyn".to_owned()],
            &hazards,
            &DebloatOptions::default(),
        )
        .unwrap();
        let r = &reports[0];
        // Conservative mode pins the import; the meter call still goes.
        let src = work.source("dyn").unwrap();
        assert!(src.contains("import heavy_dep"), "{src}");
        assert!(!src.contains("__lt_work__"), "{src}");
        assert_eq!(r.stmts_removed(), 1);
    }

    #[test]
    fn missing_candidate_is_skipped() {
        let mut work = registry();
        let expected = run_app(&work, APP, &spec()).unwrap();
        let reports = slice_modules(
            &mut work,
            APP,
            &spec(),
            &expected,
            &["ghost".to_owned()],
            &BTreeSet::new(),
            &DebloatOptions::default(),
        )
        .unwrap();
        assert!(reports.is_empty());
    }
}
