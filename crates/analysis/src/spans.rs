//! Opt-in span tracing of the fixpoint schedule, for work/span analysis.
//!
//! The `analysis` bench binary enables tracing around a *serial* run and
//! replays the captured per-shard walk/collect durations through an
//! idealized `jobs`-worker BSP schedule to project the parallel makespan.
//! This is how the sharded engine's speedup is evaluated on hosts without
//! enough cores to measure it as wall time (CI containers are often
//! pinned to one core, where every multi-threaded wall measurement
//! degenerates to serial-plus-overhead).
//!
//! Tracing is thread-local and off by default; when disabled the engine
//! pays one thread-local flag read per instrumented region. Only serial
//! (`jobs = 1`) runs record spans — pool workers run on other threads and
//! never see the flag.

use std::cell::RefCell;
use std::time::Instant;

/// Which part of the engine a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// One shard walked to its local fixpoint (parallelizable).
    Walk,
    /// The serial end-of-round barrier: message delivery + reader wakes.
    Barrier,
    /// One shard's read-only output pass (parallelizable).
    Collect,
    /// The serial merge of shard outputs into the final result.
    Finish,
}

/// One timed region of a traced run.
#[derive(Debug, Clone)]
pub struct Span {
    /// Engine phase this span measures.
    pub phase: Phase,
    /// 1-based fixpoint round for `Walk`/`Barrier`; 0 for the phases that
    /// run once after convergence.
    pub round: usize,
    /// The shard walked/collected (`None` = the application shard, and
    /// not meaningful for `Barrier`/`Finish`).
    pub shard: Option<String>,
    /// Elapsed wall time of the region, in nanoseconds.
    pub ns: u64,
}

thread_local! {
    static SPANS: RefCell<Option<Vec<Span>>> = const { RefCell::new(None) };
}

/// Start recording spans of analysis runs on this thread.
pub fn enable() {
    SPANS.with(|s| *s.borrow_mut() = Some(Vec::new()));
}

/// Stop recording and return everything captured since [`enable`].
pub fn take() -> Vec<Span> {
    SPANS.with(|s| s.borrow_mut().take()).unwrap_or_default()
}

pub(crate) fn start() -> Option<Instant> {
    SPANS.with(|s| s.borrow().is_some()).then(Instant::now)
}

pub(crate) fn record(phase: Phase, round: usize, shard: Option<String>, started: Option<Instant>) {
    let Some(t) = started else { return };
    let ns = t.elapsed().as_nanos() as u64;
    SPANS.with(|s| {
        if let Some(v) = s.borrow_mut().as_mut() {
            v.push(Span {
                phase,
                round,
                shard,
                ns,
            });
        }
    });
}
