//! Debloat-soundness lints (§5.4 failure-avoidance, applied statically).
//!
//! The DD debloater's oracle only covers the inputs in the test suite;
//! constructs that smuggle attribute names past the static analyzer make
//! the *fallback rate* in production worse. The lint pass flags them and
//! classifies each finding:
//!
//! * [`Severity::Info`] — worth knowing, no action taken (e.g. `getattr`
//!   with a literal name: the runtime fallback of §5.4 covers it, and
//!   resolving it statically would defeat rarely-used-attribute trimming).
//! * [`Severity::Warning`] — likely a bug or dead code in the app.
//! * [`Severity::Hazard`] — debloating the implicated module is unsound
//!   under static reasoning; the pipeline routes it to the conservative
//!   fallback deployment instead of DD-trimming it.

use std::fmt;

/// How serious a lint finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; no behavior change.
    Info,
    /// Suspicious app code; debloating stays enabled.
    Warning,
    /// Debloating the implicated module is forced onto the fallback path.
    Hazard,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Hazard => write!(f, "hazard"),
        }
    }
}

/// What a lint finding is about.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintKind {
    /// A module imported by the application but never used.
    UnusedImport {
        /// The imported module.
        module: String,
    },
    /// An access to an attribute no statement of the module binds.
    NonexistentAttr {
        /// The accessed module.
        module: String,
        /// The missing attribute.
        attr: String,
    },
    /// `getattr`/`setattr`/`hasattr` on a module with a **literal** name:
    /// visible to the fallback machinery, deliberately not resolved.
    DynamicAttrAccess {
        /// The target module, when statically known.
        module: Option<String>,
        /// The literal attribute name.
        attr: String,
    },
    /// `getattr`-family call whose attribute name is **not** a literal:
    /// the accessed set is statically unknowable.
    OpaqueAttrAccess {
        /// The target module, when statically known.
        module: Option<String>,
    },
    /// `from m import *` — every public attribute of `m` escapes.
    StarImport {
        /// The star-imported module.
        module: String,
    },
    /// A name bound to a module was re-assigned to something else, hiding
    /// subsequent accesses from the analyzer.
    ModuleRebinding {
        /// The rebound name.
        name: String,
        /// The module the name used to denote.
        module: String,
    },
}

/// One finding of the lint pass.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Lint {
    /// Severity class (drives pipeline routing).
    pub severity: Severity,
    /// The finding itself.
    pub kind: LintKind,
}

impl Lint {
    /// The module whose debloating this finding implicates, if any.
    pub fn implicated_module(&self) -> Option<&str> {
        match &self.kind {
            LintKind::UnusedImport { module } | LintKind::StarImport { module } => Some(module),
            LintKind::NonexistentAttr { module, .. } => Some(module),
            LintKind::DynamicAttrAccess { module, .. } | LintKind::OpaqueAttrAccess { module } => {
                module.as_deref()
            }
            LintKind::ModuleRebinding { module, .. } => Some(module),
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.severity)?;
        match &self.kind {
            LintKind::UnusedImport { module } => {
                write!(f, "module '{module}' is imported but never used")
            }
            LintKind::NonexistentAttr { module, attr } => {
                write!(f, "module '{module}' has no attribute '{attr}'")
            }
            LintKind::DynamicAttrAccess { module, attr } => match module {
                Some(m) => write!(
                    f,
                    "dynamic access to '{m}.{attr}' (literal name; covered by runtime fallback)"
                ),
                None => write!(f, "dynamic attribute access '{attr}' (literal name)"),
            },
            LintKind::OpaqueAttrAccess { module } => match module {
                Some(m) => write!(
                    f,
                    "opaque dynamic attribute access on module '{m}': attribute name is not a \
                     literal, debloating '{m}' falls back to conservative deployment"
                ),
                None => write!(f, "opaque dynamic attribute access (non-literal name)"),
            },
            LintKind::StarImport { module } => {
                write!(
                    f,
                    "star import of '{module}': all public attributes escape, debloating \
                     '{module}' falls back to conservative deployment"
                )
            }
            LintKind::ModuleRebinding { name, module } => {
                write!(
                    f,
                    "name '{name}' (module '{module}') is rebound: accesses after the rebind \
                     are invisible to static analysis"
                )
            }
        }
    }
}
