//! Debloat-soundness lints (§5.4 failure-avoidance, applied statically).
//!
//! The DD debloater's oracle only covers the inputs in the test suite;
//! constructs that smuggle attribute names past the static analyzer make
//! the *fallback rate* in production worse. The lint pass flags them and
//! classifies each finding:
//!
//! * [`Severity::Info`] — worth knowing, no action taken (e.g. `getattr`
//!   with a literal name: the runtime fallback of §5.4 covers it, and
//!   resolving it statically would defeat rarely-used-attribute trimming).
//! * [`Severity::Warning`] — likely a bug or dead code in the app.
//! * [`Severity::Hazard`] — debloating the implicated module is unsound
//!   under static reasoning; the pipeline routes it to the conservative
//!   fallback deployment instead of DD-trimming it.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The attribute bound attached to one hazardous module: either a finite
/// over-approximation of the attribute names dynamic code could touch, or
/// ⊤ — "anything the module binds" — when no finite bound exists. ⊤ is the
/// lattice top, *not* "all modules": a hazard never escapes the module it
/// implicates.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum HazardAttrs {
    /// A finite set of attribute names the hazard could reach.
    Attrs(BTreeSet<String>),
    /// Unbounded within the module: fall back to its full binding surface.
    Top,
}

impl HazardAttrs {
    /// Lattice join: ⊤ absorbs, finite sets union.
    pub fn join(&mut self, other: &HazardAttrs) {
        match (&mut *self, other) {
            (HazardAttrs::Top, _) => {}
            (_, HazardAttrs::Top) => *self = HazardAttrs::Top,
            (HazardAttrs::Attrs(a), HazardAttrs::Attrs(b)) => a.extend(b.iter().cloned()),
        }
    }

    /// Whether this bound is the lattice top.
    pub fn is_top(&self) -> bool {
        matches!(self, HazardAttrs::Top)
    }

    /// The finite attribute set, if bounded.
    pub fn attrs(&self) -> Option<&BTreeSet<String>> {
        match self {
            HazardAttrs::Attrs(a) => Some(a),
            HazardAttrs::Top => None,
        }
    }
}

impl fmt::Display for HazardAttrs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HazardAttrs::Top => write!(f, "⊤ (full binding surface)"),
            HazardAttrs::Attrs(a) => {
                let names: Vec<&str> = a.iter().map(String::as_str).collect();
                write!(f, "{{{}}}", names.join(", "))
            }
        }
    }
}

/// Per-module hazard bounds: `module → attrs ⊔ ⊤`. Absence of a module
/// means no hazard implicates it.
pub type HazardSet = BTreeMap<String, HazardAttrs>;

/// Join `attrs` into `set` under `module`.
pub fn hazard_join(set: &mut HazardSet, module: &str, attrs: &HazardAttrs) {
    match set.get_mut(module) {
        Some(existing) => existing.join(attrs),
        None => {
            set.insert(module.to_owned(), attrs.clone());
        }
    }
}

/// How serious a lint finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; no behavior change.
    Info,
    /// Suspicious app code; debloating stays enabled.
    Warning,
    /// Debloating the implicated module is forced onto the fallback path.
    Hazard,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Hazard => write!(f, "hazard"),
        }
    }
}

/// What a lint finding is about.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintKind {
    /// A module imported by the application but never used.
    UnusedImport {
        /// The imported module.
        module: String,
    },
    /// An access to an attribute no statement of the module binds.
    NonexistentAttr {
        /// The accessed module.
        module: String,
        /// The missing attribute.
        attr: String,
    },
    /// `getattr`/`setattr`/`hasattr` on a module with a **literal** name:
    /// visible to the fallback machinery, deliberately not resolved.
    DynamicAttrAccess {
        /// The target module, when statically known.
        module: Option<String>,
        /// The literal attribute name.
        attr: String,
    },
    /// `getattr`-family call whose attribute name is **not** a literal:
    /// the accessed set is bounded by string-value analysis when possible.
    OpaqueAttrAccess {
        /// The target module, when statically known.
        module: Option<String>,
        /// The attribute names the non-literal expression can evaluate to
        /// under the string-value lattice; `None` = unbounded (⊤).
        attrs: Option<BTreeSet<String>>,
    },
    /// `from m import *` — every public attribute of `m` escapes.
    StarImport {
        /// The star-imported module.
        module: String,
    },
    /// A name bound to a module was re-assigned (or deleted), hiding
    /// subsequent accesses from the analyzer.
    ModuleRebinding {
        /// The rebound name.
        name: String,
        /// The module the name used to denote.
        module: String,
        /// Attribute names syntactically accessed through the name at or
        /// after a possible rebind point (branch-aware flow scan).
        attrs: BTreeSet<String>,
    },
}

/// One finding of the lint pass.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Lint {
    /// Severity class (drives pipeline routing).
    pub severity: Severity,
    /// The finding itself.
    pub kind: LintKind,
}

impl Lint {
    /// The module whose debloating this finding implicates, if any.
    pub fn implicated_module(&self) -> Option<&str> {
        match &self.kind {
            LintKind::UnusedImport { module } | LintKind::StarImport { module } => Some(module),
            LintKind::NonexistentAttr { module, .. } => Some(module),
            LintKind::DynamicAttrAccess { module, .. }
            | LintKind::OpaqueAttrAccess { module, .. } => module.as_deref(),
            LintKind::ModuleRebinding { module, .. } => Some(module),
        }
    }

    /// The attribute bound this finding implicates on its module, if any.
    /// `HazardAttrs::Top` means the finding can reach anything the module
    /// binds (the merge pass narrows star imports to the module's public
    /// binding surface when it is known).
    pub fn implicated_attrs(&self) -> Option<HazardAttrs> {
        match &self.kind {
            LintKind::UnusedImport { .. } => None,
            LintKind::NonexistentAttr { attr, .. } | LintKind::DynamicAttrAccess { attr, .. } => {
                Some(HazardAttrs::Attrs(BTreeSet::from([attr.clone()])))
            }
            LintKind::OpaqueAttrAccess { attrs, .. } => Some(match attrs {
                Some(a) => HazardAttrs::Attrs(a.clone()),
                None => HazardAttrs::Top,
            }),
            LintKind::StarImport { .. } => Some(HazardAttrs::Top),
            LintKind::ModuleRebinding { attrs, .. } => Some(HazardAttrs::Attrs(attrs.clone())),
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.severity)?;
        match &self.kind {
            LintKind::UnusedImport { module } => {
                write!(f, "module '{module}' is imported but never used")
            }
            LintKind::NonexistentAttr { module, attr } => {
                write!(f, "module '{module}' has no attribute '{attr}'")
            }
            LintKind::DynamicAttrAccess { module, attr } => match module {
                Some(m) => write!(
                    f,
                    "dynamic access to '{m}.{attr}' (literal name; covered by runtime fallback)"
                ),
                None => write!(f, "dynamic attribute access '{attr}' (literal name)"),
            },
            LintKind::OpaqueAttrAccess { module, attrs } => match (module, attrs) {
                (Some(m), Some(a)) => {
                    let names: Vec<&str> = a.iter().map(String::as_str).collect();
                    write!(
                        f,
                        "opaque dynamic attribute access on module '{m}': non-literal name \
                         bounded to {{{}}}; those attributes are pinned when trimming '{m}'",
                        names.join(", ")
                    )
                }
                (Some(m), None) => write!(
                    f,
                    "opaque dynamic attribute access on module '{m}': attribute name is not a \
                     literal, debloating '{m}' falls back to conservative deployment"
                ),
                (None, _) => write!(f, "opaque dynamic attribute access (non-literal name)"),
            },
            LintKind::StarImport { module } => {
                write!(
                    f,
                    "star import of '{module}': all public attributes escape and are pinned \
                     when trimming '{module}'"
                )
            }
            LintKind::ModuleRebinding {
                name,
                module,
                attrs,
            } => {
                write!(
                    f,
                    "name '{name}' (module '{module}') is rebound: accesses after the rebind \
                     are invisible to static analysis"
                )?;
                if !attrs.is_empty() {
                    let names: Vec<&str> = attrs.iter().map(String::as_str).collect();
                    write!(f, " (post-rebind accesses pin {{{}}})", names.join(", "))?;
                }
                Ok(())
            }
        }
    }
}
