//! # trim-analysis — static analysis for pylite serverless applications
//!
//! The first stage of the λ-trim pipeline (§5.1): a single pass over the
//! application's AST to identify the external modules it imports, plus a
//! PyCG-style flow-insensitive call-graph/attribute analysis ([`analyze`])
//! that computes which module attributes the application **definitely
//! accesses**. Those attributes are excluded from Delta Debugging — they
//! must be kept anyway, so not probing them shrinks the search space (§6.3).
//!
//! The analysis tracks name → origin bindings (module objects, module
//! attributes) through assignments and aliases:
//!
//! ```text
//! import torch.nn as nn         # nn ↦ Module("torch.nn")
//! from torch.optim import SGD   # SGD ↦ Attr("torch.optim", "SGD")
//! x = nn.Linear(2, 1)           # records torch.nn.Linear as accessed
//! opt = SGD(x)                  # records torch.optim.SGD as accessed
//! ```

#![warn(missing_docs)]

use pylite::ast::{Expr, Program, Stmt};
use pylite::Registry;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// What a name is statically known to refer to.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Origin {
    /// A module object with the given dotted name.
    Module(String),
    /// An attribute of a module (`from m import a`, or a resolved `m.a`).
    Attr(String, String),
    /// Anything else.
    Unknown,
}

/// The result of statically analyzing an application.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Analysis {
    /// Every module the application imports, directly or via dotted paths
    /// (importing `torch.nn` contributes both `torch` and `torch.nn`).
    pub imported_modules: BTreeSet<String>,
    /// Modules imported *directly by an import statement in the program*
    /// (the candidates handed to the profiler).
    pub direct_imports: BTreeSet<String>,
    /// Per-module set of attributes the program definitely accesses.
    /// These are excluded from the DD search (§5.1).
    pub accessed: BTreeMap<String, BTreeSet<String>>,
}

impl Analysis {
    /// Attributes definitely accessed on `module` (empty set if none).
    pub fn accessed_attrs(&self, module: &str) -> BTreeSet<String> {
        self.accessed.get(module).cloned().unwrap_or_default()
    }
}

struct Analyzer<'a> {
    registry: &'a Registry,
    result: Analysis,
}

/// Analyze an application program against the registry it will run in.
///
/// The registry is needed to distinguish `m.sub` (a submodule) from `m.attr`
/// (a plain attribute) when resolving dotted chains.
pub fn analyze(program: &Program, registry: &Registry) -> Analysis {
    let mut analyzer = Analyzer {
        registry,
        result: Analysis::default(),
    };
    let mut env: HashMap<String, Origin> = HashMap::new();
    analyzer.walk_block(&program.body, &mut env);
    analyzer.result
}

/// Convenience: collect just the imported module names of a program
/// (the "single pass over the AST" of §5.1), including nested imports
/// inside functions and classes.
pub fn imported_modules(program: &Program) -> BTreeSet<String> {
    let registry = Registry::new();
    analyze(program, &registry).imported_modules
}

impl<'a> Analyzer<'a> {
    fn record_import(&mut self, dotted: &str) {
        // `import a.b.c` pulls in a, a.b and a.b.c.
        let mut prefix = String::new();
        for part in dotted.split('.') {
            if !prefix.is_empty() {
                prefix.push('.');
            }
            prefix.push_str(part);
            self.result.imported_modules.insert(prefix.clone());
        }
        self.result.direct_imports.insert(dotted.to_owned());
    }

    fn record_access(&mut self, module: &str, attr: &str) {
        self.result
            .accessed
            .entry(module.to_owned())
            .or_default()
            .insert(attr.to_owned());
    }

    fn walk_block(&mut self, body: &[Stmt], env: &mut HashMap<String, Origin>) {
        for stmt in body {
            self.walk_stmt(stmt, env);
        }
    }

    fn walk_stmt(&mut self, stmt: &Stmt, env: &mut HashMap<String, Origin>) {
        match stmt {
            Stmt::Import { items } => {
                for item in items {
                    self.record_import(&item.module);
                    match &item.alias {
                        Some(alias) => {
                            env.insert(alias.clone(), Origin::Module(item.module.clone()));
                        }
                        None => {
                            let top = item
                                .module
                                .split('.')
                                .next()
                                .expect("nonempty module path")
                                .to_owned();
                            env.insert(top.clone(), Origin::Module(top));
                        }
                    }
                }
            }
            Stmt::FromImport { module, names } => {
                self.record_import(module);
                for (name, alias) in names {
                    let bound = alias.as_deref().unwrap_or(name);
                    let submodule = format!("{module}.{name}");
                    if self.registry.contains(&submodule) {
                        self.record_import(&submodule);
                        // Importing a submodule via `from` counts as access.
                        self.record_access(module, name);
                        env.insert(bound.to_owned(), Origin::Module(submodule));
                    } else {
                        env.insert(
                            bound.to_owned(),
                            Origin::Attr(module.clone(), name.clone()),
                        );
                    }
                }
            }
            Stmt::Assign { targets, value } => {
                let origin = self.resolve(value, env);
                for t in targets {
                    match t {
                        Expr::Name(n) => {
                            env.insert(n.clone(), origin.clone());
                        }
                        other => {
                            // Resolving the target records accesses on its base.
                            self.resolve(other, env);
                        }
                    }
                }
            }
            Stmt::AugAssign { target, value, .. } => {
                self.resolve(target, env);
                self.resolve(value, env);
            }
            Stmt::Expr(e) | Stmt::Raise(Some(e)) | Stmt::Del(e) => {
                self.resolve(e, env);
            }
            Stmt::Raise(None) | Stmt::Pass | Stmt::Break | Stmt::Continue | Stmt::Global(_) => {}
            Stmt::Return(e) => {
                if let Some(e) = e {
                    self.resolve(e, env);
                }
            }
            Stmt::If { branches, orelse } => {
                for (test, body) in branches {
                    self.resolve(test, env);
                    self.walk_block(body, env);
                }
                self.walk_block(orelse, env);
            }
            Stmt::While { test, body } => {
                self.resolve(test, env);
                self.walk_block(body, env);
            }
            Stmt::For { targets, iter, body } => {
                self.resolve(iter, env);
                for t in targets {
                    env.insert(t.clone(), Origin::Unknown);
                }
                self.walk_block(body, env);
            }
            Stmt::FuncDef(f) => {
                // Assume every defined function is reachable (the handler and
                // its helpers): analyze the body in a child scope.
                for p in &f.params {
                    if let Some(d) = &p.default {
                        self.resolve(d, env);
                    }
                }
                let mut child = env.clone();
                for p in &f.params {
                    child.insert(p.name.clone(), Origin::Unknown);
                }
                self.walk_block(&f.body, &mut child);
                env.insert(f.name.clone(), Origin::Unknown);
            }
            Stmt::ClassDef(c) => {
                for base in &c.bases {
                    // A base class reference is a use.
                    self.resolve(&Expr::Name(base.clone()), env);
                }
                let mut child = env.clone();
                self.walk_block(&c.body, &mut child);
                env.insert(c.name.clone(), Origin::Unknown);
            }
            Stmt::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                self.walk_block(body, env);
                for h in handlers {
                    let mut child = env.clone();
                    if let Some(n) = &h.name {
                        child.insert(n.clone(), Origin::Unknown);
                    }
                    self.walk_block(&h.body, &mut child);
                }
                self.walk_block(orelse, env);
                self.walk_block(finalbody, env);
            }
            Stmt::Assert { test, msg } => {
                self.resolve(test, env);
                if let Some(m) = msg {
                    self.resolve(m, env);
                }
            }
        }
    }

    /// Resolve an expression to its origin, recording any module-attribute
    /// accesses found along the way.
    fn resolve(&mut self, e: &Expr, env: &mut HashMap<String, Origin>) -> Origin {
        match e {
            Expr::Name(n) => {
                let origin = env.get(n).cloned().unwrap_or(Origin::Unknown);
                if let Origin::Attr(m, a) = &origin {
                    // Using a from-imported name is a definite access.
                    let (m, a) = (m.clone(), a.clone());
                    self.record_access(&m, &a);
                }
                origin
            }
            Expr::Attribute { value, attr } => {
                let base = self.resolve(value, env);
                match base {
                    Origin::Module(m) => {
                        self.record_access(&m, attr);
                        let sub = format!("{m}.{attr}");
                        if self.registry.contains(&sub) {
                            Origin::Module(sub)
                        } else {
                            Origin::Attr(m, attr.clone())
                        }
                    }
                    _ => Origin::Unknown,
                }
            }
            Expr::Call { func, args, kwargs } => {
                self.resolve(func, env);
                for a in args {
                    self.resolve(a, env);
                }
                for (_, v) in kwargs {
                    self.resolve(v, env);
                }
                Origin::Unknown
            }
            Expr::Subscript { value, index } => {
                self.resolve(value, env);
                self.resolve(index, env);
                Origin::Unknown
            }
            Expr::List(items) | Expr::Tuple(items) => {
                for i in items {
                    self.resolve(i, env);
                }
                Origin::Unknown
            }
            Expr::Dict(pairs) => {
                for (k, v) in pairs {
                    self.resolve(k, env);
                    self.resolve(v, env);
                }
                Origin::Unknown
            }
            Expr::Unary { operand, .. } => {
                self.resolve(operand, env);
                Origin::Unknown
            }
            Expr::Binary { left, right, .. } => {
                self.resolve(left, env);
                self.resolve(right, env);
                Origin::Unknown
            }
            Expr::Bool { values, .. } => {
                for v in values {
                    self.resolve(v, env);
                }
                Origin::Unknown
            }
            Expr::Compare { left, ops } => {
                self.resolve(left, env);
                for (_, v) in ops {
                    self.resolve(v, env);
                }
                Origin::Unknown
            }
            Expr::Conditional { test, body, orelse } => {
                self.resolve(test, env);
                self.resolve(body, env);
                self.resolve(orelse, env);
                Origin::Unknown
            }
            Expr::ListComp {
                element,
                targets,
                iter,
                cond,
            } => {
                self.resolve(iter, env);
                let mut child = env.clone();
                for t in targets {
                    child.insert(t.clone(), Origin::Unknown);
                }
                self.resolve(element, &mut child);
                if let Some(c) = cond {
                    self.resolve(c, &mut child);
                }
                Origin::Unknown
            }
            Expr::Slice { value, start, stop } => {
                self.resolve(value, env);
                if let Some(e) = start {
                    self.resolve(e, env);
                }
                if let Some(e) = stop {
                    self.resolve(e, env);
                }
                Origin::Unknown
            }
            _ => Origin::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pylite::parse;

    fn registry_with(mods: &[&str]) -> Registry {
        let mut r = Registry::new();
        for m in mods {
            r.set_module(*m, "");
        }
        r
    }

    #[test]
    fn collects_direct_and_transitive_imports() {
        let p = parse("import torch.nn\nimport numpy as np\nfrom boto3 import client\n").unwrap();
        let a = analyze(&p, &registry_with(&["torch", "torch.nn", "numpy", "boto3"]));
        for m in ["torch", "torch.nn", "numpy", "boto3"] {
            assert!(a.imported_modules.contains(m), "missing {m}");
        }
        assert!(a.direct_imports.contains("torch.nn"));
        assert!(a.direct_imports.contains("numpy"));
    }

    #[test]
    fn records_attribute_accesses_on_modules() {
        let p = parse("import torch\nx = torch.tensor([1.0])\nz = torch.view(x, 2, 1)\n").unwrap();
        let a = analyze(&p, &registry_with(&["torch"]));
        let attrs = a.accessed_attrs("torch");
        assert!(attrs.contains("tensor"));
        assert!(attrs.contains("view"));
        assert!(!attrs.contains("nn"));
    }

    #[test]
    fn resolves_dotted_submodule_chains() {
        let p = parse("import torch\nmodel = torch.nn.Linear(2, 1)\n").unwrap();
        let a = analyze(&p, &registry_with(&["torch", "torch.nn"]));
        assert!(a.accessed_attrs("torch").contains("nn"));
        assert!(a.accessed_attrs("torch.nn").contains("Linear"));
    }

    #[test]
    fn tracks_import_aliases() {
        let p = parse("import torch.nn as nn\nlayer = nn.Linear(2, 1)\n").unwrap();
        let a = analyze(&p, &registry_with(&["torch", "torch.nn"]));
        assert!(a.accessed_attrs("torch.nn").contains("Linear"));
    }

    #[test]
    fn from_import_unused_is_not_accessed() {
        // §6.2: `from torch.nn import Linear, MSELoss` where MSELoss is never
        // used — DD must be allowed to remove it, so it must NOT be marked
        // definitely-accessed.
        let p = parse("from torch.nn import Linear, MSELoss\nx = Linear(2, 1)\n").unwrap();
        let a = analyze(&p, &registry_with(&["torch", "torch.nn"]));
        let attrs = a.accessed_attrs("torch.nn");
        assert!(attrs.contains("Linear"));
        assert!(!attrs.contains("MSELoss"));
    }

    #[test]
    fn assignment_propagates_module_origin() {
        let p = parse("import numpy\nnp2 = numpy\ny = np2.zeros(4)\n").unwrap();
        let a = analyze(&p, &registry_with(&["numpy"]));
        assert!(a.accessed_attrs("numpy").contains("zeros"));
    }

    #[test]
    fn function_bodies_are_analyzed() {
        let p = parse(
            "import boto3\ndef handler(event, context):\n    c = boto3.client(\"s3\")\n    return c\n",
        )
        .unwrap();
        let a = analyze(&p, &registry_with(&["boto3"]));
        assert!(a.accessed_attrs("boto3").contains("client"));
    }

    #[test]
    fn nested_imports_inside_functions_are_found() {
        let p = parse("def handler(event, context):\n    import lazy_lib\n    return lazy_lib.go()\n")
            .unwrap();
        let a = analyze(&p, &registry_with(&["lazy_lib"]));
        assert!(a.imported_modules.contains("lazy_lib"));
        assert!(a.accessed_attrs("lazy_lib").contains("go"));
    }

    #[test]
    fn parameters_shadow_outer_bindings() {
        let p = parse(
            "import numpy\ndef f(numpy):\n    return numpy.inner_attr\ny = numpy.outer_attr\n",
        )
        .unwrap();
        let a = analyze(&p, &registry_with(&["numpy"]));
        let attrs = a.accessed_attrs("numpy");
        assert!(attrs.contains("outer_attr"));
        assert!(
            !attrs.contains("inner_attr"),
            "parameter shadows the module binding"
        );
    }

    #[test]
    fn from_import_of_submodule_binds_module_origin() {
        let p = parse("from torch import nn\nlayer = nn.Linear(2, 1)\n").unwrap();
        let a = analyze(&p, &registry_with(&["torch", "torch.nn"]));
        assert!(a.imported_modules.contains("torch.nn"));
        assert!(a.accessed_attrs("torch.nn").contains("Linear"));
    }

    #[test]
    fn attribute_writes_count_as_access() {
        let p = parse("import cfg\ncfg.flag = 1\n").unwrap();
        let a = analyze(&p, &registry_with(&["cfg"]));
        assert!(a.accessed_attrs("cfg").contains("flag"));
    }

    #[test]
    fn imported_modules_helper() {
        let p = parse("import a, b.c\n").unwrap();
        let mods = imported_modules(&p);
        assert!(mods.contains("a"));
        assert!(mods.contains("b"));
        assert!(mods.contains("b.c"));
    }
}
