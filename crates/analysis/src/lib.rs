//! # trim-analysis — static analysis for pylite serverless applications
//!
//! The first stage of the λ-trim pipeline (§5.1): a PyCG-style
//! interprocedural, flow-insensitive analysis that computes which module
//! attributes an application **definitely accesses**. Those attributes are
//! excluded from Delta Debugging — they must be kept anyway, so not probing
//! them shrinks the search space (§6.3).
//!
//! The engine ([`engine`]) propagates *origin sets* (powerset lattice over
//! modules, module attributes, functions and container-literal sites, see
//! [`origin`]) through assignments, aliases, tuple/list/dict elements,
//! conditional joins, function returns and call-site parameters, to a
//! fixpoint:
//!
//! ```text
//! import torch.nn as nn         # nn ↦ {Module("torch.nn")}
//! from torch.optim import SGD   # SGD ↦ {Attr("torch.optim", "SGD")}
//! x = nn.Linear(2, 1)           # records torch.nn.Linear as accessed
//! opt = SGD(x)                  # records torch.optim.SGD as accessed
//! def pick(m):
//!     return m.zeros            # records numpy.zeros once pick(numpy) seen
//! pick(numpy)
//! ```
//!
//! In [`AnalysisMode::Interprocedural`] (the default) the top-level bodies
//! of imported registry modules are analyzed too — they execute at import
//! time — so re-export chains (`pkg/__init__` style `from pkg.core import
//! fast_path`) contribute **transitive** definitely-accessed attributes on
//! the submodules. [`AnalysisMode::AppOnly`] reproduces the seed analyzer's
//! scope (application code only) for comparison.
//!
//! [`analyze_full`] additionally returns the interprocedural
//! [`CallGraph`](callgraph::CallGraph) and the debloat-soundness
//! [`lints`](crate::lints) (dynamic attribute access, star imports, module
//! rebinding, …) whose [`Hazard`](lints::Severity::Hazard) findings the
//! pipeline uses to route modules to the conservative fallback deployment
//! instead of DD-trimming them.

#![warn(missing_docs)]

pub mod callgraph;
mod engine;
pub mod lints;
pub mod origin;
pub mod slice;
pub mod spans;
pub mod summary;

use pylite::ast::Program;
use pylite::Registry;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use callgraph::CallGraph;
use lints::{HazardSet, Lint};

/// Which code the static analysis covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AnalysisMode {
    /// Application code only (the seed analyzer's scope). Library modules
    /// are opaque: every `m.attr` read resolves to an unknown attribute.
    AppOnly,
    /// Application code plus the top-level bodies of every transitively
    /// imported registry module and the bodies of library functions that
    /// are possibly called. This is the default.
    #[default]
    Interprocedural,
}

/// Options for [`analyze_full`].
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Coverage mode.
    pub mode: AnalysisMode,
    /// Name of the application entry-point function (e.g. `"handler"`).
    /// Only affects [`CallGraph::reachable`]: when set, reachability is
    /// computed from the top-level plus this function; when `None`, every
    /// application function is a root.
    pub entry: Option<String>,
    /// Number of worker threads for the sharded fixpoint. `1` (the
    /// default) runs serially; any value produces bit-identical results.
    pub jobs: usize,
    /// Optional cross-run summary cache: identical `(app, registry)` runs
    /// are answered from cache, and registry edits trigger incremental
    /// re-analysis of only the changed modules' dependency cone.
    pub summary_cache: Option<Arc<summary::SummaryCache>>,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            mode: AnalysisMode::default(),
            entry: None,
            jobs: 1,
            summary_cache: None,
        }
    }
}

/// The result of statically analyzing an application.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Analysis {
    /// Every module the application imports, directly or via dotted paths
    /// (importing `torch.nn` contributes both `torch` and `torch.nn`).
    /// Interprocedural mode also includes modules imported by library code
    /// that runs at import time.
    pub imported_modules: BTreeSet<String>,
    /// Modules imported *directly by an import statement in the program*
    /// (the candidates handed to the profiler).
    pub direct_imports: BTreeSet<String>,
    /// Per-module set of attributes definitely accessed when the
    /// application loads and runs. These are excluded from the DD search
    /// (§5.1).
    pub accessed: BTreeMap<String, BTreeSet<String>>,
}

impl Analysis {
    /// Attributes definitely accessed on `module` (empty set if none).
    pub fn accessed_attrs(&self, module: &str) -> BTreeSet<String> {
        self.accessed.get(module).cloned().unwrap_or_default()
    }
}

/// The full output of the interprocedural analysis: the seed-compatible
/// [`Analysis`] plus the call graph and the lint findings.
#[derive(Debug, Clone, Default)]
pub struct FullAnalysis {
    /// Imports and definitely-accessed attributes.
    pub analysis: Analysis,
    /// The subset of [`Analysis::accessed`] recorded in code that runs at
    /// load time (application top-level and module top-levels). Handler-only
    /// accesses are excluded. This is the sound lower bound for comparing
    /// against a dynamic import-time profile.
    pub load_time_accessed: BTreeMap<String, BTreeSet<String>>,
    /// Top-level names bound by each analyzed registry module (its
    /// statically-known attribute surface).
    pub module_bindings: BTreeMap<String, BTreeSet<String>>,
    /// Lint findings, deduplicated and ordered.
    pub lints: Vec<Lint>,
    /// Registry modules implicated by a [`lints::Severity::Hazard`] finding.
    /// Equals the key set of [`FullAnalysis::hazard_attrs`]; kept for
    /// callers that only need the module-level view.
    pub hazard_modules: BTreeSet<String>,
    /// Per-module hazard bounds: for each hazardous module, the attribute
    /// names its hazard lints could dynamically touch
    /// ([`lints::HazardAttrs::Attrs`]) or ⊤ when unbounded within the
    /// module. The pipeline pins bounded attrs into DD's must-keep seed and
    /// only routes ⊤ modules to the conservative fallback deployment.
    pub hazard_attrs: HazardSet,
    /// The interprocedural call graph.
    pub call_graph: CallGraph,
    /// Display names of every function whose body the engine analyzed
    /// (app functions always; library functions only when possibly called).
    pub reached_functions: BTreeSet<String>,
}

/// Analyze an application program against the registry it will run in,
/// interprocedurally (library module top-levels and possibly-called library
/// functions included).
///
/// The registry is needed to distinguish `m.sub` (a submodule) from `m.attr`
/// (a plain attribute) when resolving dotted chains, and to obtain library
/// module sources.
pub fn analyze(program: &Program, registry: &Registry) -> Analysis {
    engine::run(program, registry, AnalysisMode::Interprocedural, None).analysis
}

/// Analyze application code only (the seed analyzer's scope). Used as the
/// baseline in probe-count comparisons and by third-party-tool baselines.
pub fn analyze_app_only(program: &Program, registry: &Registry) -> Analysis {
    engine::run(program, registry, AnalysisMode::AppOnly, None).analysis
}

/// Run the full analysis: accesses, call graph, lints and hazard routing.
pub fn analyze_full(
    program: &Program,
    registry: &Registry,
    options: &AnalysisOptions,
) -> FullAnalysis {
    let out = engine::run_with(
        program,
        registry,
        options.mode,
        options.entry.as_deref(),
        options.jobs,
        options.summary_cache.as_deref(),
    );
    FullAnalysis {
        analysis: out.analysis,
        load_time_accessed: out.load_time_accessed,
        module_bindings: out.module_bindings,
        lints: out.lints,
        hazard_modules: out.hazard_modules,
        hazard_attrs: out.hazard_attrs,
        call_graph: out.call_graph,
        reached_functions: out.reached_functions,
    }
}

/// Convenience: collect just the imported module names of a program
/// (the "single pass over the AST" of §5.1), including nested imports
/// inside functions and classes. The registry is consulted to resolve
/// `from pkg import sub` submodule imports, exactly like [`analyze`].
pub fn imported_modules(program: &Program, registry: &Registry) -> BTreeSet<String> {
    analyze_app_only(program, registry).imported_modules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CgNode;
    use crate::lints::{HazardAttrs, LintKind, Severity};
    use pylite::parse;

    fn registry_with(mods: &[&str]) -> Registry {
        let mut r = Registry::new();
        for m in mods {
            r.set_module(*m, "");
        }
        r
    }

    fn registry_src(mods: &[(&str, &str)]) -> Registry {
        let mut r = Registry::new();
        for (m, src) in mods {
            r.set_module(*m, *src);
        }
        r
    }

    fn full(app: &str, registry: &Registry) -> FullAnalysis {
        let p = parse(app).unwrap();
        analyze_full(&p, registry, &AnalysisOptions::default())
    }

    // -- seed behavior (must keep passing) -------------------------------

    #[test]
    fn collects_direct_and_transitive_imports() {
        let p = parse("import torch.nn\nimport numpy as np\nfrom boto3 import client\n").unwrap();
        let a = analyze(&p, &registry_with(&["torch", "torch.nn", "numpy", "boto3"]));
        for m in ["torch", "torch.nn", "numpy", "boto3"] {
            assert!(a.imported_modules.contains(m), "missing {m}");
        }
        assert!(a.direct_imports.contains("torch.nn"));
        assert!(a.direct_imports.contains("numpy"));
    }

    #[test]
    fn records_attribute_accesses_on_modules() {
        let p = parse("import torch\nx = torch.tensor([1.0])\nz = torch.view(x, 2, 1)\n").unwrap();
        let a = analyze(&p, &registry_with(&["torch"]));
        let attrs = a.accessed_attrs("torch");
        assert!(attrs.contains("tensor"));
        assert!(attrs.contains("view"));
        assert!(!attrs.contains("nn"));
    }

    #[test]
    fn resolves_dotted_submodule_chains() {
        let p = parse("import torch\nmodel = torch.nn.Linear(2, 1)\n").unwrap();
        let a = analyze(&p, &registry_with(&["torch", "torch.nn"]));
        assert!(a.accessed_attrs("torch").contains("nn"));
        assert!(a.accessed_attrs("torch.nn").contains("Linear"));
    }

    #[test]
    fn tracks_import_aliases() {
        let p = parse("import torch.nn as nn\nlayer = nn.Linear(2, 1)\n").unwrap();
        let a = analyze(&p, &registry_with(&["torch", "torch.nn"]));
        assert!(a.accessed_attrs("torch.nn").contains("Linear"));
    }

    #[test]
    fn from_import_unused_is_not_accessed() {
        // §6.2: `from torch.nn import Linear, MSELoss` where MSELoss is never
        // used — DD must be allowed to remove it, so it must NOT be marked
        // definitely-accessed. (This lazy rule applies to *application*
        // scope; inside library modules the import executes at load time,
        // see `library_from_imports_are_eager`.)
        let p = parse("from torch.nn import Linear, MSELoss\nx = Linear(2, 1)\n").unwrap();
        let a = analyze(&p, &registry_with(&["torch", "torch.nn"]));
        let attrs = a.accessed_attrs("torch.nn");
        assert!(attrs.contains("Linear"));
        assert!(!attrs.contains("MSELoss"));
    }

    #[test]
    fn assignment_propagates_module_origin() {
        let p = parse("import numpy\nnp2 = numpy\ny = np2.zeros(4)\n").unwrap();
        let a = analyze(&p, &registry_with(&["numpy"]));
        assert!(a.accessed_attrs("numpy").contains("zeros"));
    }

    #[test]
    fn function_bodies_are_analyzed() {
        let p = parse(
            "import boto3\ndef handler(event, context):\n    c = boto3.client(\"s3\")\n    return c\n",
        )
        .unwrap();
        let a = analyze(&p, &registry_with(&["boto3"]));
        assert!(a.accessed_attrs("boto3").contains("client"));
    }

    #[test]
    fn nested_imports_inside_functions_are_found() {
        let p =
            parse("def handler(event, context):\n    import lazy_lib\n    return lazy_lib.go()\n")
                .unwrap();
        let a = analyze(&p, &registry_with(&["lazy_lib"]));
        assert!(a.imported_modules.contains("lazy_lib"));
        assert!(a.accessed_attrs("lazy_lib").contains("go"));
    }

    #[test]
    fn parameters_shadow_outer_bindings() {
        let p = parse(
            "import numpy\ndef f(numpy):\n    return numpy.inner_attr\ny = numpy.outer_attr\n",
        )
        .unwrap();
        let a = analyze(&p, &registry_with(&["numpy"]));
        let attrs = a.accessed_attrs("numpy");
        assert!(attrs.contains("outer_attr"));
        assert!(
            !attrs.contains("inner_attr"),
            "parameter shadows the module binding"
        );
    }

    #[test]
    fn from_import_of_submodule_binds_module_origin() {
        let p = parse("from torch import nn\nlayer = nn.Linear(2, 1)\n").unwrap();
        let a = analyze(&p, &registry_with(&["torch", "torch.nn"]));
        assert!(a.imported_modules.contains("torch.nn"));
        assert!(a.accessed_attrs("torch.nn").contains("Linear"));
    }

    #[test]
    fn attribute_writes_count_as_access() {
        let p = parse("import cfg\ncfg.flag = 1\n").unwrap();
        let a = analyze(&p, &registry_with(&["cfg"]));
        assert!(a.accessed_attrs("cfg").contains("flag"));
    }

    #[test]
    fn imported_modules_helper() {
        let p = parse("import a, b.c\n").unwrap();
        let mods = imported_modules(&p, &Registry::new());
        assert!(mods.contains("a"));
        assert!(mods.contains("b"));
        assert!(mods.contains("b.c"));
    }

    #[test]
    fn imported_modules_helper_resolves_submodules_via_registry() {
        // The seed version of this helper consulted an *empty* registry, so
        // `from pkg import sub` never registered `pkg.sub` as imported.
        let p = parse("from pkg import sub\n").unwrap();
        let mods = imported_modules(&p, &registry_with(&["pkg", "pkg.sub"]));
        assert!(mods.contains("pkg.sub"));
    }

    // -- interprocedural engine ------------------------------------------

    #[test]
    fn return_values_propagate_module_origins() {
        let r = registry_src(&[
            (
                "toolbox",
                "import engine\ndef get_engine():\n    return engine\n",
            ),
            ("engine", ""),
        ]);
        let p = parse("import toolbox\ne = toolbox.get_engine()\nx = e.run()\n").unwrap();
        let a = analyze(&p, &r);
        assert!(a.accessed_attrs("toolbox").contains("get_engine"));
        assert!(
            a.accessed_attrs("engine").contains("run"),
            "module origin must flow through the library function's return"
        );
    }

    #[test]
    fn arguments_propagate_to_parameters() {
        let p = parse("import numpy\ndef use(m):\n    return m.zeros\nuse(numpy)\n").unwrap();
        let a = analyze(&p, &registry_with(&["numpy"]));
        assert!(
            a.accessed_attrs("numpy").contains("zeros"),
            "call-site argument must flow into the parameter"
        );
    }

    #[test]
    fn keyword_arguments_propagate_to_parameters() {
        let p = parse("import numpy\ndef use(m):\n    return m.ones\nuse(m=numpy)\n").unwrap();
        let a = analyze(&p, &registry_with(&["numpy"]));
        assert!(a.accessed_attrs("numpy").contains("ones"));
    }

    #[test]
    fn library_from_imports_are_eager() {
        // Figure 7's re-export pattern: pkg/__init__ does
        // `from pkg.core import fast_path`, which *executes* whenever pkg is
        // imported — fast_path is definitely accessed even if the app never
        // touches it.
        let r = registry_src(&[
            ("pkg", "from pkg.core import fast_path\n"),
            (
                "pkg.core",
                "def fast_path():\n    return 1\ndef slow_path():\n    return 2\n",
            ),
        ]);
        let p = parse("import pkg\n").unwrap();
        let a = analyze(&p, &r);
        let attrs = a.accessed_attrs("pkg.core");
        assert!(attrs.contains("fast_path"));
        assert!(!attrs.contains("slow_path"));
        // The seed-scope analysis sees none of this.
        let p2 = parse("import pkg\n").unwrap();
        let app_only = analyze_app_only(&p2, &r);
        assert!(app_only.accessed_attrs("pkg.core").is_empty());
    }

    #[test]
    fn reexport_reads_through_to_source_module() {
        let r = registry_src(&[
            ("pkg", "from pkg.core import fast_path\n"),
            ("pkg.core", "def fast_path():\n    return 1\n"),
        ]);
        let p = parse("import pkg\ny = pkg.fast_path()\n").unwrap();
        let a = analyze(&p, &r);
        assert!(a.accessed_attrs("pkg").contains("fast_path"));
        assert!(a.accessed_attrs("pkg.core").contains("fast_path"));
    }

    #[test]
    fn uncalled_library_function_bodies_stay_unanalyzed() {
        // Library code that never runs must not contribute accesses: marking
        // its dense self-references as definitely-accessed would force-keep
        // attributes DD could otherwise trim.
        let r = registry_src(&[
            (
                "libx",
                "import helper\ndef used():\n    return 1\ndef unused():\n    return helper.secret\n",
            ),
            ("helper", ""),
        ]);
        let p = parse("import libx\nv = libx.used()\n").unwrap();
        let a = analyze(&p, &r);
        assert!(
            !a.accessed_attrs("helper").contains("secret"),
            "body of a never-called library function must not be analyzed"
        );
        assert!(a.accessed_attrs("libx").contains("used"));
    }

    #[test]
    fn called_library_function_bodies_are_analyzed() {
        let r = registry_src(&[
            (
                "libx",
                "import helper\ndef go():\n    return helper.work()\n",
            ),
            ("helper", "def work():\n    return 3\n"),
        ]);
        let p = parse("import libx\nv = libx.go()\n").unwrap();
        let a = analyze(&p, &r);
        assert!(a.accessed_attrs("helper").contains("work"));
    }

    #[test]
    fn tuple_elements_propagate() {
        let p = parse(
            "import numpy\nimport jsonish\npair = (numpy, jsonish)\na, b = pair\nx = a.zeros\ny = b.dumps\n",
        )
        .unwrap();
        let a = analyze(&p, &registry_with(&["numpy", "jsonish"]));
        assert!(a.accessed_attrs("numpy").contains("zeros"));
        assert!(a.accessed_attrs("jsonish").contains("dumps"));
        assert!(!a.accessed_attrs("numpy").contains("dumps"));
    }

    #[test]
    fn list_indexing_propagates() {
        let p = parse("import numpy\nmods = [numpy]\nx = mods[0].ones\n").unwrap();
        let a = analyze(&p, &registry_with(&["numpy"]));
        assert!(a.accessed_attrs("numpy").contains("ones"));
    }

    #[test]
    fn dict_values_propagate_by_literal_key() {
        let p = parse(
            "import numpy\nimport jsonish\nd = {\"np\": numpy, \"js\": jsonish}\nx = d[\"np\"].zeros\n",
        )
        .unwrap();
        let a = analyze(&p, &registry_with(&["numpy", "jsonish"]));
        assert!(a.accessed_attrs("numpy").contains("zeros"));
        assert!(
            !a.accessed_attrs("jsonish").contains("zeros"),
            "a literal key selects only its own value"
        );
    }

    #[test]
    fn conditional_joins_both_branches() {
        let p = parse("import numpy\nimport jsonish\nm = numpy if flag else jsonish\nx = m.load\n")
            .unwrap();
        let a = analyze(&p, &registry_with(&["numpy", "jsonish"]));
        assert!(a.accessed_attrs("numpy").contains("load"));
        assert!(a.accessed_attrs("jsonish").contains("load"));
    }

    #[test]
    fn for_loop_elements_propagate() {
        let p = parse("import numpy\nfor m in [numpy]:\n    x = m.arange\n").unwrap();
        let a = analyze(&p, &registry_with(&["numpy"]));
        assert!(a.accessed_attrs("numpy").contains("arange"));
    }

    #[test]
    fn dotted_class_bases_are_resolved() {
        // Seed bug: `class Net(nn.Module)` looked up the literal name
        // "nn.Module" and never recorded the access.
        let p = parse("import torch.nn as nn\nclass Net(nn.Module):\n    pass\n").unwrap();
        let a = analyze(&p, &registry_with(&["torch", "torch.nn"]));
        assert!(a.accessed_attrs("torch.nn").contains("Module"));
    }

    // -- instance tracking ------------------------------------------------

    #[test]
    fn instance_method_calls_bind_arguments() {
        // Class → Instance → Method chain: `t.go(numpy)` must flow numpy
        // into the method's first non-self parameter.
        let p = parse(
            "import numpy\nclass T:\n    def go(self, m):\n        return m.zeros\nt = T()\nx = t.go(numpy)\n",
        )
        .unwrap();
        let a = analyze(&p, &registry_with(&["numpy"]));
        assert!(
            a.accessed_attrs("numpy").contains("zeros"),
            "argument must bind past the implicit self"
        );
    }

    #[test]
    fn library_class_methods_participate_in_reachability() {
        let r = registry_src(&[
            (
                "mlkit",
                "import helper\nclass Net:\n    def __init__(self, n):\n        self.n = n\n    def run(self, x):\n        return helper.work(x)\n",
            ),
            ("helper", "def work(x):\n    return x\n"),
        ]);
        let p = parse("import mlkit\nnet = mlkit.Net(3)\ny = net.run(2)\n").unwrap();
        let fa = analyze_full(&p, &r, &AnalysisOptions::default());
        assert!(
            fa.reached_functions.contains("mlkit::Net.run"),
            "called method bodies must be analyzed: {:?}",
            fa.reached_functions
        );
        assert!(
            fa.analysis.accessed_attrs("helper").contains("work"),
            "accesses inside a reached method must be recorded"
        );
    }

    #[test]
    fn uncalled_methods_stay_unanalyzed() {
        let r = registry_src(&[
            (
                "mlkit",
                "import helper\nclass Net:\n    def used(self):\n        return 1\n    def unused(self):\n        return helper.secret\n",
            ),
            ("helper", ""),
        ]);
        let p = parse("import mlkit\nnet = mlkit.Net()\ny = net.used()\n").unwrap();
        let a = analyze(&p, &r);
        assert!(
            !a.accessed_attrs("helper").contains("secret"),
            "body of a never-called method must not contribute accesses"
        );
    }

    #[test]
    fn interprocedural_accesses_superset_of_app_only() {
        let r = registry_src(&[
            ("pkg", "from pkg.core import fast_path\nimport pkg.util\n"),
            ("pkg.core", "def fast_path():\n    return 1\n"),
            ("pkg.util", "LIMIT = 10\n"),
        ]);
        let src = "import pkg\ndef handler(event, context):\n    return pkg.fast_path()\n";
        let inter = analyze(&parse(src).unwrap(), &r);
        let app = analyze_app_only(&parse(src).unwrap(), &r);
        for (m, attrs) in &app.accessed {
            for attr in attrs {
                assert!(
                    inter.accessed_attrs(m).contains(attr),
                    "interprocedural must subsume app-only ({m}.{attr})"
                );
            }
        }
    }

    // -- call graph -------------------------------------------------------

    #[test]
    fn call_graph_tracks_reachability() {
        let r = registry_src(&[("libx", "def go():\n    return 1\n")]);
        let p = parse(
            "import libx\ndef helper():\n    return libx.go()\ndef handler(event, context):\n    return helper()\n",
        )
        .unwrap();
        let fa = analyze_full(
            &p,
            &r,
            &AnalysisOptions {
                entry: Some("handler".to_owned()),
                ..AnalysisOptions::default()
            },
        );
        let cg = &fa.call_graph;
        assert!(cg.reachable.contains(&CgNode::AppFunc("handler".into())));
        assert!(cg.reachable.contains(&CgNode::AppFunc("helper".into())));
        assert!(cg
            .reachable
            .contains(&CgNode::LibFunc("libx".into(), "go".into())));
        assert!(cg.reachable.contains(&CgNode::ModuleTop("libx".into())));
        assert!(fa.reached_functions.contains("libx::go"));
    }

    #[test]
    fn import_edges_point_at_module_tops() {
        let r = registry_src(&[("pkg", "import pkg.core\n"), ("pkg.core", "")]);
        let fa = full("import pkg\n", &r);
        assert!(fa
            .call_graph
            .edges
            .contains(&(CgNode::AppTop, CgNode::ModuleTop("pkg".into()))));
        assert!(fa.call_graph.edges.contains(&(
            CgNode::ModuleTop("pkg".into()),
            CgNode::ModuleTop("pkg.core".into())
        )));
    }

    // -- lints ------------------------------------------------------------

    #[test]
    fn lints_unused_import() {
        let r = registry_with(&["numpy", "jsonish"]);
        let fa = full("import numpy\nimport jsonish\nx = numpy.zeros\n", &r);
        assert!(fa.lints.iter().any(|l| l.kind
            == LintKind::UnusedImport {
                module: "jsonish".into()
            }));
        assert!(!fa.lints.iter().any(|l| l.kind
            == LintKind::UnusedImport {
                module: "numpy".into()
            }));
    }

    #[test]
    fn lints_nonexistent_attribute() {
        let r = registry_src(&[("m", "alpha = 1\n")]);
        let fa = full("import m\nx = m.alpha\ny = m.beta\nm.gamma = 2\n", &r);
        assert!(fa.lints.iter().any(|l| l.kind
            == LintKind::NonexistentAttr {
                module: "m".into(),
                attr: "beta".into()
            }));
        // Writes define the attribute; reads of bound names are fine.
        for attr in ["alpha", "gamma"] {
            assert!(
                !fa.lints.iter().any(|l| l.kind
                    == LintKind::NonexistentAttr {
                        module: "m".into(),
                        attr: attr.into()
                    }),
                "{attr} must not be flagged"
            );
        }
    }

    #[test]
    fn literal_getattr_is_info_and_not_recorded() {
        let r = registry_src(&[("m", "alpha = 1\nrare = 2\n")]);
        let fa = full("import m\nx = m.alpha\nt = getattr(m, \"rare\")\n", &r);
        let lint = fa
            .lints
            .iter()
            .find(|l| {
                l.kind
                    == LintKind::DynamicAttrAccess {
                        module: Some("m".into()),
                        attr: "rare".into(),
                    }
            })
            .expect("literal getattr must be reported");
        assert_eq!(lint.severity, Severity::Info);
        // Deliberately not recorded: the runtime fallback serves it, and
        // resolving it would defeat rarely-used-attribute trimming.
        assert!(!fa.analysis.accessed_attrs("m").contains("rare"));
        assert!(fa.hazard_modules.is_empty());
    }

    #[test]
    fn opaque_getattr_is_a_hazard() {
        let r = registry_src(&[("m", "alpha = 1\n")]);
        let fa = full(
            "import m\ndef handler(event, context):\n    return getattr(m, event)\n",
            &r,
        );
        assert!(fa.lints.iter().any(|l| l.severity == Severity::Hazard
            && l.kind
                == LintKind::OpaqueAttrAccess {
                    module: Some("m".into()),
                    attrs: None,
                }));
        assert!(fa.hazard_modules.contains("m"));
        // A parameter-derived name is unbounded: the hazard is ⊤.
        assert!(fa.hazard_attrs.get("m").is_some_and(HazardAttrs::is_top));
    }

    #[test]
    fn bounded_getattr_pins_attrs_instead_of_top() {
        let r = registry_src(&[("m", "alpha = 1\nbeta = 2\ngamma = 3\n")]);
        let fa = full(
            "import m\ndef handler(event, context):\n    key = \"alpha\" if event else \"beta\"\n    return getattr(m, key)\n",
            &r,
        );
        let expected: BTreeSet<String> = ["alpha".to_owned(), "beta".to_owned()].into();
        assert!(fa.lints.iter().any(|l| l.severity == Severity::Hazard
            && l.kind
                == LintKind::OpaqueAttrAccess {
                    module: Some("m".into()),
                    attrs: Some(expected.clone()),
                }));
        assert_eq!(
            fa.hazard_attrs.get("m"),
            Some(&HazardAttrs::Attrs(expected)),
            "string-value analysis must bound the conditional to its two arms"
        );
    }

    #[test]
    fn loop_carried_getattr_names_are_bounded() {
        // The binding that feeds the getattr happens on the *previous* loop
        // iteration: a single in-order pass would miss "late"; the loop-body
        // fixpoint must not.
        let r = registry_src(&[("m", "early = 1\nlate = 2\n")]);
        let fa = full(
            "import m\ndef handler(event, context):\n    key = \"early\"\n    out = None\n    for i in [1, 2]:\n        out = getattr(m, key)\n        key = \"late\"\n    return out\n",
            &r,
        );
        let expected: BTreeSet<String> = ["early".to_owned(), "late".to_owned()].into();
        assert_eq!(
            fa.hazard_attrs.get("m"),
            Some(&HazardAttrs::Attrs(expected))
        );
    }

    #[test]
    fn star_import_is_a_hazard_and_binds_public_names() {
        let r = registry_src(&[("m", "alpha = 1\n_hidden = 2\n")]);
        let fa = full("from m import *\nx = alpha\n", &r);
        assert!(fa.lints.iter().any(|l| l.severity == Severity::Hazard
            && l.kind == LintKind::StarImport { module: "m".into() }));
        assert!(fa.hazard_modules.contains("m"));
        let attrs = fa.analysis.accessed_attrs("m");
        assert!(attrs.contains("alpha"));
        assert!(!attrs.contains("_hidden"));
        // The ⊤ bound of a star import narrows to the module's *public*
        // binding surface when it is known.
        assert_eq!(
            fa.hazard_attrs.get("m"),
            Some(&HazardAttrs::Attrs(["alpha".to_owned()].into()))
        );
    }

    #[test]
    fn module_rebinding_is_a_hazard() {
        let r = registry_with(&["m", "k"]);
        let fa = full("import m\nimport k\nm = k\nx = m.attr\n", &r);
        assert!(fa.lints.iter().any(|l| l.severity == Severity::Hazard
            && l.kind
                == LintKind::ModuleRebinding {
                    name: "m".into(),
                    module: "m".into(),
                    attrs: ["attr".to_owned()].into(),
                }));
        // The hazard is bounded to the attributes reachable post-rebind.
        assert_eq!(
            fa.hazard_attrs.get("m"),
            Some(&HazardAttrs::Attrs(["attr".to_owned()].into()))
        );
        // A plain alias is not a rebinding.
        let fa2 = full("import m\nm2 = m\nx = m2.attr\n", &r);
        assert!(!fa2
            .lints
            .iter()
            .any(|l| matches!(l.kind, LintKind::ModuleRebinding { .. })));
    }

    // -- load-time view ---------------------------------------------------

    #[test]
    fn load_time_accessed_excludes_handler_only_accesses() {
        let r = registry_with(&["numpy"]);
        let fa = full(
            "import numpy\nx = numpy.zeros\ndef handler(event, context):\n    return numpy.ones\n",
            &r,
        );
        let lt = fa
            .load_time_accessed
            .get("numpy")
            .cloned()
            .unwrap_or_default();
        assert!(lt.contains("zeros"));
        assert!(!lt.contains("ones"));
        assert!(fa.analysis.accessed_attrs("numpy").contains("ones"));
    }

    #[test]
    fn module_bindings_expose_attribute_surface() {
        let r = registry_src(&[("m", "alpha = 1\ndef go():\n    return 2\n")]);
        let fa = full("import m\n", &r);
        let b = fa.module_bindings.get("m").cloned().unwrap_or_default();
        assert!(b.contains("alpha"));
        assert!(b.contains("go"));
    }

    // -- sharded fixpoint: parallelism, caching, incrementality -----------

    fn chain_registry() -> Registry {
        registry_src(&[
            (
                "pkg",
                "from pkg.core import fast_path\nfrom pkg.extras import rare\nname = \"pkg\"\n",
            ),
            (
                "pkg.core",
                "import pkg.util\ndef fast_path(x):\n    return pkg.util.double(x)\ndef cold():\n    return 0\n",
            ),
            ("pkg.util", "def double(x):\n    return x * 2\n"),
            ("pkg.extras", "def rare():\n    return 1\n"),
            ("lone", "standalone = 7\n"),
        ])
    }

    const CHAIN_APP: &str =
        "import pkg\nimport lone\ndef handler(event, context):\n    return pkg.fast_path(event)\n";

    fn assert_same_full(a: &FullAnalysis, b: &FullAnalysis) {
        assert_eq!(a.analysis, b.analysis);
        assert_eq!(a.load_time_accessed, b.load_time_accessed);
        assert_eq!(a.module_bindings, b.module_bindings);
        assert_eq!(a.lints, b.lints);
        assert_eq!(a.hazard_modules, b.hazard_modules);
        assert_eq!(a.hazard_attrs, b.hazard_attrs);
        assert_eq!(a.call_graph, b.call_graph);
        assert_eq!(a.reached_functions, b.reached_functions);
    }

    #[test]
    fn parallel_jobs_are_bit_identical_to_serial() {
        let r = chain_registry();
        let p = parse(CHAIN_APP).unwrap();
        let run = |jobs| {
            analyze_full(
                &p,
                &r,
                &AnalysisOptions {
                    jobs,
                    ..AnalysisOptions::default()
                },
            )
        };
        let serial = run(1);
        for jobs in [2, 8] {
            assert_same_full(&serial, &run(jobs));
        }
    }

    #[test]
    fn summary_cache_answers_identical_rerun_without_refixpoint() {
        let r = chain_registry();
        let p = parse(CHAIN_APP).unwrap();
        let cache = summary::SummaryCache::shared();
        let opts = AnalysisOptions {
            summary_cache: Some(cache.clone()),
            ..AnalysisOptions::default()
        };
        let first = analyze_full(&p, &r, &opts);
        assert_eq!((cache.misses(), cache.hits()), (1, 0));
        let second = analyze_full(&p, &r, &opts);
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
        assert_same_full(&first, &second);
        // An unrelated-clone registry with identical content still hits:
        // the fingerprint and the interner family are what matter.
        let third = analyze_full(&p, &r.clone(), &opts);
        assert_eq!(cache.hits(), 2);
        assert_same_full(&first, &third);
    }

    #[test]
    fn incremental_reanalysis_matches_from_scratch_after_edit() {
        let p = parse(CHAIN_APP).unwrap();
        let cache = summary::SummaryCache::shared();
        let opts = AnalysisOptions {
            summary_cache: Some(cache.clone()),
            ..AnalysisOptions::default()
        };
        let mut r = chain_registry();
        analyze_full(&p, &r, &opts); // prime the cache
                                     // Edit a leaf module: only its reverse-dependency cone re-runs.
        r.set_module("pkg.util", "def double(x):\n    return x + x\ntriple = 3\n");
        let incremental = analyze_full(&p, &r, &opts);
        assert_eq!(cache.incremental_runs(), 1);
        let scratch = analyze_full(&p, &r, &AnalysisOptions::default());
        assert_same_full(&scratch, &incremental);
    }

    #[test]
    fn incremental_reanalysis_matches_from_scratch_after_remove() {
        let p = parse(CHAIN_APP).unwrap();
        let cache = summary::SummaryCache::shared();
        let opts = AnalysisOptions {
            summary_cache: Some(cache.clone()),
            ..AnalysisOptions::default()
        };
        let mut r = chain_registry();
        analyze_full(&p, &r, &opts);
        r.remove_module("pkg.extras");
        let incremental = analyze_full(&p, &r, &opts);
        assert_eq!(cache.incremental_runs(), 1);
        let scratch = analyze_full(&p, &r, &AnalysisOptions::default());
        assert_same_full(&scratch, &incremental);
    }

    #[test]
    fn incremental_reanalysis_matches_from_scratch_after_add() {
        // The app star-imports nothing, but a new module can still matter:
        // `from m import sub` flips from attribute to submodule when
        // `m.sub` appears in the registry.
        let app = "from pkg import core\ndef handler(event, context):\n    return core\n";
        let p = parse(app).unwrap();
        let cache = summary::SummaryCache::shared();
        let opts = AnalysisOptions {
            summary_cache: Some(cache.clone()),
            ..AnalysisOptions::default()
        };
        let mut r = registry_src(&[("pkg", "core = 1\n")]);
        let before = analyze_full(&p, &r, &opts);
        assert!(!before.analysis.imported_modules.contains("pkg.core"));
        r.set_module("pkg.core", "ready = 1\n");
        let incremental = analyze_full(&p, &r, &opts);
        assert_eq!(cache.incremental_runs(), 1);
        assert!(incremental.analysis.imported_modules.contains("pkg.core"));
        let scratch = analyze_full(&p, &r, &AnalysisOptions::default());
        assert_same_full(&scratch, &incremental);
    }
}
