//! The origin lattice: what a name can statically refer to.
//!
//! The seed analyzer tracked a single [`Origin`] per name. The
//! interprocedural engine upgrades this to a powerset lattice: every name
//! maps to an [`OriginSet`] (join = set union, bottom = the empty set,
//! which plays the role of the old `Unknown`). The atoms are finite for a
//! given program + registry — module names are bounded by the registry,
//! attribute pairs and function/site ids by the syntax — so the worklist
//! fixpoint in [`crate::engine`] terminates.

use std::collections::BTreeSet;

/// Identifier of an analyzed function or method (index into the engine's
/// function table).
pub type FuncId = usize;

/// Identifier of a container-literal site: `(unit, encounter index)`.
/// Encounter indices are assigned in walk order, which is deterministic per
/// unit, so a site keeps its identity across fixpoint iterations.
pub type SiteId = (usize, usize);

/// One atom of the origin lattice.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Origin {
    /// A module object with the given dotted name.
    Module(String),
    /// An attribute of a module that the engine could not resolve further
    /// (a data constant, or any attribute in app-only mode).
    Attr(String, String),
    /// A specific analyzed function or method.
    Func(FuncId),
    /// A tuple/list literal; elements live in the engine's site table.
    Seq(SiteId),
    /// A dict literal; entries live in the engine's site table.
    Map(SiteId),
}

/// A set of possible origins. Empty = statically unknown.
pub type OriginSet = BTreeSet<Origin>;

/// Join `from` into `into`; returns true if `into` grew.
pub fn join_into(into: &mut OriginSet, from: &OriginSet) -> bool {
    let before = into.len();
    into.extend(from.iter().cloned());
    into.len() != before
}
