//! The origin lattice: what a name can statically refer to.
//!
//! The seed analyzer tracked a single [`Origin`] per name. The
//! interprocedural engine upgrades this to a powerset lattice: every name
//! maps to an [`OriginSet`] (join = set union, bottom = the empty set,
//! which plays the role of the old `Unknown`). The atoms are finite for a
//! given program + registry — module names are bounded by the registry,
//! attribute pairs and function/site keys by the syntax — so the worklist
//! fixpoint in [`crate::engine`] terminates.
//!
//! Atoms are *interned*: module and attribute names are [`Symbol`]s from
//! the registry's shared `pylite::intern` family, so every analysis shard
//! (and every thread) agrees on atom identity without string comparisons,
//! and an `OriginSet` is a set of small `Copy` values. Function and
//! container-site atoms are identified **by content** ([`FuncKey`],
//! [`SiteKey`]) rather than by discovery order, so a summary cached from an
//! earlier run can be reused next to shards that were re-analyzed from
//! scratch: the same definition always produces the same atom.

use pylite::Symbol;
use std::collections::BTreeSet;

/// The shard a definition lives in: `Some(module)` for a registry module,
/// `None` for the application itself.
pub type ShardName = Option<Symbol>;

/// Content-based identity of an analyzed function or method: the defining
/// shard plus the interned qualified name (`"outer.inner"`, `"Cls.method"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncKey {
    /// Defining module (`None` = the application).
    pub shard: ShardName,
    /// Interned qualified name within the shard.
    pub qual: Symbol,
}

/// Content-based identity of a container-literal site: the shard and unit
/// (function qualname, `None` for the top level) that contains the literal,
/// plus the walk-order encounter index. The counter restarts on every walk
/// of the unit, so a site keeps its identity across fixpoint iterations,
/// across threads, and across incremental re-analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteKey {
    /// Shard containing the literal.
    pub shard: ShardName,
    /// Enclosing analysis unit (function qualname; `None` = top level).
    pub unit: Option<Symbol>,
    /// Deterministic per-walk encounter index.
    pub n: u32,
}

/// One atom of the origin lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Origin {
    /// A module object with the given (interned) dotted name.
    Module(Symbol),
    /// An attribute of a module that the engine could not resolve further
    /// (a data constant, or any attribute in app-only mode).
    Attr(Symbol, Symbol),
    /// A specific analyzed function or method.
    Func(FuncKey),
    /// A class object (the key's `qual` is the class's qualified name).
    /// Calling it produces an [`Origin::Instance`] of the same key.
    Class(FuncKey),
    /// An instance of an analyzed class. Attribute reads against it resolve
    /// methods (`"Cls.method"` entries of the defining shard's function
    /// table) to [`Origin::Method`] atoms, so `obj.method()` participates in
    /// reachability.
    Instance(FuncKey),
    /// A bound method: the key names the underlying `"Cls.method"` function.
    /// Calls bind arguments from parameter 1 on (`self` is bound at
    /// resolution time to the instance).
    Method(FuncKey),
    /// A tuple/list literal; elements live in the owning shard's site table.
    Seq(SiteKey),
    /// A dict literal; entries live in the owning shard's site table.
    Map(SiteKey),
}

/// A set of possible origins. Empty = statically unknown.
pub type OriginSet = BTreeSet<Origin>;

/// Join `from` into `into`; returns true if `into` grew.
pub fn join_into(into: &mut OriginSet, from: &OriginSet) -> bool {
    let before = into.len();
    into.extend(from.iter().copied());
    into.len() != before
}
