//! Deterministic merge of per-shard outputs into the engine result.
//!
//! Each shard's collect pass produces a [`ShardOutput`] that depends only
//! on that shard's converged state (plus the frozen snapshots it read), so
//! outputs can be cached per shard and reused across incremental runs. The
//! merge folds them in sorted shard order — application first, then module
//! names ascending — never in thread-completion order, which is one half of
//! the determinism argument (DESIGN.md §9); the other half is that every
//! target structure is keyed by strings, so even the symbol numbering of a
//! particular run is invisible in the result.

use super::EngineOutput;
use crate::callgraph::{CallGraph, CgNode};
use crate::lints::{hazard_join, HazardAttrs, HazardSet, Lint, LintKind, Severity};
use crate::Analysis;
use pylite::Registry;
use std::collections::{BTreeMap, BTreeSet};

/// Everything one shard contributes to the analysis result. All fields are
/// string-keyed: symbol ids never escape the fixpoint.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct ShardOutput {
    /// Modules this shard imports (every dotted prefix).
    pub imported_modules: BTreeSet<String>,
    /// Exact dotted paths of the shard's import statements (app shard only).
    pub direct_imports: BTreeSet<String>,
    /// Definitely-accessed attributes per module.
    pub accessed: BTreeMap<String, BTreeSet<String>>,
    /// Accesses made from top-level (load-time) code.
    pub load_time: BTreeMap<String, BTreeSet<String>>,
    /// Module attributes this shard assigns to.
    pub written: BTreeSet<(String, String)>,
    /// Modules the application itself touches (app shard only).
    pub used_by_app: BTreeSet<String>,
    /// Lint findings raised while walking this shard.
    pub lints: BTreeSet<Lint>,
    /// Call-graph edges whose caller lives in this shard.
    pub edges: BTreeSet<(CgNode, CgNode)>,
    /// Display names of this shard's analyzed (activated) functions.
    pub reached: BTreeSet<String>,
    /// Qualified names of app-defined functions (app shard only; call-graph
    /// roots when no entry point is given).
    pub app_funcs: BTreeSet<String>,
    /// `(module, top-level binding names)` for an active module shard.
    pub module_bindings: Option<(String, BTreeSet<String>)>,
}

/// Fold shard outputs (already in sorted shard order) and run the cheap
/// whole-program finalization: derived lints, hazard set, call-graph
/// reachability. The finalization is recomputed from scratch on every run —
/// including incremental ones — so it may consult the registry freely
/// without invalidating cached shard summaries.
pub(crate) fn finish<'a>(
    outputs: impl IntoIterator<Item = &'a ShardOutput>,
    registry: &Registry,
    entry: Option<&str>,
) -> EngineOutput {
    let mut analysis = Analysis::default();
    let mut load_time: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut written: BTreeSet<(String, String)> = BTreeSet::new();
    let mut used_by_app: BTreeSet<String> = BTreeSet::new();
    let mut lints: BTreeSet<Lint> = BTreeSet::new();
    let mut edges: BTreeSet<(CgNode, CgNode)> = BTreeSet::new();
    let mut reached: BTreeSet<String> = BTreeSet::new();
    let mut app_funcs: BTreeSet<String> = BTreeSet::new();
    let mut module_bindings: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();

    for o in outputs {
        analysis
            .imported_modules
            .extend(o.imported_modules.iter().cloned());
        analysis
            .direct_imports
            .extend(o.direct_imports.iter().cloned());
        for (m, attrs) in &o.accessed {
            analysis
                .accessed
                .entry(m.clone())
                .or_default()
                .extend(attrs.iter().cloned());
        }
        for (m, attrs) in &o.load_time {
            load_time
                .entry(m.clone())
                .or_default()
                .extend(attrs.iter().cloned());
        }
        written.extend(o.written.iter().cloned());
        used_by_app.extend(o.used_by_app.iter().cloned());
        lints.extend(o.lints.iter().cloned());
        edges.extend(o.edges.iter().cloned());
        reached.extend(o.reached.iter().cloned());
        app_funcs.extend(o.app_funcs.iter().cloned());
        if let Some((m, keys)) = &o.module_bindings {
            module_bindings.insert(m.clone(), keys.clone());
        }
    }

    // Unused app imports.
    for d in analysis.direct_imports.clone() {
        let prefix = format!("{d}.");
        let used = used_by_app.contains(&d) || used_by_app.iter().any(|u| u.starts_with(&prefix));
        if !used {
            lints.insert(Lint {
                severity: Severity::Warning,
                kind: LintKind::UnusedImport { module: d },
            });
        }
    }
    // Accesses to attributes no statement of the module binds.
    for (m, attrs) in &analysis.accessed {
        let Some(keys) = module_bindings.get(m) else {
            continue;
        };
        for a in attrs {
            if !keys.contains(a)
                && !registry.contains(&format!("{m}.{a}"))
                && !written.contains(&(m.clone(), a.clone()))
            {
                lints.insert(Lint {
                    severity: Severity::Warning,
                    kind: LintKind::NonexistentAttr {
                        module: m.clone(),
                        attr: a.clone(),
                    },
                });
            }
        }
    }

    // Per-module hazard bounds: join each hazard lint's implicated attrs
    // under its module. Star imports are nominally ⊤ but are narrowed here
    // to the module's *public* binding surface when it is known (active
    // shard) — the narrowing lives in the merge, which reruns from scratch
    // on every run, so cached shard summaries stay valid.
    let mut hazard_attrs: HazardSet = HazardSet::new();
    for l in lints.iter().filter(|l| l.severity == Severity::Hazard) {
        let Some(m) = l.implicated_module() else {
            continue;
        };
        if !registry.contains(m) {
            continue;
        }
        let Some(attrs) = l.implicated_attrs() else {
            continue;
        };
        let attrs = match (&l.kind, module_bindings.get(m)) {
            (LintKind::StarImport { .. }, Some(keys)) => HazardAttrs::Attrs(
                keys.iter()
                    .filter(|k| !k.starts_with('_'))
                    .cloned()
                    .collect(),
            ),
            _ => attrs,
        };
        hazard_join(&mut hazard_attrs, m, &attrs);
    }
    let hazard_modules: BTreeSet<String> = hazard_attrs.keys().cloned().collect();

    let mut call_graph = CallGraph {
        edges,
        reachable: BTreeSet::new(),
    };
    let mut roots = vec![CgNode::AppTop];
    match entry {
        Some(name) => roots.push(CgNode::AppFunc(name.to_owned())),
        None => {
            for f in &app_funcs {
                roots.push(CgNode::AppFunc(f.clone()));
            }
        }
    }
    call_graph.recompute(roots);

    EngineOutput {
        analysis,
        load_time_accessed: load_time,
        module_bindings,
        lints: lints.into_iter().collect(),
        hazard_modules,
        hazard_attrs,
        call_graph,
        reached_functions: reached,
    }
}
