//! The transfer functions: one shard's walk over its resolved IR.
//!
//! The walker runs in two modes sharing one traversal:
//!
//! * **state mode** (`out == None`) — joins origin sets into the shard's
//!   scopes, function returns and container sites, activates units, and
//!   buffers cross-shard [`Message`]s. It records *no* analysis outputs.
//! * **collect mode** (`out == Some`) — a single read-only pass over the
//!   converged state that records every output (accessed sets, lints,
//!   call-graph edges, imports). Because every transfer is monotone, the
//!   outputs are a pure function of the fixpoint, which is what makes
//!   per-shard output summaries cacheable across incremental runs.
//!
//! Cross-shard reads go through the frozen [`RoundView`] snapshots and are
//! recorded as read-dependencies; cross-shard writes become messages. All
//! intra-shard effects are plain Gauss-Seidel joins.

use super::merge::ShardOutput;
use super::worklist::{FuncInfo, Message, RoundView, Scope, Shard, UnitRef, WalkResult};
use crate::callgraph::CgNode;
use crate::lints::{Lint, LintKind, Severity};
use crate::origin::{join_into, FuncKey, Origin, OriginSet, SiteKey};
use pylite::resolved::{RClassDef, RExpr, RFromName, RStmt};
use pylite::Symbol;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Run one shard to a *local* fixpoint against the round's frozen
/// snapshots: re-walk its active units until nothing owned by the shard
/// changes. Cross-shard effects are returned for the barrier.
pub(crate) fn walk_round(shard: &mut Shard, view: &RoundView<'_>) -> WalkResult {
    let mut result = WalkResult::default();
    loop {
        let mut w = Walker {
            view,
            shard,
            out: None,
            msgs: Vec::new(),
            changed: false,
            pub_changed: false,
            str_env: BTreeMap::new(),
        };
        w.walk_units();
        let changed = w.changed;
        result.pub_changed |= w.pub_changed;
        let msgs = w.msgs;
        result.msgs.extend(msgs);
        if !changed {
            break;
        }
    }
    // The first walk always publishes: even a fixpoint with no origin-set
    // growth (e.g. a module binding only literals) must expose its top-level
    // names — pre-bound to empty sets — to star-import readers.
    if result.pub_changed || shard.published.version == 0 {
        result.pub_changed = true;
        shard.publish();
    }
    result
}

/// The read-only output pass over a converged shard.
pub(crate) fn collect_shard(shard: &mut Shard, view: &RoundView<'_>) -> ShardOutput {
    let mut out = ShardOutput::default();
    let mut w = Walker {
        view,
        shard,
        out: Some(&mut out),
        msgs: Vec::new(),
        changed: false,
        pub_changed: false,
        str_env: BTreeMap::new(),
    };
    w.walk_units();
    debug_assert!(!w.changed, "collect pass must not change state");
    // Function/body inventory (independent of the statement walk).
    for f in shard.funcs.values() {
        let qual = view.interner.resolve(f.qual);
        if f.active {
            out.reached.insert(shard.func_node(&qual).to_string());
        }
        if shard.is_app() {
            out.app_funcs.insert(qual.to_string());
        }
    }
    if let (Some(name), true) = (&shard.name_str, shard.active) {
        let keys: BTreeSet<String> = shard
            .scopes
            .first()
            .map(|s| {
                s.env
                    .keys()
                    .map(|k| view.interner.resolve(*k).to_string())
                    .collect()
            })
            .unwrap_or_default();
        out.module_bindings = Some((name.clone(), keys));
    }
    out
}

/// Per-unit walk context.
struct Ctx {
    /// Current scope index in the shard.
    scope: usize,
    /// The unit's function qualname (`None` = top level).
    unit: Option<Symbol>,
    /// Qualified-name prefix for nested definitions.
    qual: String,
    /// Container-literal encounter counter (deterministic per walk).
    counter: u32,
    /// Whether this unit runs at load time (top level).
    is_top: bool,
    /// Call-graph node of this unit (collect mode).
    node: CgNode,
    /// The unit's full body, for the branch-aware rebind flow scan
    /// (collect mode only; cheap `Arc` clone of the walked body).
    body: ProgramBody,
}

impl Ctx {
    fn next_site(&mut self, shard: &Shard) -> SiteKey {
        let site = SiteKey {
            shard: shard.name,
            unit: self.unit,
            n: self.counter,
        };
        self.counter += 1;
        site
    }
}

pub(crate) struct Walker<'a, 'b> {
    pub view: &'a RoundView<'b>,
    pub shard: &'a mut Shard,
    pub out: Option<&'a mut ShardOutput>,
    pub msgs: Vec<Message>,
    pub changed: bool,
    pub pub_changed: bool,
    /// Collect-mode only: the current unit's string-value environment.
    str_env: BTreeMap<Symbol, StrVal>,
}

impl Walker<'_, '_> {
    fn walk_units(&mut self) {
        let mut i = 0;
        while i < self.shard.units.len() {
            let unit = self.shard.units[i];
            self.walk_unit(unit);
            i += 1;
        }
    }

    fn walk_unit(&mut self, unit: UnitRef) {
        let (body, mut ctx) = match unit {
            UnitRef::Top => {
                let Some(program) = self.shard.program.clone() else {
                    return;
                };
                let node = match &self.shard.name_str {
                    None => CgNode::AppTop,
                    Some(m) => CgNode::ModuleTop(m.clone()),
                };
                let pb = ProgramBody::Program(program);
                (
                    pb.clone(),
                    Ctx {
                        scope: 0,
                        unit: None,
                        qual: String::new(),
                        counter: 0,
                        is_top: true,
                        node,
                        body: pb,
                    },
                )
            }
            UnitRef::Func(key) => {
                let f = &self.shard.funcs[&key];
                let qual = self.view.interner.resolve(f.qual).to_string();
                let node = self.shard.func_node(&qual);
                let scope = f.scope;
                let pb = ProgramBody::Func(Arc::clone(&f.body));
                (
                    pb.clone(),
                    Ctx {
                        scope,
                        unit: Some(key.qual),
                        qual,
                        counter: 0,
                        is_top: false,
                        node,
                        body: pb,
                    },
                )
            }
        };
        if self.is_collect() {
            // Per-unit string-value environment: a sound flow-insensitive
            // over-approximation of the string literals each local name can
            // hold, used to bound non-literal getattr attribute names.
            self.str_env = build_str_env(body.stmts());
        }
        for stmt in body.stmts() {
            self.walk_stmt(&mut ctx, stmt);
        }
    }

    // -- infrastructure ----------------------------------------------------

    fn is_collect(&self) -> bool {
        self.out.is_some()
    }

    fn bind(&mut self, scope: usize, name: Symbol, set: &OriginSet) {
        if self.is_collect() {
            return;
        }
        let slot = self.shard.scopes[scope].env.entry(name).or_default();
        if join_into(slot, set) {
            self.changed = true;
            if scope == 0 {
                self.pub_changed = true;
            }
        }
    }

    fn send(&mut self, msg: Message) {
        if self.is_collect() {
            return;
        }
        if self.shard.sent.insert(msg.clone()) {
            self.msgs.push(msg);
        }
    }

    fn lint(&mut self, severity: Severity, kind: LintKind) {
        if let Some(out) = self.out.as_deref_mut() {
            out.lints.insert(Lint { severity, kind });
        }
    }

    fn edge(&mut self, from: CgNode, to: CgNode) {
        if let Some(out) = self.out.as_deref_mut() {
            out.edges.insert((from, to));
        }
    }

    fn record_access(&mut self, ctx: &Ctx, module: &str, attr: &str) {
        let is_app = self.shard.is_app();
        let Some(out) = self.out.as_deref_mut() else {
            return;
        };
        out.accessed
            .entry(module.to_owned())
            .or_default()
            .insert(attr.to_owned());
        if is_app {
            out.used_by_app.insert(module.to_owned());
        }
        if ctx.is_top {
            out.load_time
                .entry(module.to_owned())
                .or_default()
                .insert(attr.to_owned());
        }
    }

    /// Registry existence probe, recorded for incremental invalidation.
    fn probe_contains(&mut self, name: &str) -> bool {
        if let Some(&v) = self.shard.probes.get(name) {
            return v;
        }
        let v = self.view.registry.contains(name);
        self.shard.probes.insert(name.to_owned(), v);
        v
    }

    /// Whether `m` is an analyzable registry module. Deliberately *static*
    /// (independent of whether `m` was imported yet): the decision between
    /// reading `m`'s environment and synthesizing an opaque `Attr` atom
    /// must be monotone for incremental reuse to be exact (DESIGN.md §9).
    fn analyzed(&mut self, m: &str) -> bool {
        if !self.view.interprocedural {
            return false;
        }
        if let Some(&v) = self.shard.analyzed_probes.get(m) {
            return v;
        }
        let v = self.view.registry.contains(m) && self.view.registry.resolve_module(m).is_ok();
        self.shard.analyzed_probes.insert(m.to_owned(), v);
        v
    }

    fn read_dep(&mut self, module: Symbol) {
        if self.shard.name == Some(module) {
            return;
        }
        let name = self.view.interner.resolve(module).to_string();
        self.shard.read_deps.insert(Some(name));
    }

    /// A module's top-level binding for `name`, through the frozen snapshot
    /// (or our own live env for self-reads).
    fn module_env_get(&mut self, module: Symbol, name: Symbol) -> Option<OriginSet> {
        if self.shard.name == Some(module) {
            return self
                .shard
                .scopes
                .first()
                .and_then(|s| s.env.get(&name))
                .cloned();
        }
        self.read_dep(module);
        self.view
            .snapshot_of(module)
            .and_then(|p| p.top_env.get(&name))
            .cloned()
    }

    /// Snapshot of another shard's published state, recording the read
    /// dependency (`None` addresses the application shard, which is always
    /// snapshot index 0).
    fn foreign_snapshot(
        &mut self,
        shard: crate::origin::ShardName,
    ) -> Option<&super::worklist::Published> {
        match shard {
            Some(m) => {
                self.read_dep(m);
                self.view.snapshot_of(m)
            }
            None => {
                self.shard.read_deps.insert(None);
                Some(&self.view.snapshots[0])
            }
        }
    }

    fn seq_elems(&mut self, site: SiteKey) -> Option<Vec<OriginSet>> {
        if site.shard == self.shard.name {
            return self.shard.seq_sites.get(&site).cloned();
        }
        self.foreign_snapshot(site.shard)
            .and_then(|p| p.seq_sites.get(&site).cloned())
    }

    fn map_entries(
        &mut self,
        site: SiteKey,
    ) -> Option<(std::collections::BTreeMap<Arc<str>, OriginSet>, OriginSet)> {
        if site.shard == self.shard.name {
            return self.shard.map_sites.get(&site).cloned();
        }
        self.foreign_snapshot(site.shard)
            .and_then(|p| p.map_sites.get(&site).cloned())
    }

    /// `import a.b.c` pulls in (and runs the top-level of) a, a.b and a.b.c.
    fn record_import(&mut self, ctx: &Ctx, dotted: &str) {
        let mut prefix = String::new();
        for part in dotted.split('.') {
            if !prefix.is_empty() {
                prefix.push('.');
            }
            prefix.push_str(part);
            let present = self.probe_contains(&prefix);
            if present && self.view.interprocedural {
                let sym = self.view.interner.intern(&prefix);
                self.send(Message::ActivateModule(sym));
            }
            if let Some(out) = self.out.as_deref_mut() {
                out.imported_modules.insert(prefix.clone());
                if present {
                    out.edges
                        .insert((ctx.node.clone(), CgNode::ModuleTop(prefix.clone())));
                }
            }
        }
        let is_app = self.shard.is_app();
        if let Some(out) = self.out.as_deref_mut() {
            if is_app {
                out.direct_imports.insert(dotted.to_owned());
            }
        }
    }

    /// Create a scope pre-bound with `names` (locally-assigned names bind
    /// to the empty set up front so lookups never fall through to an outer
    /// scope "early" — the shadowing decision is static, which keeps the
    /// transfer monotone).
    fn new_scope(&mut self, parent: Option<usize>, names: &BTreeSet<Symbol>) -> usize {
        let mut env = std::collections::BTreeMap::new();
        for &n in names {
            env.insert(n, OriginSet::new());
        }
        self.shard.scopes.push(Scope { parent, env });
        self.shard.scopes.len() - 1
    }

    // -- statements --------------------------------------------------------

    fn walk_block(&mut self, ctx: &mut Ctx, body: &[RStmt]) {
        for stmt in body {
            self.walk_stmt(ctx, stmt);
        }
    }

    fn walk_stmt(&mut self, ctx: &mut Ctx, stmt: &RStmt) {
        match stmt {
            RStmt::Import { items } => {
                for item in items {
                    self.record_import(ctx, &item.module);
                    let target: &str = item.top.as_deref().unwrap_or(&item.module);
                    let sym = self.view.interner.intern(target);
                    let set: OriginSet = [Origin::Module(sym)].into_iter().collect();
                    self.bind(ctx.scope, item.bind, &set);
                    if !self.is_collect() {
                        self.shard.import_bound.insert((ctx.scope, item.bind));
                    }
                }
            }
            RStmt::FromImport { module, names } => {
                self.record_import(ctx, module);
                let module_sym = self.view.interner.intern(module);
                for name in names {
                    let RFromName::Named { name, bind } = name else {
                        self.star_import(ctx, module, module_sym);
                        continue;
                    };
                    let name_str = self.view.interner.resolve(*name);
                    let submodule = format!("{module}.{name_str}");
                    let set: OriginSet = if self.probe_contains(&submodule) {
                        self.record_import(ctx, &submodule);
                        // Importing a submodule via `from` counts as access.
                        self.record_access(ctx, module, &name_str);
                        let sub_sym = self.view.interner.intern(&submodule);
                        [Origin::Module(sub_sym)].into_iter().collect()
                    } else {
                        let mut set: OriginSet =
                            [Origin::Attr(module_sym, *name)].into_iter().collect();
                        if self.analyzed(module) {
                            if let Some(b) = self.module_env_get(module_sym, *name) {
                                set.extend(b);
                            }
                        }
                        // Inside a library module the import itself executes
                        // on load, so the attribute is definitely read. App
                        // from-imports stay lazy (§6.2): an unused name must
                        // remain trimmable by DD.
                        if !self.shard.is_app() {
                            self.record_access(ctx, module, &name_str);
                        }
                        set
                    };
                    self.bind(ctx.scope, *bind, &set);
                    if !self.is_collect() {
                        self.shard.import_bound.insert((ctx.scope, *bind));
                    }
                }
            }
            RStmt::Assign { targets, value } => {
                let vset = self.resolve(ctx, value);
                for t in targets {
                    self.assign_target(ctx, t, &vset);
                }
            }
            RStmt::AugAssign { target, value, .. } => {
                self.resolve(ctx, target);
                self.resolve(ctx, value);
            }
            RStmt::Expr(e) | RStmt::Raise(Some(e)) => {
                self.resolve(ctx, e);
            }
            RStmt::Del(e) => {
                self.resolve(ctx, e);
                // `del name` on an import-bound name is a rebind hazard:
                // later accesses (e.g. a re-import and use in another
                // branch) are invisible to the flow-insensitive engine. The
                // implicated attributes are flow-refined to what the unit
                // syntactically touches through the name post-delete.
                if self.is_collect() {
                    if let RExpr::Name(n) = e {
                        if self.shard.import_bound.contains(&(ctx.scope, *n)) {
                            let old = self.shard.scopes[ctx.scope]
                                .env
                                .get(n)
                                .cloned()
                                .unwrap_or_default();
                            for atom in &old {
                                if let Origin::Module(m) = atom {
                                    let attrs = self.rebind_attrs(ctx.body.stmts(), *n);
                                    let name = self.view.interner.resolve(*n).to_string();
                                    let module = self.view.interner.resolve(*m).to_string();
                                    self.lint(
                                        Severity::Hazard,
                                        LintKind::ModuleRebinding {
                                            name,
                                            module,
                                            attrs,
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
            }
            RStmt::Raise(None)
            | RStmt::Pass
            | RStmt::Break
            | RStmt::Continue
            | RStmt::Global(_) => {}
            RStmt::Return(e) => {
                let set = match e {
                    Some(e) => self.resolve(ctx, e),
                    None => OriginSet::new(),
                };
                if self.is_collect() {
                    return;
                }
                if let Some(qual) = ctx.unit {
                    let key = FuncKey {
                        shard: self.shard.name,
                        qual,
                    };
                    if let Some(f) = self.shard.funcs.get_mut(&key) {
                        if join_into(&mut f.ret, &set) {
                            self.changed = true;
                            self.pub_changed = true;
                        }
                    }
                }
            }
            RStmt::If { branches, orelse } => {
                for (test, body) in branches {
                    self.resolve(ctx, test);
                    self.walk_block(ctx, body);
                }
                self.walk_block(ctx, orelse);
            }
            RStmt::While { test, body } => {
                self.resolve(ctx, test);
                self.walk_block(ctx, body);
            }
            RStmt::For {
                targets,
                iter,
                body,
            } => {
                let iset = self.resolve(ctx, iter);
                let elems = self.element_union(&iset);
                if let [single] = targets.as_slice() {
                    self.bind(ctx.scope, *single, &elems);
                } else {
                    for t in targets {
                        self.bind(ctx.scope, *t, &OriginSet::new());
                    }
                }
                self.walk_block(ctx, body);
            }
            RStmt::FuncDef(f) => {
                let defaults: Vec<OriginSet> = f
                    .params
                    .iter()
                    .map(|p| match &p.default {
                        Some(d) => self.resolve(ctx, d),
                        None => OriginSet::new(),
                    })
                    .collect();
                let qual_str = if ctx.qual.is_empty() {
                    f.name.to_string()
                } else {
                    format!("{}.{}", ctx.qual, f.name)
                };
                let qual = self.view.interner.intern(&qual_str);
                let key = FuncKey {
                    shard: self.shard.name,
                    qual,
                };
                if !self.is_collect() && !self.shard.funcs.contains_key(&key) {
                    let mut names: BTreeSet<Symbol> = f.params.iter().map(|p| p.sym).collect();
                    assigned_names(&f.body, &mut names);
                    let scope = self.new_scope(Some(ctx.scope), &names);
                    let registered = self.shard.register_func(
                        key,
                        FuncInfo {
                            qual,
                            params: f.params.iter().map(|p| p.sym).collect(),
                            body: Arc::clone(&f.body),
                            scope,
                            ret: OriginSet::new(),
                            active: false,
                        },
                    );
                    if registered {
                        self.changed = true;
                        self.pub_changed = true;
                    }
                }
                if !self.is_collect() {
                    if let Some(fscope) = self.shard.funcs.get(&key).map(|i| i.scope) {
                        for (p, dset) in f.params.iter().zip(&defaults) {
                            self.bind(fscope, p.sym, dset);
                        }
                    }
                }
                let set: OriginSet = [Origin::Func(key)].into_iter().collect();
                self.bind(ctx.scope, f.sym, &set);
                // Every app-defined function is assumed reachable (handler
                // and helpers). Library functions wait for a call site.
                if !self.is_collect() && self.shard.is_app() && self.shard.activate_func(key) {
                    self.changed = true;
                    self.pub_changed = true;
                }
            }
            RStmt::ClassDef(c) => {
                self.walk_classdef(ctx, c);
            }
            RStmt::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                self.walk_block(ctx, body);
                for h in handlers {
                    if let Some(n) = h.name {
                        self.bind(ctx.scope, n, &OriginSet::new());
                    }
                    self.walk_block(ctx, &h.body);
                }
                self.walk_block(ctx, orelse);
                self.walk_block(ctx, finalbody);
            }
            RStmt::Assert { test, msg } => {
                self.resolve(ctx, test);
                if let Some(m) = msg {
                    self.resolve(ctx, m);
                }
            }
        }
    }

    fn walk_classdef(&mut self, ctx: &mut Ctx, c: &RClassDef) {
        for base in &c.bases {
            self.resolve_dotted(ctx, base);
        }
        let class_key = (ctx.scope, c.sym);
        let class_scope = match self.shard.class_scopes.get(&class_key) {
            Some(&s) => s,
            None => {
                let mut names = BTreeSet::new();
                assigned_names(&c.body, &mut names);
                let s = self.new_scope(Some(ctx.scope), &names);
                self.shard.class_scopes.insert(class_key, s);
                s
            }
        };
        let saved_scope = ctx.scope;
        let saved_qual = std::mem::take(&mut ctx.qual);
        ctx.scope = class_scope;
        ctx.qual = if saved_qual.is_empty() {
            c.name.to_string()
        } else {
            format!("{saved_qual}.{}", c.name)
        };
        self.walk_block(ctx, &c.body);
        ctx.scope = saved_scope;
        let class_qual = std::mem::replace(&mut ctx.qual, saved_qual);
        // The class name binds to a Class atom keyed by its qualified name,
        // so constructor calls produce Instance origins and `obj.method()`
        // resolves to the registered `"Cls.method"` functions.
        let key = FuncKey {
            shard: self.shard.name,
            qual: self.view.interner.intern(&class_qual),
        };
        let set: OriginSet = [Origin::Class(key)].into_iter().collect();
        self.bind(ctx.scope, c.sym, &set);
    }

    fn assign_target(&mut self, ctx: &mut Ctx, target: &RExpr, vset: &OriginSet) {
        match target {
            RExpr::Name(n) => {
                // Rebinding an import-bound name hides later accesses. The
                // check runs against the converged environment (collect
                // pass), so it sees exactly the import bindings that
                // coexist with this assignment at the fixpoint.
                if self.is_collect() && self.shard.import_bound.contains(&(ctx.scope, *n)) {
                    let old = self.shard.scopes[ctx.scope]
                        .env
                        .get(n)
                        .cloned()
                        .unwrap_or_default();
                    for atom in &old {
                        if let Origin::Module(m) = atom {
                            if !vset.contains(atom) {
                                let attrs = self.rebind_attrs(ctx.body.stmts(), *n);
                                let name = self.view.interner.resolve(*n).to_string();
                                let module = self.view.interner.resolve(*m).to_string();
                                self.lint(
                                    Severity::Hazard,
                                    LintKind::ModuleRebinding {
                                        name,
                                        module,
                                        attrs,
                                    },
                                );
                            }
                        }
                    }
                }
                self.bind(ctx.scope, *n, vset);
            }
            RExpr::Tuple(ts) | RExpr::List(ts) => {
                // Element-wise unpacking when the value is a single literal
                // sequence of matching arity.
                let elems: Option<Vec<OriginSet>> = match vset.iter().collect::<Vec<_>>()[..] {
                    [Origin::Seq(site)] => self.seq_elems(*site).filter(|e| e.len() == ts.len()),
                    _ => None,
                };
                for (i, sub) in ts.iter().enumerate() {
                    let s = elems.as_ref().map(|e| e[i].clone()).unwrap_or_default();
                    self.assign_target(ctx, sub, &s);
                }
            }
            RExpr::Attribute { value, attr, .. } => {
                let base = self.resolve(ctx, value);
                let attr_str = self.view.interner.resolve(*attr);
                for atom in &base {
                    if let Origin::Module(m) = atom {
                        let m_str = self.view.interner.resolve(*m);
                        // A write both counts as an access (the binding must
                        // survive trimming) and defines the attribute.
                        self.record_access(ctx, &m_str, &attr_str);
                        if let Some(out) = self.out.as_deref_mut() {
                            out.written
                                .insert((m_str.to_string(), attr_str.to_string()));
                        }
                    }
                }
            }
            other => {
                self.resolve(ctx, other);
            }
        }
    }

    fn star_import(&mut self, ctx: &mut Ctx, module: &str, module_sym: Symbol) {
        self.lint(
            Severity::Hazard,
            LintKind::StarImport {
                module: module.to_owned(),
            },
        );
        let entries: Vec<(Symbol, OriginSet)> = if self.shard.name == Some(module_sym) {
            self.shard
                .scopes
                .first()
                .map(|s| s.env.iter().map(|(k, v)| (*k, v.clone())).collect())
                .unwrap_or_default()
        } else {
            self.read_dep(module_sym);
            self.view
                .snapshot_of(module_sym)
                .map(|p| p.top_env.iter().map(|(k, v)| (*k, v.clone())).collect())
                .unwrap_or_default()
        };
        for (name, mut set) in entries {
            let name_str = self.view.interner.resolve(name);
            if name_str.starts_with('_') {
                continue;
            }
            self.record_access(ctx, module, &name_str);
            set.insert(Origin::Attr(module_sym, name));
            self.bind(ctx.scope, name, &set);
        }
    }

    /// Resolve a pre-split dotted reference (`class Net(nn.Module)` must be
    /// resolved like the expression `nn.Module`).
    fn resolve_dotted(&mut self, ctx: &mut Ctx, parts: &[Symbol]) -> OriginSet {
        let Some((first, rest)) = parts.split_first() else {
            return OriginSet::new();
        };
        let mut set = self.resolve_name(ctx, *first);
        for attr in rest {
            set = self.attr_value(ctx, &set, *attr);
        }
        set
    }

    // -- expressions -------------------------------------------------------

    /// Union of a value's sequence elements (for-loop and unknown-index
    /// views). Iterating a dict yields string keys, so `Map` contributes
    /// nothing.
    fn element_union(&mut self, set: &OriginSet) -> OriginSet {
        let mut out = OriginSet::new();
        for atom in set {
            if let Origin::Seq(site) = atom {
                if let Some(elems) = self.seq_elems(*site) {
                    for e in elems {
                        out.extend(e);
                    }
                }
            }
        }
        out
    }

    fn resolve_name(&mut self, ctx: &Ctx, n: Symbol) -> OriginSet {
        let set = self.shard.lookup(ctx.scope, n).cloned().unwrap_or_default();
        if self.is_collect() {
            for atom in set.clone() {
                match atom {
                    Origin::Attr(m, a) => {
                        // Using a from-imported name is a definite access.
                        let m = self.view.interner.resolve(m).to_string();
                        let a = self.view.interner.resolve(a).to_string();
                        self.record_access(ctx, &m, &a);
                    }
                    Origin::Module(m) if self.shard.is_app() => {
                        let m = self.view.interner.resolve(m).to_string();
                        if let Some(out) = self.out.as_deref_mut() {
                            out.used_by_app.insert(m);
                        }
                    }
                    _ => {}
                }
            }
        }
        set
    }

    fn attr_value(&mut self, ctx: &Ctx, base: &OriginSet, attr: Symbol) -> OriginSet {
        let attr_str = self.view.interner.resolve(attr);
        let mut out = OriginSet::new();
        for atom in base {
            match atom {
                Origin::Module(m) => {
                    let m_str = self.view.interner.resolve(*m);
                    self.record_access(ctx, &m_str, &attr_str);
                    let sub = format!("{m_str}.{attr_str}");
                    if self.probe_contains(&sub) {
                        out.insert(Origin::Module(self.view.interner.intern(&sub)));
                    } else if self.analyzed(&m_str) {
                        if let Some(binding) = self.module_env_get(*m, attr) {
                            // Reading a re-exported name reads through to its
                            // source module as well.
                            if self.is_collect() {
                                for b in &binding {
                                    if let Origin::Attr(m2, a2) = b {
                                        let m2 = self.view.interner.resolve(*m2).to_string();
                                        let a2 = self.view.interner.resolve(*a2).to_string();
                                        self.record_access(ctx, &m2, &a2);
                                    }
                                }
                            }
                            out.extend(binding);
                        }
                    } else {
                        out.insert(Origin::Attr(*m, attr));
                    }
                }
                Origin::Instance(ck) => {
                    // `obj.method` resolves against the class's registered
                    // `"Cls.method"` functions (local or via snapshot) and
                    // binds `self` to the instance; unresolved attributes
                    // stay empty (data attributes carry no origin).
                    let class_qual = self.view.interner.resolve(ck.qual);
                    let mqual = format!("{class_qual}.{attr_str}");
                    let mkey = FuncKey {
                        shard: ck.shard,
                        qual: self.view.interner.intern(&mqual),
                    };
                    if mkey.shard == self.shard.name {
                        if let Some((fscope, p0)) = self
                            .shard
                            .funcs
                            .get(&mkey)
                            .map(|f| (f.scope, f.params.first().copied()))
                        {
                            if let Some(p0) = p0 {
                                let iset: OriginSet = [Origin::Instance(*ck)].into_iter().collect();
                                self.bind(fscope, p0, &iset);
                            }
                            out.insert(Origin::Method(mkey));
                        }
                    } else if let Some(fpub) = self
                        .foreign_snapshot(mkey.shard)
                        .and_then(|p| p.funcs.get(&mkey))
                        .cloned()
                    {
                        if let Some(&p0) = fpub.params.first() {
                            let iset: OriginSet = [Origin::Instance(*ck)].into_iter().collect();
                            self.send(Message::BindParam(mkey, p0, iset));
                        }
                        out.insert(Origin::Method(mkey));
                    }
                }
                _ => {}
            }
        }
        out
    }

    fn resolve_call(
        &mut self,
        ctx: &mut Ctx,
        func: &RExpr,
        args: &[RExpr],
        kwargs: &[(Symbol, RExpr)],
    ) -> OriginSet {
        if let RExpr::Name(fname) = func {
            if self.view.dynamic_builtins.contains(fname)
                && self.shard.lookup(ctx.scope, *fname).is_none()
            {
                return self.dynamic_access(ctx, args, kwargs);
            }
        }
        let fset = self.resolve(ctx, func);
        let argsets: Vec<OriginSet> = args.iter().map(|a| self.resolve(ctx, a)).collect();
        let kwsets: Vec<(Symbol, OriginSet)> = kwargs
            .iter()
            .map(|(k, v)| (*k, self.resolve(ctx, v)))
            .collect();
        let mut out = OriginSet::new();
        for atom in &fset {
            match atom {
                Origin::Func(key) => {
                    if self.is_collect() {
                        let callee = self.func_callee_node(key);
                        self.edge(ctx.node.clone(), callee);
                    }
                    self.call_known_func(*key, None, 0, &argsets, &kwsets, Some(&mut out));
                }
                Origin::Method(key) => {
                    // Bound-method call: `self` was bound at attribute
                    // resolution, so positional args start at parameter 1.
                    if self.is_collect() {
                        let callee = self.func_callee_node(key);
                        self.edge(ctx.node.clone(), callee);
                    }
                    self.call_known_func(*key, None, 1, &argsets, &kwsets, Some(&mut out));
                }
                Origin::Class(ck) => {
                    // Constructing a class yields an instance; `__init__`
                    // (when defined) is activated with `self` bound to it.
                    out.insert(Origin::Instance(*ck));
                    let init_qual = format!("{}.__init__", self.view.interner.resolve(ck.qual));
                    let ikey = FuncKey {
                        shard: ck.shard,
                        qual: self.view.interner.intern(&init_qual),
                    };
                    let exists = if ikey.shard == self.shard.name {
                        self.shard.funcs.contains_key(&ikey)
                    } else {
                        self.foreign_snapshot(ikey.shard)
                            .is_some_and(|p| p.funcs.contains_key(&ikey))
                    };
                    if exists {
                        if self.is_collect() {
                            let callee = self.func_callee_node(&ikey);
                            self.edge(ctx.node.clone(), callee);
                        }
                        let iset: OriginSet = [Origin::Instance(*ck)].into_iter().collect();
                        self.call_known_func(ikey, Some(&iset), 1, &argsets, &kwsets, None);
                    }
                }
                Origin::Attr(m, a) if self.is_collect() => {
                    let m = self.view.interner.resolve(*m).to_string();
                    let a = self.view.interner.resolve(*a).to_string();
                    self.edge(ctx.node.clone(), CgNode::ModuleAttr(m, a));
                }
                _ => {}
            }
        }
        out
    }

    /// Call-graph node for a resolved function/method key.
    fn func_callee_node(&self, key: &FuncKey) -> CgNode {
        let qual = self.view.interner.resolve(key.qual).to_string();
        match key.shard {
            None => CgNode::AppFunc(qual),
            Some(m) => CgNode::LibFunc(self.view.interner.resolve(m).to_string(), qual),
        }
    }

    /// Activate a resolved callee and bind its parameters: `self_arg` (when
    /// given) binds to parameter 0, positional args bind from parameter
    /// `offset` on, keywords by name. Joins the callee's return set into
    /// `ret` when requested. Local callees bind directly; cross-shard
    /// callees go through barrier messages.
    fn call_known_func(
        &mut self,
        key: FuncKey,
        self_arg: Option<&OriginSet>,
        offset: usize,
        argsets: &[OriginSet],
        kwsets: &[(Symbol, OriginSet)],
        ret: Option<&mut OriginSet>,
    ) {
        if key.shard == self.shard.name {
            // Local call: activate and bind directly.
            if !self.is_collect() {
                if self.shard.activate_func(key) {
                    self.changed = true;
                    self.pub_changed = true;
                }
                if let Some(f) = self.shard.funcs.get(&key) {
                    let params = Arc::clone(&f.params);
                    let fscope = f.scope;
                    if let (Some(sset), Some(&p0)) = (self_arg, params.first()) {
                        self.bind(fscope, p0, sset);
                    }
                    for (i, aset) in argsets.iter().enumerate() {
                        if let Some(&p) = params.get(i + offset) {
                            self.bind(fscope, p, aset);
                        }
                    }
                    for (k, kset) in kwsets {
                        if params.contains(k) {
                            self.bind(fscope, *k, kset);
                        }
                    }
                }
            }
            if let Some(ret) = ret {
                if let Some(f) = self.shard.funcs.get(&key) {
                    ret.extend(f.ret.iter().copied());
                }
            }
        } else {
            // Cross-shard call (including an app-defined callback invoked
            // from library code): activate and bind through the barrier.
            let Some(fpub) = self
                .foreign_snapshot(key.shard)
                .and_then(|p| p.funcs.get(&key))
                .cloned()
            else {
                return;
            };
            self.send(Message::ActivateFunc(key));
            if let (Some(sset), Some(&p0)) = (self_arg, fpub.params.first()) {
                self.send(Message::BindParam(key, p0, sset.clone()));
            }
            for (i, aset) in argsets.iter().enumerate() {
                if let Some(&p) = fpub.params.get(i + offset) {
                    self.send(Message::BindParam(key, p, aset.clone()));
                }
            }
            for (k, kset) in kwsets {
                if fpub.params.contains(k) {
                    self.send(Message::BindParam(key, *k, kset.clone()));
                }
            }
            if let Some(ret) = ret {
                ret.extend(fpub.ret.iter().copied());
            }
        }
    }

    fn resolve(&mut self, ctx: &mut Ctx, e: &RExpr) -> OriginSet {
        match e {
            RExpr::Name(n) => self.resolve_name(ctx, *n),
            RExpr::Attribute { value, attr, .. } => {
                let base = self.resolve(ctx, value);
                self.attr_value(ctx, &base, *attr)
            }
            RExpr::Call { func, args, kwargs } => self.resolve_call(ctx, func, args, kwargs),
            RExpr::Subscript { value, index } => {
                let vset = self.resolve(ctx, value);
                self.resolve(ctx, index);
                let mut out = OriginSet::new();
                for atom in &vset {
                    match atom {
                        Origin::Seq(site) => {
                            if let Some(elems) = self.seq_elems(*site) {
                                match &**index {
                                    RExpr::Int(i) if *i >= 0 && (*i as usize) < elems.len() => {
                                        out.extend(elems[*i as usize].iter().copied());
                                    }
                                    _ => {
                                        for e in elems {
                                            out.extend(e);
                                        }
                                    }
                                }
                            }
                        }
                        Origin::Map(site) => {
                            if let Some((entries, unknown)) = self.map_entries(*site) {
                                match &**index {
                                    RExpr::Str(k) => {
                                        if let Some(s) = entries.get(&**k) {
                                            out.extend(s.iter().copied());
                                        }
                                        out.extend(unknown.iter().copied());
                                    }
                                    _ => {
                                        for s in entries.values() {
                                            out.extend(s.iter().copied());
                                        }
                                        out.extend(unknown.iter().copied());
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
                out
            }
            RExpr::List(items) | RExpr::Tuple(items) => {
                let site = ctx.next_site(self.shard);
                let sets: Vec<OriginSet> = items.iter().map(|i| self.resolve(ctx, i)).collect();
                if !self.is_collect() {
                    let slot = self
                        .shard
                        .seq_sites
                        .entry(site)
                        .or_insert_with(|| vec![OriginSet::new(); sets.len()]);
                    let mut grew = false;
                    for (s, existing) in sets.iter().zip(slot.iter_mut()) {
                        grew |= join_into(existing, s);
                    }
                    if grew {
                        self.changed = true;
                        self.pub_changed = true;
                    }
                }
                [Origin::Seq(site)].into_iter().collect()
            }
            RExpr::Dict(pairs) => {
                let site = ctx.next_site(self.shard);
                let mut resolved: Vec<(Option<Arc<str>>, OriginSet)> = Vec::new();
                for (k, v) in pairs {
                    self.resolve(ctx, k);
                    let key = match k {
                        RExpr::Str(s) => Some(Arc::clone(s)),
                        _ => None,
                    };
                    let vset = self.resolve(ctx, v);
                    resolved.push((key, vset));
                }
                if !self.is_collect() {
                    let slot = self.shard.map_sites.entry(site).or_default();
                    let mut grew = false;
                    for (key, vset) in resolved {
                        let target = match key {
                            Some(k) => slot.0.entry(k).or_default(),
                            None => &mut slot.1,
                        };
                        grew |= join_into(target, &vset);
                    }
                    if grew {
                        self.changed = true;
                        self.pub_changed = true;
                    }
                }
                [Origin::Map(site)].into_iter().collect()
            }
            RExpr::Unary { operand, .. } => {
                self.resolve(ctx, operand);
                OriginSet::new()
            }
            RExpr::Binary { left, right, .. } => {
                self.resolve(ctx, left);
                self.resolve(ctx, right);
                OriginSet::new()
            }
            RExpr::Bool { values, .. } => {
                // `a or b` / `a and b` evaluate to one of the operands.
                let mut out = OriginSet::new();
                for v in values {
                    out.extend(self.resolve(ctx, v));
                }
                out
            }
            RExpr::Compare { left, ops } => {
                self.resolve(ctx, left);
                for (_, v) in ops {
                    self.resolve(ctx, v);
                }
                OriginSet::new()
            }
            RExpr::Conditional { test, body, orelse } => {
                self.resolve(ctx, test);
                // Conditional join: the result may be either branch's value.
                let mut out = self.resolve(ctx, body);
                out.extend(self.resolve(ctx, orelse));
                out
            }
            RExpr::ListComp {
                element,
                targets,
                iter,
                cond,
            } => {
                let iset = self.resolve(ctx, iter);
                let elems = self.element_union(&iset);
                if let [single] = targets.as_slice() {
                    self.bind(ctx.scope, *single, &elems);
                } else {
                    for t in targets {
                        self.bind(ctx.scope, *t, &OriginSet::new());
                    }
                }
                self.resolve(ctx, element);
                if let Some(c) = cond {
                    self.resolve(ctx, c);
                }
                OriginSet::new()
            }
            RExpr::Slice { value, start, stop } => {
                self.resolve(ctx, value);
                if let Some(e) = start {
                    self.resolve(ctx, e);
                }
                if let Some(e) = stop {
                    self.resolve(ctx, e);
                }
                OriginSet::new()
            }
            _ => OriginSet::new(),
        }
    }

    /// `getattr`/`setattr`/`hasattr` handling. Literal attribute names are
    /// reported but deliberately *not* recorded as accesses: resolving them
    /// would force-keep rarely-used attributes that DD should trim and the
    /// §5.4 runtime fallback should serve. Non-literal names make the
    /// target module's accessed set unknowable — a debloating hazard.
    fn dynamic_access(
        &mut self,
        ctx: &mut Ctx,
        args: &[RExpr],
        kwargs: &[(Symbol, RExpr)],
    ) -> OriginSet {
        let target = match args.first() {
            Some(a) => self.resolve(ctx, a),
            None => OriginSet::new(),
        };
        let literal = match args.get(1) {
            Some(RExpr::Str(s)) => Some(Arc::clone(s)),
            Some(other) => {
                self.resolve(ctx, other);
                None
            }
            None => None,
        };
        for a in args.iter().skip(2) {
            self.resolve(ctx, a);
        }
        for (_, v) in kwargs {
            self.resolve(ctx, v);
        }
        if !self.is_collect() {
            return OriginSet::new();
        }
        let modules: Vec<String> = target
            .iter()
            .filter_map(|a| match a {
                Origin::Module(m) => Some(self.view.interner.resolve(*m).to_string()),
                _ => None,
            })
            .collect();
        match literal {
            Some(attr) => {
                if modules.is_empty() {
                    self.lint(
                        Severity::Info,
                        LintKind::DynamicAttrAccess {
                            module: None,
                            attr: attr.to_string(),
                        },
                    );
                } else {
                    for m in modules {
                        self.lint(
                            Severity::Info,
                            LintKind::DynamicAttrAccess {
                                module: Some(m),
                                attr: attr.to_string(),
                            },
                        );
                    }
                }
            }
            None => {
                // Bound the non-literal name by the string-value lattice:
                // `Known` yields a finite attribute set, `Bottom` (a value
                // that is provably not a string, so getattr raises
                // TypeError before touching any attribute) the empty set,
                // `Tainted` is unbounded (⊤ over the module's surface).
                let attrs: Option<BTreeSet<String>> = match args.get(1) {
                    Some(e) => match sv_expr(e, &self.str_env) {
                        StrVal::Known(s) => Some(s.iter().map(|a| a.to_string()).collect()),
                        StrVal::Bottom => Some(BTreeSet::new()),
                        StrVal::Tainted => None,
                    },
                    None => Some(BTreeSet::new()),
                };
                if modules.is_empty() {
                    self.lint(
                        Severity::Warning,
                        LintKind::OpaqueAttrAccess {
                            module: None,
                            attrs,
                        },
                    );
                } else {
                    for m in modules {
                        self.lint(
                            Severity::Hazard,
                            LintKind::OpaqueAttrAccess {
                                module: Some(m),
                                attrs: attrs.clone(),
                            },
                        );
                    }
                }
            }
        }
        OriginSet::new()
    }

    // -- rebind flow scan --------------------------------------------------

    /// Attribute names syntactically reachable through `name` at or after a
    /// possible rebind point — a branch-aware pass over the unit body. `If`
    /// branches each carry the entry flag independently (post-`If` = OR of
    /// branch exits), loop bodies are scanned twice for loop carry, and
    /// nested function bodies count as post-rebind (their call time is
    /// unknown) unless they shadow the name.
    fn rebind_attrs(&self, body: &[RStmt], name: Symbol) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.scan_rebind_block(body, name, false, &mut out);
        out
    }

    /// Scan a block; returns the exit value of the rebound flag.
    fn scan_rebind_block(
        &self,
        body: &[RStmt],
        name: Symbol,
        entry: bool,
        out: &mut BTreeSet<String>,
    ) -> bool {
        let mut rebound = entry;
        for stmt in body {
            rebound = self.scan_rebind_stmt(stmt, name, rebound, out);
        }
        rebound
    }

    fn scan_rebind_stmt(
        &self,
        stmt: &RStmt,
        name: Symbol,
        rebound: bool,
        out: &mut BTreeSet<String>,
    ) -> bool {
        match stmt {
            RStmt::Assign { targets, value } => {
                // The value is evaluated before the targets rebind.
                let mut r = self.scan_rebind_expr(value, name, rebound, out);
                let mut bound = BTreeSet::new();
                for t in targets {
                    target_names(t, &mut bound);
                    if !matches!(t, RExpr::Name(_)) {
                        r = self.scan_rebind_expr(t, name, r, out);
                    }
                }
                r || bound.contains(&name)
            }
            RStmt::AugAssign { target, value, .. } => {
                let mut r = self.scan_rebind_expr(target, name, rebound, out);
                r = self.scan_rebind_expr(value, name, r, out);
                r || matches!(target, RExpr::Name(n) if *n == name)
            }
            RStmt::Expr(e) | RStmt::Raise(Some(e)) | RStmt::Return(Some(e)) => {
                self.scan_rebind_expr(e, name, rebound, out)
            }
            RStmt::Del(e) => {
                let r = self.scan_rebind_expr(e, name, rebound, out);
                r || matches!(e, RExpr::Name(n) if *n == name)
            }
            RStmt::Assert { test, msg } => {
                let mut r = self.scan_rebind_expr(test, name, rebound, out);
                if let Some(m) = msg {
                    r = self.scan_rebind_expr(m, name, r, out);
                }
                r
            }
            RStmt::If { branches, orelse } => {
                let mut exit = false;
                let mut flag = rebound;
                for (test, body) in branches {
                    flag = self.scan_rebind_expr(test, name, flag, out);
                    exit |= self.scan_rebind_block(body, name, flag, out);
                }
                exit |= self.scan_rebind_block(orelse, name, flag, out);
                exit
            }
            RStmt::While { test, body } => {
                let mut r = self.scan_rebind_expr(test, name, rebound, out);
                // Two passes: a rebind late in the body reaches accesses
                // early in the body on the next iteration.
                r = self.scan_rebind_block(body, name, r, out);
                r = self.scan_rebind_expr(test, name, r, out);
                r = self.scan_rebind_block(body, name, r, out);
                r || rebound
            }
            RStmt::For {
                targets,
                iter,
                body,
            } => {
                let mut r = self.scan_rebind_expr(iter, name, rebound, out);
                r |= targets.contains(&name);
                r = self.scan_rebind_block(body, name, r, out);
                r |= targets.contains(&name);
                r = self.scan_rebind_block(body, name, r, out);
                r || rebound
            }
            RStmt::FuncDef(f) => {
                let mut r = rebound;
                for p in &f.params {
                    if let Some(d) = &p.default {
                        r = self.scan_rebind_expr(d, name, r, out);
                    }
                }
                // The nested body runs at an unknown time relative to the
                // rebind; assume post-rebind unless the function shadows
                // the name.
                let mut shadows: BTreeSet<Symbol> = f.params.iter().map(|p| p.sym).collect();
                assigned_names(&f.body, &mut shadows);
                if !shadows.contains(&name) {
                    self.scan_rebind_block(&f.body, name, true, out);
                }
                r || f.sym == name
            }
            RStmt::ClassDef(c) => {
                // The class body executes at the definition point.
                let r = self.scan_rebind_block(&c.body, name, rebound, out);
                r || c.sym == name
            }
            RStmt::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                let mut exit = self.scan_rebind_block(body, name, rebound, out);
                for h in handlers {
                    exit |= self.scan_rebind_block(&h.body, name, exit, out);
                }
                exit |= self.scan_rebind_block(orelse, name, exit, out);
                self.scan_rebind_block(finalbody, name, exit, out)
            }
            RStmt::Import { items } => rebound || items.iter().any(|i| i.bind == name),
            RStmt::FromImport { names, .. } => {
                rebound
                    || names
                        .iter()
                        .any(|n| matches!(n, RFromName::Named { bind, .. } if *bind == name))
            }
            RStmt::Return(None)
            | RStmt::Raise(None)
            | RStmt::Pass
            | RStmt::Break
            | RStmt::Continue
            | RStmt::Global(_) => rebound,
        }
    }

    /// Scan an expression with the current rebound flag, collecting
    /// attribute names read through `name` while rebound. Returns the flag
    /// (list comprehensions can rebind the name mid-expression).
    fn scan_rebind_expr(
        &self,
        e: &RExpr,
        name: Symbol,
        rebound: bool,
        out: &mut BTreeSet<String>,
    ) -> bool {
        match e {
            RExpr::Attribute { value, attr, .. } => {
                let r = self.scan_rebind_expr(value, name, rebound, out);
                if r && matches!(&**value, RExpr::Name(n) if *n == name) {
                    out.insert(self.view.interner.resolve(*attr).to_string());
                }
                r
            }
            RExpr::Call { func, args, kwargs } => {
                let mut r = self.scan_rebind_expr(func, name, rebound, out);
                // Literal getattr-family access through the rebound name.
                if r {
                    if let (RExpr::Name(f), Some(RExpr::Name(a0)), Some(RExpr::Str(s))) =
                        (&**func, args.first(), args.get(1))
                    {
                        if self.view.dynamic_builtins.contains(f) && *a0 == name {
                            out.insert(s.to_string());
                        }
                    }
                }
                for a in args {
                    r = self.scan_rebind_expr(a, name, r, out);
                }
                for (_, v) in kwargs {
                    r = self.scan_rebind_expr(v, name, r, out);
                }
                r
            }
            RExpr::ListComp {
                element,
                targets,
                iter,
                cond,
            } => {
                let mut r = self.scan_rebind_expr(iter, name, rebound, out);
                r |= targets.contains(&name);
                r = self.scan_rebind_expr(element, name, r, out);
                if let Some(c) = cond {
                    r = self.scan_rebind_expr(c, name, r, out);
                }
                r
            }
            RExpr::List(items) | RExpr::Tuple(items) => {
                let mut r = rebound;
                for i in items {
                    r = self.scan_rebind_expr(i, name, r, out);
                }
                r
            }
            RExpr::Dict(pairs) => {
                let mut r = rebound;
                for (k, v) in pairs {
                    r = self.scan_rebind_expr(k, name, r, out);
                    r = self.scan_rebind_expr(v, name, r, out);
                }
                r
            }
            RExpr::Subscript { value, index } => {
                let r = self.scan_rebind_expr(value, name, rebound, out);
                self.scan_rebind_expr(index, name, r, out)
            }
            RExpr::Unary { operand, .. } => self.scan_rebind_expr(operand, name, rebound, out),
            RExpr::Binary { left, right, .. } => {
                let r = self.scan_rebind_expr(left, name, rebound, out);
                self.scan_rebind_expr(right, name, r, out)
            }
            RExpr::Bool { values, .. } => {
                let mut r = rebound;
                for v in values {
                    r = self.scan_rebind_expr(v, name, r, out);
                }
                r
            }
            RExpr::Compare { left, ops } => {
                let mut r = self.scan_rebind_expr(left, name, rebound, out);
                for (_, v) in ops {
                    r = self.scan_rebind_expr(v, name, r, out);
                }
                r
            }
            RExpr::Conditional { test, body, orelse } => {
                let r = self.scan_rebind_expr(test, name, rebound, out);
                let a = self.scan_rebind_expr(body, name, r, out);
                let b = self.scan_rebind_expr(orelse, name, r, out);
                a || b
            }
            RExpr::Slice { value, start, stop } => {
                let mut r = self.scan_rebind_expr(value, name, rebound, out);
                if let Some(s) = start {
                    r = self.scan_rebind_expr(s, name, r, out);
                }
                if let Some(s) = stop {
                    r = self.scan_rebind_expr(s, name, r, out);
                }
                r
            }
            _ => rebound,
        }
    }
}

#[derive(Clone)]
enum ProgramBody {
    Program(Arc<pylite::resolved::RProgram>),
    Func(Arc<[RStmt]>),
}

impl ProgramBody {
    fn stmts(&self) -> &[RStmt] {
        match self {
            ProgramBody::Program(p) => &p.body,
            ProgramBody::Func(b) => b,
        }
    }
}

/// Names a body binds in its own scope, for pre-binding at scope creation.
/// Matches exactly the binds the walker performs: assignment/for/listcomp
/// targets, import binds, def/class names and except-handler names. Nested
/// function and class *bodies* bind in their own scopes and are skipped.
pub(crate) fn assigned_names(body: &[RStmt], out: &mut BTreeSet<Symbol>) {
    for stmt in body {
        match stmt {
            RStmt::Expr(e) | RStmt::Del(e) | RStmt::Raise(Some(e)) => expr_names(e, out),
            RStmt::Assign { targets, value } => {
                for t in targets {
                    target_names(t, out);
                }
                expr_names(value, out);
            }
            RStmt::AugAssign { target, value, .. } => {
                // AugAssign resolves but never binds (old-engine semantics).
                expr_names(target, out);
                expr_names(value, out);
            }
            RStmt::If { branches, orelse } => {
                for (test, body) in branches {
                    expr_names(test, out);
                    assigned_names(body, out);
                }
                assigned_names(orelse, out);
            }
            RStmt::While { test, body } => {
                expr_names(test, out);
                assigned_names(body, out);
            }
            RStmt::For {
                targets,
                iter,
                body,
            } => {
                out.extend(targets.iter().copied());
                expr_names(iter, out);
                assigned_names(body, out);
            }
            RStmt::FuncDef(f) => {
                out.insert(f.sym);
                for p in &f.params {
                    if let Some(d) = &p.default {
                        expr_names(d, out);
                    }
                }
            }
            RStmt::ClassDef(c) => {
                out.insert(c.sym);
            }
            RStmt::Return(Some(e)) => expr_names(e, out),
            RStmt::Return(None)
            | RStmt::Raise(None)
            | RStmt::Pass
            | RStmt::Break
            | RStmt::Continue
            | RStmt::Global(_) => {}
            RStmt::Import { items } => {
                for item in items {
                    out.insert(item.bind);
                }
            }
            RStmt::FromImport { names, .. } => {
                for n in names {
                    if let RFromName::Named { bind, .. } = n {
                        out.insert(*bind);
                    }
                }
            }
            RStmt::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                assigned_names(body, out);
                for h in handlers {
                    if let Some(n) = h.name {
                        out.insert(n);
                    }
                    assigned_names(&h.body, out);
                }
                assigned_names(orelse, out);
                assigned_names(finalbody, out);
            }
            RStmt::Assert { test, msg } => {
                expr_names(test, out);
                if let Some(m) = msg {
                    expr_names(m, out);
                }
            }
        }
    }
}

fn target_names(target: &RExpr, out: &mut BTreeSet<Symbol>) {
    match target {
        RExpr::Name(n) => {
            out.insert(*n);
        }
        RExpr::Tuple(ts) | RExpr::List(ts) => {
            for t in ts {
                target_names(t, out);
            }
        }
        other => expr_names(other, out),
    }
}

/// Collect list-comprehension targets (the only expression-level binds).
fn expr_names(e: &RExpr, out: &mut BTreeSet<Symbol>) {
    match e {
        RExpr::ListComp {
            element,
            targets,
            iter,
            cond,
        } => {
            out.extend(targets.iter().copied());
            expr_names(element, out);
            expr_names(iter, out);
            if let Some(c) = cond {
                expr_names(c, out);
            }
        }
        RExpr::List(items) | RExpr::Tuple(items) => {
            for i in items {
                expr_names(i, out);
            }
        }
        RExpr::Dict(pairs) => {
            for (k, v) in pairs {
                expr_names(k, out);
                expr_names(v, out);
            }
        }
        RExpr::Attribute { value, .. } => expr_names(value, out),
        RExpr::Subscript { value, index } => {
            expr_names(value, out);
            expr_names(index, out);
        }
        RExpr::Call { func, args, kwargs } => {
            expr_names(func, out);
            for a in args {
                expr_names(a, out);
            }
            for (_, v) in kwargs {
                expr_names(v, out);
            }
        }
        RExpr::Unary { operand, .. } => expr_names(operand, out),
        RExpr::Binary { left, right, .. } => {
            expr_names(left, out);
            expr_names(right, out);
        }
        RExpr::Bool { values, .. } => {
            for v in values {
                expr_names(v, out);
            }
        }
        RExpr::Compare { left, ops } => {
            expr_names(left, out);
            for (_, v) in ops {
                expr_names(v, out);
            }
        }
        RExpr::Conditional { test, body, orelse } => {
            expr_names(test, out);
            expr_names(body, out);
            expr_names(orelse, out);
        }
        RExpr::Slice { value, start, stop } => {
            expr_names(value, out);
            if let Some(s) = start {
                expr_names(s, out);
            }
            if let Some(s) = stop {
                expr_names(s, out);
            }
        }
        _ => {}
    }
}

// -- string-value lattice ----------------------------------------------------

/// Over-approximation of the string values an expression can evaluate to,
/// used to bound the attribute names a non-literal `getattr` can touch.
///
/// `Bottom` means no *string* can flow here (the expression only produces
/// non-string values); a runtime `getattr` with a non-string name raises
/// `TypeError` before touching any attribute, so `Bottom` soundly bounds
/// the accessed set to ∅. `Tainted` is ⊤: the value is not bounded by the
/// literals in the unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum StrVal {
    /// No string value reaches this point.
    Bottom,
    /// One of finitely many string literals.
    Known(BTreeSet<Arc<str>>),
    /// Unbounded.
    Tainted,
}

impl StrVal {
    fn join(&mut self, other: &StrVal) {
        match (&mut *self, other) {
            (StrVal::Tainted, _) | (_, StrVal::Bottom) => {}
            (_, StrVal::Tainted) => *self = StrVal::Tainted,
            (StrVal::Bottom, known) => *self = known.clone(),
            (StrVal::Known(a), StrVal::Known(b)) => a.extend(b.iter().cloned()),
        }
    }
}

/// The string values `e` can take under `env`. Names missing from the env
/// (free variables, parameters) are `Tainted`.
pub(crate) fn sv_expr(e: &RExpr, env: &BTreeMap<Symbol, StrVal>) -> StrVal {
    match e {
        RExpr::Str(s) => StrVal::Known(BTreeSet::from([Arc::clone(s)])),
        RExpr::Name(n) => env.get(n).cloned().unwrap_or(StrVal::Tainted),
        // A conditional evaluates to one of its arms; `and`/`or` chains
        // evaluate to one of their operands.
        RExpr::Conditional { body, orelse, .. } => {
            let mut v = sv_expr(body, env);
            v.join(&sv_expr(orelse, env));
            v
        }
        RExpr::Bool { values, .. } => {
            let mut v = StrVal::Bottom;
            for operand in values {
                v.join(&sv_expr(operand, env));
            }
            v
        }
        // Literals and containers never evaluate to a string.
        RExpr::None
        | RExpr::True
        | RExpr::False
        | RExpr::Int(_)
        | RExpr::Float(_)
        | RExpr::List(_)
        | RExpr::Tuple(_)
        | RExpr::Dict(_)
        | RExpr::ListComp { .. } => StrVal::Bottom,
        // Anything else (calls, attributes, subscripts, concatenation, ...)
        // can produce strings we cannot enumerate.
        _ => StrVal::Tainted,
    }
}

/// Build the per-unit string environment: a flow-insensitive (final-state)
/// map from local names to the string values any of their bindings can
/// produce. Loop bodies iterate to a fixpoint so loop-carried value chains
/// are covered; nested function bodies are separate units and are skipped.
pub(crate) fn build_str_env(body: &[RStmt]) -> BTreeMap<Symbol, StrVal> {
    let mut env = BTreeMap::new();
    sv_block(body, &mut env);
    env
}

fn sv_taint(e: &RExpr, env: &mut BTreeMap<Symbol, StrVal>) {
    let mut names = BTreeSet::new();
    expr_names(e, &mut names);
    for n in names {
        env.insert(n, StrVal::Tainted);
    }
}

fn sv_block(body: &[RStmt], env: &mut BTreeMap<Symbol, StrVal>) {
    for stmt in body {
        sv_stmt(stmt, env);
    }
}

fn sv_stmt(stmt: &RStmt, env: &mut BTreeMap<Symbol, StrVal>) {
    match stmt {
        RStmt::Assign { targets, value } => {
            // Taint list-comprehension targets inside the value first, then
            // join the value into a single-Name target. Multi-target and
            // destructuring forms taint every bound name.
            sv_taint(value, env);
            if let [RExpr::Name(n)] = targets.as_slice() {
                let v = sv_expr(value, env);
                env.entry(*n).or_insert(StrVal::Bottom).join(&v);
            } else {
                let mut names = BTreeSet::new();
                for t in targets {
                    target_names(t, &mut names);
                }
                for n in names {
                    env.insert(n, StrVal::Tainted);
                }
            }
        }
        RStmt::AugAssign { target, value, .. } => {
            sv_taint(value, env);
            let mut names = BTreeSet::new();
            target_names(target, &mut names);
            for n in names {
                env.insert(n, StrVal::Tainted);
            }
        }
        RStmt::Expr(e) | RStmt::Del(e) | RStmt::Raise(Some(e)) | RStmt::Return(Some(e)) => {
            sv_taint(e, env);
        }
        RStmt::Assert { test, msg } => {
            sv_taint(test, env);
            if let Some(m) = msg {
                sv_taint(m, env);
            }
        }
        RStmt::If { branches, orelse } => {
            for (test, body) in branches {
                sv_taint(test, env);
                sv_block(body, env);
            }
            sv_block(orelse, env);
        }
        RStmt::While { test, body } => {
            sv_taint(test, env);
            // Iterate to a fixpoint: a binding late in the body feeds reads
            // early in the body on the next iteration. Joins only grow
            // toward the finitely many literals in the body, so this
            // terminates.
            loop {
                let before = env.clone();
                sv_block(body, env);
                if *env == before {
                    break;
                }
            }
        }
        RStmt::For {
            targets,
            iter,
            body,
        } => {
            sv_taint(iter, env);
            for t in targets {
                env.insert(*t, StrVal::Tainted);
            }
            loop {
                let before = env.clone();
                sv_block(body, env);
                if *env == before {
                    break;
                }
            }
        }
        RStmt::FuncDef(f) => {
            for p in &f.params {
                if let Some(d) = &p.default {
                    sv_taint(d, env);
                }
            }
            // The body is a separate analysis unit with its own env.
            env.insert(f.sym, StrVal::Tainted);
        }
        RStmt::ClassDef(c) => {
            env.insert(c.sym, StrVal::Tainted);
            // The class body executes at the definition point; its binds
            // share this env's keys (a sound join, never an under-count).
            sv_block(&c.body, env);
        }
        RStmt::Import { items } => {
            for item in items {
                env.insert(item.bind, StrVal::Tainted);
            }
        }
        RStmt::FromImport { names, .. } => {
            for n in names {
                if let RFromName::Named { bind, .. } = n {
                    env.insert(*bind, StrVal::Tainted);
                }
            }
        }
        RStmt::Try {
            body,
            handlers,
            orelse,
            finalbody,
        } => {
            sv_block(body, env);
            for h in handlers {
                if let Some(n) = h.name {
                    env.insert(n, StrVal::Tainted);
                }
                sv_block(&h.body, env);
            }
            sv_block(orelse, env);
            sv_block(finalbody, env);
        }
        RStmt::Global(names) => {
            // Reads and writes go through module scope; do not bound them.
            for n in names {
                env.insert(*n, StrVal::Tainted);
            }
        }
        RStmt::Return(None) | RStmt::Raise(None) | RStmt::Pass | RStmt::Break | RStmt::Continue => {
        }
    }
}
