//! The transfer functions: one shard's walk over its resolved IR.
//!
//! The walker runs in two modes sharing one traversal:
//!
//! * **state mode** (`out == None`) — joins origin sets into the shard's
//!   scopes, function returns and container sites, activates units, and
//!   buffers cross-shard [`Message`]s. It records *no* analysis outputs.
//! * **collect mode** (`out == Some`) — a single read-only pass over the
//!   converged state that records every output (accessed sets, lints,
//!   call-graph edges, imports). Because every transfer is monotone, the
//!   outputs are a pure function of the fixpoint, which is what makes
//!   per-shard output summaries cacheable across incremental runs.
//!
//! Cross-shard reads go through the frozen [`RoundView`] snapshots and are
//! recorded as read-dependencies; cross-shard writes become messages. All
//! intra-shard effects are plain Gauss-Seidel joins.

use super::merge::ShardOutput;
use super::worklist::{FuncInfo, Message, RoundView, Scope, Shard, UnitRef, WalkResult};
use crate::callgraph::CgNode;
use crate::lints::{Lint, LintKind, Severity};
use crate::origin::{join_into, FuncKey, Origin, OriginSet, SiteKey};
use pylite::resolved::{RClassDef, RExpr, RFromName, RStmt};
use pylite::Symbol;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Run one shard to a *local* fixpoint against the round's frozen
/// snapshots: re-walk its active units until nothing owned by the shard
/// changes. Cross-shard effects are returned for the barrier.
pub(crate) fn walk_round(shard: &mut Shard, view: &RoundView<'_>) -> WalkResult {
    let mut result = WalkResult::default();
    loop {
        let mut w = Walker {
            view,
            shard,
            out: None,
            msgs: Vec::new(),
            changed: false,
            pub_changed: false,
        };
        w.walk_units();
        let changed = w.changed;
        result.pub_changed |= w.pub_changed;
        let msgs = w.msgs;
        result.msgs.extend(msgs);
        if !changed {
            break;
        }
    }
    // The first walk always publishes: even a fixpoint with no origin-set
    // growth (e.g. a module binding only literals) must expose its top-level
    // names — pre-bound to empty sets — to star-import readers.
    if result.pub_changed || shard.published.version == 0 {
        result.pub_changed = true;
        shard.publish();
    }
    result
}

/// The read-only output pass over a converged shard.
pub(crate) fn collect_shard(shard: &mut Shard, view: &RoundView<'_>) -> ShardOutput {
    let mut out = ShardOutput::default();
    let mut w = Walker {
        view,
        shard,
        out: Some(&mut out),
        msgs: Vec::new(),
        changed: false,
        pub_changed: false,
    };
    w.walk_units();
    debug_assert!(!w.changed, "collect pass must not change state");
    // Function/body inventory (independent of the statement walk).
    for f in shard.funcs.values() {
        let qual = view.interner.resolve(f.qual);
        if f.active {
            out.reached.insert(shard.func_node(&qual).to_string());
        }
        if shard.is_app() {
            out.app_funcs.insert(qual.to_string());
        }
    }
    if let (Some(name), true) = (&shard.name_str, shard.active) {
        let keys: BTreeSet<String> = shard
            .scopes
            .first()
            .map(|s| {
                s.env
                    .keys()
                    .map(|k| view.interner.resolve(*k).to_string())
                    .collect()
            })
            .unwrap_or_default();
        out.module_bindings = Some((name.clone(), keys));
    }
    out
}

/// Per-unit walk context.
struct Ctx {
    /// Current scope index in the shard.
    scope: usize,
    /// The unit's function qualname (`None` = top level).
    unit: Option<Symbol>,
    /// Qualified-name prefix for nested definitions.
    qual: String,
    /// Container-literal encounter counter (deterministic per walk).
    counter: u32,
    /// Whether this unit runs at load time (top level).
    is_top: bool,
    /// Call-graph node of this unit (collect mode).
    node: CgNode,
}

impl Ctx {
    fn next_site(&mut self, shard: &Shard) -> SiteKey {
        let site = SiteKey {
            shard: shard.name,
            unit: self.unit,
            n: self.counter,
        };
        self.counter += 1;
        site
    }
}

pub(crate) struct Walker<'a, 'b> {
    pub view: &'a RoundView<'b>,
    pub shard: &'a mut Shard,
    pub out: Option<&'a mut ShardOutput>,
    pub msgs: Vec<Message>,
    pub changed: bool,
    pub pub_changed: bool,
}

impl Walker<'_, '_> {
    fn walk_units(&mut self) {
        let mut i = 0;
        while i < self.shard.units.len() {
            let unit = self.shard.units[i];
            self.walk_unit(unit);
            i += 1;
        }
    }

    fn walk_unit(&mut self, unit: UnitRef) {
        let (body, mut ctx) = match unit {
            UnitRef::Top => {
                let Some(program) = self.shard.program.clone() else {
                    return;
                };
                let node = match &self.shard.name_str {
                    None => CgNode::AppTop,
                    Some(m) => CgNode::ModuleTop(m.clone()),
                };
                (
                    ProgramBody::Program(program),
                    Ctx {
                        scope: 0,
                        unit: None,
                        qual: String::new(),
                        counter: 0,
                        is_top: true,
                        node,
                    },
                )
            }
            UnitRef::Func(key) => {
                let f = &self.shard.funcs[&key];
                let qual = self.view.interner.resolve(f.qual).to_string();
                let node = self.shard.func_node(&qual);
                let scope = f.scope;
                (
                    ProgramBody::Func(Arc::clone(&f.body)),
                    Ctx {
                        scope,
                        unit: Some(key.qual),
                        qual,
                        counter: 0,
                        is_top: false,
                        node,
                    },
                )
            }
        };
        for stmt in body.stmts() {
            self.walk_stmt(&mut ctx, stmt);
        }
    }

    // -- infrastructure ----------------------------------------------------

    fn is_collect(&self) -> bool {
        self.out.is_some()
    }

    fn bind(&mut self, scope: usize, name: Symbol, set: &OriginSet) {
        if self.is_collect() {
            return;
        }
        let slot = self.shard.scopes[scope].env.entry(name).or_default();
        if join_into(slot, set) {
            self.changed = true;
            if scope == 0 {
                self.pub_changed = true;
            }
        }
    }

    fn send(&mut self, msg: Message) {
        if self.is_collect() {
            return;
        }
        if self.shard.sent.insert(msg.clone()) {
            self.msgs.push(msg);
        }
    }

    fn lint(&mut self, severity: Severity, kind: LintKind) {
        if let Some(out) = self.out.as_deref_mut() {
            out.lints.insert(Lint { severity, kind });
        }
    }

    fn edge(&mut self, from: CgNode, to: CgNode) {
        if let Some(out) = self.out.as_deref_mut() {
            out.edges.insert((from, to));
        }
    }

    fn record_access(&mut self, ctx: &Ctx, module: &str, attr: &str) {
        let is_app = self.shard.is_app();
        let Some(out) = self.out.as_deref_mut() else {
            return;
        };
        out.accessed
            .entry(module.to_owned())
            .or_default()
            .insert(attr.to_owned());
        if is_app {
            out.used_by_app.insert(module.to_owned());
        }
        if ctx.is_top {
            out.load_time
                .entry(module.to_owned())
                .or_default()
                .insert(attr.to_owned());
        }
    }

    /// Registry existence probe, recorded for incremental invalidation.
    fn probe_contains(&mut self, name: &str) -> bool {
        if let Some(&v) = self.shard.probes.get(name) {
            return v;
        }
        let v = self.view.registry.contains(name);
        self.shard.probes.insert(name.to_owned(), v);
        v
    }

    /// Whether `m` is an analyzable registry module. Deliberately *static*
    /// (independent of whether `m` was imported yet): the decision between
    /// reading `m`'s environment and synthesizing an opaque `Attr` atom
    /// must be monotone for incremental reuse to be exact (DESIGN.md §9).
    fn analyzed(&mut self, m: &str) -> bool {
        if !self.view.interprocedural {
            return false;
        }
        if let Some(&v) = self.shard.analyzed_probes.get(m) {
            return v;
        }
        let v = self.view.registry.contains(m) && self.view.registry.resolve_module(m).is_ok();
        self.shard.analyzed_probes.insert(m.to_owned(), v);
        v
    }

    fn read_dep(&mut self, module: Symbol) {
        if self.shard.name == Some(module) {
            return;
        }
        let name = self.view.interner.resolve(module).to_string();
        self.shard.read_deps.insert(Some(name));
    }

    /// A module's top-level binding for `name`, through the frozen snapshot
    /// (or our own live env for self-reads).
    fn module_env_get(&mut self, module: Symbol, name: Symbol) -> Option<OriginSet> {
        if self.shard.name == Some(module) {
            return self
                .shard
                .scopes
                .first()
                .and_then(|s| s.env.get(&name))
                .cloned();
        }
        self.read_dep(module);
        self.view
            .snapshot_of(module)
            .and_then(|p| p.top_env.get(&name))
            .cloned()
    }

    /// Snapshot of another shard's published state, recording the read
    /// dependency (`None` addresses the application shard, which is always
    /// snapshot index 0).
    fn foreign_snapshot(
        &mut self,
        shard: crate::origin::ShardName,
    ) -> Option<&super::worklist::Published> {
        match shard {
            Some(m) => {
                self.read_dep(m);
                self.view.snapshot_of(m)
            }
            None => {
                self.shard.read_deps.insert(None);
                Some(&self.view.snapshots[0])
            }
        }
    }

    fn seq_elems(&mut self, site: SiteKey) -> Option<Vec<OriginSet>> {
        if site.shard == self.shard.name {
            return self.shard.seq_sites.get(&site).cloned();
        }
        self.foreign_snapshot(site.shard)
            .and_then(|p| p.seq_sites.get(&site).cloned())
    }

    fn map_entries(
        &mut self,
        site: SiteKey,
    ) -> Option<(std::collections::BTreeMap<Arc<str>, OriginSet>, OriginSet)> {
        if site.shard == self.shard.name {
            return self.shard.map_sites.get(&site).cloned();
        }
        self.foreign_snapshot(site.shard)
            .and_then(|p| p.map_sites.get(&site).cloned())
    }

    /// `import a.b.c` pulls in (and runs the top-level of) a, a.b and a.b.c.
    fn record_import(&mut self, ctx: &Ctx, dotted: &str) {
        let mut prefix = String::new();
        for part in dotted.split('.') {
            if !prefix.is_empty() {
                prefix.push('.');
            }
            prefix.push_str(part);
            let present = self.probe_contains(&prefix);
            if present && self.view.interprocedural {
                let sym = self.view.interner.intern(&prefix);
                self.send(Message::ActivateModule(sym));
            }
            if let Some(out) = self.out.as_deref_mut() {
                out.imported_modules.insert(prefix.clone());
                if present {
                    out.edges
                        .insert((ctx.node.clone(), CgNode::ModuleTop(prefix.clone())));
                }
            }
        }
        let is_app = self.shard.is_app();
        if let Some(out) = self.out.as_deref_mut() {
            if is_app {
                out.direct_imports.insert(dotted.to_owned());
            }
        }
    }

    /// Create a scope pre-bound with `names` (locally-assigned names bind
    /// to the empty set up front so lookups never fall through to an outer
    /// scope "early" — the shadowing decision is static, which keeps the
    /// transfer monotone).
    fn new_scope(&mut self, parent: Option<usize>, names: &BTreeSet<Symbol>) -> usize {
        let mut env = std::collections::BTreeMap::new();
        for &n in names {
            env.insert(n, OriginSet::new());
        }
        self.shard.scopes.push(Scope { parent, env });
        self.shard.scopes.len() - 1
    }

    // -- statements --------------------------------------------------------

    fn walk_block(&mut self, ctx: &mut Ctx, body: &[RStmt]) {
        for stmt in body {
            self.walk_stmt(ctx, stmt);
        }
    }

    fn walk_stmt(&mut self, ctx: &mut Ctx, stmt: &RStmt) {
        match stmt {
            RStmt::Import { items } => {
                for item in items {
                    self.record_import(ctx, &item.module);
                    let target: &str = item.top.as_deref().unwrap_or(&item.module);
                    let sym = self.view.interner.intern(target);
                    let set: OriginSet = [Origin::Module(sym)].into_iter().collect();
                    self.bind(ctx.scope, item.bind, &set);
                    if !self.is_collect() {
                        self.shard.import_bound.insert((ctx.scope, item.bind));
                    }
                }
            }
            RStmt::FromImport { module, names } => {
                self.record_import(ctx, module);
                let module_sym = self.view.interner.intern(module);
                for name in names {
                    let RFromName::Named { name, bind } = name else {
                        self.star_import(ctx, module, module_sym);
                        continue;
                    };
                    let name_str = self.view.interner.resolve(*name);
                    let submodule = format!("{module}.{name_str}");
                    let set: OriginSet = if self.probe_contains(&submodule) {
                        self.record_import(ctx, &submodule);
                        // Importing a submodule via `from` counts as access.
                        self.record_access(ctx, module, &name_str);
                        let sub_sym = self.view.interner.intern(&submodule);
                        [Origin::Module(sub_sym)].into_iter().collect()
                    } else {
                        let mut set: OriginSet =
                            [Origin::Attr(module_sym, *name)].into_iter().collect();
                        if self.analyzed(module) {
                            if let Some(b) = self.module_env_get(module_sym, *name) {
                                set.extend(b);
                            }
                        }
                        // Inside a library module the import itself executes
                        // on load, so the attribute is definitely read. App
                        // from-imports stay lazy (§6.2): an unused name must
                        // remain trimmable by DD.
                        if !self.shard.is_app() {
                            self.record_access(ctx, module, &name_str);
                        }
                        set
                    };
                    self.bind(ctx.scope, *bind, &set);
                    if !self.is_collect() {
                        self.shard.import_bound.insert((ctx.scope, *bind));
                    }
                }
            }
            RStmt::Assign { targets, value } => {
                let vset = self.resolve(ctx, value);
                for t in targets {
                    self.assign_target(ctx, t, &vset);
                }
            }
            RStmt::AugAssign { target, value, .. } => {
                self.resolve(ctx, target);
                self.resolve(ctx, value);
            }
            RStmt::Expr(e) | RStmt::Raise(Some(e)) | RStmt::Del(e) => {
                self.resolve(ctx, e);
            }
            RStmt::Raise(None)
            | RStmt::Pass
            | RStmt::Break
            | RStmt::Continue
            | RStmt::Global(_) => {}
            RStmt::Return(e) => {
                let set = match e {
                    Some(e) => self.resolve(ctx, e),
                    None => OriginSet::new(),
                };
                if self.is_collect() {
                    return;
                }
                if let Some(qual) = ctx.unit {
                    let key = FuncKey {
                        shard: self.shard.name,
                        qual,
                    };
                    if let Some(f) = self.shard.funcs.get_mut(&key) {
                        if join_into(&mut f.ret, &set) {
                            self.changed = true;
                            self.pub_changed = true;
                        }
                    }
                }
            }
            RStmt::If { branches, orelse } => {
                for (test, body) in branches {
                    self.resolve(ctx, test);
                    self.walk_block(ctx, body);
                }
                self.walk_block(ctx, orelse);
            }
            RStmt::While { test, body } => {
                self.resolve(ctx, test);
                self.walk_block(ctx, body);
            }
            RStmt::For {
                targets,
                iter,
                body,
            } => {
                let iset = self.resolve(ctx, iter);
                let elems = self.element_union(&iset);
                if let [single] = targets.as_slice() {
                    self.bind(ctx.scope, *single, &elems);
                } else {
                    for t in targets {
                        self.bind(ctx.scope, *t, &OriginSet::new());
                    }
                }
                self.walk_block(ctx, body);
            }
            RStmt::FuncDef(f) => {
                let defaults: Vec<OriginSet> = f
                    .params
                    .iter()
                    .map(|p| match &p.default {
                        Some(d) => self.resolve(ctx, d),
                        None => OriginSet::new(),
                    })
                    .collect();
                let qual_str = if ctx.qual.is_empty() {
                    f.name.to_string()
                } else {
                    format!("{}.{}", ctx.qual, f.name)
                };
                let qual = self.view.interner.intern(&qual_str);
                let key = FuncKey {
                    shard: self.shard.name,
                    qual,
                };
                if !self.is_collect() && !self.shard.funcs.contains_key(&key) {
                    let mut names: BTreeSet<Symbol> = f.params.iter().map(|p| p.sym).collect();
                    assigned_names(&f.body, &mut names);
                    let scope = self.new_scope(Some(ctx.scope), &names);
                    let registered = self.shard.register_func(
                        key,
                        FuncInfo {
                            qual,
                            params: f.params.iter().map(|p| p.sym).collect(),
                            body: Arc::clone(&f.body),
                            scope,
                            ret: OriginSet::new(),
                            active: false,
                        },
                    );
                    if registered {
                        self.changed = true;
                        self.pub_changed = true;
                    }
                }
                if !self.is_collect() {
                    if let Some(fscope) = self.shard.funcs.get(&key).map(|i| i.scope) {
                        for (p, dset) in f.params.iter().zip(&defaults) {
                            self.bind(fscope, p.sym, dset);
                        }
                    }
                }
                let set: OriginSet = [Origin::Func(key)].into_iter().collect();
                self.bind(ctx.scope, f.sym, &set);
                // Every app-defined function is assumed reachable (handler
                // and helpers). Library functions wait for a call site.
                if !self.is_collect() && self.shard.is_app() && self.shard.activate_func(key) {
                    self.changed = true;
                    self.pub_changed = true;
                }
            }
            RStmt::ClassDef(c) => {
                self.walk_classdef(ctx, c);
            }
            RStmt::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                self.walk_block(ctx, body);
                for h in handlers {
                    if let Some(n) = h.name {
                        self.bind(ctx.scope, n, &OriginSet::new());
                    }
                    self.walk_block(ctx, &h.body);
                }
                self.walk_block(ctx, orelse);
                self.walk_block(ctx, finalbody);
            }
            RStmt::Assert { test, msg } => {
                self.resolve(ctx, test);
                if let Some(m) = msg {
                    self.resolve(ctx, m);
                }
            }
        }
    }

    fn walk_classdef(&mut self, ctx: &mut Ctx, c: &RClassDef) {
        for base in &c.bases {
            self.resolve_dotted(ctx, base);
        }
        let class_key = (ctx.scope, c.sym);
        let class_scope = match self.shard.class_scopes.get(&class_key) {
            Some(&s) => s,
            None => {
                let mut names = BTreeSet::new();
                assigned_names(&c.body, &mut names);
                let s = self.new_scope(Some(ctx.scope), &names);
                self.shard.class_scopes.insert(class_key, s);
                s
            }
        };
        let saved_scope = ctx.scope;
        let saved_qual = std::mem::take(&mut ctx.qual);
        ctx.scope = class_scope;
        ctx.qual = if saved_qual.is_empty() {
            c.name.to_string()
        } else {
            format!("{saved_qual}.{}", c.name)
        };
        self.walk_block(ctx, &c.body);
        ctx.scope = saved_scope;
        ctx.qual = saved_qual;
        self.bind(ctx.scope, c.sym, &OriginSet::new());
    }

    fn assign_target(&mut self, ctx: &mut Ctx, target: &RExpr, vset: &OriginSet) {
        match target {
            RExpr::Name(n) => {
                // Rebinding an import-bound name hides later accesses. The
                // check runs against the converged environment (collect
                // pass), so it sees exactly the import bindings that
                // coexist with this assignment at the fixpoint.
                if self.is_collect() && self.shard.import_bound.contains(&(ctx.scope, *n)) {
                    let old = self.shard.scopes[ctx.scope]
                        .env
                        .get(n)
                        .cloned()
                        .unwrap_or_default();
                    for atom in &old {
                        if let Origin::Module(m) = atom {
                            if !vset.contains(atom) {
                                let name = self.view.interner.resolve(*n).to_string();
                                let module = self.view.interner.resolve(*m).to_string();
                                self.lint(
                                    Severity::Hazard,
                                    LintKind::ModuleRebinding { name, module },
                                );
                            }
                        }
                    }
                }
                self.bind(ctx.scope, *n, vset);
            }
            RExpr::Tuple(ts) | RExpr::List(ts) => {
                // Element-wise unpacking when the value is a single literal
                // sequence of matching arity.
                let elems: Option<Vec<OriginSet>> = match vset.iter().collect::<Vec<_>>()[..] {
                    [Origin::Seq(site)] => self.seq_elems(*site).filter(|e| e.len() == ts.len()),
                    _ => None,
                };
                for (i, sub) in ts.iter().enumerate() {
                    let s = elems.as_ref().map(|e| e[i].clone()).unwrap_or_default();
                    self.assign_target(ctx, sub, &s);
                }
            }
            RExpr::Attribute { value, attr, .. } => {
                let base = self.resolve(ctx, value);
                let attr_str = self.view.interner.resolve(*attr);
                for atom in &base {
                    if let Origin::Module(m) = atom {
                        let m_str = self.view.interner.resolve(*m);
                        // A write both counts as an access (the binding must
                        // survive trimming) and defines the attribute.
                        self.record_access(ctx, &m_str, &attr_str);
                        if let Some(out) = self.out.as_deref_mut() {
                            out.written
                                .insert((m_str.to_string(), attr_str.to_string()));
                        }
                    }
                }
            }
            other => {
                self.resolve(ctx, other);
            }
        }
    }

    fn star_import(&mut self, ctx: &mut Ctx, module: &str, module_sym: Symbol) {
        self.lint(
            Severity::Hazard,
            LintKind::StarImport {
                module: module.to_owned(),
            },
        );
        let entries: Vec<(Symbol, OriginSet)> = if self.shard.name == Some(module_sym) {
            self.shard
                .scopes
                .first()
                .map(|s| s.env.iter().map(|(k, v)| (*k, v.clone())).collect())
                .unwrap_or_default()
        } else {
            self.read_dep(module_sym);
            self.view
                .snapshot_of(module_sym)
                .map(|p| p.top_env.iter().map(|(k, v)| (*k, v.clone())).collect())
                .unwrap_or_default()
        };
        for (name, mut set) in entries {
            let name_str = self.view.interner.resolve(name);
            if name_str.starts_with('_') {
                continue;
            }
            self.record_access(ctx, module, &name_str);
            set.insert(Origin::Attr(module_sym, name));
            self.bind(ctx.scope, name, &set);
        }
    }

    /// Resolve a pre-split dotted reference (`class Net(nn.Module)` must be
    /// resolved like the expression `nn.Module`).
    fn resolve_dotted(&mut self, ctx: &mut Ctx, parts: &[Symbol]) -> OriginSet {
        let Some((first, rest)) = parts.split_first() else {
            return OriginSet::new();
        };
        let mut set = self.resolve_name(ctx, *first);
        for attr in rest {
            set = self.attr_value(ctx, &set, *attr);
        }
        set
    }

    // -- expressions -------------------------------------------------------

    /// Union of a value's sequence elements (for-loop and unknown-index
    /// views). Iterating a dict yields string keys, so `Map` contributes
    /// nothing.
    fn element_union(&mut self, set: &OriginSet) -> OriginSet {
        let mut out = OriginSet::new();
        for atom in set {
            if let Origin::Seq(site) = atom {
                if let Some(elems) = self.seq_elems(*site) {
                    for e in elems {
                        out.extend(e);
                    }
                }
            }
        }
        out
    }

    fn resolve_name(&mut self, ctx: &Ctx, n: Symbol) -> OriginSet {
        let set = self.shard.lookup(ctx.scope, n).cloned().unwrap_or_default();
        if self.is_collect() {
            for atom in set.clone() {
                match atom {
                    Origin::Attr(m, a) => {
                        // Using a from-imported name is a definite access.
                        let m = self.view.interner.resolve(m).to_string();
                        let a = self.view.interner.resolve(a).to_string();
                        self.record_access(ctx, &m, &a);
                    }
                    Origin::Module(m) if self.shard.is_app() => {
                        let m = self.view.interner.resolve(m).to_string();
                        if let Some(out) = self.out.as_deref_mut() {
                            out.used_by_app.insert(m);
                        }
                    }
                    _ => {}
                }
            }
        }
        set
    }

    fn attr_value(&mut self, ctx: &Ctx, base: &OriginSet, attr: Symbol) -> OriginSet {
        let attr_str = self.view.interner.resolve(attr);
        let mut out = OriginSet::new();
        for atom in base {
            if let Origin::Module(m) = atom {
                let m_str = self.view.interner.resolve(*m);
                self.record_access(ctx, &m_str, &attr_str);
                let sub = format!("{m_str}.{attr_str}");
                if self.probe_contains(&sub) {
                    out.insert(Origin::Module(self.view.interner.intern(&sub)));
                } else if self.analyzed(&m_str) {
                    if let Some(binding) = self.module_env_get(*m, attr) {
                        // Reading a re-exported name reads through to its
                        // source module as well.
                        if self.is_collect() {
                            for b in &binding {
                                if let Origin::Attr(m2, a2) = b {
                                    let m2 = self.view.interner.resolve(*m2).to_string();
                                    let a2 = self.view.interner.resolve(*a2).to_string();
                                    self.record_access(ctx, &m2, &a2);
                                }
                            }
                        }
                        out.extend(binding);
                    }
                } else {
                    out.insert(Origin::Attr(*m, attr));
                }
            }
        }
        out
    }

    fn resolve_call(
        &mut self,
        ctx: &mut Ctx,
        func: &RExpr,
        args: &[RExpr],
        kwargs: &[(Symbol, RExpr)],
    ) -> OriginSet {
        if let RExpr::Name(fname) = func {
            if self.view.dynamic_builtins.contains(fname)
                && self.shard.lookup(ctx.scope, *fname).is_none()
            {
                return self.dynamic_access(ctx, args, kwargs);
            }
        }
        let fset = self.resolve(ctx, func);
        let argsets: Vec<OriginSet> = args.iter().map(|a| self.resolve(ctx, a)).collect();
        let kwsets: Vec<(Symbol, OriginSet)> = kwargs
            .iter()
            .map(|(k, v)| (*k, self.resolve(ctx, v)))
            .collect();
        let mut out = OriginSet::new();
        for atom in &fset {
            match atom {
                Origin::Func(key) => {
                    if self.is_collect() {
                        let qual = self.view.interner.resolve(key.qual).to_string();
                        let callee = match key.shard {
                            None => CgNode::AppFunc(qual),
                            Some(m) => {
                                CgNode::LibFunc(self.view.interner.resolve(m).to_string(), qual)
                            }
                        };
                        self.edge(ctx.node.clone(), callee);
                    }
                    if key.shard == self.shard.name {
                        // Local call: activate and bind directly.
                        if !self.is_collect() {
                            if self.shard.activate_func(*key) {
                                self.changed = true;
                                self.pub_changed = true;
                            }
                            if let Some(f) = self.shard.funcs.get(key) {
                                let params = Arc::clone(&f.params);
                                let fscope = f.scope;
                                for (i, aset) in argsets.iter().enumerate() {
                                    if let Some(&p) = params.get(i) {
                                        self.bind(fscope, p, aset);
                                    }
                                }
                                for (k, kset) in &kwsets {
                                    if params.contains(k) {
                                        self.bind(fscope, *k, kset);
                                    }
                                }
                            }
                        }
                        if let Some(f) = self.shard.funcs.get(key) {
                            out.extend(f.ret.iter().copied());
                        }
                    } else {
                        // Cross-shard call (including an app-defined
                        // callback invoked from library code): activate and
                        // bind through the barrier.
                        let Some(fpub) = self
                            .foreign_snapshot(key.shard)
                            .and_then(|p| p.funcs.get(key))
                            .cloned()
                        else {
                            continue;
                        };
                        self.send(Message::ActivateFunc(*key));
                        for (i, aset) in argsets.iter().enumerate() {
                            if let Some(&p) = fpub.params.get(i) {
                                self.send(Message::BindParam(*key, p, aset.clone()));
                            }
                        }
                        for (k, kset) in &kwsets {
                            if fpub.params.contains(k) {
                                self.send(Message::BindParam(*key, *k, kset.clone()));
                            }
                        }
                        out.extend(fpub.ret.iter().copied());
                    }
                }
                Origin::Attr(m, a) if self.is_collect() => {
                    let m = self.view.interner.resolve(*m).to_string();
                    let a = self.view.interner.resolve(*a).to_string();
                    self.edge(ctx.node.clone(), CgNode::ModuleAttr(m, a));
                }
                _ => {}
            }
        }
        out
    }

    fn resolve(&mut self, ctx: &mut Ctx, e: &RExpr) -> OriginSet {
        match e {
            RExpr::Name(n) => self.resolve_name(ctx, *n),
            RExpr::Attribute { value, attr, .. } => {
                let base = self.resolve(ctx, value);
                self.attr_value(ctx, &base, *attr)
            }
            RExpr::Call { func, args, kwargs } => self.resolve_call(ctx, func, args, kwargs),
            RExpr::Subscript { value, index } => {
                let vset = self.resolve(ctx, value);
                self.resolve(ctx, index);
                let mut out = OriginSet::new();
                for atom in &vset {
                    match atom {
                        Origin::Seq(site) => {
                            if let Some(elems) = self.seq_elems(*site) {
                                match &**index {
                                    RExpr::Int(i) if *i >= 0 && (*i as usize) < elems.len() => {
                                        out.extend(elems[*i as usize].iter().copied());
                                    }
                                    _ => {
                                        for e in elems {
                                            out.extend(e);
                                        }
                                    }
                                }
                            }
                        }
                        Origin::Map(site) => {
                            if let Some((entries, unknown)) = self.map_entries(*site) {
                                match &**index {
                                    RExpr::Str(k) => {
                                        if let Some(s) = entries.get(&**k) {
                                            out.extend(s.iter().copied());
                                        }
                                        out.extend(unknown.iter().copied());
                                    }
                                    _ => {
                                        for s in entries.values() {
                                            out.extend(s.iter().copied());
                                        }
                                        out.extend(unknown.iter().copied());
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
                out
            }
            RExpr::List(items) | RExpr::Tuple(items) => {
                let site = ctx.next_site(self.shard);
                let sets: Vec<OriginSet> = items.iter().map(|i| self.resolve(ctx, i)).collect();
                if !self.is_collect() {
                    let slot = self
                        .shard
                        .seq_sites
                        .entry(site)
                        .or_insert_with(|| vec![OriginSet::new(); sets.len()]);
                    let mut grew = false;
                    for (s, existing) in sets.iter().zip(slot.iter_mut()) {
                        grew |= join_into(existing, s);
                    }
                    if grew {
                        self.changed = true;
                        self.pub_changed = true;
                    }
                }
                [Origin::Seq(site)].into_iter().collect()
            }
            RExpr::Dict(pairs) => {
                let site = ctx.next_site(self.shard);
                let mut resolved: Vec<(Option<Arc<str>>, OriginSet)> = Vec::new();
                for (k, v) in pairs {
                    self.resolve(ctx, k);
                    let key = match k {
                        RExpr::Str(s) => Some(Arc::clone(s)),
                        _ => None,
                    };
                    let vset = self.resolve(ctx, v);
                    resolved.push((key, vset));
                }
                if !self.is_collect() {
                    let slot = self.shard.map_sites.entry(site).or_default();
                    let mut grew = false;
                    for (key, vset) in resolved {
                        let target = match key {
                            Some(k) => slot.0.entry(k).or_default(),
                            None => &mut slot.1,
                        };
                        grew |= join_into(target, &vset);
                    }
                    if grew {
                        self.changed = true;
                        self.pub_changed = true;
                    }
                }
                [Origin::Map(site)].into_iter().collect()
            }
            RExpr::Unary { operand, .. } => {
                self.resolve(ctx, operand);
                OriginSet::new()
            }
            RExpr::Binary { left, right, .. } => {
                self.resolve(ctx, left);
                self.resolve(ctx, right);
                OriginSet::new()
            }
            RExpr::Bool { values, .. } => {
                // `a or b` / `a and b` evaluate to one of the operands.
                let mut out = OriginSet::new();
                for v in values {
                    out.extend(self.resolve(ctx, v));
                }
                out
            }
            RExpr::Compare { left, ops } => {
                self.resolve(ctx, left);
                for (_, v) in ops {
                    self.resolve(ctx, v);
                }
                OriginSet::new()
            }
            RExpr::Conditional { test, body, orelse } => {
                self.resolve(ctx, test);
                // Conditional join: the result may be either branch's value.
                let mut out = self.resolve(ctx, body);
                out.extend(self.resolve(ctx, orelse));
                out
            }
            RExpr::ListComp {
                element,
                targets,
                iter,
                cond,
            } => {
                let iset = self.resolve(ctx, iter);
                let elems = self.element_union(&iset);
                if let [single] = targets.as_slice() {
                    self.bind(ctx.scope, *single, &elems);
                } else {
                    for t in targets {
                        self.bind(ctx.scope, *t, &OriginSet::new());
                    }
                }
                self.resolve(ctx, element);
                if let Some(c) = cond {
                    self.resolve(ctx, c);
                }
                OriginSet::new()
            }
            RExpr::Slice { value, start, stop } => {
                self.resolve(ctx, value);
                if let Some(e) = start {
                    self.resolve(ctx, e);
                }
                if let Some(e) = stop {
                    self.resolve(ctx, e);
                }
                OriginSet::new()
            }
            _ => OriginSet::new(),
        }
    }

    /// `getattr`/`setattr`/`hasattr` handling. Literal attribute names are
    /// reported but deliberately *not* recorded as accesses: resolving them
    /// would force-keep rarely-used attributes that DD should trim and the
    /// §5.4 runtime fallback should serve. Non-literal names make the
    /// target module's accessed set unknowable — a debloating hazard.
    fn dynamic_access(
        &mut self,
        ctx: &mut Ctx,
        args: &[RExpr],
        kwargs: &[(Symbol, RExpr)],
    ) -> OriginSet {
        let target = match args.first() {
            Some(a) => self.resolve(ctx, a),
            None => OriginSet::new(),
        };
        let literal = match args.get(1) {
            Some(RExpr::Str(s)) => Some(Arc::clone(s)),
            Some(other) => {
                self.resolve(ctx, other);
                None
            }
            None => None,
        };
        for a in args.iter().skip(2) {
            self.resolve(ctx, a);
        }
        for (_, v) in kwargs {
            self.resolve(ctx, v);
        }
        if !self.is_collect() {
            return OriginSet::new();
        }
        let modules: Vec<String> = target
            .iter()
            .filter_map(|a| match a {
                Origin::Module(m) => Some(self.view.interner.resolve(*m).to_string()),
                _ => None,
            })
            .collect();
        match literal {
            Some(attr) => {
                if modules.is_empty() {
                    self.lint(
                        Severity::Info,
                        LintKind::DynamicAttrAccess {
                            module: None,
                            attr: attr.to_string(),
                        },
                    );
                } else {
                    for m in modules {
                        self.lint(
                            Severity::Info,
                            LintKind::DynamicAttrAccess {
                                module: Some(m),
                                attr: attr.to_string(),
                            },
                        );
                    }
                }
            }
            None => {
                if modules.is_empty() {
                    self.lint(
                        Severity::Warning,
                        LintKind::OpaqueAttrAccess { module: None },
                    );
                } else {
                    for m in modules {
                        self.lint(
                            Severity::Hazard,
                            LintKind::OpaqueAttrAccess { module: Some(m) },
                        );
                    }
                }
            }
        }
        OriginSet::new()
    }
}

enum ProgramBody {
    Program(Arc<pylite::resolved::RProgram>),
    Func(Arc<[RStmt]>),
}

impl ProgramBody {
    fn stmts(&self) -> &[RStmt] {
        match self {
            ProgramBody::Program(p) => &p.body,
            ProgramBody::Func(b) => b,
        }
    }
}

/// Names a body binds in its own scope, for pre-binding at scope creation.
/// Matches exactly the binds the walker performs: assignment/for/listcomp
/// targets, import binds, def/class names and except-handler names. Nested
/// function and class *bodies* bind in their own scopes and are skipped.
pub(crate) fn assigned_names(body: &[RStmt], out: &mut BTreeSet<Symbol>) {
    for stmt in body {
        match stmt {
            RStmt::Expr(e) | RStmt::Del(e) | RStmt::Raise(Some(e)) => expr_names(e, out),
            RStmt::Assign { targets, value } => {
                for t in targets {
                    target_names(t, out);
                }
                expr_names(value, out);
            }
            RStmt::AugAssign { target, value, .. } => {
                // AugAssign resolves but never binds (old-engine semantics).
                expr_names(target, out);
                expr_names(value, out);
            }
            RStmt::If { branches, orelse } => {
                for (test, body) in branches {
                    expr_names(test, out);
                    assigned_names(body, out);
                }
                assigned_names(orelse, out);
            }
            RStmt::While { test, body } => {
                expr_names(test, out);
                assigned_names(body, out);
            }
            RStmt::For {
                targets,
                iter,
                body,
            } => {
                out.extend(targets.iter().copied());
                expr_names(iter, out);
                assigned_names(body, out);
            }
            RStmt::FuncDef(f) => {
                out.insert(f.sym);
                for p in &f.params {
                    if let Some(d) = &p.default {
                        expr_names(d, out);
                    }
                }
            }
            RStmt::ClassDef(c) => {
                out.insert(c.sym);
            }
            RStmt::Return(Some(e)) => expr_names(e, out),
            RStmt::Return(None)
            | RStmt::Raise(None)
            | RStmt::Pass
            | RStmt::Break
            | RStmt::Continue
            | RStmt::Global(_) => {}
            RStmt::Import { items } => {
                for item in items {
                    out.insert(item.bind);
                }
            }
            RStmt::FromImport { names, .. } => {
                for n in names {
                    if let RFromName::Named { bind, .. } = n {
                        out.insert(*bind);
                    }
                }
            }
            RStmt::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                assigned_names(body, out);
                for h in handlers {
                    if let Some(n) = h.name {
                        out.insert(n);
                    }
                    assigned_names(&h.body, out);
                }
                assigned_names(orelse, out);
                assigned_names(finalbody, out);
            }
            RStmt::Assert { test, msg } => {
                expr_names(test, out);
                if let Some(m) = msg {
                    expr_names(m, out);
                }
            }
        }
    }
}

fn target_names(target: &RExpr, out: &mut BTreeSet<Symbol>) {
    match target {
        RExpr::Name(n) => {
            out.insert(*n);
        }
        RExpr::Tuple(ts) | RExpr::List(ts) => {
            for t in ts {
                target_names(t, out);
            }
        }
        other => expr_names(other, out),
    }
}

/// Collect list-comprehension targets (the only expression-level binds).
fn expr_names(e: &RExpr, out: &mut BTreeSet<Symbol>) {
    match e {
        RExpr::ListComp {
            element,
            targets,
            iter,
            cond,
        } => {
            out.extend(targets.iter().copied());
            expr_names(element, out);
            expr_names(iter, out);
            if let Some(c) = cond {
                expr_names(c, out);
            }
        }
        RExpr::List(items) | RExpr::Tuple(items) => {
            for i in items {
                expr_names(i, out);
            }
        }
        RExpr::Dict(pairs) => {
            for (k, v) in pairs {
                expr_names(k, out);
                expr_names(v, out);
            }
        }
        RExpr::Attribute { value, .. } => expr_names(value, out),
        RExpr::Subscript { value, index } => {
            expr_names(value, out);
            expr_names(index, out);
        }
        RExpr::Call { func, args, kwargs } => {
            expr_names(func, out);
            for a in args {
                expr_names(a, out);
            }
            for (_, v) in kwargs {
                expr_names(v, out);
            }
        }
        RExpr::Unary { operand, .. } => expr_names(operand, out),
        RExpr::Binary { left, right, .. } => {
            expr_names(left, out);
            expr_names(right, out);
        }
        RExpr::Bool { values, .. } => {
            for v in values {
                expr_names(v, out);
            }
        }
        RExpr::Compare { left, ops } => {
            expr_names(left, out);
            for (_, v) in ops {
                expr_names(v, out);
            }
        }
        RExpr::Conditional { test, body, orelse } => {
            expr_names(test, out);
            expr_names(body, out);
            expr_names(orelse, out);
        }
        RExpr::Slice { value, start, stop } => {
            expr_names(value, out);
            if let Some(s) = start {
                expr_names(s, out);
            }
            if let Some(s) = stop {
                expr_names(s, out);
            }
        }
        _ => {}
    }
}
