//! The sharded interprocedural fixpoint engine.
//!
//! Units of work are *code bodies that execute*: the application top-level,
//! the top-level of every (transitively) imported registry module — module
//! bodies run on first import — and the body of every function that some
//! executed unit possibly calls. Function bodies that nothing calls are
//! registered (their names bind to `Origin::Func` atoms) but never
//! analyzed, so the dense never-executed reference blocks that generated
//! libraries use to defeat naive static tools contribute nothing to the
//! definitely-accessed sets.
//!
//! The engine is organized as a bulk-synchronous sharded worklist
//! (DESIGN.md §9): one [`worklist::Shard`] per registry module plus one for
//! the application. Each round, every dirty shard runs to a *local*
//! fixpoint against immutable snapshots of all other shards — concurrently
//! when `jobs > 1`, the shared atom table being the registry's lock-free
//! read interner — then a serial barrier applies cross-shard messages
//! (pure joins) and wakes readers of re-published shards. Because walkers
//! only see frozen snapshots and barrier effects are commutative and
//! idempotent, the converged state — and therefore the output, collected in
//! a read-only pass and merged in sorted shard order — is independent of
//! the thread schedule: `jobs = 8` is bit-identical to `jobs = 1`.
//!
//! Parallel walks run on a persistent [`WalkPool`]: `jobs` workers are
//! spawned once per analysis run and fed one batch per round through a
//! mutex/condvar handshake, so round count does not multiply thread spawn
//! cost.
//!
//! Incremental re-analysis reuses the converged shards of a previous run
//! (via [`crate::summary::SummaryCache`]): only modules whose content
//! fingerprint changed, shards whose recorded registry probes flip, and
//! their reverse *read*-dependency cone are rebuilt from scratch;
//! everything else is shared by `Arc` and deep-cloned only if growth
//! actually reaches it. Message-receive edges are deliberately left out of
//! the cone — a sent-set validation pass after convergence catches the
//! rare run where a rebuilt sender stopped sending something a clean
//! receiver's cached state still reflects, and retries with that receiver
//! added to the changed set (see `incremental_run`).

pub(crate) mod merge;
pub(crate) mod transfer;
pub(crate) mod worklist;

use crate::callgraph::CallGraph;
use crate::lints::{HazardSet, Lint};
use crate::origin::OriginSet;
use crate::summary::{app_fingerprint, CachedRun, SummaryCache, SummaryKey};
use crate::{Analysis, AnalysisMode};
use merge::ShardOutput;
use pylite::ast::Program;
use pylite::{Interner, Registry, Symbol, SymbolHashBuilder};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, Condvar, Mutex};
use worklist::{Message, Published, RoundView, Scope, Shard, UnitRef, WalkResult};

/// Everything the engine produces beyond the seed-compatible [`Analysis`].
#[derive(Debug, Clone, Default)]
pub(crate) struct EngineOutput {
    pub analysis: Analysis,
    pub load_time_accessed: BTreeMap<String, BTreeSet<String>>,
    pub module_bindings: BTreeMap<String, BTreeSet<String>>,
    pub lints: Vec<Lint>,
    pub hazard_modules: BTreeSet<String>,
    pub hazard_attrs: HazardSet,
    pub call_graph: CallGraph,
    pub reached_functions: BTreeSet<String>,
}

const DYNAMIC_BUILTINS: [&str; 3] = ["getattr", "setattr", "hasattr"];

/// Serial, uncached entry point (back-compat for [`crate::analyze`]).
pub(crate) fn run(
    program: &Program,
    registry: &Registry,
    mode: AnalysisMode,
    entry: Option<&str>,
) -> EngineOutput {
    run_with(program, registry, mode, entry, 1, None)
}

/// Full entry point: parallel walks (`jobs` threads) and optional summary
/// caching / incremental reuse.
pub(crate) fn run_with(
    program: &Program,
    registry: &Registry,
    mode: AnalysisMode,
    entry: Option<&str>,
    jobs: usize,
    cache: Option<&SummaryCache>,
) -> EngineOutput {
    let jobs = jobs.max(1);
    let Some(cache) = cache else {
        let run = cold_run(program, registry, mode, entry, jobs);
        return Arc::try_unwrap(run.output).unwrap_or_else(|arc| (*arc).clone());
    };
    let key = SummaryKey {
        app_fp: app_fingerprint(program),
        mode,
        entry: entry.map(str::to_owned),
    };
    if let Some(prev) = cache.lookup(&key) {
        if Arc::ptr_eq(&prev.interner, registry.interner()) {
            if prev.registry_fp == registry.fingerprint() {
                cache.note_hit();
                return (*prev.output).clone();
            }
            cache.note_incremental();
            let run = incremental_run(&prev, program, registry, mode, entry, jobs);
            let output = (*run.output).clone();
            cache.store(key, run);
            return output;
        }
    }
    cache.note_miss();
    let run = cold_run(program, registry, mode, entry, jobs);
    let output = (*run.output).clone();
    cache.store(key, run);
    output
}

struct Engine<'a> {
    registry: &'a Registry,
    interner: Arc<Interner>,
    interprocedural: bool,
    jobs: usize,
    /// Index 0 is the application shard; the rest follow
    /// `registry.module_names()` order (sorted).
    shards: Vec<Arc<Shard>>,
    /// Shard name by index (`None` = application).
    names: Vec<Option<String>>,
    /// Shard index by module-name symbol.
    index: HashMap<Symbol, usize, SymbolHashBuilder>,
    dirty: Vec<bool>,
    /// Shards walked at least once this run (their cached collect output,
    /// if any, is stale).
    walked: Vec<bool>,
    /// Shards carried over from a cached run (incremental only). A clean
    /// shard's cached state is reused as-is unless a dependency publishes
    /// *past* what the shard converged against (see `rounds_loop`).
    clean: Vec<bool>,
    /// For rebuilt shards that had a cached counterpart: the snapshot
    /// their clean readers last saw. Gates early cutoff — readers stay
    /// asleep while the rebuilt shard's content stays within the old
    /// snapshot — and surface validation in `incremental_run`.
    old_published: Vec<Option<Arc<Published>>>,
    dynamic_builtins: [Symbol; 3],
}

fn build_app_shard(program: &Program, interner: &Interner) -> Shard {
    let rprog = Arc::new(pylite::resolve_program(program, interner));
    let mut shard = Shard::slot(None, None);
    let mut names: BTreeSet<Symbol> = BTreeSet::new();
    transfer::assigned_names(&rprog.body, &mut names);
    shard.scopes.push(Scope {
        parent: None,
        env: names.into_iter().map(|n| (n, OriginSet::new())).collect(),
    });
    shard.program = Some(rprog);
    shard.active = true;
    shard.units.push(UnitRef::Top);
    shard
}

/// Per-module content fingerprints of the current registry state (cheap:
/// the registry memoizes fingerprints per content in shared slots).
fn registry_fps(registry: &Registry, module_names: &[String]) -> BTreeMap<String, u64> {
    module_names
        .iter()
        .map(|n| {
            (
                n.clone(),
                registry.module_fingerprint(n).expect("listed module"),
            )
        })
        .collect()
}

fn cold_run(
    program: &Program,
    registry: &Registry,
    mode: AnalysisMode,
    entry: Option<&str>,
    jobs: usize,
) -> CachedRun {
    let interner = Arc::clone(registry.interner());
    let module_names = registry.module_names();
    let module_fps = registry_fps(registry, &module_names);
    let mut eng = Engine::new(registry, interner, mode, jobs, module_names.len());
    eng.push_shard(build_app_shard(program, &eng.interner), true);
    for name in &module_names {
        let sym = eng.interner.intern(name);
        eng.push_shard(Shard::slot(Some(sym), Some(name.clone())), false);
    }
    eng.rounds();
    eng.collect();
    eng.pack(entry, module_fps)
}

fn incremental_run(
    prev: &CachedRun,
    program: &Program,
    registry: &Registry,
    mode: AnalysisMode,
    entry: Option<&str>,
    jobs: usize,
) -> CachedRun {
    let interprocedural = mode == AnalysisMode::Interprocedural;
    let module_names = registry.module_names();
    let new_fps = registry_fps(registry, &module_names);

    // Seed of the changed set: modules whose content changed (or
    // appeared), plus shards any of whose recorded registry probes now
    // answer differently. Removed modules have no shard to rebuild — their
    // direct readers are rebuilt instead (cached reader state reflects
    // content that no longer exists).
    let mut changed: BTreeSet<Option<String>> = BTreeSet::new();
    for (name, fp) in &new_fps {
        if prev.module_fps.get(name) != Some(fp) {
            changed.insert(Some(name.clone()));
        }
    }
    for name in prev.module_fps.keys() {
        if !new_fps.contains_key(name) {
            let removed = Some(name.clone());
            for s in &prev.shards {
                if s.read_deps.contains(&removed) {
                    changed.insert(s.name_str.clone());
                }
            }
        }
    }
    let probes_flipped = |s: &Shard| {
        s.probes.iter().any(|(n, &v)| registry.contains(n) != v)
            || s.analyzed_probes.iter().any(|(n, &v)| {
                let now =
                    interprocedural && registry.contains(n) && registry.resolve_module(n).is_ok();
                now != v
            })
    };
    for s in &prev.shards {
        if probes_flipped(s) {
            changed.insert(s.name_str.clone());
        }
    }
    let prev_by_name: HashMap<Option<&str>, &Arc<Shard>> = prev
        .shards
        .iter()
        .map(|s| (s.name_str.as_deref(), s))
        .collect();

    // The first attempt is optimistic: rebuild only the changed shards
    // themselves and keep every reader clean, betting that the rebuilt
    // shards re-publish content their readers already converged against
    // (early cutoff — the common case for edits that do not change a
    // module's public surface). The two validations below poison the bet
    // when a rebuilt shard's surface shrank or a previously-sent message
    // disappeared; the retry then escalates to the full reverse
    // read-dependency cone. `changed` grows strictly on every retry, so
    // the loop terminates (worst case: all shards, i.e. a cold run).
    let mut pessimistic = false;
    loop {
        let mut cone = changed.clone();
        if pessimistic {
            // Reverse cone over read edges: anything that read a changed
            // shard's published state is rebuilt too, transitively.
            loop {
                let mut grew = false;
                for s in &prev.shards {
                    if cone.contains(&s.name_str) {
                        continue;
                    }
                    if s.read_deps.iter().any(|d| cone.contains(d)) {
                        cone.insert(s.name_str.clone());
                        grew = true;
                    }
                }
                if !grew {
                    break;
                }
            }
        }

        let interner = Arc::clone(registry.interner());
        let mut eng = Engine::new(registry, interner, mode, jobs, module_names.len());
        let mut clean_names: BTreeSet<Option<String>> = BTreeSet::new();
        match prev_by_name.get(&None) {
            Some(app) if !cone.contains(&None) => {
                eng.push_shard_arc(Arc::clone(app), false, true);
                clean_names.insert(None);
            }
            _ => {
                eng.push_shard(build_app_shard(program, &eng.interner), true);
                if let Some(app) = prev_by_name.get(&None) {
                    *eng.old_published.last_mut().expect("just pushed") =
                        Some(Arc::clone(&app.published));
                }
            }
        }
        for name in &module_names {
            let sym = eng.interner.intern(name);
            let cached = (!cone.contains(&Some(name.clone())))
                .then(|| prev_by_name.get(&Some(name.as_str())))
                .flatten();
            match cached {
                Some(shard) => {
                    eng.push_shard_arc(Arc::clone(shard), false, true);
                    clean_names.insert(Some(name.clone()));
                }
                None => {
                    eng.push_shard(Shard::slot(Some(sym), Some(name.clone())), false);
                    if let Some(old) = prev_by_name.get(&Some(name.as_str())) {
                        *eng.old_published.last_mut().expect("just pushed") =
                            Some(Arc::clone(&old.published));
                    }
                }
            }
        }
        // Replay every message ever sent by a clean shard: rebuilt shards
        // in the cone re-receive activations and parameter binds whose
        // senders are not being re-walked. Replays that target clean shards
        // are no-ops (and are pre-checked so they do not force a
        // copy-on-write clone).
        let replays: Vec<Message> = eng
            .shards
            .iter()
            .filter(|s| clean_names.contains(&s.name_str))
            .flat_map(|s| s.sent.iter().cloned())
            .collect();
        for msg in replays {
            eng.deliver(msg);
        }
        eng.rounds();

        let mut poisoned: BTreeSet<Option<String>> = BTreeSet::new();
        // Surface validation: a rebuilt shard whose final snapshot lost
        // something its old snapshot had (`old ⋢ new`) invalidates every
        // clean reader that converged against the old snapshot. (Pure
        // growth is fine: those readers were woken at the point the new
        // content grew past the old snapshot and re-converged monotonely.)
        for idx in 0..eng.shards.len() {
            let Some(old) = &eng.old_published[idx] else {
                continue;
            };
            if old.le(&eng.shards[idx].published) {
                continue;
            }
            for s in &prev.shards {
                if clean_names.contains(&s.name_str) && s.read_deps.contains(&eng.names[idx]) {
                    poisoned.insert(s.name_str.clone());
                }
            }
        }
        // Sent-set validation: a rebuilt (or removed) shard may have
        // stopped sending a message that a clean receiver's cached state
        // still reflects — e.g. an edit deleted the only call that bound a
        // parameter of a clean module's function. Clean shards themselves
        // never lose messages (their `sent` only grows, and it was replayed
        // above), so only non-clean old shards need checking. Any
        // no-longer-sent message targeting a clean shard poisons that
        // receiver. With no poisons, every clean shard's inputs are a
        // superset of what its cached fixpoint was computed from, and
        // monotone transfer makes the reused state exact.
        let new_sent: HashMap<Option<&str>, &BTreeSet<Message>> = eng
            .shards
            .iter()
            .map(|s| (s.name_str.as_deref(), &s.sent))
            .collect();
        for old in &prev.shards {
            if clean_names.contains(&old.name_str) {
                continue;
            }
            let fresh = new_sent.get(&old.name_str.as_deref());
            for msg in &old.sent {
                if fresh.is_some_and(|s| s.contains(msg)) {
                    continue;
                }
                let target = match msg.target() {
                    Some(m) => match eng.index.get(&m) {
                        Some(&i) => &eng.names[i],
                        None => continue,
                    },
                    None => &eng.names[0],
                };
                if clean_names.contains(target) {
                    poisoned.insert(target.clone());
                }
            }
        }
        if poisoned.is_empty() {
            eng.collect();
            return eng.pack(entry, new_fps);
        }
        changed.append(&mut poisoned);
        pessimistic = true;
    }
}

/// Persistent worker pool for one analysis run: workers are spawned once
/// and handed one batch of shard walks per round. Workers capture only the
/// registry reference, the shared interner and an `Arc` of the shard index
/// — never the engine — so the orchestrator thread is free to mutate
/// engine state at the barrier while workers park on the condvar.
struct WalkPool {
    state: Mutex<PoolState>,
    /// Signaled when a batch is queued (or shutdown is requested).
    work_ready: Condvar,
    /// Signaled when the queued batch has fully drained.
    work_done: Condvar,
}

#[derive(Default)]
struct PoolState {
    /// This round's frozen snapshots, shared with every worker.
    snapshots: Option<Arc<[Arc<Published>]>>,
    queue: Vec<(usize, Arc<Shard>)>,
    done: Vec<(usize, Arc<Shard>, WalkResult)>,
    in_flight: usize,
    shutdown: bool,
}

impl WalkPool {
    fn new() -> WalkPool {
        WalkPool {
            state: Mutex::new(PoolState::default()),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        }
    }

    /// Worker loop: pop a shard, walk it to its local fixpoint against the
    /// batch's frozen snapshots, push the result. Parks between batches.
    fn worker(
        &self,
        registry: &Registry,
        interner: &Interner,
        index: &HashMap<Symbol, usize, SymbolHashBuilder>,
        interprocedural: bool,
        dynamic_builtins: [Symbol; 3],
    ) {
        let mut state = self.state.lock().expect("walk pool poisoned");
        loop {
            if state.shutdown {
                return;
            }
            let Some((i, mut arc)) = state.queue.pop() else {
                state = self.work_ready.wait(state).expect("walk pool poisoned");
                continue;
            };
            state.in_flight += 1;
            let snapshots = Arc::clone(state.snapshots.as_ref().expect("batch snapshots"));
            drop(state);
            let view = RoundView {
                registry,
                interner,
                interprocedural,
                index,
                snapshots: &snapshots,
                dynamic_builtins,
            };
            let res = transfer::walk_round(Arc::make_mut(&mut arc), &view);
            state = self.state.lock().expect("walk pool poisoned");
            state.done.push((i, arc, res));
            state.in_flight -= 1;
            if state.queue.is_empty() && state.in_flight == 0 {
                self.work_done.notify_all();
            }
        }
    }

    /// Run one batch to completion on the workers (called from the
    /// orchestrator thread, which blocks until the batch drains).
    fn run_batch(
        &self,
        snapshots: Arc<[Arc<Published>]>,
        items: Vec<(usize, Arc<Shard>)>,
    ) -> Vec<(usize, Arc<Shard>, WalkResult)> {
        let mut state = self.state.lock().expect("walk pool poisoned");
        state.snapshots = Some(snapshots);
        state.queue = items;
        self.work_ready.notify_all();
        while !(state.queue.is_empty() && state.in_flight == 0) {
            state = self.work_done.wait(state).expect("walk pool poisoned");
        }
        state.snapshots = None;
        std::mem::take(&mut state.done)
    }

    fn shutdown(&self) {
        self.state.lock().expect("walk pool poisoned").shutdown = true;
        self.work_ready.notify_all();
    }
}

impl<'a> Engine<'a> {
    fn new(
        registry: &'a Registry,
        interner: Arc<Interner>,
        mode: AnalysisMode,
        jobs: usize,
        capacity: usize,
    ) -> Engine<'a> {
        let dynamic_builtins = DYNAMIC_BUILTINS.map(|n| interner.intern(n));
        Engine {
            registry,
            interner,
            interprocedural: mode == AnalysisMode::Interprocedural,
            jobs,
            shards: Vec::with_capacity(capacity + 1),
            names: Vec::with_capacity(capacity + 1),
            index: HashMap::default(),
            dirty: Vec::with_capacity(capacity + 1),
            walked: Vec::with_capacity(capacity + 1),
            clean: Vec::with_capacity(capacity + 1),
            old_published: Vec::with_capacity(capacity + 1),
            dynamic_builtins,
        }
    }

    fn push_shard(&mut self, shard: Shard, dirty: bool) {
        self.push_shard_arc(Arc::new(shard), dirty, false);
    }

    fn push_shard_arc(&mut self, shard: Arc<Shard>, dirty: bool, clean: bool) {
        let idx = self.shards.len();
        if let Some(sym) = shard.name {
            self.index.insert(sym, idx);
        }
        self.names.push(shard.name_str.clone());
        self.shards.push(shard);
        self.dirty.push(dirty);
        self.walked.push(false);
        self.clean.push(clean);
        self.old_published.push(None);
    }

    /// Package the converged engine as a cacheable run.
    fn pack(self, entry: Option<&str>, module_fps: BTreeMap<String, u64>) -> CachedRun {
        let t = crate::spans::start();
        let output = Arc::new(self.finish(entry));
        crate::spans::record(crate::spans::Phase::Finish, 0, None, t);
        CachedRun {
            registry_fp: self.registry.fingerprint(),
            interner: self.interner,
            module_fps,
            shards: self.shards,
            output,
        }
    }

    fn view<'v>(&'v self, snapshots: &'v [Arc<Published>]) -> RoundView<'v> {
        RoundView {
            registry: self.registry,
            interner: &self.interner,
            interprocedural: self.interprocedural,
            index: &self.index,
            snapshots,
            dynamic_builtins: self.dynamic_builtins,
        }
    }

    fn take_shard(&mut self, idx: usize) -> Arc<Shard> {
        std::mem::replace(&mut self.shards[idx], Arc::new(Shard::slot(None, None)))
    }

    /// Bulk-synchronous rounds until no shard is dirty. With `jobs > 1`
    /// this spins up a [`WalkPool`] for the whole run (one spawn per
    /// worker, not per round).
    fn rounds(&mut self) {
        if self.jobs <= 1 {
            self.rounds_loop(None);
            return;
        }
        let pool = WalkPool::new();
        // Copied/cloned out of `self` so workers borrow nothing from the
        // engine: the orchestrator needs `&mut self` at every barrier.
        let registry = self.registry;
        let interner = Arc::clone(&self.interner);
        let index = Arc::new(self.index.clone());
        let interprocedural = self.interprocedural;
        let dynamic_builtins = self.dynamic_builtins;
        std::thread::scope(|s| {
            for _ in 0..self.jobs {
                let interner = Arc::clone(&interner);
                let index = Arc::clone(&index);
                let pool = &pool;
                s.spawn(move || {
                    pool.worker(
                        registry,
                        &interner,
                        &index,
                        interprocedural,
                        dynamic_builtins,
                    )
                });
            }
            self.rounds_loop(Some(&pool));
            pool.shutdown();
        });
    }

    fn rounds_loop(&mut self, pool: Option<&WalkPool>) {
        let mut round = 0usize;
        loop {
            // Hub-last scheduling: the application shard reads from every
            // imported module, so walking it while library shards are
            // still converging just repeats its (large) walk each round.
            // Deferring it until the libraries quiesce cuts total walk
            // work and shortens the serial critical path. The schedule is
            // a function of the dirty set alone (never of `jobs`), and
            // any fair schedule reaches the same least fixpoint.
            let mut work: Vec<usize> = (1..self.shards.len()).filter(|&i| self.dirty[i]).collect();
            if work.is_empty() && self.dirty[0] {
                work.push(0);
            }
            if work.is_empty() {
                break;
            }
            round += 1;
            assert!(round < 100_000, "analysis fixpoint failed to converge");
            // Freeze this round's world view before any shard moves.
            let snapshots: Arc<[Arc<Published>]> = self
                .shards
                .iter()
                .map(|s| Arc::clone(&s.published))
                .collect();
            for &i in &work {
                self.dirty[i] = false;
                self.walked[i] = true;
            }
            // Take dirty shards out of the vec for the round: walkers own
            // them exclusively (so copy-on-write clones of cached shards
            // happen at most once, not once per round).
            let items: Vec<(usize, Arc<Shard>)> =
                work.iter().map(|&i| (i, self.take_shard(i))).collect();
            let mut results = match pool {
                // Single-shard rounds skip the condvar handshake.
                Some(pool) if items.len() > 1 => pool.run_batch(Arc::clone(&snapshots), items),
                _ => {
                    let view = self.view(&snapshots);
                    items
                        .into_iter()
                        .map(|(i, mut arc)| {
                            let t = crate::spans::start();
                            let res = transfer::walk_round(Arc::make_mut(&mut arc), &view);
                            crate::spans::record(
                                crate::spans::Phase::Walk,
                                round,
                                self.names[i].clone(),
                                t,
                            );
                            (i, arc, res)
                        })
                        .collect()
                }
            };

            let barrier_t = crate::spans::start();
            // Serial barrier, in sorted shard order (determinism: every
            // effect below is a join, but keep the order fixed anyway).
            results.sort_by_key(|(i, _, _)| *i);
            let mut republished: Vec<usize> = Vec::new();
            let mut msgs: Vec<Message> = Vec::new();
            for (i, arc, res) in results {
                if res.pub_changed {
                    republished.push(i);
                }
                msgs.extend(res.msgs);
                self.shards[i] = arc;
            }
            for msg in msgs {
                self.deliver(msg);
            }
            // Wake every reader of a shard that published a new snapshot —
            // except clean readers of a rebuilt shard whose content is
            // still within the old snapshot they converged against (early
            // cutoff: their cached state already accounts for everything
            // published so far).
            for &i in &republished {
                let dep = self.names[i].clone();
                let grew_past_old = match &self.old_published[i] {
                    Some(old) => !self.shards[i].published.le(old),
                    None => true,
                };
                for j in 0..self.shards.len() {
                    if j != i
                        && !self.dirty[j]
                        && (grew_past_old || !self.clean[j])
                        && self.shards[j].read_deps.contains(&dep)
                    {
                        self.dirty[j] = true;
                    }
                }
            }
            crate::spans::record(crate::spans::Phase::Barrier, round, None, barrier_t);
        }
    }

    /// Apply one cross-shard message at the barrier. Read-only no-op
    /// pre-checks keep idempotent (re)deliveries from forcing a
    /// copy-on-write clone of a cached shard.
    fn deliver(&mut self, msg: Message) {
        let idx = match msg.target() {
            Some(m) => match self.index.get(&m) {
                Some(&i) => i,
                None => return,
            },
            None => 0,
        };
        let shard = &self.shards[idx];
        match msg {
            Message::ActivateModule(_) => {
                if !shard.active && !shard.failed && shard.program.is_none() {
                    self.materialize(idx);
                }
            }
            Message::ActivateFunc(k) => {
                if !shard.activate_func_is_noop(k)
                    && Arc::make_mut(&mut self.shards[idx]).activate_func(k)
                {
                    self.dirty[idx] = true;
                }
            }
            Message::BindParam(k, p, set) => {
                if !shard.bind_param_is_noop(k, p, &set)
                    && Arc::make_mut(&mut self.shards[idx]).bind_param(k, p, &set)
                {
                    self.dirty[idx] = true;
                }
            }
        }
    }

    /// Parse/resolve an activated module and set up its top scope with all
    /// locally-assigned names pre-bound (the shadowing decision must be
    /// static for the transfer to be monotone — DESIGN.md §9). The name
    /// pre-scan is cached per module *content* in the registry's summary
    /// slot, so repeated runs skip it.
    fn materialize(&mut self, idx: usize) {
        let name = self.names[idx].clone().expect("module shard");
        match self.registry.resolve_module(&name) {
            Err(_) => {
                // Unresolvable module: left opaque, DD handles it.
                Arc::make_mut(&mut self.shards[idx]).failed = true;
            }
            Ok(rprog) => {
                let scan = || {
                    let mut names: BTreeSet<Symbol> = BTreeSet::new();
                    transfer::assigned_names(&rprog.body, &mut names);
                    names
                };
                let names: Arc<BTreeSet<Symbol>> = self
                    .registry
                    .module_summary(&name, scan)
                    .unwrap_or_else(|| Arc::new(scan()));
                let shard = Arc::make_mut(&mut self.shards[idx]);
                shard.scopes.push(Scope {
                    parent: None,
                    env: names.iter().map(|&n| (n, OriginSet::new())).collect(),
                });
                shard.program = Some(rprog);
                shard.active = true;
                shard.units.push(UnitRef::Top);
                self.dirty[idx] = true;
            }
        }
    }

    /// Read-only output pass over every active shard whose cached output is
    /// missing or stale (i.e. the shard was walked this run).
    fn collect(&mut self) {
        let snapshots: Vec<Arc<Published>> = self
            .shards
            .iter()
            .map(|s| Arc::clone(&s.published))
            .collect();
        let work: Vec<usize> = (0..self.shards.len())
            .filter(|&i| {
                let s = &self.shards[i];
                s.active && (self.walked[i] || s.output.is_none())
            })
            .collect();
        let items: Vec<(usize, Arc<Shard>)> =
            work.iter().map(|&i| (i, self.take_shard(i))).collect();
        let view = self.view(&snapshots);
        let collect_one = |(i, mut arc): (usize, Arc<Shard>)| {
            let shard = Arc::make_mut(&mut arc);
            let out = transfer::collect_shard(shard, &view);
            shard.output = Some(Arc::new(out));
            (i, arc)
        };
        let results: Vec<(usize, Arc<Shard>)> = if self.jobs <= 1 || items.len() <= 1 {
            items
                .into_iter()
                .map(|item| {
                    let name = self.names[item.0].clone();
                    let t = crate::spans::start();
                    let result = collect_one(item);
                    crate::spans::record(crate::spans::Phase::Collect, 0, name, t);
                    result
                })
                .collect()
        } else {
            let pending = Mutex::new(items);
            let done = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for _ in 0..self.jobs {
                    s.spawn(|| loop {
                        let next = pending.lock().expect("collect queue poisoned").pop();
                        let Some(item) = next else { break };
                        let result = collect_one(item);
                        done.lock().expect("collect results poisoned").push(result);
                    });
                }
            });
            done.into_inner().expect("collect results poisoned")
        };
        for (i, arc) in results {
            self.shards[i] = arc;
        }
    }

    /// Merge shard outputs (app first, then modules in sorted-name order —
    /// the construction order of `shards`) and finalize.
    fn finish(&self, entry: Option<&str>) -> EngineOutput {
        let outputs: Vec<&ShardOutput> = self
            .shards
            .iter()
            .filter(|s| s.active)
            .filter_map(|s| s.output.as_deref())
            .collect();
        merge::finish(outputs, self.registry, entry)
    }
}
