//! Shard state and cross-shard plumbing for the sharded fixpoint.
//!
//! One [`Shard`] per registry module (plus one for the application). A
//! shard owns everything its module defines: lexical scopes, registered
//! functions, container-literal sites. Other shards never touch that state
//! directly — they read it through an immutable [`Published`] snapshot
//! frozen at the start of each round, and affect it through [`Message`]s
//! applied serially at the round barrier. That is what makes the engine's
//! rounds bulk-synchronous and its results independent of thread schedule:
//! within a round every walker sees the same frozen world, and barrier
//! effects are pure joins (commutative and idempotent), so the per-round
//! state evolution is a deterministic function of the previous round.

use crate::origin::{FuncKey, OriginSet, ShardName};
use pylite::resolved::{RProgram, RStmt};
use pylite::Symbol;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One lexical scope. Scope chains never cross shards: module and app top
/// scopes have no parent, function/class scopes chain to their defining
/// scope in the same shard.
#[derive(Debug, Clone, Default)]
pub(crate) struct Scope {
    pub parent: Option<usize>,
    pub env: BTreeMap<Symbol, OriginSet>,
}

/// A function or method registered by its defining shard.
#[derive(Debug, Clone)]
pub(crate) struct FuncInfo {
    /// Interned qualified name (also the key's `qual`).
    pub qual: Symbol,
    /// Positional parameter names.
    pub params: Arc<[Symbol]>,
    /// Body statements (shared with the resolved IR).
    pub body: Arc<[RStmt]>,
    /// The function's local scope (params + local names pre-bound).
    pub scope: usize,
    /// Join of all `return` expressions analyzed so far.
    pub ret: OriginSet,
    /// Whether some executed code possibly calls this function — only then
    /// is its body walked (never-called library bodies stay opaque).
    pub active: bool,
}

/// Published view of a function, for cross-shard callers.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct FuncPub {
    pub params: Arc<[Symbol]>,
    pub ret: OriginSet,
}

/// The externally visible state of a shard, frozen once per round.
///
/// Invariant: if any published origin set contains `Func(k)` for a function
/// of this shard, then `funcs[k]` is present in the same snapshot — state
/// and function table are published atomically.
#[derive(Debug, Clone, Default)]
pub(crate) struct Published {
    /// Bumped every time the owning shard re-publishes; readers are woken
    /// when a shard they read from publishes a new version.
    pub version: u64,
    /// The module top-level environment.
    pub top_env: BTreeMap<Symbol, OriginSet>,
    /// Registered functions (active or not: binding a name to a function
    /// atom does not require the body to have been walked).
    pub funcs: BTreeMap<FuncKey, FuncPub>,
    /// Tuple/list literal sites owned by this shard.
    pub seq_sites: BTreeMap<crate::origin::SiteKey, Vec<OriginSet>>,
    /// Dict literal sites owned by this shard.
    pub map_sites: BTreeMap<crate::origin::SiteKey, (BTreeMap<Arc<str>, OriginSet>, OriginSet)>,
}

impl Published {
    /// Content partial order: does `other` cover everything in `self`?
    /// Key *presence* counts — a name pre-bound to an empty origin set is
    /// still visible to star-import readers. Used for incremental early
    /// cutoff: a rebuilt shard whose final snapshot satisfies
    /// `old.le(new)` never invalidates readers that converged against
    /// `old` (their cached state is a monotone under-approximation).
    pub fn le(&self, other: &Published) -> bool {
        self.top_env
            .iter()
            .all(|(k, v)| other.top_env.get(k).is_some_and(|o| v.is_subset(o)))
            && self.funcs.iter().all(|(k, f)| {
                other
                    .funcs
                    .get(k)
                    .is_some_and(|o| f.params == o.params && f.ret.is_subset(&o.ret))
            })
            && self.seq_sites.iter().all(|(k, v)| {
                other.seq_sites.get(k).is_some_and(|o| {
                    v.len() == o.len() && v.iter().zip(o.iter()).all(|(a, b)| a.is_subset(b))
                })
            })
            && self.map_sites.iter().all(|(k, (m, rest))| {
                other.map_sites.get(k).is_some_and(|(om, orest)| {
                    rest.is_subset(orest)
                        && m.iter()
                            .all(|(mk, mv)| om.get(mk).is_some_and(|ov| mv.is_subset(ov)))
                })
            })
    }
}

/// A cross-shard effect, buffered during a round and applied at the
/// barrier. All three are joins on the receiving shard's state, so the
/// application order cannot matter.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Message {
    /// `import m` somewhere: run `m`'s top level.
    ActivateModule(Symbol),
    /// A call site possibly reaches this function: walk its body.
    ActivateFunc(FuncKey),
    /// A call site passes `set` to `func`'s parameter `param`.
    BindParam(FuncKey, Symbol, OriginSet),
}

impl Message {
    /// The shard this message must be delivered to.
    pub fn target(&self) -> ShardName {
        match self {
            Message::ActivateModule(m) => Some(*m),
            Message::ActivateFunc(k) | Message::BindParam(k, _, _) => k.shard,
        }
    }
}

/// An analysis unit of one shard: its top level or one active function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UnitRef {
    Top,
    Func(FuncKey),
}

/// Per-module (or application) analysis state.
///
/// `Clone` is the incremental-reuse mechanism: cached shards from a
/// previous run are shared via `Arc` and deep-cloned (`Arc::make_mut`) only
/// if the new run actually needs to re-walk them.
#[derive(Debug, Clone)]
pub(crate) struct Shard {
    /// `None` = the application shard.
    pub name: ShardName,
    /// Dotted module name (`None` for the application).
    pub name_str: Option<String>,
    /// Whether the shard's top level is imported/executed.
    pub active: bool,
    /// Resolution failed: the module stays opaque (DD handles it).
    pub failed: bool,
    /// Resolved top-level body (present once materialized).
    pub program: Option<Arc<RProgram>>,
    /// Lexical scopes; index 0 is the top scope once materialized.
    pub scopes: Vec<Scope>,
    /// Class scopes keyed by `(defining scope, class name)`.
    pub class_scopes: BTreeMap<(usize, Symbol), usize>,
    /// Registered functions, keyed by content ([`FuncKey`]).
    pub funcs: BTreeMap<FuncKey, FuncInfo>,
    /// Active units in activation order (top first).
    pub units: Vec<UnitRef>,
    /// Tuple/list literal sites defined in this shard.
    pub seq_sites: BTreeMap<crate::origin::SiteKey, Vec<OriginSet>>,
    /// Dict literal sites defined in this shard.
    pub map_sites: BTreeMap<crate::origin::SiteKey, (BTreeMap<Arc<str>, OriginSet>, OriginSet)>,
    /// `(scope, name)` pairs bound by import statements (rebinding lint).
    pub import_bound: BTreeSet<(usize, Symbol)>,
    /// Param binds / activations that arrived before the function was
    /// registered (only possible when replaying cached messages).
    pub pending_binds: BTreeMap<FuncKey, Vec<(Symbol, OriginSet)>>,
    pub pending_activations: BTreeSet<FuncKey>,
    /// Shards whose published state this shard has read (`None` = the
    /// application shard). The incremental dirty cone is the reverse
    /// closure of the edit over these edges; message-receive edges are
    /// covered by sent-set validation instead (see `incremental_run`).
    pub read_deps: BTreeSet<Option<String>>,
    /// Registry existence probes made by this shard (`contains` answers).
    /// A flipped answer invalidates the shard's cached summary.
    pub probes: BTreeMap<String, bool>,
    /// "Is this module analyzable" probes (`contains` && resolves).
    pub analyzed_probes: BTreeMap<String, bool>,
    /// Every message this shard has ever sent (deduplicated). Replayed on
    /// incremental runs so rebuilt shards receive activations and binds
    /// from shards that were *not* re-walked.
    pub sent: BTreeSet<Message>,
    /// Frozen external view, re-published when publishable state changes.
    pub published: Arc<Published>,
    /// Cached collect-pass output (valid while the shard is not re-walked).
    pub output: Option<Arc<crate::engine::merge::ShardOutput>>,
}

impl Shard {
    /// An empty, unmaterialized shard slot.
    pub fn slot(name: ShardName, name_str: Option<String>) -> Shard {
        Shard {
            name,
            name_str,
            active: false,
            failed: false,
            program: None,
            scopes: Vec::new(),
            class_scopes: BTreeMap::new(),
            funcs: BTreeMap::new(),
            units: Vec::new(),
            seq_sites: BTreeMap::new(),
            map_sites: BTreeMap::new(),
            import_bound: BTreeSet::new(),
            pending_binds: BTreeMap::new(),
            pending_activations: BTreeSet::new(),
            read_deps: BTreeSet::new(),
            probes: BTreeMap::new(),
            analyzed_probes: BTreeMap::new(),
            sent: BTreeSet::new(),
            published: Arc::new(Published::default()),
            output: None,
        }
    }

    pub fn is_app(&self) -> bool {
        self.name.is_none()
    }

    /// Rebuild the published snapshot from current state. Called after a
    /// walk that changed publishable state, never concurrently with readers
    /// of the *new* snapshot (readers hold the previous `Arc`).
    pub fn publish(&mut self) {
        let version = self.published.version + 1;
        self.published = Arc::new(Published {
            version,
            top_env: self
                .scopes
                .first()
                .map(|s| s.env.clone())
                .unwrap_or_default(),
            funcs: self
                .funcs
                .iter()
                .map(|(k, f)| {
                    (
                        *k,
                        FuncPub {
                            params: Arc::clone(&f.params),
                            ret: f.ret.clone(),
                        },
                    )
                })
                .collect(),
            seq_sites: self.seq_sites.clone(),
            map_sites: self.map_sites.clone(),
        });
    }

    /// Register a function if new; returns whether registration happened.
    /// Pre-registered pending binds/activations are drained into it.
    pub fn register_func(&mut self, key: FuncKey, info: FuncInfo) -> bool {
        if self.funcs.contains_key(&key) {
            return false;
        }
        let scope = info.scope;
        self.funcs.insert(key, info);
        if let Some(binds) = self.pending_binds.remove(&key) {
            for (param, set) in binds {
                let slot = self.scopes[scope].env.entry(param).or_default();
                crate::origin::join_into(slot, &set);
            }
        }
        if self.pending_activations.remove(&key) {
            self.activate_func(key);
        }
        true
    }

    /// Mark a function's body as possibly executed; returns true if it was
    /// newly activated (its unit is appended to the walk list).
    pub fn activate_func(&mut self, key: FuncKey) -> bool {
        match self.funcs.get_mut(&key) {
            Some(f) if !f.active => {
                f.active = true;
                self.units.push(UnitRef::Func(key));
                true
            }
            Some(_) => false,
            None => {
                // Replayed activation for a not-yet-registered function.
                self.pending_activations.insert(key)
            }
        }
    }

    /// Apply a parameter bind; returns true if the target set grew (or the
    /// bind had to be buffered for a not-yet-registered function).
    pub fn bind_param(&mut self, key: FuncKey, param: Symbol, set: &OriginSet) -> bool {
        match self.funcs.get(&key) {
            Some(f) => {
                let scope = f.scope;
                let slot = self.scopes[scope].env.entry(param).or_default();
                crate::origin::join_into(slot, set)
            }
            None => {
                self.pending_binds
                    .entry(key)
                    .or_default()
                    .push((param, set.clone()));
                true
            }
        }
    }

    /// Would `bind_param` be a no-op? (Read-only pre-check so idempotent
    /// replays never force a copy-on-write clone of a cached shard.)
    pub fn bind_param_is_noop(&self, key: FuncKey, param: Symbol, set: &OriginSet) -> bool {
        match self.funcs.get(&key) {
            Some(f) => match self.scopes[f.scope].env.get(&param) {
                Some(existing) => set.is_subset(existing),
                None => set.is_empty(),
            },
            None => false,
        }
    }

    /// Would `activate_func` be a no-op?
    pub fn activate_func_is_noop(&self, key: FuncKey) -> bool {
        match self.funcs.get(&key) {
            Some(f) => f.active,
            None => self.pending_activations.contains(&key),
        }
    }

    /// Look a name up through the scope chain (old-engine semantics).
    pub fn lookup(&self, scope: usize, name: Symbol) -> Option<&OriginSet> {
        let mut cur = Some(scope);
        while let Some(id) = cur {
            if let Some(set) = self.scopes[id].env.get(&name) {
                return Some(set);
            }
            cur = self.scopes[id].parent;
        }
        None
    }

    /// The display name used for call-graph nodes of this shard's funcs.
    pub fn func_node(&self, qual: &str) -> crate::callgraph::CgNode {
        match &self.name_str {
            None => crate::callgraph::CgNode::AppFunc(qual.to_owned()),
            Some(m) => crate::callgraph::CgNode::LibFunc(m.clone(), qual.to_owned()),
        }
    }
}

/// Immutable per-round context shared by all walkers: the frozen snapshots
/// plus registry/interner handles and the shard index.
pub(crate) struct RoundView<'a> {
    pub registry: &'a pylite::Registry,
    pub interner: &'a pylite::Interner,
    pub interprocedural: bool,
    /// Shard index by module-name symbol (the app shard is index 0 and is
    /// never the target of a cross-shard read).
    pub index: &'a std::collections::HashMap<Symbol, usize, pylite::SymbolHashBuilder>,
    /// `Published` snapshots frozen at round start, by shard index.
    pub snapshots: &'a [Arc<Published>],
    /// Interned `getattr` / `setattr` / `hasattr`.
    pub dynamic_builtins: [Symbol; 3],
}

impl RoundView<'_> {
    /// The frozen snapshot of a module shard, if the module has one.
    pub fn snapshot_of(&self, module: Symbol) -> Option<&Published> {
        self.index.get(&module).map(|&i| &*self.snapshots[i])
    }
}

/// What one shard walk produced, merged serially at the barrier.
#[derive(Debug, Default)]
pub(crate) struct WalkResult {
    /// New (not previously sent) cross-shard messages.
    pub msgs: Vec<Message>,
    /// The shard re-published (readers must be woken).
    pub pub_changed: bool,
}
