//! The interprocedural call graph: which code units invoke which
//! functions and module attributes, and which of them are reachable from
//! the application's entry point.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A node of the call graph.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum CgNode {
    /// The application's top-level code.
    AppTop,
    /// The top-level body of a registry module (runs on first import).
    ModuleTop(String),
    /// A function or method defined in the application (qualified name).
    AppFunc(String),
    /// A function or method defined in a registry module.
    LibFunc(String, String),
    /// A call through a module attribute the engine could not resolve to a
    /// definition (e.g. a trimmed-away or data-valued attribute).
    ModuleAttr(String, String),
}

impl fmt::Display for CgNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CgNode::AppTop => write!(f, "<app>"),
            CgNode::ModuleTop(m) => write!(f, "<module {m}>"),
            CgNode::AppFunc(name) => write!(f, "app::{name}"),
            CgNode::LibFunc(m, name) => write!(f, "{m}::{name}"),
            CgNode::ModuleAttr(m, a) => write!(f, "{m}.{a}"),
        }
    }
}

/// The call graph produced by [`crate::analyze_full`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CallGraph {
    /// Directed `(caller, callee)` edges. Import edges point at
    /// [`CgNode::ModuleTop`] (importing a module runs its body).
    pub edges: BTreeSet<(CgNode, CgNode)>,
    /// Nodes reachable from the entry roots (see [`CallGraph::recompute`]).
    pub reachable: BTreeSet<CgNode>,
}

impl CallGraph {
    /// Recompute [`CallGraph::reachable`] from the given roots: a BFS over
    /// an adjacency index built once from the edge set, so the whole
    /// traversal is `O(V + E)` instead of scanning every edge per node.
    pub fn recompute(&mut self, roots: impl IntoIterator<Item = CgNode>) {
        let mut successors: BTreeMap<&CgNode, Vec<&CgNode>> = BTreeMap::new();
        for (from, to) in &self.edges {
            successors.entry(from).or_default().push(to);
        }
        let mut seen: BTreeSet<CgNode> = BTreeSet::new();
        let mut queue: VecDeque<CgNode> = roots.into_iter().collect();
        while let Some(node) = queue.pop_front() {
            if !seen.insert(node.clone()) {
                continue;
            }
            // `seen` can't borrow across the push, so re-check on pop.
            if let Some(next) = successors.get(&node) {
                queue.extend(next.iter().map(|&n| n.clone()));
            }
        }
        self.reachable = seen;
    }

    /// All nodes mentioned by any edge.
    pub fn nodes(&self) -> BTreeSet<CgNode> {
        self.edges
            .iter()
            .flat_map(|(a, b)| [a.clone(), b.clone()])
            .collect()
    }

    /// Reachable function nodes (app and library), skipping module tops and
    /// unresolved attribute callees.
    pub fn reachable_functions(&self) -> impl Iterator<Item = &CgNode> {
        self.reachable
            .iter()
            .filter(|n| matches!(n, CgNode::AppFunc(_) | CgNode::LibFunc(..)))
    }
}
