//! Statement-level backward slicing of module init bodies (DESIGN.md §15).
//!
//! Attribute-granular trimming keeps or drops whole top-level *bindings*;
//! a kept module still executes every top-level statement of its init
//! body. This pass computes the backward def-use slice of an init body
//! that (transitively) defines a seed set of kept attributes, so the
//! pipeline can drop the init work that feeds nothing the application
//! keeps — the selective-init move of the risc0-lean report (SNIPPETS.md
//! snippet 1) applied to pylite modules.
//!
//! The slice is *heuristic by design*: side-effecting statements are
//! pinned conservatively (observable calls, foreign-namespace writes,
//! raises, star imports), but the soundness authority is the DD oracle —
//! the pipeline probes every sliced module against the baseline behavior
//! and falls back to the unsliced body on any mismatch, exactly like the
//! §11 hazard fallback. Meter-only builtins (`__lt_work__`,
//! `__lt_alloc__`) are treated as droppable because the oracle's
//! behavior equivalence deliberately ignores init cost: removing init
//! work is the point.

use pylite::ast::{ExceptHandler, Expr, Program, Stmt};
use std::collections::BTreeSet;

/// Callees that cannot change observable behavior (stdout, extcalls,
/// handler results): the simulated-work meters plus pure builtins.
/// `print` and `__lt_extcall__` are deliberately absent — their output is
/// exactly what the oracle compares.
const PURE_CALLEES: &[&str] = &[
    "__lt_work__",
    "__lt_alloc__",
    "len",
    "range",
    "abs",
    "min",
    "max",
    "sum",
    "sorted",
    "str",
    "int",
    "float",
    "bool",
    "list",
    "dict",
    "tuple",
    "enumerate",
    "zip",
    "repr",
    "isinstance",
    "getattr",
    "hasattr",
];

/// The result of slicing one module's init body: which top-level
/// statements survive, and why.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InitSlice {
    /// Indices of kept top-level statements, ascending.
    pub kept: Vec<usize>,
    /// Total top-level statement count of the sliced body.
    pub total: usize,
    /// Subset of `kept` retained because the statement is pinned as
    /// (potentially) side-effecting, ascending.
    pub pinned: Vec<usize>,
}

impl InitSlice {
    /// `true` when nothing was dropped — the slice is the whole body.
    pub fn is_full(&self) -> bool {
        self.kept.len() == self.total
    }

    /// Indices of dropped top-level statements, ascending.
    pub fn dropped(&self) -> Vec<usize> {
        let kept: BTreeSet<usize> = self.kept.iter().copied().collect();
        (0..self.total).filter(|i| !kept.contains(i)).collect()
    }
}

/// Per-statement def/use/effect facts, computed once per top-level
/// statement. Compound statements are treated atomically: their defs and
/// uses are the union over every nested statement.
struct StmtFacts {
    defs: BTreeSet<String>,
    uses: BTreeSet<String>,
    pinned: bool,
}

/// Compute the backward def-use slice of `program`'s top-level body that
/// defines every name in `seed`, pinning side-effecting statements.
///
/// `conservative` is the hazard mode: modules implicated by §11 hazard
/// facts additionally pin every import and every call-bearing statement
/// (meter builtins excepted), because dynamic access can reach bindings
/// the static seed cannot see.
pub fn slice_init(program: &Program, seed: &BTreeSet<String>, conservative: bool) -> InitSlice {
    let facts: Vec<StmtFacts> = program
        .body
        .iter()
        .map(|s| stmt_facts(s, conservative))
        .collect();
    let n = facts.len();
    let mut keep = vec![false; n];
    let mut needed: BTreeSet<String> = seed.clone();
    // Fixpoint: pinned statements and statements defining a needed name
    // are kept, and their uses become needed in turn. Repeated full
    // passes handle forward references (a kept function body using a
    // name defined later in the file).
    loop {
        let mut changed = false;
        for (i, f) in facts.iter().enumerate() {
            if keep[i] {
                continue;
            }
            if f.pinned || f.defs.iter().any(|d| needed.contains(d)) {
                keep[i] = true;
                changed = true;
                for u in &f.uses {
                    needed.insert(u.clone());
                }
                // A kept statement's own defs are satisfied by itself,
                // but other statements defining the same name stay in
                // (conditional rebinds): defs join `needed` so every
                // definition site of a needed name survives.
                for d in &f.defs {
                    needed.insert(d.clone());
                }
            }
        }
        if !changed {
            break;
        }
    }
    InitSlice {
        kept: (0..n).filter(|&i| keep[i]).collect(),
        total: n,
        pinned: (0..n).filter(|&i| keep[i] && facts[i].pinned).collect(),
    }
}

/// Materialize the sliced program: the kept top-level statements, in
/// original order. `kept` indices out of range are ignored.
pub fn sliced_program(program: &Program, kept: &[usize]) -> Program {
    Program {
        body: kept
            .iter()
            .filter_map(|&i| program.body.get(i).cloned())
            .collect(),
    }
}

fn stmt_facts(stmt: &Stmt, conservative: bool) -> StmtFacts {
    let mut f = StmtFacts {
        defs: BTreeSet::new(),
        uses: BTreeSet::new(),
        pinned: false,
    };
    collect(stmt, conservative, true, &mut f);
    f
}

/// Walk one statement, accumulating defs/uses/pins. `top` is true only
/// for the outermost statement: defs inside compound statements still
/// count (they bind module names), but defs inside function bodies do
/// not (they bind locals at call time).
fn collect(stmt: &Stmt, conservative: bool, top: bool, f: &mut StmtFacts) {
    match stmt {
        Stmt::Expr(e) => {
            expr_uses(e, &mut f.uses);
            if expr_has_effect(e, conservative) {
                f.pinned = true;
            }
        }
        Stmt::Assign { targets, value } => {
            expr_uses(value, &mut f.uses);
            if expr_has_effect(value, conservative) {
                f.pinned = true;
            }
            for t in targets {
                if !target_defs(t, &mut f.defs) {
                    // Attribute / subscript target: a write into a
                    // foreign namespace (another module, a container) —
                    // observable beyond this module's bindings.
                    expr_uses(t, &mut f.uses);
                    f.pinned = true;
                }
            }
        }
        Stmt::AugAssign {
            target,
            op: _,
            value,
        } => {
            expr_uses(value, &mut f.uses);
            expr_uses(target, &mut f.uses);
            if expr_has_effect(value, conservative) {
                f.pinned = true;
            }
            match target {
                Expr::Name(n) => {
                    f.defs.insert(n.clone());
                }
                _ => f.pinned = true,
            }
        }
        Stmt::If { branches, orelse } => {
            for (test, body) in branches {
                expr_uses(test, &mut f.uses);
                if expr_has_effect(test, conservative) {
                    f.pinned = true;
                }
                for s in body {
                    collect(s, conservative, false, f);
                }
            }
            for s in orelse {
                collect(s, conservative, false, f);
            }
        }
        Stmt::While { test, body } => {
            expr_uses(test, &mut f.uses);
            if expr_has_effect(test, conservative) {
                f.pinned = true;
            }
            for s in body {
                collect(s, conservative, false, f);
            }
        }
        Stmt::For {
            targets,
            iter,
            body,
        } => {
            expr_uses(iter, &mut f.uses);
            if expr_has_effect(iter, conservative) {
                f.pinned = true;
            }
            for t in targets {
                f.defs.insert(t.clone());
            }
            for s in body {
                collect(s, conservative, false, f);
            }
        }
        Stmt::FuncDef(func) => {
            f.defs.insert(func.name.clone());
            for p in &func.params {
                if let Some(d) = &p.default {
                    expr_uses(d, &mut f.uses);
                    if expr_has_effect(d, conservative) {
                        f.pinned = true;
                    }
                }
            }
            // The body runs at call time, not at init: its names are
            // uses (the slice must keep what a kept function reads),
            // but its effects do not pin the definition.
            for s in &func.body {
                body_uses(s, &mut f.uses);
            }
        }
        Stmt::ClassDef(class) => {
            f.defs.insert(class.name.clone());
            for base in &class.bases {
                f.uses.insert(base.clone());
            }
            // Class bodies execute at definition time.
            for s in &class.body {
                let mut inner = StmtFacts {
                    defs: BTreeSet::new(),
                    uses: BTreeSet::new(),
                    pinned: false,
                };
                collect(s, conservative, false, &mut inner);
                // Inner defs bind class attributes, not module names.
                f.uses.extend(inner.uses);
                if inner.pinned {
                    f.pinned = true;
                }
            }
        }
        Stmt::Return(e) => {
            if let Some(e) = e {
                expr_uses(e, &mut f.uses);
            }
            // A top-level return is malformed enough to leave alone.
            f.pinned = true;
        }
        Stmt::Pass => {}
        Stmt::Break | Stmt::Continue => {
            if top {
                f.pinned = true;
            }
        }
        Stmt::Import { items } => {
            for item in items {
                f.defs.insert(item.bound_name().to_string());
            }
            // Importing executes the target's body: in hazard mode any
            // import may feed dynamic access, so it stays.
            if conservative {
                f.pinned = true;
            }
        }
        Stmt::FromImport { module: _, names } => {
            let mut star = false;
            for (name, alias) in names {
                if name == "*" {
                    star = true;
                } else {
                    f.defs
                        .insert(alias.clone().unwrap_or_else(|| name.clone()).to_string());
                }
            }
            // A star import binds the source's whole public surface —
            // names no static seed can enumerate here. Always pin.
            if star || conservative {
                f.pinned = true;
            }
        }
        Stmt::Raise(e) => {
            if let Some(e) = e {
                expr_uses(e, &mut f.uses);
            }
            f.pinned = true;
        }
        Stmt::Try {
            body,
            handlers,
            orelse,
            finalbody,
        } => {
            for s in body.iter().chain(orelse).chain(finalbody) {
                collect(s, conservative, false, f);
            }
            for h in handlers {
                handler_facts(h, conservative, f);
            }
        }
        Stmt::Global(_) => {
            // Only meaningful inside functions; at top level it is inert
            // but cheap, and dropping declarations buys nothing.
            f.pinned = true;
        }
        Stmt::Assert { test, msg } => {
            expr_uses(test, &mut f.uses);
            if let Some(m) = msg {
                expr_uses(m, &mut f.uses);
            }
            // A passing assert is behavior-neutral (a failing one would
            // have failed the baseline), so it pins only via effects.
            if expr_has_effect(test, conservative)
                || msg
                    .as_ref()
                    .is_some_and(|m| expr_has_effect(m, conservative))
            {
                f.pinned = true;
            }
        }
        Stmt::Del(e) => {
            expr_uses(e, &mut f.uses);
            // Deleting a binding is an effect on the namespace surface.
            f.pinned = true;
        }
    }
}

fn handler_facts(h: &ExceptHandler, conservative: bool, f: &mut StmtFacts) {
    if let Some(t) = &h.exc_type {
        f.uses.insert(t.clone());
    }
    if let Some(n) = &h.name {
        f.defs.insert(n.clone());
    }
    for s in &h.body {
        collect(s, conservative, false, f);
    }
}

/// Record the module names bound by an assignment target. Returns false
/// for non-name targets (attribute/subscript writes).
fn target_defs(target: &Expr, defs: &mut BTreeSet<String>) -> bool {
    match target {
        Expr::Name(n) => {
            defs.insert(n.clone());
            true
        }
        Expr::Tuple(items) | Expr::List(items) => items.iter().all(|t| target_defs(t, defs)),
        _ => false,
    }
}

/// Collect every identifier referenced by a function-body statement —
/// over-approximate on purpose: locals and parameters are included, which
/// can only keep more than strictly necessary.
fn body_uses(stmt: &Stmt, uses: &mut BTreeSet<String>) {
    match stmt {
        Stmt::Expr(e) | Stmt::Del(e) => expr_uses(e, uses),
        Stmt::Assign { targets, value } => {
            for t in targets {
                expr_uses(t, uses);
            }
            expr_uses(value, uses);
        }
        Stmt::AugAssign {
            target,
            op: _,
            value,
        } => {
            expr_uses(target, uses);
            expr_uses(value, uses);
        }
        Stmt::If { branches, orelse } => {
            for (test, body) in branches {
                expr_uses(test, uses);
                for s in body {
                    body_uses(s, uses);
                }
            }
            for s in orelse {
                body_uses(s, uses);
            }
        }
        Stmt::While { test, body } => {
            expr_uses(test, uses);
            for s in body {
                body_uses(s, uses);
            }
        }
        Stmt::For { iter, body, .. } => {
            expr_uses(iter, uses);
            for s in body {
                body_uses(s, uses);
            }
        }
        Stmt::FuncDef(func) => {
            for p in &func.params {
                if let Some(d) = &p.default {
                    expr_uses(d, uses);
                }
            }
            for s in &func.body {
                body_uses(s, uses);
            }
        }
        Stmt::ClassDef(class) => {
            for base in &class.bases {
                uses.insert(base.clone());
            }
            for s in &class.body {
                body_uses(s, uses);
            }
        }
        Stmt::Return(e) | Stmt::Raise(e) => {
            if let Some(e) = e {
                expr_uses(e, uses);
            }
        }
        Stmt::Pass | Stmt::Break | Stmt::Continue | Stmt::Global(_) => {}
        Stmt::Import { .. } | Stmt::FromImport { .. } => {}
        Stmt::Try {
            body,
            handlers,
            orelse,
            finalbody,
        } => {
            for s in body.iter().chain(orelse).chain(finalbody) {
                body_uses(s, uses);
            }
            for h in handlers {
                if let Some(t) = &h.exc_type {
                    uses.insert(t.clone());
                }
                for s in &h.body {
                    body_uses(s, uses);
                }
            }
        }
        Stmt::Assert { test, msg } => {
            expr_uses(test, uses);
            if let Some(m) = msg {
                expr_uses(m, uses);
            }
        }
    }
}

/// Collect every identifier an expression references.
fn expr_uses(e: &Expr, uses: &mut BTreeSet<String>) {
    match e {
        Expr::Name(n) => {
            uses.insert(n.clone());
        }
        Expr::List(items) | Expr::Tuple(items) => {
            for item in items {
                expr_uses(item, uses);
            }
        }
        Expr::Dict(pairs) => {
            for (k, v) in pairs {
                expr_uses(k, uses);
                expr_uses(v, uses);
            }
        }
        Expr::Attribute { value, .. } => expr_uses(value, uses),
        Expr::Subscript { value, index } => {
            expr_uses(value, uses);
            expr_uses(index, uses);
        }
        Expr::Call { func, args, kwargs } => {
            expr_uses(func, uses);
            for a in args {
                expr_uses(a, uses);
            }
            for (_, v) in kwargs {
                expr_uses(v, uses);
            }
        }
        Expr::Unary { operand, .. } => expr_uses(operand, uses),
        Expr::Binary { left, right, .. } => {
            expr_uses(left, uses);
            expr_uses(right, uses);
        }
        Expr::Bool { values, .. } => {
            for v in values {
                expr_uses(v, uses);
            }
        }
        Expr::Compare { left, ops } => {
            expr_uses(left, uses);
            for (_, v) in ops {
                expr_uses(v, uses);
            }
        }
        Expr::Conditional { test, body, orelse } => {
            expr_uses(test, uses);
            expr_uses(body, uses);
            expr_uses(orelse, uses);
        }
        Expr::ListComp {
            element,
            iter,
            cond,
            ..
        } => {
            expr_uses(element, uses);
            expr_uses(iter, uses);
            if let Some(c) = cond {
                expr_uses(c, uses);
            }
        }
        Expr::Slice { value, start, stop } => {
            expr_uses(value, uses);
            if let Some(s) = start {
                expr_uses(s, uses);
            }
            if let Some(s) = stop {
                expr_uses(s, uses);
            }
        }
        _ => {}
    }
}

/// Could evaluating this expression observably change behavior (stdout,
/// extcalls, results) or foreign state? Calls to anything outside
/// [`PURE_CALLEES`] might; in conservative (hazard) mode every call does,
/// meter builtins excepted.
fn expr_has_effect(e: &Expr, conservative: bool) -> bool {
    match e {
        Expr::Call { func, args, kwargs } => {
            let callee_pure = match func.as_ref() {
                Expr::Name(n) => {
                    if conservative {
                        matches!(n.as_str(), "__lt_work__" | "__lt_alloc__")
                    } else {
                        PURE_CALLEES.contains(&n.as_str())
                    }
                }
                _ => false,
            };
            !callee_pure
                || args.iter().any(|a| expr_has_effect(a, conservative))
                || kwargs.iter().any(|(_, v)| expr_has_effect(v, conservative))
        }
        Expr::List(items) | Expr::Tuple(items) => {
            items.iter().any(|i| expr_has_effect(i, conservative))
        }
        Expr::Dict(pairs) => pairs
            .iter()
            .any(|(k, v)| expr_has_effect(k, conservative) || expr_has_effect(v, conservative)),
        Expr::Attribute { value, .. } => expr_has_effect(value, conservative),
        Expr::Subscript { value, index } => {
            expr_has_effect(value, conservative) || expr_has_effect(index, conservative)
        }
        Expr::Unary { operand, .. } => expr_has_effect(operand, conservative),
        Expr::Binary { left, right, .. } => {
            expr_has_effect(left, conservative) || expr_has_effect(right, conservative)
        }
        Expr::Bool { values, .. } => values.iter().any(|v| expr_has_effect(v, conservative)),
        Expr::Compare { left, ops } => {
            expr_has_effect(left, conservative)
                || ops.iter().any(|(_, v)| expr_has_effect(v, conservative))
        }
        Expr::Conditional { test, body, orelse } => {
            expr_has_effect(test, conservative)
                || expr_has_effect(body, conservative)
                || expr_has_effect(orelse, conservative)
        }
        Expr::ListComp {
            element,
            iter,
            cond,
            ..
        } => {
            expr_has_effect(element, conservative)
                || expr_has_effect(iter, conservative)
                || cond
                    .as_ref()
                    .is_some_and(|c| expr_has_effect(c, conservative))
        }
        Expr::Slice { value, start, stop } => {
            expr_has_effect(value, conservative)
                || start
                    .as_ref()
                    .is_some_and(|s| expr_has_effect(s, conservative))
                || stop
                    .as_ref()
                    .is_some_and(|s| expr_has_effect(s, conservative))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pylite::parse;

    fn seed(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn slice_src(src: &str, keep: &[&str], conservative: bool) -> (InitSlice, String) {
        let p = parse(src).expect("test source parses");
        let s = slice_init(&p, &seed(keep), conservative);
        let out = pylite::unparse(&sliced_program(&p, &s.kept));
        (s, out)
    }

    #[test]
    fn drops_init_work_feeding_no_kept_attribute() {
        let src = "__lt_work__(40)\n_weights = __lt_alloc__(20)\ndef go(x):\n    return x\n";
        let (s, out) = slice_src(src, &["go"], false);
        assert_eq!(s.kept, vec![2]);
        assert_eq!(s.total, 3);
        assert!(s.pinned.is_empty());
        assert_eq!(out, "def go(x):\n    return x\n");
    }

    #[test]
    fn keeps_transitive_defs_of_kept_attributes() {
        let src = "base = 2\nscale = base * 3\nunused = 99\nvalue = scale + 1\n";
        let (s, _) = slice_src(src, &["value"], false);
        assert_eq!(s.kept, vec![0, 1, 3], "base and scale feed value");
    }

    #[test]
    fn forward_references_inside_functions_are_kept() {
        // `go` reads LIMIT, defined *after* it — the fixpoint must pick
        // the later statement up on a subsequent pass.
        let src = "def go():\n    return LIMIT\nLIMIT = 10\nnoise = 1\n";
        let (s, _) = slice_src(src, &["go"], false);
        assert_eq!(s.kept, vec![0, 1]);
    }

    #[test]
    fn pins_observable_effects() {
        let src = "print(\"loading\")\n__lt_extcall__(\"warmup\")\nx = 1\n";
        let (s, _) = slice_src(src, &[], false);
        assert_eq!(s.kept, vec![0, 1], "print and extcall are pinned");
        assert_eq!(s.pinned, vec![0, 1]);
    }

    #[test]
    fn pins_foreign_namespace_writes() {
        let src = "import cfg\ncfg.flag = 1\nx = 2\n";
        let (s, _) = slice_src(src, &[], false);
        assert!(s.kept.contains(&1), "cfg.flag write is pinned");
        assert!(s.kept.contains(&0), "pinned write uses cfg: import kept");
        assert!(!s.kept.contains(&2));
    }

    #[test]
    fn pins_star_imports_and_raises() {
        let src = "from helpers import *\nraise ValueError(\"boom\")\n";
        let (s, _) = slice_src(src, &[], false);
        assert_eq!(s.kept, vec![0, 1]);
    }

    #[test]
    fn meter_builtins_are_droppable_even_in_conservative_mode() {
        let src = "__lt_work__(40)\nimport util\nx = util.helper()\n";
        let (s, _) = slice_src(src, &[], true);
        assert!(!s.kept.contains(&0), "meter call never pins");
        assert!(s.kept.contains(&1), "conservative mode pins imports");
        assert!(s.kept.contains(&2), "conservative mode pins calls");
    }

    #[test]
    fn conditional_rebinds_keep_every_definition_site() {
        let src = "mode = \"fast\"\nif flag:\n    mode = \"slow\"\nout = mode\n";
        let (s, _) = slice_src(src, &["out"], false);
        assert_eq!(s.kept, vec![0, 1, 2], "both definition sites survive");
    }

    #[test]
    fn class_bases_and_bodies_contribute_uses() {
        let src = "K = 3\nclass Base:\n    pass\nclass Net(Base):\n    size = K\nzz = 1\n";
        let (s, _) = slice_src(src, &["Net"], false);
        assert_eq!(s.kept, vec![0, 1, 2], "base class and K are reached");
    }

    #[test]
    fn imports_feeding_kept_functions_survive() {
        let src = "import util\nimport unused_lib\ndef go():\n    return util.fmt(1)\n";
        let (s, _) = slice_src(src, &["go"], false);
        assert_eq!(s.kept, vec![0, 2], "only the used import survives");
    }

    #[test]
    fn full_slice_round_trips() {
        let src = "a = 1\nb = a + 1\n";
        let (s, out) = slice_src(src, &["a", "b"], false);
        assert!(s.is_full());
        assert!(s.dropped().is_empty());
        assert_eq!(out, pylite::unparse(&parse(src).unwrap()));
    }

    #[test]
    fn sliced_program_preserves_order() {
        let p = parse("a = 1\nb = 2\nc = 3\n").unwrap();
        let sliced = sliced_program(&p, &[0, 2]);
        assert_eq!(pylite::unparse(&sliced), "a = 1\nc = 3\n");
    }
}
