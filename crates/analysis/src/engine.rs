//! The interprocedural fixpoint engine.
//!
//! Units of work are *code bodies that execute*: the application top-level,
//! the top-level of every (transitively) imported registry module — module
//! bodies run on first import — and the body of every function that some
//! executed unit possibly calls. Function bodies that nothing calls are
//! registered (their names bind to [`Origin::Func`] atoms) but never
//! analyzed, so the dense never-executed reference blocks that generated
//! libraries use to defeat naive static tools contribute nothing to the
//! definitely-accessed sets.
//!
//! Each unit is re-walked until no origin set, return set, container site,
//! or accessed set grows (a classic monotone worklist fixpoint; the atom
//! universe is finite, see [`crate::origin`]).

use crate::callgraph::{CallGraph, CgNode};
use crate::lints::{Lint, LintKind, Severity};
use crate::origin::{join_into, FuncId, Origin, OriginSet, SiteId};
use crate::{Analysis, AnalysisMode};
use pylite::ast::{Expr, FuncDef, Program, Stmt};
use pylite::Registry;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;

/// Everything the engine produces beyond the seed-compatible [`Analysis`].
#[derive(Debug, Clone, Default)]
pub(crate) struct EngineOutput {
    pub analysis: Analysis,
    pub load_time_accessed: BTreeMap<String, BTreeSet<String>>,
    pub module_bindings: BTreeMap<String, BTreeSet<String>>,
    pub lints: Vec<Lint>,
    pub hazard_modules: BTreeSet<String>,
    pub call_graph: CallGraph,
    pub reached_functions: BTreeSet<String>,
}

struct Scope {
    parent: Option<usize>,
    env: BTreeMap<String, OriginSet>,
}

struct FuncInfo {
    qualname: String,
    module: Option<String>,
    params: Vec<String>,
    body: Rc<Vec<Stmt>>,
    scope: usize,
    ret: OriginSet,
    unit: Option<usize>,
}

#[derive(Clone)]
struct Unit {
    node: CgNode,
    scope: usize,
    /// Defining module (`None` = the application).
    module: Option<String>,
    func: Option<FuncId>,
    body: Rc<Vec<Stmt>>,
}

struct Ctx {
    unit: usize,
    scope: usize,
    /// Qualified-name prefix for nested definitions.
    qual: String,
    /// Container-literal encounter counter (deterministic per walk).
    counter: usize,
}

impl Ctx {
    fn next_site(&mut self) -> SiteId {
        let site = (self.unit, self.counter);
        self.counter += 1;
        site
    }
}

const DYNAMIC_BUILTINS: [&str; 3] = ["getattr", "setattr", "hasattr"];

pub(crate) struct Engine<'a> {
    registry: &'a Registry,
    interprocedural: bool,
    scopes: Vec<Scope>,
    module_scopes: BTreeMap<String, usize>,
    funcs: Vec<FuncInfo>,
    func_ids: HashMap<(usize, String), FuncId>,
    class_scopes: HashMap<(usize, String), usize>,
    units: Vec<Unit>,
    seq_sites: HashMap<SiteId, Vec<OriginSet>>,
    map_sites: HashMap<SiteId, (BTreeMap<String, OriginSet>, OriginSet)>,
    /// `(scope, name)` pairs bound by import statements (rebinding lint).
    import_bound: BTreeSet<(usize, String)>,
    result: Analysis,
    load_time_accessed: BTreeMap<String, BTreeSet<String>>,
    written: BTreeSet<(String, String)>,
    used_by_app: BTreeSet<String>,
    lints: BTreeSet<Lint>,
    edges: BTreeSet<(CgNode, CgNode)>,
    dirty: bool,
}

pub(crate) fn run(
    program: &Program,
    registry: &Registry,
    mode: AnalysisMode,
    entry: Option<&str>,
) -> EngineOutput {
    let mut eng = Engine {
        registry,
        interprocedural: mode == AnalysisMode::Interprocedural,
        scopes: Vec::new(),
        module_scopes: BTreeMap::new(),
        funcs: Vec::new(),
        func_ids: HashMap::new(),
        class_scopes: HashMap::new(),
        units: Vec::new(),
        seq_sites: HashMap::new(),
        map_sites: HashMap::new(),
        import_bound: BTreeSet::new(),
        result: Analysis::default(),
        load_time_accessed: BTreeMap::new(),
        written: BTreeSet::new(),
        used_by_app: BTreeSet::new(),
        lints: BTreeSet::new(),
        edges: BTreeSet::new(),
        dirty: false,
    };
    let app_scope = eng.new_scope(None);
    eng.units.push(Unit {
        node: CgNode::AppTop,
        scope: app_scope,
        module: None,
        func: None,
        body: Rc::new(program.body.clone()),
    });

    // Monotone fixpoint: the round bound is a safety net only — growth of
    // the finite atom universe converges long before it.
    for _ in 0..64 {
        eng.dirty = false;
        let mut i = 0;
        while i < eng.units.len() {
            eng.walk_unit(i);
            i += 1;
        }
        if !eng.dirty {
            break;
        }
    }
    eng.finish(entry)
}

impl<'a> Engine<'a> {
    // -- infrastructure --------------------------------------------------

    fn new_scope(&mut self, parent: Option<usize>) -> usize {
        self.scopes.push(Scope {
            parent,
            env: BTreeMap::new(),
        });
        self.scopes.len() - 1
    }

    fn lookup(&self, scope: usize, name: &str) -> Option<OriginSet> {
        let mut cur = Some(scope);
        while let Some(id) = cur {
            if let Some(set) = self.scopes[id].env.get(name) {
                return Some(set.clone());
            }
            cur = self.scopes[id].parent;
        }
        None
    }

    fn bind(&mut self, scope: usize, name: &str, set: &OriginSet) {
        match self.scopes[scope].env.get_mut(name) {
            Some(existing) => {
                if join_into(existing, set) {
                    self.dirty = true;
                }
            }
            None => {
                self.scopes[scope].env.insert(name.to_owned(), set.clone());
                self.dirty = true;
            }
        }
    }

    fn is_app_unit(&self, unit: usize) -> bool {
        self.units[unit].module.is_none()
    }

    fn node_of(&self, unit: usize) -> CgNode {
        self.units[unit].node.clone()
    }

    fn lint(&mut self, severity: Severity, kind: LintKind) {
        self.lints.insert(Lint { severity, kind });
    }

    fn record_access(&mut self, ctx: &Ctx, module: &str, attr: &str) {
        if self
            .result
            .accessed
            .entry(module.to_owned())
            .or_default()
            .insert(attr.to_owned())
        {
            self.dirty = true;
        }
        if self.is_app_unit(ctx.unit) {
            self.used_by_app.insert(module.to_owned());
        }
        if matches!(
            self.units[ctx.unit].node,
            CgNode::AppTop | CgNode::ModuleTop(_)
        ) {
            self.load_time_accessed
                .entry(module.to_owned())
                .or_default()
                .insert(attr.to_owned());
        }
    }

    /// `import a.b.c` pulls in (and runs the top-level of) a, a.b and a.b.c.
    fn record_import(&mut self, ctx: &Ctx, dotted: &str) {
        let caller = self.node_of(ctx.unit);
        let mut prefix = String::new();
        for part in dotted.split('.') {
            if !prefix.is_empty() {
                prefix.push('.');
            }
            prefix.push_str(part);
            if self.result.imported_modules.insert(prefix.clone()) {
                self.dirty = true;
            }
            if self.registry.contains(&prefix) {
                self.edges
                    .insert((caller.clone(), CgNode::ModuleTop(prefix.clone())));
                self.ensure_module(&prefix);
            }
        }
        if self.is_app_unit(ctx.unit) {
            self.result.direct_imports.insert(dotted.to_owned());
        }
    }

    /// Create the scope + unit for a registry module's top-level body.
    fn ensure_module(&mut self, module: &str) {
        if !self.interprocedural
            || self.module_scopes.contains_key(module)
            || !self.registry.contains(module)
        {
            return;
        }
        let Ok(program) = self.registry.parse_module(module) else {
            return; // unparsable module: left opaque, DD handles it
        };
        let scope = self.new_scope(None);
        self.module_scopes.insert(module.to_owned(), scope);
        self.units.push(Unit {
            node: CgNode::ModuleTop(module.to_owned()),
            scope,
            module: Some(module.to_owned()),
            func: None,
            body: Rc::new(program.body.clone()),
        });
        self.dirty = true;
    }

    fn register_func(&mut self, ctx: &Ctx, f: &FuncDef) -> FuncId {
        let key = (ctx.scope, f.name.clone());
        if let Some(&id) = self.func_ids.get(&key) {
            return id;
        }
        let scope = self.new_scope(Some(ctx.scope));
        for p in &f.params {
            self.scopes[scope]
                .env
                .insert(p.name.clone(), OriginSet::new());
        }
        let qualname = if ctx.qual.is_empty() {
            f.name.clone()
        } else {
            format!("{}.{}", ctx.qual, f.name)
        };
        let id = self.funcs.len();
        self.funcs.push(FuncInfo {
            qualname,
            module: self.units[ctx.unit].module.clone(),
            params: f.params.iter().map(|p| p.name.clone()).collect(),
            body: Rc::new(f.body.clone()),
            scope,
            ret: OriginSet::new(),
            unit: None,
        });
        self.func_ids.insert(key, id);
        self.dirty = true;
        id
    }

    fn func_node(&self, id: FuncId) -> CgNode {
        match &self.funcs[id].module {
            None => CgNode::AppFunc(self.funcs[id].qualname.clone()),
            Some(m) => CgNode::LibFunc(m.clone(), self.funcs[id].qualname.clone()),
        }
    }

    /// Mark a function as possibly executed: enqueue its body as a unit.
    fn ensure_func_unit(&mut self, id: FuncId) {
        if self.funcs[id].unit.is_some() {
            return;
        }
        let info = &self.funcs[id];
        let unit = Unit {
            node: self.func_node(id),
            scope: info.scope,
            module: info.module.clone(),
            func: Some(id),
            body: info.body.clone(),
        };
        self.funcs[id].unit = Some(self.units.len());
        self.units.push(unit);
        self.dirty = true;
    }

    fn walk_unit(&mut self, unit: usize) {
        let u = self.units[unit].clone();
        let mut ctx = Ctx {
            unit,
            scope: u.scope,
            qual: u
                .func
                .map(|id| self.funcs[id].qualname.clone())
                .unwrap_or_default(),
            counter: 0,
        };
        for stmt in u.body.iter() {
            self.walk_stmt(&mut ctx, stmt);
        }
    }

    // -- statements ------------------------------------------------------

    fn walk_block(&mut self, ctx: &mut Ctx, body: &[Stmt]) {
        for stmt in body {
            self.walk_stmt(ctx, stmt);
        }
    }

    fn walk_stmt(&mut self, ctx: &mut Ctx, stmt: &Stmt) {
        match stmt {
            Stmt::Import { items } => {
                for item in items {
                    self.record_import(ctx, &item.module);
                    let (bound, target) = match &item.alias {
                        Some(alias) => (alias.clone(), item.module.clone()),
                        None => {
                            let top = item
                                .module
                                .split('.')
                                .next()
                                .expect("nonempty module path")
                                .to_owned();
                            (top.clone(), top)
                        }
                    };
                    let set: OriginSet = [Origin::Module(target)].into_iter().collect();
                    self.bind(ctx.scope, &bound, &set);
                    self.import_bound.insert((ctx.scope, bound));
                }
            }
            Stmt::FromImport { module, names } => {
                self.record_import(ctx, module);
                for (name, alias) in names {
                    if name == "*" {
                        self.star_import(ctx, module);
                        continue;
                    }
                    let bound = alias.as_deref().unwrap_or(name).to_owned();
                    let submodule = format!("{module}.{name}");
                    if self.registry.contains(&submodule) {
                        self.record_import(ctx, &submodule);
                        // Importing a submodule via `from` counts as access.
                        self.record_access(ctx, module, name);
                        let set: OriginSet = [Origin::Module(submodule)].into_iter().collect();
                        self.bind(ctx.scope, &bound, &set);
                    } else {
                        let mut set: OriginSet = [Origin::Attr(module.clone(), name.clone())]
                            .into_iter()
                            .collect();
                        if let Some(&ms) = self.module_scopes.get(module) {
                            if let Some(b) = self.scopes[ms].env.get(name) {
                                set.extend(b.iter().cloned());
                            }
                        }
                        // Inside a library module the import itself executes
                        // on load, so the attribute is definitely read. App
                        // from-imports stay lazy (§6.2): an unused name must
                        // remain trimmable by DD.
                        if !self.is_app_unit(ctx.unit) {
                            self.record_access(ctx, module, name);
                        }
                        self.bind(ctx.scope, &bound, &set);
                    }
                    self.import_bound.insert((ctx.scope, bound));
                }
            }
            Stmt::Assign { targets, value } => {
                let vset = self.resolve(ctx, value);
                for t in targets {
                    self.assign_target(ctx, t, &vset);
                }
            }
            Stmt::AugAssign { target, value, .. } => {
                self.resolve(ctx, target);
                self.resolve(ctx, value);
            }
            Stmt::Expr(e) | Stmt::Raise(Some(e)) | Stmt::Del(e) => {
                self.resolve(ctx, e);
            }
            Stmt::Raise(None) | Stmt::Pass | Stmt::Break | Stmt::Continue | Stmt::Global(_) => {}
            Stmt::Return(e) => {
                let set = match e {
                    Some(e) => self.resolve(ctx, e),
                    None => OriginSet::new(),
                };
                if let Some(id) = self.units[ctx.unit].func {
                    if join_into(&mut self.funcs[id].ret, &set) {
                        self.dirty = true;
                    }
                }
            }
            Stmt::If { branches, orelse } => {
                for (test, body) in branches {
                    self.resolve(ctx, test);
                    self.walk_block(ctx, body);
                }
                self.walk_block(ctx, orelse);
            }
            Stmt::While { test, body } => {
                self.resolve(ctx, test);
                self.walk_block(ctx, body);
            }
            Stmt::For {
                targets,
                iter,
                body,
            } => {
                let iset = self.resolve(ctx, iter);
                let elems = self.element_union(&iset);
                if let [single] = targets.as_slice() {
                    self.bind(ctx.scope, single, &elems);
                } else {
                    for t in targets {
                        self.bind(ctx.scope, t, &OriginSet::new());
                    }
                }
                self.walk_block(ctx, body);
            }
            Stmt::FuncDef(f) => {
                let defaults: Vec<OriginSet> = f
                    .params
                    .iter()
                    .map(|p| match &p.default {
                        Some(d) => self.resolve(ctx, d),
                        None => OriginSet::new(),
                    })
                    .collect();
                let id = self.register_func(ctx, f);
                let fscope = self.funcs[id].scope;
                for (p, dset) in f.params.iter().zip(&defaults) {
                    self.bind(fscope, &p.name, dset);
                }
                let set: OriginSet = [Origin::Func(id)].into_iter().collect();
                self.bind(ctx.scope, &f.name, &set);
                // Every app-defined function is assumed reachable (handler
                // and helpers). Library functions wait for a call site.
                if self.is_app_unit(ctx.unit) {
                    self.ensure_func_unit(id);
                }
            }
            Stmt::ClassDef(c) => {
                for base in &c.bases {
                    self.resolve_dotted_name(ctx, base);
                }
                let class_scope = match self.class_scopes.get(&(ctx.scope, c.name.clone())) {
                    Some(&s) => s,
                    None => {
                        let s = self.new_scope(Some(ctx.scope));
                        self.class_scopes.insert((ctx.scope, c.name.clone()), s);
                        s
                    }
                };
                let saved_scope = ctx.scope;
                let saved_qual = ctx.qual.clone();
                ctx.scope = class_scope;
                ctx.qual = if saved_qual.is_empty() {
                    c.name.clone()
                } else {
                    format!("{saved_qual}.{}", c.name)
                };
                self.walk_block(ctx, &c.body);
                ctx.scope = saved_scope;
                ctx.qual = saved_qual;
                self.bind(ctx.scope, &c.name, &OriginSet::new());
            }
            Stmt::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                self.walk_block(ctx, body);
                for h in handlers {
                    if let Some(n) = &h.name {
                        self.bind(ctx.scope, n, &OriginSet::new());
                    }
                    self.walk_block(ctx, &h.body);
                }
                self.walk_block(ctx, orelse);
                self.walk_block(ctx, finalbody);
            }
            Stmt::Assert { test, msg } => {
                self.resolve(ctx, test);
                if let Some(m) = msg {
                    self.resolve(ctx, m);
                }
            }
        }
    }

    fn assign_target(&mut self, ctx: &mut Ctx, target: &Expr, vset: &OriginSet) {
        match target {
            Expr::Name(n) => {
                // Rebinding an import-bound name hides later accesses.
                if self.import_bound.contains(&(ctx.scope, n.clone())) {
                    let old = self.scopes[ctx.scope]
                        .env
                        .get(n)
                        .cloned()
                        .unwrap_or_default();
                    for atom in &old {
                        if let Origin::Module(m) = atom {
                            if !vset.contains(atom) {
                                self.lint(
                                    Severity::Hazard,
                                    LintKind::ModuleRebinding {
                                        name: n.clone(),
                                        module: m.clone(),
                                    },
                                );
                            }
                        }
                    }
                }
                self.bind(ctx.scope, n, vset);
            }
            Expr::Tuple(ts) | Expr::List(ts) => {
                // Element-wise unpacking when the value is a single literal
                // sequence of matching arity.
                let elems: Option<Vec<OriginSet>> = match vset.iter().collect::<Vec<_>>()[..] {
                    [Origin::Seq(site)] => self
                        .seq_sites
                        .get(site)
                        .filter(|e| e.len() == ts.len())
                        .cloned(),
                    _ => None,
                };
                for (i, sub) in ts.iter().enumerate() {
                    let s = elems.as_ref().map(|e| e[i].clone()).unwrap_or_default();
                    self.assign_target(ctx, sub, &s);
                }
            }
            Expr::Attribute { value, attr } => {
                let base = self.resolve(ctx, value);
                for atom in &base {
                    if let Origin::Module(m) = atom {
                        let m = m.clone();
                        // A write both counts as an access (the binding must
                        // survive trimming) and defines the attribute.
                        self.record_access(ctx, &m, attr);
                        self.written.insert((m, attr.clone()));
                    }
                }
            }
            other => {
                self.resolve(ctx, other);
            }
        }
    }

    fn star_import(&mut self, ctx: &mut Ctx, module: &str) {
        self.lint(
            Severity::Hazard,
            LintKind::StarImport {
                module: module.to_owned(),
            },
        );
        if let Some(&ms) = self.module_scopes.get(module) {
            let entries: Vec<(String, OriginSet)> = self.scopes[ms]
                .env
                .iter()
                .filter(|(n, _)| !n.starts_with('_'))
                .map(|(n, s)| (n.clone(), s.clone()))
                .collect();
            for (name, mut set) in entries {
                self.record_access(ctx, module, &name);
                set.insert(Origin::Attr(module.to_owned(), name.clone()));
                self.bind(ctx.scope, &name, &set);
            }
        }
    }

    /// Resolve a dotted textual reference (ClassDef bases are stored as
    /// strings, so `class Net(nn.Module)` must be split and resolved like
    /// the expression `nn.Module`).
    fn resolve_dotted_name(&mut self, ctx: &mut Ctx, dotted: &str) -> OriginSet {
        let mut parts = dotted.split('.');
        let first = match parts.next() {
            Some(p) if !p.is_empty() => p,
            _ => return OriginSet::new(),
        };
        let mut expr = Expr::Name(first.to_owned());
        for part in parts {
            expr = Expr::Attribute {
                value: Box::new(expr),
                attr: part.to_owned(),
            };
        }
        self.resolve(ctx, &expr)
    }

    // -- expressions -----------------------------------------------------

    /// Union of a value's sequence elements / mapping values (for-loop and
    /// unknown-index views).
    fn element_union(&self, set: &OriginSet) -> OriginSet {
        let mut out = OriginSet::new();
        for atom in set {
            match atom {
                Origin::Seq(site) => {
                    if let Some(elems) = self.seq_sites.get(site) {
                        for e in elems {
                            out.extend(e.iter().cloned());
                        }
                    }
                }
                Origin::Map(_) => {} // iterating a dict yields string keys
                _ => {}
            }
        }
        out
    }

    fn resolve(&mut self, ctx: &mut Ctx, e: &Expr) -> OriginSet {
        match e {
            Expr::Name(n) => {
                let set = self.lookup(ctx.scope, n).unwrap_or_default();
                for atom in &set {
                    match atom {
                        Origin::Attr(m, a) => {
                            // Using a from-imported name is a definite access.
                            let (m, a) = (m.clone(), a.clone());
                            self.record_access(ctx, &m, &a);
                        }
                        Origin::Module(m) if self.is_app_unit(ctx.unit) => {
                            self.used_by_app.insert(m.clone());
                        }
                        _ => {}
                    }
                }
                set
            }
            Expr::Attribute { value, attr } => {
                let base = self.resolve(ctx, value);
                let mut out = OriginSet::new();
                for atom in &base {
                    if let Origin::Module(m) = atom {
                        let m = m.clone();
                        self.record_access(ctx, &m, attr);
                        let sub = format!("{m}.{attr}");
                        if self.registry.contains(&sub) {
                            out.insert(Origin::Module(sub));
                        } else if let Some(binding) = self
                            .module_scopes
                            .get(&m)
                            .and_then(|&ms| self.scopes[ms].env.get(attr))
                            .cloned()
                        {
                            // Reading a re-exported name reads through to
                            // its source module as well.
                            for b in &binding {
                                if let Origin::Attr(m2, a2) = b {
                                    let (m2, a2) = (m2.clone(), a2.clone());
                                    self.record_access(ctx, &m2, &a2);
                                }
                            }
                            out.extend(binding);
                        } else {
                            out.insert(Origin::Attr(m, attr.clone()));
                        }
                    }
                }
                out
            }
            Expr::Call { func, args, kwargs } => {
                if let Expr::Name(fname) = &**func {
                    if DYNAMIC_BUILTINS.contains(&fname.as_str())
                        && self.lookup(ctx.scope, fname).is_none()
                    {
                        return self.dynamic_access(ctx, args, kwargs);
                    }
                }
                let fset = self.resolve(ctx, func);
                let argsets: Vec<OriginSet> = args.iter().map(|a| self.resolve(ctx, a)).collect();
                let kwsets: Vec<(String, OriginSet)> = kwargs
                    .iter()
                    .map(|(k, v)| (k.clone(), self.resolve(ctx, v)))
                    .collect();
                let caller = self.node_of(ctx.unit);
                let mut out = OriginSet::new();
                for atom in &fset {
                    match atom {
                        Origin::Func(id) => {
                            let id = *id;
                            self.edges.insert((caller.clone(), self.func_node(id)));
                            self.ensure_func_unit(id);
                            let fscope = self.funcs[id].scope;
                            let params = self.funcs[id].params.clone();
                            for (i, aset) in argsets.iter().enumerate() {
                                if let Some(p) = params.get(i) {
                                    let p = p.clone();
                                    self.bind(fscope, &p, aset);
                                }
                            }
                            for (k, kset) in &kwsets {
                                if params.iter().any(|p| p == k) {
                                    self.bind(fscope, k, kset);
                                }
                            }
                            out.extend(self.funcs[id].ret.iter().cloned());
                        }
                        Origin::Attr(m, a) => {
                            self.edges
                                .insert((caller.clone(), CgNode::ModuleAttr(m.clone(), a.clone())));
                        }
                        _ => {}
                    }
                }
                out
            }
            Expr::Subscript { value, index } => {
                let vset = self.resolve(ctx, value);
                self.resolve(ctx, index);
                let mut out = OriginSet::new();
                for atom in &vset {
                    match atom {
                        Origin::Seq(site) => {
                            if let Some(elems) = self.seq_sites.get(site) {
                                match &**index {
                                    Expr::Int(i) if *i >= 0 && (*i as usize) < elems.len() => {
                                        out.extend(elems[*i as usize].iter().cloned());
                                    }
                                    _ => {
                                        for e in elems {
                                            out.extend(e.iter().cloned());
                                        }
                                    }
                                }
                            }
                        }
                        Origin::Map(site) => {
                            if let Some((entries, unknown)) = self.map_sites.get(site) {
                                match &**index {
                                    Expr::Str(k) => {
                                        if let Some(s) = entries.get(k) {
                                            out.extend(s.iter().cloned());
                                        }
                                        out.extend(unknown.iter().cloned());
                                    }
                                    _ => {
                                        for s in entries.values() {
                                            out.extend(s.iter().cloned());
                                        }
                                        out.extend(unknown.iter().cloned());
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
                out
            }
            Expr::List(items) | Expr::Tuple(items) => {
                let site = ctx.next_site();
                let sets: Vec<OriginSet> = items.iter().map(|i| self.resolve(ctx, i)).collect();
                let slot = self
                    .seq_sites
                    .entry(site)
                    .or_insert_with(|| vec![OriginSet::new(); sets.len()]);
                let mut grew = false;
                for (s, existing) in sets.iter().zip(slot.iter_mut()) {
                    grew |= join_into(existing, s);
                }
                if grew {
                    self.dirty = true;
                }
                [Origin::Seq(site)].into_iter().collect()
            }
            Expr::Dict(pairs) => {
                let site = ctx.next_site();
                let mut resolved: Vec<(Option<String>, OriginSet)> = Vec::new();
                for (k, v) in pairs {
                    self.resolve(ctx, k);
                    let key = match k {
                        Expr::Str(s) => Some(s.clone()),
                        _ => None,
                    };
                    let vset = self.resolve(ctx, v);
                    resolved.push((key, vset));
                }
                let slot = self.map_sites.entry(site).or_default();
                let mut grew = false;
                for (key, vset) in resolved {
                    let target = match key {
                        Some(k) => slot.0.entry(k).or_default(),
                        None => &mut slot.1,
                    };
                    grew |= join_into(target, &vset);
                }
                if grew {
                    self.dirty = true;
                }
                [Origin::Map(site)].into_iter().collect()
            }
            Expr::Unary { operand, .. } => {
                self.resolve(ctx, operand);
                OriginSet::new()
            }
            Expr::Binary { left, right, .. } => {
                self.resolve(ctx, left);
                self.resolve(ctx, right);
                OriginSet::new()
            }
            Expr::Bool { values, .. } => {
                // `a or b` / `a and b` evaluate to one of the operands.
                let mut out = OriginSet::new();
                for v in values {
                    out.extend(self.resolve(ctx, v));
                }
                out
            }
            Expr::Compare { left, ops } => {
                self.resolve(ctx, left);
                for (_, v) in ops {
                    self.resolve(ctx, v);
                }
                OriginSet::new()
            }
            Expr::Conditional { test, body, orelse } => {
                self.resolve(ctx, test);
                // Conditional join: the result may be either branch's value.
                let mut out = self.resolve(ctx, body);
                out.extend(self.resolve(ctx, orelse));
                out
            }
            Expr::ListComp {
                element,
                targets,
                iter,
                cond,
            } => {
                let iset = self.resolve(ctx, iter);
                let elems = self.element_union(&iset);
                if let [single] = targets.as_slice() {
                    self.bind(ctx.scope, single, &elems);
                } else {
                    for t in targets {
                        self.bind(ctx.scope, t, &OriginSet::new());
                    }
                }
                self.resolve(ctx, element);
                if let Some(c) = cond {
                    self.resolve(ctx, c);
                }
                OriginSet::new()
            }
            Expr::Slice { value, start, stop } => {
                self.resolve(ctx, value);
                if let Some(e) = start {
                    self.resolve(ctx, e);
                }
                if let Some(e) = stop {
                    self.resolve(ctx, e);
                }
                OriginSet::new()
            }
            _ => OriginSet::new(),
        }
    }

    /// `getattr`/`setattr`/`hasattr` handling. Literal attribute names are
    /// reported but deliberately *not* recorded as accesses: resolving them
    /// would force-keep rarely-used attributes that DD should trim and the
    /// §5.4 runtime fallback should serve. Non-literal names make the
    /// target module's accessed set unknowable — a debloating hazard.
    fn dynamic_access(
        &mut self,
        ctx: &mut Ctx,
        args: &[Expr],
        kwargs: &[(String, Expr)],
    ) -> OriginSet {
        let target = match args.first() {
            Some(a) => self.resolve(ctx, a),
            None => OriginSet::new(),
        };
        let literal = match args.get(1) {
            Some(Expr::Str(s)) => Some(s.clone()),
            Some(other) => {
                self.resolve(ctx, other);
                None
            }
            None => None,
        };
        for a in args.iter().skip(2) {
            self.resolve(ctx, a);
        }
        for (_, v) in kwargs {
            self.resolve(ctx, v);
        }
        let modules: Vec<String> = target
            .iter()
            .filter_map(|a| match a {
                Origin::Module(m) => Some(m.clone()),
                _ => None,
            })
            .collect();
        match literal {
            Some(attr) => {
                if modules.is_empty() {
                    self.lint(
                        Severity::Info,
                        LintKind::DynamicAttrAccess { module: None, attr },
                    );
                } else {
                    for m in modules {
                        self.lint(
                            Severity::Info,
                            LintKind::DynamicAttrAccess {
                                module: Some(m),
                                attr: attr.clone(),
                            },
                        );
                    }
                }
            }
            None => {
                if modules.is_empty() {
                    self.lint(
                        Severity::Warning,
                        LintKind::OpaqueAttrAccess { module: None },
                    );
                } else {
                    for m in modules {
                        self.lint(
                            Severity::Hazard,
                            LintKind::OpaqueAttrAccess { module: Some(m) },
                        );
                    }
                }
            }
        }
        OriginSet::new()
    }

    // -- finalization ----------------------------------------------------

    fn finish(mut self, entry: Option<&str>) -> EngineOutput {
        // Unused app imports.
        for d in self.result.direct_imports.clone() {
            let prefix = format!("{d}.");
            let used = self.used_by_app.contains(&d)
                || self.used_by_app.iter().any(|u| u.starts_with(&prefix));
            if !used {
                self.lint(Severity::Warning, LintKind::UnusedImport { module: d });
            }
        }
        // Accesses to attributes no statement of the module binds.
        let pairs: Vec<(String, String)> = self
            .result
            .accessed
            .iter()
            .flat_map(|(m, attrs)| attrs.iter().map(move |a| (m.clone(), a.clone())))
            .collect();
        for (m, a) in pairs {
            let Some(&ms) = self.module_scopes.get(&m) else {
                continue;
            };
            if !self.scopes[ms].env.contains_key(&a)
                && !self.registry.contains(&format!("{m}.{a}"))
                && !self.written.contains(&(m.clone(), a.clone()))
            {
                self.lint(
                    Severity::Warning,
                    LintKind::NonexistentAttr { module: m, attr: a },
                );
            }
        }

        let hazard_modules: BTreeSet<String> = self
            .lints
            .iter()
            .filter(|l| l.severity == Severity::Hazard)
            .filter_map(|l| l.implicated_module().map(str::to_owned))
            .filter(|m| self.registry.contains(m))
            .collect();

        let mut call_graph = CallGraph {
            edges: std::mem::take(&mut self.edges),
            reachable: BTreeSet::new(),
        };
        let mut roots = vec![CgNode::AppTop];
        match entry {
            Some(name) => roots.push(CgNode::AppFunc(name.to_owned())),
            None => {
                for f in &self.funcs {
                    if f.module.is_none() {
                        roots.push(CgNode::AppFunc(f.qualname.clone()));
                    }
                }
            }
        }
        call_graph.recompute(roots);

        let module_bindings: BTreeMap<String, BTreeSet<String>> = self
            .module_scopes
            .iter()
            .map(|(m, &s)| (m.clone(), self.scopes[s].env.keys().cloned().collect()))
            .collect();
        let reached_functions: BTreeSet<String> = self
            .funcs
            .iter()
            .enumerate()
            .filter(|(_, f)| f.unit.is_some())
            .map(|(i, _)| self.func_node(i).to_string())
            .collect();

        EngineOutput {
            analysis: self.result,
            load_time_accessed: self.load_time_accessed,
            module_bindings,
            lints: self.lints.into_iter().collect(),
            hazard_modules,
            call_graph,
            reached_functions,
        }
    }
}
