//! Cross-run cache of analysis runs, keyed by application fingerprint and
//! validated by registry content fingerprints.
//!
//! A [`SummaryCache`] remembers, per `(app, mode, entry)` key, the complete
//! converged state of the last analysis run against some registry state:
//! every shard (scopes, function tables, probe logs, cached per-shard
//! outputs) plus the merged result. On the next run:
//!
//! * identical registry fingerprint → the merged output is returned as-is
//!   (this also collapses the pipeline's report-then-trim double fixpoint
//!   into one);
//! * changed fingerprint → only modules whose content fingerprint changed,
//!   shards whose recorded registry probes flip, and their reverse-dependency
//!   cone are re-analyzed from scratch; every other shard is reused via
//!   `Arc` and deep-cloned only if message growth actually reaches it
//!   (see DESIGN.md §9 for why this is exact).
//!
//! The cache is `Send + Sync` and is shared through `DebloatOptions`
//! alongside the probe cache, so retrims and `analysis_probes` comparisons
//! reuse summaries across pipeline stages.

use crate::engine::worklist::Shard;
use crate::engine::EngineOutput;
use crate::AnalysisMode;
use pylite::{unparse, Interner, Program};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Cache key: everything that determines a run's result besides the
/// registry contents (which are diffed, not keyed).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct SummaryKey {
    /// Fingerprint of the application source (via `unparse`).
    pub app_fp: u64,
    /// Analysis coverage mode.
    pub mode: AnalysisMode,
    /// Entry-point option (affects call-graph roots).
    pub entry: Option<String>,
}

/// The complete retained state of one analysis run.
pub(crate) struct CachedRun {
    /// Fingerprint of the registry the run converged against.
    pub registry_fp: u64,
    /// The symbol family the shards' state is expressed in. A registry
    /// from a different interner family forces a cold run: symbol ids
    /// would not line up.
    pub interner: Arc<Interner>,
    /// Per-module content fingerprints at the time of the run.
    pub module_fps: BTreeMap<String, u64>,
    /// Converged shard states (app first, then modules sorted by name).
    pub shards: Vec<Arc<Shard>>,
    /// The merged engine output (behind `Arc`: cache lookups and hits must
    /// not deep-copy the whole result).
    pub output: Arc<EngineOutput>,
}

/// Shared, thread-safe cache of analysis summaries (see module docs).
pub struct SummaryCache {
    runs: RwLock<HashMap<SummaryKey, Arc<CachedRun>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    incremental: AtomicU64,
}

impl SummaryCache {
    /// An empty cache.
    pub fn new() -> Self {
        SummaryCache {
            runs: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            incremental: AtomicU64::new(0),
        }
    }

    /// An empty cache behind an `Arc`, ready to share across stages.
    pub fn shared() -> Arc<SummaryCache> {
        Arc::new(SummaryCache::new())
    }

    /// Runs answered entirely from cache (identical registry fingerprint).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cold runs (no usable cached state).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Incremental runs (cached state partially reused).
    pub fn incremental_runs(&self) -> u64 {
        self.incremental.load(Ordering::Relaxed)
    }

    /// Number of cached `(app, mode, entry)` entries.
    pub fn len(&self) -> usize {
        self.runs.read().expect("summary cache poisoned").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn lookup(&self, key: &SummaryKey) -> Option<Arc<CachedRun>> {
        self.runs
            .read()
            .expect("summary cache poisoned")
            .get(key)
            .cloned()
    }

    pub(crate) fn store(&self, key: SummaryKey, run: CachedRun) {
        self.runs
            .write()
            .expect("summary cache poisoned")
            .insert(key, Arc::new(run));
    }

    pub(crate) fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_incremental(&self) {
        self.incremental.fetch_add(1, Ordering::Relaxed);
    }
}

impl Default for SummaryCache {
    fn default() -> Self {
        SummaryCache::new()
    }
}

impl fmt::Debug for SummaryCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SummaryCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("incremental", &self.incremental_runs())
            .finish()
    }
}

/// Stable FNV-1a fingerprint of the application source, via `unparse` so
/// that formatting-identical programs share summaries.
pub(crate) fn app_fingerprint(program: &Program) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in unparse(program).as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}
