//! # trim-profiler — the serverless cost profiler (§5.2)
//!
//! λ-trim's profiler measures, per imported module, the *marginal* import
//! time `t` and memory footprint `m` — the delta in total import time `T`
//! and total memory `M` before and after the module body executes, exactly
//! as the paper measures by patching Python's module loader. pylite records
//! those deltas natively as [`pylite::ImportEvent`]s; this crate turns them
//! into a [`Profile`] and ranks modules by one of four scoring methods
//! (§8.2's ablation):
//!
//! * **Combined** — the paper's marginal monetary cost, Equation (2):
//!   `TM − (T−t)(M−m)`;
//! * **Time** — marginal import time only;
//! * **Memory** — marginal memory only;
//! * **Random** — seeded random scores (the ablation baseline).
//!
//! The top-K ranked modules are what the debloater probes (§5.3).

#![warn(missing_docs)]

use pylite::{Interpreter, PyErr, Registry};
use trim_rng::Rng;

/// Marginal cost of importing one module.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleCost {
    /// Dotted module name.
    pub module: String,
    /// Import nesting depth (0 = imported directly by the application).
    pub depth: usize,
    /// Marginal import time in seconds (inclusive of submodules, §5.2).
    pub time_secs: f64,
    /// Marginal memory in MB (inclusive of submodules).
    pub mem_mb: f64,
}

/// The profile of one application's Function Initialization phase.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    /// Per-module marginal costs, in first-load order.
    pub modules: Vec<ModuleCost>,
    /// Total Function Initialization time in seconds (the whole init run).
    pub total_time_secs: f64,
    /// Total memory footprint after initialization, in MB.
    pub total_mem_mb: f64,
}

impl Profile {
    /// `T`: the sum of marginal import times over the application's direct
    /// (depth-0) imports, in seconds.
    pub fn t_sum(&self) -> f64 {
        self.modules
            .iter()
            .filter(|m| m.depth == 0)
            .map(|m| m.time_secs)
            .sum()
    }

    /// `M`: the sum of marginal memory over direct imports, in MB.
    pub fn m_sum(&self) -> f64 {
        self.modules
            .iter()
            .filter(|m| m.depth == 0)
            .map(|m| m.mem_mb)
            .sum()
    }

    /// Look up a module's cost.
    pub fn module(&self, name: &str) -> Option<&ModuleCost> {
        self.modules.iter().find(|m| m.module == name)
    }
}

/// Run the application's initialization code in a **fresh, isolated
/// interpreter** (§7's module isolation: a new "address space" per profiling
/// run, so no module cache pollution) and collect per-module marginal costs.
///
/// # Errors
///
/// Propagates any pylite exception the initialization code raises.
pub fn profile_app(app_source: &str, registry: &Registry) -> Result<Profile, PyErr> {
    let mut interp = Interpreter::new(registry.clone());
    interp.exec_main(app_source)?;
    Ok(profile_from_interpreter(&interp))
}

/// Build a [`Profile`] from an interpreter that already ran initialization.
pub fn profile_from_interpreter(interp: &Interpreter) -> Profile {
    let modules = interp
        .import_events
        .iter()
        .map(|e| ModuleCost {
            module: e.module.clone(),
            depth: e.depth,
            time_secs: e.time_ns as f64 / 1e9,
            mem_mb: e.mem_bytes as f64 / (1024.0 * 1024.0),
        })
        .collect();
    Profile {
        modules,
        total_time_secs: interp.meter.clock_secs(),
        total_mem_mb: interp.meter.mem_mb(),
    }
}

/// Module-ranking strategies for the profiler (§8.2 ablation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoringMethod {
    /// Rank by marginal import time.
    Time,
    /// Rank by marginal memory footprint.
    Memory,
    /// Rank by marginal monetary cost — Equation (2): `TM − (T−t)(M−m)`.
    Combined,
    /// Rank by a seeded uniform random score in `[0, 1]`.
    Random {
        /// RNG seed (keeps the ablation deterministic).
        seed: u64,
    },
}

impl ScoringMethod {
    /// Short name for harness output.
    pub fn name(&self) -> &'static str {
        match self {
            ScoringMethod::Time => "time",
            ScoringMethod::Memory => "memory",
            ScoringMethod::Combined => "combined",
            ScoringMethod::Random { .. } => "random",
        }
    }
}

/// A module with its profiler score.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedModule {
    /// Dotted module name.
    pub module: String,
    /// Score under the chosen method (higher = debloat first).
    pub score: f64,
}

/// The marginal monetary cost of Equation (2), in (seconds × MB) units.
///
/// `t`/`m` are the module's marginal time/memory; `total_t`/`total_m` the
/// sums over all imported modules.
pub fn marginal_monetary_cost(t: f64, m: f64, total_t: f64, total_m: f64) -> f64 {
    total_t * total_m - (total_t - t) * (total_m - m)
}

/// Score and rank all profiled modules, highest score first. Ties break by
/// first-load order (stable), keeping results deterministic.
pub fn rank_modules(profile: &Profile, method: ScoringMethod) -> Vec<RankedModule> {
    let total_t = profile.t_sum();
    let total_m = profile.m_sum();
    let mut rng = match method {
        ScoringMethod::Random { seed } => Some(Rng::seed_from_u64(seed)),
        _ => None,
    };
    let mut ranked: Vec<RankedModule> = profile
        .modules
        .iter()
        .map(|mc| {
            let score = match method {
                ScoringMethod::Time => mc.time_secs,
                ScoringMethod::Memory => mc.mem_mb,
                ScoringMethod::Combined => {
                    marginal_monetary_cost(mc.time_secs, mc.mem_mb, total_t, total_m)
                }
                ScoringMethod::Random { .. } => rng.as_mut().expect("rng for random scoring").f64(),
            };
            RankedModule {
                module: mc.module.clone(),
                score,
            }
        })
        .collect();
    ranked.sort_by(|a, b| b.score.total_cmp(&a.score));
    ranked
}

/// The top-K modules to debloat (§5.2). `k = 20` is the paper's default.
pub fn top_k(profile: &Profile, method: ScoringMethod, k: usize) -> Vec<String> {
    rank_modules(profile, method)
        .into_iter()
        .take(k)
        .map(|r| r.module)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Registry {
        let mut r = Registry::new();
        // "slowlib": slow but light — the §5.2 pathological case.
        r.set_module("slowlib", "__lt_work__(500)\nx = 1\n");
        // "fatlib": fast but heavy.
        r.set_module("fatlib", "__lt_alloc__(200)\ny = 2\n");
        // "biglib": slow AND heavy — the one Combined must rank first.
        r.set_module("biglib", "__lt_work__(400)\n__lt_alloc__(150)\nz = 3\n");
        // "tiny": negligible.
        r.set_module("tiny", "w = 4\n");
        r
    }

    const APP: &str = "import slowlib\nimport fatlib\nimport biglib\nimport tiny\n";

    #[test]
    fn profile_measures_marginal_costs() {
        let p = profile_app(APP, &corpus()).unwrap();
        assert_eq!(p.modules.len(), 4);
        let slow = p.module("slowlib").unwrap();
        let fat = p.module("fatlib").unwrap();
        assert!(slow.time_secs >= 0.5);
        assert!(slow.mem_mb < 1.0);
        assert!(fat.mem_mb >= 200.0);
        assert!(fat.time_secs < 0.1);
    }

    #[test]
    fn totals_cover_direct_imports() {
        let p = profile_app(APP, &corpus()).unwrap();
        assert!(p.t_sum() >= 0.9, "slowlib + biglib work");
        assert!(p.m_sum() >= 350.0, "fatlib + biglib allocations");
        assert!(p.total_time_secs >= p.t_sum());
        assert!(p.total_mem_mb >= p.m_sum());
    }

    #[test]
    fn time_scoring_prefers_slow_modules() {
        let p = profile_app(APP, &corpus()).unwrap();
        let ranked = rank_modules(&p, ScoringMethod::Time);
        assert_eq!(ranked[0].module, "slowlib");
    }

    #[test]
    fn memory_scoring_prefers_fat_modules() {
        let p = profile_app(APP, &corpus()).unwrap();
        let ranked = rank_modules(&p, ScoringMethod::Memory);
        assert_eq!(ranked[0].module, "fatlib");
    }

    #[test]
    fn combined_scoring_prefers_slow_and_heavy() {
        let p = profile_app(APP, &corpus()).unwrap();
        let ranked = rank_modules(&p, ScoringMethod::Combined);
        assert_eq!(
            ranked[0].module, "biglib",
            "Equation (2) rewards joint time+memory impact"
        );
    }

    #[test]
    fn random_scoring_is_deterministic_per_seed() {
        let p = profile_app(APP, &corpus()).unwrap();
        let a = rank_modules(&p, ScoringMethod::Random { seed: 42 });
        let b = rank_modules(&p, ScoringMethod::Random { seed: 42 });
        assert_eq!(a, b);
    }

    #[test]
    fn top_k_truncates() {
        let p = profile_app(APP, &corpus()).unwrap();
        assert_eq!(top_k(&p, ScoringMethod::Combined, 2).len(), 2);
        assert_eq!(top_k(&p, ScoringMethod::Combined, 100).len(), 4);
    }

    #[test]
    fn equation_two_reduces_to_products() {
        // With a single module, marginal cost = T*M exactly.
        let c = marginal_monetary_cost(2.0, 3.0, 2.0, 3.0);
        assert!((c - 6.0).abs() < 1e-12);
        // Removing a zero-cost module is worth nothing.
        assert_eq!(marginal_monetary_cost(0.0, 0.0, 5.0, 7.0), 0.0);
    }

    #[test]
    fn equation_two_beats_single_axis_strawmen() {
        // The §5.2 strawman: a slow-but-memoryless module should rank below
        // a module with joint impact under Combined.
        let total_t = 10.0;
        let total_m = 100.0;
        let slow_no_mem = marginal_monetary_cost(5.0, 0.0, total_t, total_m);
        let joint = marginal_monetary_cost(3.0, 40.0, total_t, total_m);
        assert!(joint > slow_no_mem);
    }

    #[test]
    fn profile_includes_nested_modules() {
        let mut r = corpus();
        r.set_module("wrapper", "import biglib\n");
        let p = profile_app("import wrapper\n", &r).unwrap();
        let nested = p.module("biglib").unwrap();
        assert_eq!(nested.depth, 1);
        let wrapper = p.module("wrapper").unwrap();
        assert_eq!(wrapper.depth, 0);
        assert!(wrapper.time_secs >= nested.time_secs);
    }

    #[test]
    fn profiling_failed_app_propagates_error() {
        let r = corpus();
        assert!(profile_app("import does_not_exist\n", &r).is_err());
    }

    #[test]
    fn isolation_between_profile_runs() {
        // Two consecutive profiles of the same app see identical costs —
        // no module cache leaks across runs (§7 module isolation).
        let r = corpus();
        let a = profile_app(APP, &r).unwrap();
        let b = profile_app(APP, &r).unwrap();
        assert_eq!(a, b);
    }
}
