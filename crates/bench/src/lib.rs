//! # trim-bench — experiment harness and benchmarks
//!
//! Hosts the shared [`harness`] used by the `experiments` binary (which
//! regenerates every table and figure of the paper, see `DESIGN.md` §3)
//! and the [`micro`] harness used by the benches under `benches/`.

#![warn(missing_docs)]

pub mod harness;
pub mod micro;
pub mod probe_cost;
