//! # trim-bench — experiment harness and benchmarks
//!
//! Hosts the shared [`harness`] used by the `experiments` binary (which
//! regenerates every table and figure of the paper, see `DESIGN.md` §3)
//! and by the Criterion benches under `benches/`.

#![warn(missing_docs)]

pub mod harness;
