//! Shared experiment harness: measure corpus apps, trim them, and derive
//! the platform-level quantities every table/figure consumes.

use lambda_sim::{
    simulate_pool, AppProfile, CheckpointModel, Platform, PricingModel, SnapStartPricing, StartMode,
};
use trim_apps::BenchApp;
use trim_core::{trim_app, trim_corpus_parallel, CorpusJob, DebloatOptions, Execution, TrimReport};
use trim_profiler::ScoringMethod;

/// Number of invocations the paper prices cold starts for (Figure 2).
pub const PRICED_INVOCATIONS: u64 = 100_000;

/// One fully measured + trimmed benchmark application.
pub struct AppResult {
    /// The generated benchmark app.
    pub bench: BenchApp,
    /// The trim pipeline report (holds before/after executions).
    pub report: TrimReport,
}

impl AppResult {
    /// Measure + trim one app with the given options.
    pub fn compute(bench: BenchApp, options: &DebloatOptions) -> AppResult {
        let report = trim_app(&bench.registry, &bench.app_source, &bench.spec, options)
            .unwrap_or_else(|e| panic!("trimming {} failed: {e}", bench.name));
        AppResult { bench, report }
    }

    /// Measure + trim with the paper's defaults (K = 20, combined scoring).
    pub fn compute_default(bench: BenchApp) -> AppResult {
        Self::compute(bench, &DebloatOptions::default())
    }

    /// Platform profile of the original application.
    pub fn profile_before(&self) -> AppProfile {
        profile_from_execution(&self.bench.name, self.bench.image_mb, &self.report.before)
    }

    /// Platform profile of the trimmed application. The deployment image
    /// size is unchanged: DD rewrites `__init__` sources, but the binary
    /// wheels that dominate package size stay in the image.
    pub fn profile_after(&self) -> AppProfile {
        profile_from_execution(&self.bench.name, self.bench.image_mb, &self.report.after)
    }
}

/// Trim a whole corpus with the paper's defaults, fanning the independent
/// apps out over `jobs` worker threads (`jobs <= 1` runs sequentially).
/// Results are in corpus order and byte-identical to a sequential run.
pub fn compute_corpus(
    benches: Vec<BenchApp>,
    options: &DebloatOptions,
    jobs: usize,
) -> Vec<AppResult> {
    if jobs <= 1 {
        return benches
            .into_iter()
            .map(|bench| AppResult::compute(bench, options))
            .collect();
    }
    let job_specs: Vec<CorpusJob> = benches
        .iter()
        .map(|bench| CorpusJob {
            name: bench.name.clone(),
            registry: bench.registry.clone(),
            app_source: bench.app_source.clone(),
            spec: bench.spec.clone(),
        })
        .collect();
    let reports = trim_corpus_parallel(&job_specs, options, jobs);
    benches
        .into_iter()
        .zip(reports)
        .map(|(bench, report)| AppResult {
            report: report.unwrap_or_else(|e| panic!("trimming {} failed: {e}", bench.name)),
            bench,
        })
        .collect()
}

/// Build a platform [`AppProfile`] from a measured execution.
pub fn profile_from_execution(name: &str, image_mb: f64, exec: &Execution) -> AppProfile {
    AppProfile::new(name, image_mb, exec.init_secs, exec.exec_secs, exec.mem_mb)
}

/// Cold-start cost in dollars of one invocation under the default platform.
pub fn cold_cost(platform: &Platform, profile: &AppProfile) -> f64 {
    platform.cold_invocation(profile, StartMode::Standard).cost
}

/// The three improvement axes of Figures 8–10, in percent (positive =
/// better after trimming).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Improvements {
    /// End-to-end cold-start latency improvement (%).
    pub e2e_pct: f64,
    /// Memory footprint improvement (%).
    pub mem_pct: f64,
    /// Cold invocation cost improvement (%).
    pub cost_pct: f64,
    /// Function Initialization improvement (%).
    pub import_pct: f64,
}

/// Compute the improvement axes for one app result.
pub fn improvements(platform: &Platform, r: &AppResult) -> Improvements {
    let before = r.profile_before();
    let after = r.profile_after();
    let e2e_b = platform
        .cold_invocation(&before, StartMode::Standard)
        .e2e_secs();
    let e2e_a = platform
        .cold_invocation(&after, StartMode::Standard)
        .e2e_secs();
    let cost_b = cold_cost(platform, &before);
    let cost_a = cold_cost(platform, &after);
    Improvements {
        e2e_pct: pct(e2e_b, e2e_a),
        mem_pct: pct(before.mem_mb, after.mem_mb),
        cost_pct: pct(cost_b, cost_a),
        import_pct: pct(before.init_secs, after.init_secs),
    }
}

/// Relative improvement in percent.
pub fn pct(before: f64, after: f64) -> f64 {
    if before <= 0.0 {
        0.0
    } else {
        (before - after) / before * 100.0
    }
}

/// Trim one app with a particular scoring method (Figure 9).
pub fn result_with_scoring(bench: BenchApp, scoring: ScoringMethod) -> AppResult {
    AppResult::compute(
        bench,
        &DebloatOptions {
            scoring,
            ..DebloatOptions::default()
        },
    )
}

/// Trim one app with a particular K (Figure 10).
pub fn result_with_k(bench: BenchApp, k: usize) -> AppResult {
    AppResult::compute(
        bench,
        &DebloatOptions {
            k,
            ..DebloatOptions::default()
        },
    )
}

/// Simulated SnapStart accounting for one profile over a trace window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SnapStartAccount {
    /// Sum of per-invocation billed costs ($).
    pub invocation_cost: f64,
    /// Snapshot cache + restore cost ($).
    pub snapstart_cost: f64,
    /// Number of cold starts in the window.
    pub cold_starts: u64,
    /// Number of invocations.
    pub invocations: u64,
}

impl SnapStartAccount {
    /// SnapStart share of the total bill.
    pub fn snapstart_share(&self) -> f64 {
        let total = self.invocation_cost + self.snapstart_cost;
        if total <= 0.0 {
            0.0
        } else {
            self.snapstart_cost / total
        }
    }
}

/// Simulate a profile over an arrival process with SnapStart enabled
/// (restore-mode cold starts, cache billed for the whole window).
pub fn snapstart_account(
    platform: &Platform,
    pricing: &SnapStartPricing,
    checkpoint: &CheckpointModel,
    profile: &AppProfile,
    arrivals: &[f64],
    keep_alive_secs: f64,
    window_secs: f64,
) -> SnapStartAccount {
    let stats = simulate_pool(
        platform,
        profile,
        arrivals,
        keep_alive_secs,
        StartMode::Restore,
    );
    let snapshot_mb = checkpoint.snapshot_mb(profile.mem_mb);
    SnapStartAccount {
        invocation_cost: stats.total_cost,
        snapstart_cost: pricing.window_cost(snapshot_mb, window_secs, stats.cold_starts),
        cold_starts: stats.cold_starts,
        invocations: stats.invocations(),
    }
}

/// Default platform used across experiments.
pub fn default_platform() -> Platform {
    Platform::default()
}

/// Default AWS pricing used across experiments.
pub fn default_pricing() -> PricingModel {
    PricingModel::aws()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvements_are_positive_for_trimmable_app() {
        let bench = trim_apps::app("markdown").unwrap();
        let r = AppResult::compute_default(bench);
        let imp = improvements(&default_platform(), &r);
        assert!(imp.import_pct > 0.0);
        assert!(imp.mem_pct >= 0.0);
        assert!(imp.cost_pct > 0.0);
    }

    #[test]
    fn trimmed_image_is_not_larger() {
        let bench = trim_apps::app("igraph").unwrap();
        let r = AppResult::compute_default(bench);
        assert!(r.profile_after().image_mb <= r.profile_before().image_mb);
    }

    #[test]
    fn pct_helper() {
        assert_eq!(pct(10.0, 5.0), 50.0);
        assert_eq!(pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn snapstart_share_bounds() {
        let a = SnapStartAccount {
            invocation_cost: 1.0,
            snapstart_cost: 3.0,
            cold_starts: 2,
            invocations: 10,
        };
        assert!((a.snapstart_share() - 0.75).abs() < 1e-12);
        assert_eq!(SnapStartAccount::default().snapstart_share(), 0.0);
    }
}
