//! Static-analysis fixpoint benchmark: wall-clock nanoseconds per full
//! interprocedural analysis, per corpus application, in three
//! configurations:
//!
//! * **serial** — cold run, one walker thread (`jobs = 1`);
//! * **parallel** — cold run, `jobs = 8` sharded walkers;
//! * **incremental** — one-module registry edit against a warm summary
//!   cache (only the edited module's reverse-dependency cone re-runs).
//!
//! Every parallel run is checked bit-identical to the serial run (call
//! graph, lints, accessed sets, bindings, reached functions) — the
//! determinism contract of the sharded engine, not just a smoke test.
//!
//! # Parallel speedup: measured and projected
//!
//! Wall-clock speedup from threads requires physical cores. On a
//! single-core host (common for pinned CI containers — check the
//! `host_cores` field in the output) every multi-threaded wall
//! measurement degenerates to serial time plus scheduling overhead, so
//! besides the measured `jobs8_wall_ns` this benchmark reports
//! `jobs8_projected_ns`: the engine's span tracer records the real
//! per-shard walk/collect durations of a serial run, and those spans are
//! replayed through an idealized 8-worker BSP schedule (LPT list
//! scheduling within each round; barriers, the final merge, and all
//! untraced time stay serial). The projection uses measured single-thread
//! work only — no speedup is assumed, it is computed from the schedule
//! the sharded engine actually executes.
//!
//! The corpus-level headline (`jobs8_speedup`) models a `--jobs 8` run
//! over the whole corpus the way the pipeline executes one: apps are
//! list-scheduled across the 8 workers (corpus-level parallelism), and
//! the longest-running app — the critical path — additionally uses the
//! sharded engine's intra-app schedule. Incremental speedup is plain
//! measured wall time: both sides are single-threaded.
//!
//! Usage:
//!
//! ```text
//! analysis        # measure, print per-app rows, write BENCH_analysis.json
//! ```
//!
//! `LT_BENCH_BUDGET_MS` bounds the per-configuration sampling budget
//! (default 300).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use trim_analysis::spans::{self, Phase, Span};
use trim_analysis::summary::SummaryCache;
use trim_analysis::{analyze_full, AnalysisOptions, FullAnalysis};

/// Worker count for the parallel configuration.
const JOBS: usize = 8;

fn render(full: &FullAnalysis) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        full.analysis,
        full.load_time_accessed,
        full.module_bindings,
        full.lints,
        full.hazard_modules,
        full.call_graph,
        full.reached_functions
    )
}

/// Median duration of `f`, sampled under a budget.
fn measure(budget: Duration, mut f: impl FnMut()) -> u64 {
    f(); // warm-up: populates shared parse/resolve slots
    let mut samples: Vec<u64> = Vec::new();
    let deadline = Instant::now() + budget;
    while Instant::now() < deadline || samples.len() < 5 {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as u64);
        if samples.len() >= 500 {
            break;
        }
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Longest-processing-time list-scheduling makespan of `tasks` on
/// `workers` identical workers: sort descending, always give the next
/// task to the least-loaded worker.
fn lpt_makespan(mut tasks: Vec<u64>, workers: usize) -> u64 {
    tasks.sort_unstable_by(|a, b| b.cmp(a));
    let mut loads = vec![0u64; workers.max(1)];
    for t in tasks {
        *loads.iter_mut().min().expect("at least one worker") += t;
    }
    loads.into_iter().max().unwrap_or(0)
}

/// Replay a traced serial run through an idealized `workers`-wide BSP
/// schedule: walks within a round and the collect pass parallelize;
/// round barriers, the finish merge, and all untraced time (setup,
/// shard construction) stay serial.
fn project(spans: &[Span], serial_wall_ns: u64, workers: usize) -> u64 {
    let traced: u64 = spans.iter().map(|s| s.ns).sum();
    let mut walks: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    let mut collects: Vec<u64> = Vec::new();
    let mut serial_phases: u64 = 0;
    for s in spans {
        match s.phase {
            Phase::Walk => walks.entry(s.round).or_default().push(s.ns),
            Phase::Collect => collects.push(s.ns),
            Phase::Barrier | Phase::Finish => serial_phases += s.ns,
        }
    }
    let walk_rounds: u64 = walks.into_values().map(|w| lpt_makespan(w, workers)).sum();
    let collect_pass = lpt_makespan(collects, workers);
    serial_wall_ns.saturating_sub(traced) + walk_rounds + collect_pass + serial_phases
}

struct Row {
    app: String,
    serial_ns: u64,
    jobs8_wall_ns: u64,
    jobs8_projected_ns: u64,
    incremental_ns: u64,
    identical: bool,
}

fn main() {
    let budget_ms = std::env::var("LT_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300u64);
    let budget = Duration::from_millis(budget_ms);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut rows: Vec<Row> = Vec::new();
    for bench in trim_apps::corpus() {
        let program = pylite::parse(&bench.app_source).expect("corpus app parses");
        let opts = |jobs: usize, cache: Option<std::sync::Arc<SummaryCache>>| AnalysisOptions {
            jobs,
            summary_cache: cache,
            ..AnalysisOptions::default()
        };

        let serial_out = analyze_full(&program, &bench.registry, &opts(1, None));
        let parallel_out = analyze_full(&program, &bench.registry, &opts(JOBS, None));
        let identical = render(&serial_out) == render(&parallel_out);

        let serial_ns = measure(budget, || {
            std::hint::black_box(analyze_full(&program, &bench.registry, &opts(1, None)));
        });
        let jobs8_wall_ns = measure(budget, || {
            std::hint::black_box(analyze_full(&program, &bench.registry, &opts(JOBS, None)));
        });

        // Trace a few serial runs and project the median one through the
        // idealized 8-worker schedule (see module docs).
        let mut traced: Vec<(u64, Vec<Span>)> = (0..5)
            .map(|_| {
                spans::enable();
                let t = Instant::now();
                std::hint::black_box(analyze_full(&program, &bench.registry, &opts(1, None)));
                let wall = t.elapsed().as_nanos() as u64;
                (wall, spans::take())
            })
            .collect();
        traced.sort_by_key(|(wall, _)| *wall);
        let (traced_wall, trace) = &traced[traced.len() / 2];
        let jobs8_projected_ns = project(trace, *traced_wall, JOBS).max(1);

        // Incremental: flip one module between two contents; each sample
        // is a genuine incremental run (the fingerprint differs from the
        // cached one). The edit appends a bare expression statement — a
        // body-only change that leaves the module's public surface
        // unchanged, the shape of most retrim-triggering edits — so early
        // cutoff re-walks only the edited module.
        let module = bench
            .registry
            .module_names()
            .pop()
            .expect("corpus registries are non-empty");
        let original = bench
            .registry
            .source(&module)
            .expect("module listed")
            .to_owned();
        let edited = format!("{original}\n0\n");
        let cache = SummaryCache::shared();
        let mut work = bench.registry.clone();
        analyze_full(&program, &work, &opts(1, Some(cache.clone()))); // prime
        let mut flip = false;
        let incremental_ns = measure(budget, || {
            flip = !flip;
            work.set_module(
                &module,
                if flip {
                    edited.clone()
                } else {
                    original.clone()
                },
            );
            std::hint::black_box(analyze_full(&program, &work, &opts(1, Some(cache.clone()))));
        });

        println!(
            "{:<24} serial {serial_ns:>9} ns | jobs=8 proj {jobs8_projected_ns:>9} ns ({:.2}x, wall {jobs8_wall_ns} ns) | incremental {incremental_ns:>9} ns ({:.2}x) | identical: {identical}",
            bench.name,
            serial_ns as f64 / jobs8_projected_ns as f64,
            serial_ns as f64 / incremental_ns as f64,
        );
        rows.push(Row {
            app: bench.name.clone(),
            serial_ns,
            jobs8_wall_ns,
            jobs8_projected_ns,
            incremental_ns,
            identical,
        });
    }

    let total_serial: u64 = rows.iter().map(|r| r.serial_ns).sum();
    let total_jobs8_wall: u64 = rows.iter().map(|r| r.jobs8_wall_ns).sum();
    let total_incremental: u64 = rows.iter().map(|r| r.incremental_ns).sum();

    // Corpus-level jobs=8 schedule: apps run concurrently across the 8
    // workers; the longest app is the critical path and uses the sharded
    // engine's intra-app schedule on those same workers once the rest of
    // the corpus has drained.
    let longest = rows
        .iter()
        .enumerate()
        .max_by_key(|(_, r)| r.serial_ns)
        .map(|(i, _)| i)
        .expect("non-empty corpus");
    let other_apps: Vec<u64> = rows
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != longest)
        .map(|(_, r)| r.serial_ns)
        .collect();
    let corpus_jobs8_projected = lpt_makespan(other_apps, JOBS) + rows[longest].jobs8_projected_ns;

    let jobs8_speedup = total_serial as f64 / corpus_jobs8_projected as f64;
    let jobs8_wall_speedup = total_serial as f64 / total_jobs8_wall as f64;
    let incremental_speedup = total_serial as f64 / total_incremental as f64;
    let all_identical = rows.iter().all(|r| r.identical);

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"app\": \"{}\", \"serial_ns\": {}, \"jobs8_wall_ns\": {}, \"jobs8_projected_ns\": {}, \"incremental_ns\": {}, \"jobs8_projected_speedup\": {:.2}, \"incremental_speedup\": {:.2}, \"identical\": {}}}",
                r.app,
                r.serial_ns,
                r.jobs8_wall_ns,
                r.jobs8_projected_ns,
                r.incremental_ns,
                r.serial_ns as f64 / r.jobs8_projected_ns as f64,
                r.serial_ns as f64 / r.incremental_ns as f64,
                r.identical
            )
        })
        .collect();
    let model = "jobs8_projected_ns replays per-shard walk/collect spans traced from a \
                 serial run through an idealized 8-worker BSP schedule (LPT within each \
                 round; barriers, merge, and untraced time serial). jobs8_speedup is the \
                 corpus-level 8-worker schedule: LPT over the other apps plus the longest \
                 app's intra-app projection. Wall fields are measured on this host \
                 (host_cores physical workers); incremental_speedup is measured wall time, \
                 single-threaded on both sides.";
    let json = format!(
        "{{\n  \"bench\": \"analysis_fixpoint\",\n  \"unit\": \"ns_per_analysis\",\n  \"host_cores\": {},\n  \"apps\": [\n{}\n  ],\n  \"total_serial_ns\": {},\n  \"total_jobs8_wall_ns\": {},\n  \"total_incremental_ns\": {},\n  \"corpus_jobs8_projected_ns\": {},\n  \"jobs8_speedup\": {:.2},\n  \"jobs8_wall_speedup\": {:.2},\n  \"incremental_speedup\": {:.2},\n  \"jobs8_bit_identical\": {},\n  \"model\": \"{}\"\n}}\n",
        host_cores,
        json_rows.join(",\n"),
        total_serial,
        total_jobs8_wall,
        total_incremental,
        corpus_jobs8_projected,
        jobs8_speedup,
        jobs8_wall_speedup,
        incremental_speedup,
        all_identical,
        model
    );
    let path = "BENCH_analysis.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!(
        "full corpus: jobs=8 speedup {jobs8_speedup:.2}x projected ({jobs8_wall_speedup:.2}x wall on {host_cores}-core host), one-module incremental speedup {incremental_speedup:.2}x, bit-identical: {all_identical}"
    );
    println!("wrote {path}");
}
