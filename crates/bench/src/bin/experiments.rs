//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section.
//!
//! ```text
//! cargo run --release -p trim-bench --bin experiments -- <id>...
//! ```
//!
//! where `<id>` is one of `fig1 table1 fig2 table2 fig8 fig9 table3 fig10
//! fig11 fig12 fig13 fig14 table4`, the extension experiment `ext`
//! (incremental re-trim, greedy-vs-ddmin, provisioned concurrency), the
//! probe-setup micro-measurement `probe` (writes `BENCH_probe.json`), the
//! trace-replay benchmark `replay` (writes `BENCH_replay.json`), the
//! hazard-granularity comparison `hazard` (per-attribute pinning vs the
//! blanket module fallback, writes `BENCH_hazard.json`), the bytecode-VM
//! tier benchmark `vm` (per-oracle-run VM vs tree-walker wall clock plus
//! inline-cache hit rates, writes `BENCH_vm.json`), the CI differential
//! smoke `vm-smoke` (one corpus app trimmed under both engines must yield
//! identical reports), the CI replay smoke `replay-smoke` (event-driven
//! vs naive pool engine on the golden fixture plus a small streamed fleet
//! across worker counts), the init-snapshot memoization benchmark `memo`
//! (per-probe init wall clock with snapshot replay vs live execution on
//! the deep-import corpus slice, writes `BENCH_memo.json`), the CI
//! memoization smoke `memo-smoke` (one deep-import app trimmed with the
//! snapshot cache on vs off must agree and the cache must record replay
//! hits), the selective-init slicing benchmark `slice` (init statements
//! and simulated init cost with statement slicing on vs off over the
//! corpus, writes `BENCH_slice.json`), the CI slicing smoke `slice-smoke`
//! (one corpus app trimmed with slicing on vs off must agree on DD results
//! and behavior while actually removing init statements), or `all`.
//!
//! `--jobs N` fans the shared corpus-trimming pass (and the trace replay)
//! out over `N` worker threads (results are byte-identical to a sequential
//! run).

use lambda_sim::metrics::{cdf, mean, median, percentile};
use lambda_sim::trace::replay::render_metrics_json;
use lambda_sim::{
    generate_trace, load_trace_csv, nearest_function, render_fleet_metrics_json, replay_fleet,
    replay_trace, simulate_pool_ext_naive_traced, simulate_pool_ext_traced, AppProfile,
    CheckpointModel, PoolOptions, ReplayOptions, SnapStartPricing, StartMode, TraceConfig,
};
use trim_bench::harness::*;
use trim_core::{invoke_with_fallback, FallbackInstanceState};
use trim_profiler::ScoringMethod;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs = 1usize;
    let mut ids: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--jobs" {
            jobs = iter
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("--jobs requires a positive integer"));
        } else if let Some(n) = arg.strip_prefix("--jobs=") {
            jobs = n
                .parse()
                .unwrap_or_else(|_| panic!("--jobs requires a positive integer"));
        } else {
            ids.push(arg.as_str());
        }
    }
    if ids.is_empty() || ids.contains(&"all") {
        ids = vec![
            "fig1", "table1", "fig2", "table2", "fig8", "fig9", "table3", "fig10", "fig11",
            "fig12", "fig13", "fig14", "table4", "ext", "probe", "replay", "hazard", "vm", "memo",
            "slice",
        ];
    }

    // Experiments that need trimmed results share one computation pass.
    let needs_results = ids.iter().any(|id| {
        matches!(
            *id,
            "fig8" | "table2" | "table3" | "fig11" | "fig12" | "fig14" | "table4"
        )
    });
    let results: Vec<AppResult> = if needs_results {
        eprintln!(
            "[experiments] trimming all 21 applications (K=20, combined scoring, {jobs} job{})...",
            if jobs == 1 { "" } else { "s" }
        );
        compute_corpus(
            trim_apps::corpus(),
            &trim_core::DebloatOptions::default(),
            jobs,
        )
    } else {
        Vec::new()
    };

    for id in ids {
        match id {
            "fig1" => fig1(),
            "table1" => table1(),
            "fig2" => fig2(),
            "table2" => table2(&results),
            "fig8" => fig8(&results),
            "fig9" => fig9(),
            "table3" => table3(&results),
            "fig10" => fig10(),
            "fig11" => fig11(&results),
            "fig12" => fig12(&results),
            "fig13" => fig13(),
            "fig14" => fig14(&results),
            "table4" => table4(&results),
            "ext" => ext(),
            "probe" => probe(),
            "replay" => replay_bench(jobs),
            "replay-smoke" => replay_smoke(jobs),
            "hazard" => hazard(jobs),
            "vm" => vm_bench(),
            "vm-smoke" => vm_smoke(),
            "memo" => memo_bench(),
            "memo-smoke" => memo_smoke(),
            "slice" => slice_bench(),
            "slice-smoke" => slice_smoke(),
            other => eprintln!("unknown experiment id `{other}`"),
        }
    }
}

fn banner(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn measure(bench: &trim_apps::BenchApp) -> trim_core::Execution {
    trim_core::run_app(&bench.registry, &bench.app_source, &bench.spec)
        .unwrap_or_else(|e| panic!("{} failed: {e}", bench.name))
}

// ---------------------------------------------------------------------------
// Figure 1: cold/warm start phase breakdown for resnet.
// ---------------------------------------------------------------------------
fn fig1() {
    banner("Figure 1 — cold-start phase breakdown (resnet)");
    let platform = default_platform();
    let bench = trim_apps::app("resnet").expect("resnet in corpus");
    let exec = measure(&bench);
    let profile = profile_from_execution(&bench.name, bench.image_mb, &exec);
    let inv = platform.cold_invocation(&profile, StartMode::Standard);
    let p = inv.phases;
    println!("phase                 seconds   billed");
    println!("instance init         {:7.2}   no", p.instance_init_secs);
    println!("image transmission    {:7.2}   no", p.image_tx_secs);
    println!("function init         {:7.2}   yes", p.function_init_secs);
    println!("function execution    {:7.2}   yes", p.exec_secs);
    let e2e = inv.e2e_secs();
    let init_latency_share = p.function_init_secs / e2e * 100.0;
    let billed = p.function_init_secs + p.exec_secs;
    let init_bill_share = p.function_init_secs / billed * 100.0;
    println!("E2E = {e2e:.2} s, billed = {billed:.2} s");
    println!(
        "function init: {init_latency_share:.0}% of total latency, {init_bill_share:.0}% of the bill \
         (paper: up to 29% / 45%)"
    );
}

// ---------------------------------------------------------------------------
// Table 1: application characteristics.
// ---------------------------------------------------------------------------
fn table1() {
    banner("Table 1 — benchmarked applications (measured | paper)");
    println!(
        "{:<18} {:>9} {:>17} {:>17} {:>17}",
        "application", "size MB", "import s", "exec s", "E2E s"
    );
    let platform = default_platform();
    for bench in trim_apps::corpus() {
        let exec = measure(&bench);
        let profile = profile_from_execution(&bench.name, bench.image_mb, &exec);
        let e2e = platform
            .cold_invocation(&profile, StartMode::Standard)
            .e2e_secs();
        let p = bench.paper;
        println!(
            "{:<18} {:>9.2} {:>8.2}|{:<8.2} {:>8.2}|{:<8.2} {:>8.2}|{:<8.2}",
            bench.name,
            bench.image_mb,
            exec.init_secs,
            p.import_s,
            exec.exec_secs,
            p.exec_s,
            e2e,
            p.e2e_s
        );
    }
}

// ---------------------------------------------------------------------------
// Figure 2: billed duration and monetary cost of cold starts.
// ---------------------------------------------------------------------------
fn fig2() {
    banner("Figure 2 — billed duration & cost of cold starts (100K invocations)");
    println!(
        "{:<18} {:>10} {:>10} {:>11} {:>12}",
        "application", "import s", "exec s", "import %", "cost $/100K"
    );
    let pricing = default_pricing();
    let mut shares = Vec::new();
    for bench in trim_apps::corpus() {
        let exec = measure(&bench);
        let billable_ms = (exec.init_secs + exec.exec_secs) * 1000.0;
        let cost = pricing.cost_for_invocations(exec.mem_mb, billable_ms, PRICED_INVOCATIONS);
        let share = exec.init_secs / (exec.init_secs + exec.exec_secs) * 100.0;
        shares.push(share);
        println!(
            "{:<18} {:>10.2} {:>10.2} {:>10.1}% {:>12.2}",
            bench.name, exec.init_secs, exec.exec_secs, share, cost
        );
    }
    println!(
        "median import share: {:.1}% (paper: 53.75%)",
        median(&shares)
    );
}

// ---------------------------------------------------------------------------
// Table 2: comparison with FaaSLight and Vulture.
// ---------------------------------------------------------------------------
fn table2(results: &[AppResult]) {
    banner("Table 2 — λ-trim vs FaaSLight vs Vulture (improvement %, our substrate)");
    // The paper's reported numbers for its FaaSLight apps (memory, import,
    // E2E) for side-by-side context.
    let paper: &[(&str, f64, f64, f64)] = &[
        ("huggingface", 2.11, 10.21, 6.65),
        ("image-resize", 2.96, 1.82, 1.47),
        ("lightgbm", 38.44, 54.81, 30.50),
        ("lxml", 0.21, 41.58, 19.37),
        ("scikit", 9.8, 19.60, 2.11),
        ("skimage", 42.05, 42.41, 34.59),
        ("tensorflow", 9.01, 15.58, 15.50),
        ("wine", 11.43, 13.73, 8.34),
    ];
    let platform = default_platform();
    println!(
        "{:<14} | {:>24} | {:>24} | {:>33}",
        "", "FaaSLight-style", "Vulture-style", "λ-trim (paper mem/import/e2e)"
    );
    println!(
        "{:<14} | {:>7} {:>8} {:>7} | {:>7} {:>8} {:>7} | {:>7} {:>8} {:>7}",
        "application",
        "mem%",
        "import%",
        "e2e%",
        "mem%",
        "import%",
        "e2e%",
        "mem%",
        "import%",
        "e2e%"
    );
    for (name, p_mem, p_imp, p_e2e) in paper {
        let bench = trim_apps::app(name).expect("table2 app");
        let fl = trim_baselines::faaslight_trim(&bench.registry, &bench.app_source, &bench.spec)
            .expect("faaslight runs");
        let vu = trim_baselines::vulture_trim(&bench.registry, &bench.app_source, &bench.spec)
            .expect("vulture runs");
        let lt = results
            .iter()
            .find(|r| r.bench.name == *name)
            .expect("trimmed result");
        let imp = improvements(&platform, lt);
        let axes = |before: &trim_core::Execution, after: &trim_core::Execution| {
            (
                pct(before.mem_mb, after.mem_mb),
                pct(before.init_secs, after.init_secs),
                pct(
                    before.init_secs + before.exec_secs,
                    after.init_secs + after.exec_secs,
                ),
            )
        };
        let (fl_m, fl_i, fl_e) = axes(&fl.before, &fl.after);
        let (vu_m, vu_i, vu_e) = axes(&vu.before, &vu.after);
        println!(
            "{:<14} | {:>7.1} {:>8.1} {:>7.1} | {:>7.1} {:>8.1} {:>7.1} | {:>7.1} {:>8.1} {:>7.1}  (paper {p_mem:.1}/{p_imp:.1}/{p_e2e:.1})",
            name, fl_m, fl_i, fl_e, vu_m, vu_i, vu_e, imp.mem_pct, imp.import_pct, imp.e2e_pct
        );
    }
}

// ---------------------------------------------------------------------------
// Figure 8: λ-trim improvements across the corpus.
// ---------------------------------------------------------------------------
fn fig8(results: &[AppResult]) {
    banner("Figure 8 — λ-trim latency / memory / cost improvements");
    let platform = default_platform();
    println!(
        "{:<18} {:>7} {:>7} {:>7} | {:>7} {:>7} {:>6} | {:>7} {:>7} {:>6} | {:>10} {:>10} {:>6}",
        "application",
        "e2e-b",
        "e2e-a",
        "spd-up",
        "imp-b",
        "imp-a",
        "imp%",
        "mem-b",
        "mem-a",
        "mem%",
        "cost-b",
        "cost-a",
        "cost%"
    );
    let (mut speedups, mut mems, mut costs) = (Vec::new(), Vec::new(), Vec::new());
    for r in results {
        let before = r.profile_before();
        let after = r.profile_after();
        let e2e_b = platform
            .cold_invocation(&before, StartMode::Standard)
            .e2e_secs();
        let e2e_a = platform
            .cold_invocation(&after, StartMode::Standard)
            .e2e_secs();
        let cost_b = cold_cost(&platform, &before) * PRICED_INVOCATIONS as f64;
        let cost_a = cold_cost(&platform, &after) * PRICED_INVOCATIONS as f64;
        let imp = improvements(&platform, r);
        speedups.push(e2e_b / e2e_a);
        mems.push(imp.mem_pct);
        costs.push(imp.cost_pct);
        println!(
            "{:<18} {:>7.2} {:>7.2} {:>6.2}x | {:>7.2} {:>7.2} {:>5.1}% | {:>7.1} {:>7.1} {:>5.1}% | {:>10.2} {:>10.2} {:>5.1}%",
            r.bench.name,
            e2e_b,
            e2e_a,
            e2e_b / e2e_a,
            before.init_secs,
            after.init_secs,
            imp.import_pct,
            before.mem_mb,
            after.mem_mb,
            imp.mem_pct,
            cost_b,
            cost_a,
            imp.cost_pct
        );
    }
    println!(
        "mean speedup {:.2}x (paper 1.2x, max 2x) | mean mem {:.1}% (paper 10.3%, max 42%) | mean cost {:.1}% (paper 19.7%, max 59%)",
        mean(&speedups),
        mean(&mems),
        mean(&costs)
    );
}

// ---------------------------------------------------------------------------
// Figure 9: scoring-method ablation.
// ---------------------------------------------------------------------------
fn fig9() {
    banner("Figure 9 — scoring-method ablation (cost / memory / E2E improvement %)");
    let platform = default_platform();
    let methods = [
        ScoringMethod::Memory,
        ScoringMethod::Time,
        ScoringMethod::Combined,
        ScoringMethod::Random { seed: 7 },
    ];
    for app in ["dna-visualization", "lightgbm", "spacy"] {
        println!("\napplication: {app}");
        println!(
            "{:<10} {:>8} {:>8} {:>8}",
            "method", "cost%", "mem%", "e2e%"
        );
        let mut combined_cost = 0.0;
        let mut best_other: f64 = 0.0;
        for method in methods {
            // A restricted K stresses the ranking: with K large enough to
            // cover every module, every method converges (the Fig. 10
            // plateau) — the paper's ablation uses the default K = 20, but
            // our dependency closures are smaller, so K = 3 exposes ranking
            // quality the same way.
            let bench = trim_apps::app(app).expect("fig9 app");
            let r = AppResult::compute(
                bench,
                &trim_core::DebloatOptions {
                    k: 3,
                    scoring: method,
                    ..trim_core::DebloatOptions::default()
                },
            );
            let imp = improvements(&platform, &r);
            println!(
                "{:<10} {:>7.1} {:>8.1} {:>8.1}",
                method.name(),
                imp.cost_pct,
                imp.mem_pct,
                imp.e2e_pct
            );
            if matches!(method, ScoringMethod::Combined) {
                combined_cost = imp.cost_pct;
            } else {
                best_other = best_other.max(imp.cost_pct);
            }
        }
        println!(
            "combined ≥ best other: {} (paper: combined constantly outperforms)",
            combined_cost >= best_other - 1e-9
        );
    }
}

// ---------------------------------------------------------------------------
// Table 3: debloating time, attribute counts, checkpoint sizes.
// ---------------------------------------------------------------------------
fn table3(results: &[AppResult]) {
    banner("Table 3 — debloat time, example-module attributes, checkpoint size");
    let ckpt = CheckpointModel::default();
    println!(
        "{:<18} {:>12} {:<16} {:>15} {:>17}",
        "application", "debloat s", "example module", "attrs rm/pre", "ckpt MB post/pre"
    );
    for r in results {
        let module = &r.bench.example_module;
        let m = r
            .report
            .modules
            .iter()
            .find(|m| &m.module == module)
            .cloned();
        let (removed, pre) = match &m {
            Some(m) => (m.removed.len(), m.attrs_before),
            None => (0, 0),
        };
        let pre_ckpt = ckpt.snapshot_mb(r.report.before.mem_mb);
        let post_ckpt = ckpt.snapshot_mb(r.report.after.mem_mb);
        println!(
            "{:<18} {:>12.0} {:<16} {:>8}/{:<6} {:>8.0}/{:<8.0}",
            r.bench.name, r.report.debloat_secs, module, removed, pre, post_ckpt, pre_ckpt
        );
    }
    let reductions: Vec<f64> = results
        .iter()
        .map(|r| {
            let pre = ckpt.snapshot_mb(r.report.before.mem_mb);
            let post = ckpt.snapshot_mb(r.report.after.mem_mb);
            pct(pre, post)
        })
        .collect();
    println!(
        "mean checkpoint reduction: {:.1}% (paper: 11% average)",
        mean(&reductions)
    );
}

// ---------------------------------------------------------------------------
// Figure 10: varying K.
// ---------------------------------------------------------------------------
fn fig10() {
    banner("Figure 10 — varying K (number of modules to debloat)");
    let platform = default_platform();
    for app in ["dna-visualization", "lightgbm", "spacy"] {
        println!("\napplication: {app}");
        println!("{:<5} {:>8} {:>8} {:>8}", "K", "mem%", "e2e%", "cost%");
        for k in [1usize, 5, 10, 15, 20, 30, 40, 50] {
            let bench = trim_apps::app(app).expect("fig10 app");
            let r = result_with_k(bench, k);
            let imp = improvements(&platform, &r);
            println!(
                "{:<5} {:>8.1} {:>8.1} {:>8.1}",
                k, imp.mem_pct, imp.e2e_pct, imp.cost_pct
            );
        }
    }
    println!("(expected: growth up to the module-closure size, then a plateau — §8.4)");
}

// ---------------------------------------------------------------------------
// Figure 11: warm-start impact.
// ---------------------------------------------------------------------------
fn fig11(results: &[AppResult]) {
    banner("Figure 11 — warm-start E2E latency impact");
    let platform = default_platform();
    println!(
        "{:<18} {:>10} {:>10} {:>9}",
        "application", "orig s", "trim s", "impact %"
    );
    let mut impacts = Vec::new();
    for r in results {
        let warm_b = platform.warm_invocation(&r.profile_before()).e2e_secs();
        let warm_a = platform.warm_invocation(&r.profile_after()).e2e_secs();
        let impact = (warm_a - warm_b) / warm_b * 100.0;
        impacts.push(impact.abs());
        println!(
            "{:<18} {:>10.3} {:>10.3} {:>8.2}%",
            r.bench.name, warm_b, warm_a, impact
        );
    }
    println!(
        "max |impact| {:.2}% (paper: <10%, attributable to platform noise)",
        impacts.iter().cloned().fold(0.0, f64::max)
    );
}

// ---------------------------------------------------------------------------
// Figure 12: initialization time vs checkpoint/restore.
// ---------------------------------------------------------------------------
fn fig12(results: &[AppResult]) {
    banner("Figure 12 — init time: Original / C/R / λ-trim / C/R + λ-trim");
    let ckpt = CheckpointModel::default();
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>12}",
        "application", "orig s", "C/R s", "λ-trim s", "C/R+trim s"
    );
    let mut cr_wins_large = 0;
    let mut trim_wins_small = 0;
    for r in results {
        let orig = r.report.before.init_secs;
        let trim = r.report.after.init_secs;
        let cr = ckpt.cr_init_secs(r.report.before.mem_mb);
        let cr_trim = ckpt.cr_init_secs(r.report.after.mem_mb);
        if orig > 1.0 && cr < trim {
            cr_wins_large += 1;
        }
        if orig < 0.2 && trim < cr {
            trim_wins_small += 1;
        }
        println!(
            "{:<18} {:>10.3} {:>10.3} {:>10.3} {:>12.3}",
            r.bench.name, orig, cr, trim, cr_trim
        );
    }
    println!(
        "C/R beats pure trim on {cr_wins_large} large apps; trim beats C/R on {trim_wins_small} small apps \
         (paper: C/R wins for large, loses for <0.2 s apps)"
    );
}

// ---------------------------------------------------------------------------
// Figure 13: CDF of SnapStart cost share over an Azure-style trace.
// ---------------------------------------------------------------------------
fn fig13() {
    banner("Figure 13 — CDF of SnapStart cost over total cost (simulated Azure trace)");
    let platform = default_platform();
    let pricing = SnapStartPricing::default();
    let ckpt = CheckpointModel::default();
    let config = TraceConfig::default();
    let trace = generate_trace(&config);
    for (label, keep_alive) in [("1 min", 60.0), ("15 min", 900.0), ("100 min", 6000.0)] {
        let mut shares = Vec::new();
        for f in &trace.functions {
            if f.arrivals.is_empty() {
                continue;
            }
            let profile = lambda_sim::AppProfile::new(
                format!("fn{}", f.id),
                64.0,
                0.5,
                f.duration_ms / 1000.0,
                f.mem_mb,
            );
            let account = snapstart_account(
                &platform,
                &pricing,
                &ckpt,
                &profile,
                &f.arrivals,
                keep_alive,
                config.window_secs,
            );
            shares.push(account.snapstart_share() * 100.0);
        }
        let points = cdf(&shares);
        println!("\nkeep-alive {label}: SnapStart share percentiles");
        for p in [10.0, 25.0, 50.0, 75.0, 90.0] {
            println!("  p{:<3} {:>6.1}%", p as u32, percentile(&shares, p));
        }
        let above_half = points.iter().filter(|(v, _)| *v > 50.0).count() as f64
            / points.len().max(1) as f64
            * 100.0;
        println!("  functions with SnapStart >50% of bill: {above_half:.0}%");
    }
    println!(
        "(paper: even at long keep-alives the median app spends >60% of budget on C/R support)"
    );
}

// ---------------------------------------------------------------------------
// Figure 14: amortized invocation + SnapStart costs per app.
// ---------------------------------------------------------------------------
fn fig14(results: &[AppResult]) {
    banner("Figure 14 — amortized invocation vs cache+restore cost (24 h, 15 min keep-alive)");
    let platform = default_platform();
    let pricing = SnapStartPricing::default();
    let ckpt = CheckpointModel::default();
    let config = TraceConfig::default();
    let trace = generate_trace(&config);
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "application", "orig inv $", "orig C/R $", "trim inv $", "trim C/R $", "saved%"
    );
    let mut savings = Vec::new();
    for r in results {
        let before = r.profile_before();
        let after = r.profile_after();
        let matched = nearest_function(&trace.functions, before.mem_mb, before.exec_secs * 1000.0)
            .expect("trace nonempty");
        let acct_b = snapstart_account(
            &platform,
            &pricing,
            &ckpt,
            &before,
            &matched.arrivals,
            900.0,
            config.window_secs,
        );
        let acct_a = snapstart_account(
            &platform,
            &pricing,
            &ckpt,
            &after,
            &matched.arrivals,
            900.0,
            config.window_secs,
        );
        let total_b = acct_b.invocation_cost + acct_b.snapstart_cost;
        let total_a = acct_a.invocation_cost + acct_a.snapstart_cost;
        let saved = pct(total_b, total_a);
        savings.push(saved);
        println!(
            "{:<18} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>7.1}%",
            r.bench.name,
            acct_b.invocation_cost,
            acct_b.snapstart_cost,
            acct_a.invocation_cost,
            acct_a.snapstart_cost,
            saved
        );
    }
    println!(
        "mean total-cost reduction {:.1}% (paper: 11% average, up to 42%)",
        mean(&savings)
    );
}

// ---------------------------------------------------------------------------
// Table 4: fallback overhead.
// ---------------------------------------------------------------------------
fn table4(results: &[AppResult]) {
    banner("Table 4 — E2E latencies (s) when triggering the fallback");
    println!(
        "{:<18} {:<6} {:>10} {:>10} {:>14} {:>14}",
        "application", "state", "original", "λ-trim", "fallback warm", "fallback cold"
    );
    for name in ["dna-visualization", "lightgbm", "spacy", "huggingface"] {
        let r = results
            .iter()
            .find(|r| r.bench.name == name)
            .expect("table4 app");
        let case = r.bench.rare_case();
        let run_fb = |state: FallbackInstanceState| {
            let (outcome, cost) = invoke_with_fallback(
                &r.report.trimmed,
                &r.bench.registry,
                &r.bench.app_source,
                &r.bench.spec.handler,
                &case,
                state,
            )
            .expect("fallback invocation");
            assert!(
                outcome.fell_back(),
                "{name}: the rare path must trigger the fallback"
            );
            cost
        };
        let warm_fb = run_fb(FallbackInstanceState::Warm);
        let cold_fb = run_fb(FallbackInstanceState::Cold);
        let orig_cold = r.report.before.init_secs + r.report.before.exec_secs;
        let orig_warm = r.report.before.exec_secs;
        let trim_cold = r.report.after.init_secs + r.report.after.exec_secs;
        let trim_warm = r.report.after.exec_secs;
        println!(
            "{:<18} {:<6} {:>10.2} {:>10.2} {:>14.2} {:>14.2}",
            name,
            "cold",
            orig_cold,
            trim_cold,
            warm_fb.e2e_cold_secs(),
            cold_fb.e2e_cold_secs()
        );
        println!(
            "{:<18} {:<6} {:>10.2} {:>10.2} {:>14.2} {:>14.2}",
            "",
            "warm",
            orig_warm,
            trim_warm,
            warm_fb.e2e_warm_secs(),
            cold_fb.e2e_warm_secs()
        );
    }
    println!("(paper: cold fallback roughly doubles cold E2E and dominates warm E2E)");
}

// ---------------------------------------------------------------------------
// Extensions beyond the paper: §9 future work implemented and measured.
// ---------------------------------------------------------------------------
fn ext() {
    banner("Extensions — continuous debloating, greedy DD, provisioned concurrency");

    // (a) Incremental re-trim seeded by the previous run's log (§9).
    println!("\n(a) continuous debloating: oracle probes, cold vs seeded re-trim");
    println!(
        "{:<20} {:>12} {:>12} {:>9}",
        "application", "cold probes", "seeded", "saved"
    );
    for name in ["markdown", "igraph", "lightgbm"] {
        let bench = trim_apps::app(name).expect("ext app");
        let cold = trim_core::trim_app(
            &bench.registry,
            &bench.app_source,
            &bench.spec,
            &trim_core::DebloatOptions::default(),
        )
        .expect("cold trim");
        let log = trim_core::TrimLog::from_report(&cold);
        let warm = trim_core::retrim_with_log(
            &bench.registry,
            &bench.app_source,
            &bench.spec,
            &log,
            &trim_core::DebloatOptions::default(),
        )
        .expect("seeded retrim");
        assert!(warm.after.behavior_eq(&cold.after));
        println!(
            "{:<20} {:>12} {:>12} {:>8.0}%",
            name,
            cold.oracle_invocations,
            warm.oracle_invocations,
            (1.0 - warm.oracle_invocations as f64 / cold.oracle_invocations as f64) * 100.0
        );
    }

    // (b) Greedy one-pass vs ddmin (the §8.3 speed-up direction).
    println!("\n(b) minimization algorithm: probes and attributes removed");
    println!(
        "{:<20} {:>14} {:>14} {:>14} {:>14}",
        "application", "ddmin probes", "ddmin removed", "greedy probes", "greedy removed"
    );
    for name in ["markdown", "igraph", "dna-visualization"] {
        let bench = trim_apps::app(name).expect("ext app");
        let run = |algorithm| {
            trim_core::trim_app(
                &bench.registry,
                &bench.app_source,
                &bench.spec,
                &trim_core::DebloatOptions {
                    algorithm,
                    ..trim_core::DebloatOptions::default()
                },
            )
            .expect("trim")
        };
        let dd = run(trim_core::Algorithm::Ddmin);
        let gr = run(trim_core::Algorithm::Greedy);
        println!(
            "{:<20} {:>14} {:>14} {:>14} {:>14}",
            name,
            dd.oracle_invocations,
            dd.attrs_removed(),
            gr.oracle_invocations,
            gr.attrs_removed()
        );
    }

    // (c) λ-trim vs provisioned concurrency on a bursty day.
    println!("\n(c) trim vs provisioned concurrency (24 h trace, 15 min keep-alive)");
    let platform = default_platform();
    let trace = generate_trace(&TraceConfig::default());
    let bench = trim_apps::app("lightgbm").expect("ext app");
    let r = AppResult::compute_default(bench);
    let before = r.profile_before();
    let after = r.profile_after();
    let matched = nearest_function(&trace.functions, before.mem_mb, before.exec_secs * 1000.0)
        .expect("trace nonempty");
    let run = |profile: &lambda_sim::AppProfile, provisioned: usize| {
        lambda_sim::simulate_pool_ext(
            &platform,
            profile,
            &matched.arrivals,
            &lambda_sim::PoolOptions {
                provisioned,
                ..lambda_sim::PoolOptions::default()
            },
        )
    };
    println!(
        "{:<26} {:>8} {:>12} {:>12}",
        "variant", "colds", "mean e2e s", "total $"
    );
    for (label, profile, prov) in [
        ("original", &before, 0usize),
        ("original + provisioned 1", &before, 1),
        ("trimmed", &after, 0),
        ("trimmed + provisioned 1", &after, 1),
    ] {
        let stats = run(profile, prov);
        println!(
            "{:<26} {:>8} {:>12.3} {:>12.6}",
            label,
            stats.cold_starts,
            stats.mean_e2e_secs(),
            stats.total_cost()
        );
    }
    println!("(provisioning buys latency with standing cost; trimming cuts both — they compose)");
}

// ---------------------------------------------------------------------------
// Probe overhead: per-probe registry setup, snapshot-rebuild vs COW overlay.
// ---------------------------------------------------------------------------
fn probe() {
    banner("Probe overhead — per-probe registry setup (snapshot rebuild vs COW overlay)");
    println!(
        "{:<18} {:>8} {:>16} {:>14} {:>9}",
        "application", "modules", "snapshot ns", "overlay ns", "speedup"
    );
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for bench in trim_apps::corpus() {
        let module = &bench.example_module;
        let replacement = bench
            .registry
            .source(module)
            .expect("example module present")
            .to_string();
        let cost = trim_bench::probe_cost::measure(&bench.registry, module, &replacement, 20);
        println!(
            "{:<18} {:>8} {:>16} {:>14} {:>8.1}x",
            bench.name,
            bench.registry.len(),
            cost.snapshot_ns,
            cost.overlay_ns,
            cost.speedup()
        );
        speedups.push(cost.speedup());
        rows.push(format!(
            "    {{\"app\": \"{}\", \"modules\": {}, \"snapshot_rebuild_ns\": {}, \"cow_overlay_ns\": {}, \"speedup\": {:.2}}}",
            bench.name,
            bench.registry.len(),
            cost.snapshot_ns,
            cost.overlay_ns,
            cost.speedup()
        ));
    }
    let mean_speedup = mean(&speedups);
    let min_speedup = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("mean speedup {mean_speedup:.1}x, min {min_speedup:.1}x (target: >=5x per probe)");
    let json = format!(
        "{{\n  \"bench\": \"probe_overhead\",\n  \"unit\": \"ns_per_probe_setup\",\n  \"apps\": [\n{}\n  ],\n  \"mean_speedup\": {:.2},\n  \"min_speedup\": {:.2}\n}}\n",
        rows.join(",\n"),
        mean_speedup,
        min_speedup
    );
    let path = "BENCH_probe.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

// ---------------------------------------------------------------------------
// Hazard granularity: per-attribute pinning vs blanket module fallback.
// ---------------------------------------------------------------------------
fn hazard(jobs: usize) {
    banner("Hazard granularity — per-attribute pinning vs blanket-fallback baseline");
    eprintln!(
        "[experiments] trimming the corpus twice (per-attribute + blanket, {jobs} job{})...",
        if jobs == 1 { "" } else { "s" }
    );
    let per_attr = compute_corpus(
        trim_apps::corpus(),
        &trim_core::DebloatOptions::default(),
        jobs,
    );
    let blanket = compute_corpus(
        trim_apps::corpus(),
        &trim_core::DebloatOptions {
            hazards: trim_core::HazardMode::Blanket,
            ..trim_core::DebloatOptions::default()
        },
        jobs,
    );
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "application", "blanket rm", "pinned rm", "recovered", "blk fb", "pin fb", "pinned"
    );
    let mut rows = Vec::new();
    let (mut total_pa, mut total_bl) = (0usize, 0usize);
    let mut apps_recovered = 0usize;
    for (pa, bl) in per_attr.iter().zip(&blanket) {
        assert_eq!(
            pa.bench.name, bl.bench.name,
            "corpus order is deterministic"
        );
        let pa_rm = pa.report.attrs_removed();
        let bl_rm = bl.report.attrs_removed();
        let recovered = pa_rm.saturating_sub(bl_rm);
        let pinned: usize = pa
            .report
            .pinned_hazard_attrs
            .values()
            .map(|a| a.len())
            .sum();
        total_pa += pa_rm;
        total_bl += bl_rm;
        if recovered > 0 {
            apps_recovered += 1;
        }
        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8}",
            pa.bench.name,
            bl_rm,
            pa_rm,
            recovered,
            bl.report.fallback_modules.len(),
            pa.report.fallback_modules.len(),
            pinned
        );
        rows.push(format!(
            "    {{\"app\": \"{}\", \"blanket_removed\": {bl_rm}, \"per_attr_removed\": {pa_rm}, \
             \"recovered\": {recovered}, \"blanket_fallback_modules\": {}, \
             \"per_attr_fallback_modules\": {}, \"pinned_attrs\": {pinned}}}",
            pa.bench.name,
            bl.report.fallback_modules.len(),
            pa.report.fallback_modules.len()
        ));
    }
    let recovered_total = total_pa.saturating_sub(total_bl);
    let recovered_ratio = recovered_total as f64 / total_pa.max(1) as f64;
    assert!(
        apps_recovered > 0,
        "per-attribute routing must recover trim on at least one blanket-fallback app"
    );
    println!(
        "total removed: blanket {total_bl}, per-attribute {total_pa} — {recovered_total} attributes \
         ({:.1}% of the per-attribute trim) recovered from blanket fallback across {apps_recovered} apps",
        recovered_ratio * 100.0
    );
    let json = format!(
        "{{\n  \"bench\": \"hazard_granularity\",\n  \"unit\": \"attributes_removed\",\n  \"apps\": [\n{}\n  ],\n  \
         \"blanket_removed_total\": {total_bl},\n  \"per_attr_removed_total\": {total_pa},\n  \
         \"recovered_total\": {recovered_total},\n  \"recovered_ratio\": {recovered_ratio:.4},\n  \
         \"apps_recovered\": {apps_recovered}\n}}\n",
        rows.join(",\n")
    );
    let path = "BENCH_hazard.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

// ---------------------------------------------------------------------------
// Trace replay benchmark: golden-fixture metrics + synthetic throughput.
// ---------------------------------------------------------------------------
fn replay_bench(jobs: usize) {
    banner("Trace replay — Azure-schema fixture metrics + synthetic-trace throughput");
    let platform = default_platform();

    // (a) Deterministic metrics from the checked-in golden fixture: the
    // same trace the tier-1 test replays, so this block is byte-identical
    // across runs and across --jobs.
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/azure_trace_sample.csv"
    );
    let trace = load_trace_csv(fixture, 0xA57AC3).expect("golden fixture parses");
    let options = ReplayOptions {
        jobs,
        ..ReplayOptions::default()
    };
    let report = replay_trace(&platform, &trace, &options);
    let metrics = render_metrics_json(&report);
    println!(
        "fixture: {} functions, {} invocations over {:.0} s",
        trace.functions.len(),
        trace.invocations(),
        trace.window_secs
    );
    for v in &report.variants {
        println!(
            "  mode {:<8} keep-alive {:>5.0} s: cold ratio {:.3}, p99 E2E {:.2} s, total ${:.6}",
            format!("{:?}", v.mode),
            v.keep_alive_secs,
            v.cold_ratio(),
            v.e2e_p99_secs,
            v.total_cost()
        );
    }

    // (b) Throughput on a full-size synthetic trace (variable; lives
    // outside the deterministic metrics block).
    let synthetic = generate_trace(&TraceConfig::default());
    let replayed: usize = synthetic.invocations() * 4; // 2 modes × 2 keep-alives
    let start = std::time::Instant::now();
    let _ = replay_trace(&platform, &synthetic, &options);
    let elapsed = start.elapsed().as_secs_f64();
    let per_sec = replayed as f64 / elapsed.max(1e-9);
    println!(
        "throughput: {replayed} pool-invocations in {:.2} s with {jobs} job{} = {:.0}/s",
        elapsed,
        if jobs == 1 { "" } else { "s" },
        per_sec
    );

    // (c) Event-driven vs naive pool engine on burst-heavy workloads —
    // the regime where the naive per-arrival scan is quadratic (every
    // arrival rescans a pool that bursts keep large). Stats must agree
    // exactly; the speedup is what the event-driven rewrite buys.
    let burst_rows: Vec<String> = burst_configs()
        .iter()
        .map(|cfg| {
            let (arrivals, app, pool) = cfg.build();
            let t = std::time::Instant::now();
            let naive = simulate_pool_ext_naive_traced(&platform, &app, &arrivals, &pool, |_| {});
            let naive_s = t.elapsed().as_secs_f64();
            let t = std::time::Instant::now();
            let event = simulate_pool_ext_traced(&platform, &app, &arrivals, &pool, |_| {});
            let event_s = t.elapsed().as_secs_f64();
            assert_eq!(naive, event, "{}: engines diverged", cfg.name);
            let speedup = naive_s / event_s.max(1e-9);
            println!(
                "burst `{}`: {} arrivals, naive {:.3} s, event {:.4} s = {:.1}x",
                cfg.name,
                arrivals.len(),
                naive_s,
                event_s,
                speedup
            );
            format!(
                "    {{\"config\": \"{}\", \"arrivals\": {}, \"naive_s\": {naive_s:.4}, \
                 \"event_s\": {event_s:.4}, \"speedup\": {speedup:.1}}}",
                cfg.name,
                arrivals.len()
            )
        })
        .collect();

    // (d) Fleet-scaling sweep: stream synthetic fleets straight through
    // the pool with bounded memory (no trace materialization), recording
    // where the throughput curve bends as the fleet grows 100×.
    let fleet_rows: Vec<String> = [400usize, 4_000, 40_000]
        .iter()
        .map(|&functions| {
            let config = TraceConfig {
                functions,
                ..TraceConfig::default()
            };
            let start = std::time::Instant::now();
            let report =
                replay_fleet(&platform, &config, &options).expect("default fleet config is valid");
            let elapsed = start.elapsed().as_secs_f64();
            let replayed = report.invocations * report.variants.len() as u64;
            let per_sec = replayed as f64 / elapsed.max(1e-9);
            println!(
                "fleet {functions:>6} functions: {replayed} pool-invocations streamed in \
                 {elapsed:.2} s = {per_sec:.0}/s"
            );
            format!(
                "    {{\"functions\": {functions}, \"invocations\": {}, \
                 \"pool_invocations\": {replayed}, \"elapsed_s\": {elapsed:.3}, \
                 \"pool_invocations_per_sec\": {per_sec:.0}}}",
                report.invocations
            )
        })
        .collect();

    let indented: String = metrics
        .lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n");
    let json = format!(
        "{{\n  \"bench\": \"trace_replay\",\n  \"unit\": \"pool_invocations_per_sec\",\n  \
         \"fixture\": \"tests/golden/azure_trace_sample.csv\",\n  \"jobs\": {jobs},\n  \
         \"host_cores\": {},\n  \"synthetic_functions\": {},\n  \"synthetic_invocations\": {},\n  \
         \"elapsed_s\": {elapsed:.3},\n  \"pool_invocations_per_sec\": {per_sec:.0},\n  \
         \"burst_engine_comparison\": [\n{}\n  ],\n  \"fleet_scaling\": [\n{}\n  ],\n  \
         \"metrics\":\n{indented}\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        synthetic.functions.len(),
        synthetic.invocations(),
        burst_rows.join(",\n"),
        fleet_rows.join(",\n"),
    );
    let path = "BENCH_replay.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

/// A deterministic burst-heavy workload: `bursts` bursts of `burst_size`
/// simultaneous arrivals, `gap_secs` apart, against a long-running app
/// with a long keep-alive — so the live pool holds
/// `burst_size × exec_secs / gap_secs` instances and the naive engine's
/// per-arrival scan goes quadratic.
struct BurstConfig {
    name: &'static str,
    bursts: usize,
    burst_size: usize,
    gap_secs: f64,
    exec_secs: f64,
    max_concurrency: Option<usize>,
}

impl BurstConfig {
    fn build(&self) -> (Vec<f64>, AppProfile, PoolOptions) {
        let mut arrivals = Vec::with_capacity(self.bursts * self.burst_size);
        for b in 0..self.bursts {
            let t = b as f64 * self.gap_secs;
            for _ in 0..self.burst_size {
                arrivals.push(t);
            }
        }
        let app = AppProfile::new("burst", 64.0, 0.5, self.exec_secs, 512.0);
        let window = self.bursts as f64 * self.gap_secs + self.exec_secs + 7_200.0;
        let pool = PoolOptions {
            keep_alive_secs: 7_200.0,
            max_concurrency: self.max_concurrency,
            window_secs: window,
            ..PoolOptions::default()
        };
        (arrivals, app, pool)
    }
}

fn burst_configs() -> Vec<BurstConfig> {
    vec![
        BurstConfig {
            name: "burst_pool_1k",
            bursts: 400,
            burst_size: 250,
            gap_secs: 30.0,
            exec_secs: 120.0,
            max_concurrency: None,
        },
        BurstConfig {
            name: "burst_pool_5k",
            bursts: 400,
            burst_size: 250,
            gap_secs: 30.0,
            exec_secs: 600.0,
            max_concurrency: None,
        },
        // Parity reference, not a speedup target: a concurrency cap bounds
        // the pool at `cap` instances, so the naive scan is O(cap) and
        // never quadratic — this row documents that the event engine stays
        // competitive even where the old engine was not the bottleneck.
        BurstConfig {
            name: "capped_parity_reference",
            bursts: 200,
            burst_size: 100,
            gap_secs: 30.0,
            exec_secs: 5.0,
            max_concurrency: Some(32),
        },
    ]
}

// ---------------------------------------------------------------------------
// Replay smoke (CI): engine differential + streamed fleet determinism.
// ---------------------------------------------------------------------------
fn replay_smoke(jobs: usize) {
    banner("Replay smoke — engine differential + small streamed fleet");
    let platform = default_platform();

    // Event-driven engine must match the naive oracle on the golden
    // fixture, function by function, under both capped and uncapped pools.
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/azure_trace_sample.csv"
    );
    let trace = load_trace_csv(fixture, 0xA57AC3).expect("golden fixture parses");
    let mut checked = 0usize;
    for function in &trace.functions {
        let app = AppProfile::new(
            function.name.clone(),
            64.0,
            0.5,
            function.duration_ms / 1000.0,
            function.mem_mb,
        );
        for max_concurrency in [None, Some(2)] {
            let pool = PoolOptions {
                max_concurrency,
                window_secs: trace.window_secs,
                ..PoolOptions::default()
            };
            let naive =
                simulate_pool_ext_naive_traced(&platform, &app, &function.arrivals, &pool, |_| {});
            let event =
                simulate_pool_ext_traced(&platform, &app, &function.arrivals, &pool, |_| {});
            assert_eq!(naive, event, "{}: engines diverged", function.name);
            checked += 1;
        }
    }
    println!("engine differential: {checked} (function × pool) cases identical");

    // One quick burst config through both engines.
    let cfg = BurstConfig {
        name: "smoke_burst",
        bursts: 50,
        burst_size: 80,
        gap_secs: 30.0,
        exec_secs: 120.0,
        max_concurrency: None,
    };
    let (arrivals, app, pool) = cfg.build();
    let naive = simulate_pool_ext_naive_traced(&platform, &app, &arrivals, &pool, |_| {});
    let event = simulate_pool_ext_traced(&platform, &app, &arrivals, &pool, |_| {});
    assert_eq!(naive, event, "smoke burst: engines diverged");
    println!("burst differential: {} arrivals identical", arrivals.len());

    // Small streamed fleet: byte-identical metrics across worker counts,
    // and identical to what this invocation's --jobs produces.
    let config = TraceConfig {
        functions: 200,
        window_secs: 4.0 * 3600.0,
        ..TraceConfig::default()
    };
    let renders: Vec<String> = [1usize, jobs.max(2)]
        .into_iter()
        .map(|j| {
            let options = ReplayOptions {
                jobs: j,
                ..ReplayOptions::default()
            };
            render_fleet_metrics_json(
                &replay_fleet(&platform, &config, &options).expect("smoke fleet config is valid"),
            )
        })
        .collect();
    assert_eq!(
        renders[0], renders[1],
        "streamed fleet metrics must be byte-identical across worker counts"
    );
    println!(
        "fleet determinism: {} functions streamed, jobs 1 == jobs {}",
        config.functions,
        jobs.max(2)
    );
    println!("replay smoke OK");
}

// ---------------------------------------------------------------------------
// Bytecode VM tier: per-oracle-run wall clock vs the tree-walker.
// ---------------------------------------------------------------------------

/// Median wall-clock nanoseconds of one oracle run under each engine,
/// returned as `(tree_ns, vm_ns)`. Samples are interleaved —
/// tree, vm, tree, vm, … within one `LT_BENCH_BUDGET_MS` window — so CPU
/// frequency drift hits both engines equally instead of biasing whichever
/// was measured second. The per-run protocol matches the `interp` binary,
/// so rows are comparable with `BENCH_interp.json`.
fn measure_engines(bench: &trim_apps::BenchApp, budget: std::time::Duration) -> (u64, u64) {
    use std::time::Instant;
    let one_run = |engine| {
        let t = Instant::now();
        std::hint::black_box(trim_core::run_app_with(
            &bench.registry,
            &bench.app_source,
            &bench.spec,
            engine,
        ))
        .expect("corpus app runs");
        t.elapsed().as_nanos() as u64
    };
    // Warm-up: populates the shared parse/resolve/bytecode slots.
    one_run(trim_core::Engine::Tree);
    one_run(trim_core::Engine::Vm);
    let mut tree: Vec<u64> = Vec::new();
    let mut vm: Vec<u64> = Vec::new();
    let deadline = Instant::now() + budget;
    while Instant::now() < deadline || tree.len() < 5 {
        tree.push(one_run(trim_core::Engine::Tree));
        vm.push(one_run(trim_core::Engine::Vm));
        if tree.len() >= 500 {
            break;
        }
    }
    tree.sort_unstable();
    vm.sort_unstable();
    (tree[tree.len() / 2], vm[vm.len() / 2])
}

/// One instrumented VM oracle run: inline-cache `(hits, misses)` summed
/// over live-handler and module-init lookups across every
/// generation-checked attribute site. Snapshots are off here, so folding
/// the two phases back together keeps the historical bench metric.
fn ic_totals_for(bench: &trim_apps::BenchApp) -> (u64, u64) {
    let mut it = pylite::Interpreter::new(bench.registry.clone());
    it.engine = pylite::Engine::Vm;
    it.enable_ic_stats();
    it.exec_main(&bench.app_source)
        .unwrap_or_else(|e| panic!("{} init failed: {e}", bench.name));
    for case in &bench.spec.cases {
        let event = trim_core::oracle::parse_literal(&case.event).expect("literal event");
        let context = trim_core::oracle::parse_literal(&case.context).expect("literal context");
        it.call_handler(&bench.spec.handler, event, context)
            .unwrap_or_else(|e| panic!("{} handler failed: {e}", bench.name));
    }
    let (live_h, live_m) = it.ic_totals();
    let (init_h, init_m) = it.ic_init_totals();
    (live_h + init_h, live_m + init_m)
}

fn vm_bench() {
    banner("VM tier — wall-clock per oracle run, bytecode VM vs tree-walker");
    let budget_ms = std::env::var("LT_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300u64);
    let budget = std::time::Duration::from_millis(budget_ms);
    println!(
        "{:<18} {:>12} {:>12} {:>8} {:>12} {:>8}",
        "application", "tree ns", "vm ns", "speedup", "ic hit/miss", "hit%"
    );
    let mut rows = Vec::new();
    let mut log_sum = 0.0f64;
    let mut min_speedup = f64::INFINITY;
    let corpus = trim_apps::corpus();
    for bench in &corpus {
        let (tree_ns, vm_ns) = measure_engines(bench, budget);
        let speedup = tree_ns as f64 / vm_ns as f64;
        log_sum += speedup.ln();
        min_speedup = min_speedup.min(speedup);
        let (hits, misses) = ic_totals_for(bench);
        let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
        println!(
            "{:<18} {:>12} {:>12} {:>7.2}x {:>6}/{:<5} {:>7.1}%",
            bench.name,
            tree_ns,
            vm_ns,
            speedup,
            hits,
            misses,
            hit_rate * 100.0
        );
        rows.push(format!(
            "    {{\"app\": \"{}\", \"tree_ns\": {tree_ns}, \"vm_ns\": {vm_ns}, \
             \"speedup\": {speedup:.2}, \"ic_hits\": {hits}, \"ic_misses\": {misses}, \
             \"ic_hit_rate\": {hit_rate:.4}}}",
            bench.name
        ));
    }
    let geomean = (log_sum / corpus.len() as f64).exp();
    let json = format!(
        "{{\n  \"bench\": \"vm_tier\",\n  \"unit\": \"ns_per_oracle_run\",\n  \
         \"baseline\": \"tree-walker (the BENCH_interp.json `after` build)\",\n  \"apps\": [\n{}\n  ],\n  \
         \"geomean_speedup\": {geomean:.2},\n  \"min_speedup\": {min_speedup:.2}\n}}\n",
        rows.join(",\n")
    );
    println!("geomean speedup {geomean:.2}x, min {min_speedup:.2}x (target: >=1.5x geomean)");
    let path = "BENCH_vm.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

/// CI differential smoke: one corpus app trimmed under both execution
/// tiers must produce identical reports (modules, costs, fallbacks — the
/// whole [`trim_core::TrimReport`]).
fn vm_smoke() {
    banner("VM smoke — markdown trimmed under both engines must agree");
    let bench = trim_apps::app("markdown").expect("markdown in corpus");
    let run = |engine| {
        trim_core::trim_app(
            &bench.registry,
            &bench.app_source,
            &bench.spec,
            &trim_core::DebloatOptions {
                engine,
                ..trim_core::DebloatOptions::default()
            },
        )
        .expect("trim succeeds")
    };
    let tree = run(trim_core::Engine::Tree);
    let vm = run(trim_core::Engine::Vm);
    assert_eq!(
        vm, tree,
        "VM trim report diverged from the tree-walker reference"
    );
    println!(
        "engines agree: {} modules, {} attrs removed, {} oracle probes, init {:.9}->{:.9}s",
        vm.modules.len(),
        vm.attrs_removed(),
        vm.oracle_invocations,
        vm.before.init_secs,
        vm.after.init_secs
    );
}

// ---------------------------------------------------------------------------
// Init-snapshot memoization: per-probe init wall clock, replay vs live.
// ---------------------------------------------------------------------------

/// One init run (`exec_main` only — the phase every DD probe repeats) on a
/// fresh interpreter over the app's registry family. With `snapshots`, the
/// family's shared snapshot store is consulted and filled, so the first
/// such run captures and later ones replay.
fn memo_init_run(bench: &trim_apps::BenchApp, snapshots: bool) -> u64 {
    use std::time::Instant;
    let mut it = pylite::Interpreter::new(bench.registry.clone());
    it.engine = pylite::Engine::Vm;
    if snapshots {
        it.enable_init_snapshots();
    }
    let t = Instant::now();
    std::hint::black_box(it.exec_main(&bench.app_source))
        .unwrap_or_else(|e| panic!("{} init failed: {e}", bench.name));
    t.elapsed().as_nanos() as u64
}

/// Registry modules loaded by one live init run — the app's import-cone
/// size, used to select the deep-import slice of the corpus.
fn init_modules_loaded(bench: &trim_apps::BenchApp) -> usize {
    let mut it = pylite::Interpreter::new(bench.registry.clone());
    it.engine = pylite::Engine::Vm;
    it.exec_main(&bench.app_source)
        .unwrap_or_else(|e| panic!("{} init failed: {e}", bench.name));
    // `loaded_modules` includes `__main__`; the cone is everything else.
    it.loaded_modules().len().saturating_sub(1)
}

/// Corpus apps whose init imports at least this many registry modules are
/// "deep-import" — the slice where snapshot replay amortizes real work.
const MEMO_DEEP_CONE: usize = 3;

/// Benchmark `memo`: median per-probe init wall clock with the snapshot
/// cache off (live execution, the pre-cache behavior) vs warmed on
/// (replay), over the deep-import corpus slice. Writes `BENCH_memo.json`.
fn memo_bench() {
    use std::time::Instant;
    banner("Init-snapshot memoization — per-probe init, live vs replay");
    let budget_ms = std::env::var("LT_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300u64);
    let budget = std::time::Duration::from_millis(budget_ms);
    println!(
        "{:<18} {:>5} {:>12} {:>12} {:>8} {:>8} {:>8}",
        "application", "cone", "live ns", "replay ns", "speedup", "hits", "captures"
    );
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut skipped = Vec::new();
    for bench in trim_apps::corpus() {
        let cone = init_modules_loaded(&bench);
        if cone < MEMO_DEEP_CONE {
            skipped.push(format!("{} (cone {cone})", bench.name));
            continue;
        }
        // Warm-up: first snapshot run captures; first live run populates
        // the family's shared parse/resolve/bytecode slots for both arms.
        memo_init_run(&bench, false);
        memo_init_run(&bench, true);
        // Interleave live and replay samples within one budget window so
        // CPU frequency drift hits both arms equally.
        let mut live: Vec<u64> = Vec::new();
        let mut replay: Vec<u64> = Vec::new();
        let deadline = Instant::now() + budget;
        while Instant::now() < deadline || live.len() < 5 {
            live.push(memo_init_run(&bench, false));
            replay.push(memo_init_run(&bench, true));
            if live.len() >= 500 {
                break;
            }
        }
        live.sort_unstable();
        replay.sort_unstable();
        let (live_ns, replay_ns) = (live[live.len() / 2], replay[replay.len() / 2]);
        let speedup = live_ns as f64 / replay_ns.max(1) as f64;
        let stats = bench.registry.snapshot_store().stats();
        println!(
            "{:<18} {:>5} {:>12} {:>12} {:>7.2}x {:>8} {:>8}",
            bench.name, cone, live_ns, replay_ns, speedup, stats.hits, stats.captures
        );
        rows.push(format!(
            "    {{\"app\": \"{}\", \"cone\": {cone}, \"live_ns\": {live_ns}, \
             \"replay_ns\": {replay_ns}, \"speedup\": {speedup:.3}, \
             \"replay_hits\": {}, \"captures\": {}}}",
            bench.name, stats.hits, stats.captures
        ));
        speedups.push(speedup);
    }
    if !skipped.is_empty() {
        println!(
            "skipped {} shallow app(s) (import cone < {MEMO_DEEP_CONE}): {}",
            skipped.len(),
            skipped.join(", ")
        );
    }
    assert!(!speedups.is_empty(), "corpus has deep-import apps");
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    let min_speedup = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let json = format!(
        "{{\n  \"bench\": \"init_snapshot_memo\",\n  \"unit\": \"ns_per_probe_init\",\n  \
         \"baseline\": \"live module-body execution (snapshot cache disabled)\",\n  \
         \"deep_cone_threshold\": {MEMO_DEEP_CONE},\n  \"apps\": [\n{}\n  ],\n  \
         \"geomean_speedup\": {geomean:.2},\n  \"min_speedup\": {min_speedup:.2}\n}}\n",
        rows.join(",\n")
    );
    println!("geomean speedup {geomean:.2}x, min {min_speedup:.2}x (target: >=2x geomean)");
    let path = "BENCH_memo.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

/// CI memoization smoke: one deep-import corpus app trimmed with the
/// snapshot cache on vs off must produce identical reports, and the cache
/// must actually have been exercised (captures and replay hits observed).
fn memo_smoke() {
    banner("Memo smoke — igraph trimmed with and without snapshot replay");
    let bench = trim_apps::app("igraph").expect("igraph in corpus");
    let run = |init_snapshots| {
        trim_core::trim_app(
            &bench.registry,
            &bench.app_source,
            &bench.spec,
            &trim_core::DebloatOptions {
                init_snapshots,
                ..trim_core::DebloatOptions::default()
            },
        )
        .expect("trim succeeds")
    };
    let live = run(false);
    let stats_before = bench.registry.snapshot_store().stats();
    assert_eq!(
        (stats_before.captures, stats_before.hits),
        (0, 0),
        "snapshots-off trim must not touch the store"
    );
    let replayed = run(true);
    assert_eq!(
        replayed, live,
        "snapshot-replay trim report diverged from live execution"
    );
    let stats = bench.registry.snapshot_store().stats();
    assert!(stats.captures > 0, "snapshot trim must capture");
    assert!(stats.hits > 0, "snapshot trim must replay across probes");
    println!(
        "trims agree: {} modules, {} attrs removed, {} oracle probes; \
         snapshot store: {} captures, {} replay hits, {} misses, {} poisons",
        replayed.modules.len(),
        replayed.attrs_removed(),
        replayed.oracle_invocations,
        stats.captures,
        stats.hits,
        stats.misses,
        stats.poisons
    );
}

/// Selective-init slicing benchmark: trim every corpus app with statement
/// slicing on vs off, then report per-app init-statement counts on the
/// kept (DD-trimmed) modules and the simulated init cost of the deployed
/// artifact. Both trims are deterministic, so the output is stable.
fn slice_bench() {
    banner("Selective-init slicing — init statements and meter cost, on vs off");
    println!(
        "{:<18} {:>6} {:>6} {:>8} {:>12} {:>12} {:>8}",
        "application", "stmts", "kept", "dropped", "init off s", "init on s", "meter"
    );
    let mut rows = Vec::new();
    let mut stmt_ratios = Vec::new();
    let mut meter_ratios = Vec::new();
    for bench in trim_apps::corpus() {
        let run = |slice_init| {
            trim_core::trim_app(
                &bench.registry,
                &bench.app_source,
                &bench.spec,
                &trim_core::DebloatOptions {
                    slice_init,
                    ..trim_core::DebloatOptions::default()
                },
            )
            .expect("trim succeeds")
        };
        let off = run(false);
        let on = run(true);
        assert!(
            on.after.behavior_eq(&off.after),
            "{}: slicing changed behavior",
            bench.name
        );
        let stmts_total: usize = on.slices.iter().map(|s| s.stmts_before).sum();
        let stmts_kept: usize = on.slices.iter().map(|s| s.stmts_after).sum();
        let dropped = stmts_total - stmts_kept;
        let (init_off, init_on) = (off.after.init_secs, on.after.init_secs);
        let meter_ratio = if init_on > 0.0 {
            init_off / init_on
        } else {
            1.0
        };
        let stmt_ratio = if stmts_kept > 0 {
            stmts_total as f64 / stmts_kept as f64
        } else {
            1.0
        };
        println!(
            "{:<18} {:>6} {:>6} {:>8} {:>12.6} {:>12.6} {:>7.2}x",
            bench.name, stmts_total, stmts_kept, dropped, init_off, init_on, meter_ratio
        );
        rows.push(format!(
            "    {{\"app\": \"{}\", \"init_stmts_total\": {stmts_total}, \
             \"init_stmts_kept\": {stmts_kept}, \"init_stmts_dropped\": {dropped}, \
             \"init_secs_unsliced\": {init_off:.9}, \"init_secs_sliced\": {init_on:.9}, \
             \"fallbacks\": {}}}",
            bench.name,
            on.slices.iter().filter(|s| s.fell_back).count()
        ));
        stmt_ratios.push(stmt_ratio);
        meter_ratios.push(meter_ratio);
    }
    let geomean = |xs: &[f64]| (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp();
    let (stmt_geo, meter_geo) = (geomean(&stmt_ratios), geomean(&meter_ratios));
    println!(
        "geomean reduction: {stmt_geo:.2}x init statements, {meter_geo:.2}x simulated init cost"
    );
    assert!(
        stmt_geo > 1.0,
        "slicing must drop init statements somewhere in the corpus"
    );
    let json = format!(
        "{{\n  \"bench\": \"selective_init_slice\",\n  \"unit\": \"init_statements_and_virtual_seconds\",\n  \
         \"baseline\": \"attribute-granular trim without statement slicing (--no-slice)\",\n  \
         \"apps\": [\n{}\n  ],\n  \"geomean_stmt_reduction\": {stmt_geo:.3},\n  \
         \"geomean_meter_reduction\": {meter_geo:.3}\n}}\n",
        rows.join(",\n")
    );
    let path = "BENCH_slice.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

/// CI slicing smoke: one corpus app trimmed with statement slicing on vs
/// off must agree on DD results and behavior, and slicing must actually
/// drop init statements and simulated init cost.
fn slice_smoke() {
    banner("Slice smoke — igraph trimmed with and without init slicing");
    let bench = trim_apps::app("igraph").expect("igraph in corpus");
    let run = |slice_init| {
        trim_core::trim_app(
            &bench.registry,
            &bench.app_source,
            &bench.spec,
            &trim_core::DebloatOptions {
                slice_init,
                ..trim_core::DebloatOptions::default()
            },
        )
        .expect("trim succeeds")
    };
    let off = run(false);
    let on = run(true);
    assert!(off.slices.is_empty(), "--no-slice must skip the pass");
    assert!(!on.slices.is_empty(), "default trim must slice");
    for (a, b) in off.modules.iter().zip(&on.modules) {
        assert_eq!(a, b, "slicing must not change DD module results");
    }
    assert!(
        on.after.behavior_eq(&off.after),
        "sliced deployment diverged from unsliced"
    );
    assert!(
        on.init_stmts_removed() > 0,
        "slicing must drop init statements on this app"
    );
    assert!(
        on.after.init_secs < off.after.init_secs,
        "slicing must cut simulated init cost ({} vs {})",
        on.after.init_secs,
        off.after.init_secs
    );
    println!(
        "trims agree: {} modules, {} of {} init statements removed, init {:.6}s -> {:.6}s",
        on.slices.len(),
        on.init_stmts_removed(),
        on.slices.iter().map(|s| s.stmts_before).sum::<usize>(),
        off.after.init_secs,
        on.after.init_secs
    );
}
