use std::time::Instant;
use trim_core::{trim_app, DebloatOptions};

fn main() {
    let names: Vec<String> = std::env::args().skip(1).collect();
    let names = if names.is_empty() {
        vec![
            "markdown".into(),
            "dna-visualization".into(),
            "lightgbm".into(),
            "resnet".into(),
        ]
    } else {
        names
    };
    for name in names {
        let bench = trim_apps::app(&name).expect("app");
        let t0 = Instant::now();
        let report = trim_app(
            &bench.registry,
            &bench.app_source,
            &bench.spec,
            &DebloatOptions::default(),
        )
        .unwrap();
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "{name}: wall={wall:.1}s probes={} removed={} init {:.3}->{:.3}s mem {:.1}->{:.1}MB debloat_sim={:.0}s",
            report.oracle_invocations,
            report.attrs_removed(),
            report.before.init_secs, report.after.init_secs,
            report.before.mem_mb, report.after.mem_mb,
            report.debloat_secs
        );
        for m in &report.modules {
            println!(
                "   {}: {}/{} kept, {} probes",
                m.module, m.attrs_after, m.attrs_before, m.dd_stats.oracle_invocations
            );
        }
    }
}
