//! Interpreter hot-path benchmark: wall-clock nanoseconds per oracle run,
//! per corpus application.
//!
//! One "oracle run" is exactly what every DD probe pays: a fresh
//! interpreter, full application initialization (imports included), then
//! every oracle case through the handler. This is the quantity the
//! interned-symbol/resolved-IR/inline-cache rewrite optimizes, so it is
//! measured end to end rather than as isolated micro-ops.
//!
//! Usage:
//!
//! ```text
//! interp                      # measure, print one "<app> <ns>" line each
//! interp --baseline FILE      # measure, read FILE ("<app> <ns>" lines from
//!                             # the pre-rewrite build), write BENCH_interp.json
//! ```
//!
//! `LT_BENCH_BUDGET_MS` bounds the per-app sampling budget (default 300).

use std::time::{Duration, Instant};
use trim_core::run_app;

/// Median wall-clock duration of one oracle run, sampled under a budget.
fn measure_app(bench: &trim_apps::BenchApp, budget: Duration) -> u64 {
    let one_run = || {
        std::hint::black_box(run_app(&bench.registry, &bench.app_source, &bench.spec))
            .expect("corpus app runs");
    };
    one_run(); // warm-up: populates shared parse/resolve slots
    let mut samples: Vec<u64> = Vec::new();
    let deadline = Instant::now() + budget;
    while Instant::now() < deadline || samples.len() < 5 {
        let t = Instant::now();
        one_run();
        samples.push(t.elapsed().as_nanos() as u64);
        if samples.len() >= 500 {
            break;
        }
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Parse "<app> <ns>" lines produced by a `--baseline`-less invocation.
fn read_baseline(path: &str) -> Vec<(String, u64)> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading baseline {path}: {e}"));
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let mut parts = l.split_whitespace();
            let app = parts.next().expect("app name").to_owned();
            let ns = parts
                .next()
                .and_then(|n| n.parse().ok())
                .unwrap_or_else(|| panic!("bad baseline line: {l:?}"));
            (app, ns)
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline = args
        .iter()
        .position(|a| a == "--baseline")
        .map(|i| read_baseline(args.get(i + 1).expect("--baseline FILE")));

    let budget_ms = std::env::var("LT_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300u64);
    let budget = Duration::from_millis(budget_ms);

    let mut rows = Vec::new();
    for bench in trim_apps::corpus() {
        let ns = measure_app(&bench, budget);
        println!("{} {ns}", bench.name);
        rows.push((bench.name.clone(), ns));
    }

    let Some(before) = baseline else {
        return;
    };

    let mut json_rows = Vec::new();
    let mut log_sum = 0.0f64;
    let mut min_speedup = f64::INFINITY;
    for (app, after_ns) in &rows {
        let before_ns = before
            .iter()
            .find(|(a, _)| a == app)
            .map(|(_, n)| *n)
            .unwrap_or_else(|| panic!("baseline is missing app {app}"));
        let speedup = before_ns as f64 / *after_ns as f64;
        log_sum += speedup.ln();
        min_speedup = min_speedup.min(speedup);
        json_rows.push(format!(
            "    {{\"app\": \"{app}\", \"before_ns\": {before_ns}, \"after_ns\": {after_ns}, \"speedup\": {speedup:.2}}}"
        ));
    }
    let geomean = (log_sum / rows.len() as f64).exp();
    let json = format!(
        "{{\n  \"bench\": \"interp_hot\",\n  \"unit\": \"ns_per_oracle_run\",\n  \"apps\": [\n{}\n  ],\n  \"geomean_speedup\": {:.2},\n  \"min_speedup\": {:.2}\n}}\n",
        json_rows.join(",\n"),
        geomean,
        min_speedup
    );
    let path = "BENCH_interp.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("geomean speedup {geomean:.2}x, min {min_speedup:.2}x");
    println!("wrote {path}");
}
