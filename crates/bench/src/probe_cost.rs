//! Per-probe registry setup cost: what the debloater pays to materialize one
//! candidate registry before running the oracle.
//!
//! Before the copy-on-write registry, every parallel probe serialized the
//! whole corpus into `(name, source)` pairs, rebuilt a fresh [`Registry`],
//! and re-parsed every module from scratch ([`snapshot_rebuild`] reproduces
//! that exactly). The COW path ([`cow_overlay`]) bumps one `Arc` per module
//! and parses only the single rewritten module — everything else shares the
//! base registry's parse slots.

use std::time::Instant;

use pylite::Registry;

/// The pre-COW per-probe setup: serialize → rebuild → re-parse everything.
pub fn snapshot_rebuild(base: &Registry, module: &str, replacement: &str) -> Registry {
    let snapshot: Vec<(String, String)> = base
        .module_names()
        .into_iter()
        .map(|name| {
            let source = base.source(&name).expect("listed module").to_string();
            (name, source)
        })
        .collect();
    let mut rebuilt = Registry::new();
    for (name, source) in snapshot {
        rebuilt.set_module(name, source);
    }
    rebuilt.set_module(module, replacement.to_string());
    for name in rebuilt.module_names() {
        let _ = rebuilt.parse_module(&name);
    }
    rebuilt
}

/// The COW per-probe setup: clone shares every unchanged module's source and
/// parse result; only the rewritten module is stored (and parsed) anew.
pub fn cow_overlay(base: &Registry, module: &str, replacement: &str) -> Registry {
    let overlay = base.with_module(module, replacement.to_string());
    let _ = overlay.parse_module(module);
    overlay
}

/// Median per-iteration cost of both setup strategies for one app.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeCost {
    /// Median nanoseconds per snapshot-rebuild probe setup.
    pub snapshot_ns: u64,
    /// Median nanoseconds per COW-overlay probe setup.
    pub overlay_ns: u64,
}

impl ProbeCost {
    /// How many times cheaper the overlay setup is.
    pub fn speedup(&self) -> f64 {
        self.snapshot_ns as f64 / self.overlay_ns.max(1) as f64
    }
}

fn median_ns<F: FnMut()>(mut f: F, samples: usize, iters: u32) -> u64 {
    let mut timings: Vec<u64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters.max(1) {
                f();
            }
            (start.elapsed().as_nanos() / iters.max(1) as u128) as u64
        })
        .collect();
    timings.sort_unstable();
    timings[timings.len() / 2]
}

/// Measure both setup strategies on `base`, replacing `module` with
/// `replacement`. The base parse cache is warmed first, matching the
/// debloater (the baseline oracle run parses every module before probing).
pub fn measure(base: &Registry, module: &str, replacement: &str, iters: u32) -> ProbeCost {
    for name in base.module_names() {
        let _ = base.parse_module(&name);
    }
    let snapshot_ns = median_ns(
        || {
            std::hint::black_box(snapshot_rebuild(base, module, replacement));
        },
        9,
        iters,
    );
    let overlay_ns = median_ns(
        || {
            std::hint::black_box(cow_overlay(base, module, replacement));
        },
        9,
        iters,
    );
    ProbeCost {
        snapshot_ns,
        overlay_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Registry {
        let mut reg = Registry::new();
        for i in 0..6 {
            reg.set_module(
                format!("mod{i}"),
                format!("def f{i}(x):\n    return x + {i}\n"),
            );
        }
        reg
    }

    #[test]
    fn both_strategies_produce_the_same_registry() {
        let base = base();
        let replacement = "def f0(x):\n    return x\n";
        let a = snapshot_rebuild(&base, "mod0", replacement);
        let b = cow_overlay(&base, "mod0", replacement);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn overlay_is_cheaper_than_snapshot_rebuild() {
        let base = base();
        let cost = measure(&base, "mod0", "def f0(x):\n    return x\n", 50);
        assert!(
            cost.overlay_ns <= cost.snapshot_ns,
            "overlay {} ns should not exceed snapshot rebuild {} ns",
            cost.overlay_ns,
            cost.snapshot_ns
        );
        assert!(cost.speedup() >= 1.0);
    }
}
