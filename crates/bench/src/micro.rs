//! A dependency-free micro-benchmark harness (criterion is unavailable in
//! offline builds).
//!
//! Each bench target is a plain `harness = false` binary that builds a
//! [`Runner`] and registers closures. The runner warms each closure up, then
//! times repeated batches until a time budget is spent, reporting the median
//! batch, which is robust to scheduling noise.
//!
//! Environment knobs:
//!
//! * `LT_BENCH_BUDGET_MS` — per-bench measurement budget (default 300 ms);
//! * `LT_BENCH_FILTER` — substring filter on bench names.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Runs registered micro-benchmarks and prints one line per bench.
pub struct Runner {
    budget: Duration,
    filter: Option<String>,
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

impl Runner {
    /// A runner configured from the environment (see module docs).
    pub fn new() -> Self {
        let budget_ms = std::env::var("LT_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        let filter = std::env::var("LT_BENCH_FILTER")
            .ok()
            .filter(|f| !f.is_empty());
        Runner {
            budget: Duration::from_millis(budget_ms),
            filter,
        }
    }

    /// Time `f`, reporting the median per-iteration latency.
    pub fn bench<R, F: FnMut() -> R>(&self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up + calibration: how many iterations fit in ~1/10 budget?
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let per_batch = ((self.budget.as_nanos() / 10 / once.as_nanos()).max(1) as u32).min(10_000);

        let mut samples: Vec<Duration> = Vec::new();
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline || samples.len() < 3 {
            let t = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            samples.push(t.elapsed() / per_batch);
            if samples.len() >= 200 {
                break;
            }
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        println!(
            "{name:<44} {:>12}  ({} samples x {per_batch} iters)",
            format_duration(median),
            samples.len()
        );
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns/iter")
    } else if ns < 1_000_000 {
        format!("{:.2} µs/iter", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms/iter", ns as f64 / 1e6)
    } else {
        format!("{:.3} s/iter", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_scales() {
        assert!(format_duration(Duration::from_nanos(10)).ends_with("ns/iter"));
        assert!(format_duration(Duration::from_micros(10)).ends_with("µs/iter"));
        assert!(format_duration(Duration::from_millis(10)).ends_with("ms/iter"));
        assert!(format_duration(Duration::from_secs(10)).ends_with("s/iter"));
    }
}
