//! Per-probe registry setup cost, isolated from oracle execution.
//!
//! Every DD probe needs a candidate registry: the corpus with exactly one
//! module rewritten. Before the copy-on-write registry this meant
//! serializing all sources, rebuilding a fresh `Registry`, and re-parsing
//! every module (`snapshot-rebuild` below). Now it is one cheap clone plus
//! one `set_module` plus one parse (`cow-overlay`); `clone` alone shows the
//! raw pointer-bump cost of sharing the base.

use std::hint::black_box;
use trim_bench::micro::Runner;
use trim_bench::probe_cost::{cow_overlay, snapshot_rebuild};

fn main() {
    let runner = Runner::new();
    for name in ["markdown", "scikit", "lightgbm", "spacy"] {
        let bench = trim_apps::app(name).expect("corpus app");
        let registry = bench.registry;
        // The debloater's baseline oracle run parses every module before the
        // first probe, so probes start from a warm shared parse cache.
        for module in registry.module_names() {
            let _ = registry.parse_module(&module);
        }
        let module = bench.example_module;
        let replacement = registry
            .source(&module)
            .expect("example module present")
            .to_string();
        runner.bench(&format!("probe-overhead/{name}/snapshot-rebuild"), || {
            black_box(snapshot_rebuild(&registry, &module, &replacement))
        });
        runner.bench(&format!("probe-overhead/{name}/cow-overlay"), || {
            black_box(cow_overlay(&registry, &module, &replacement))
        });
        runner.bench(&format!("probe-overhead/{name}/clone"), || {
            black_box(registry.clone())
        });
    }
}
