//! Interpreter hot-path micro-benches: the costs the interned-symbol
//! rewrite targets, isolated.
//!
//! * `oracle-run` — one full DD-probe execution (init + handler cases),
//!   the end-to-end quantity `src/bin/interp.rs` records in
//!   `BENCH_interp.json`;
//! * `attr-loop` — a tight module-attribute + method-call loop, the
//!   inline-cache fast path;
//! * `resolve-module` — the amortized cost of the one-time resolve pass
//!   (warm slot hit, the per-probe steady state).

use std::hint::black_box;
use trim_bench::micro::Runner;
use trim_core::run_app;

fn main() {
    let runner = Runner::new();

    for name in ["markdown", "lightgbm", "huggingface", "spacy"] {
        let bench = trim_apps::app(name).expect("corpus app");
        // Warm the shared parse/resolve slots, as the debloater's baseline
        // run does before the first probe.
        run_app(&bench.registry, &bench.app_source, &bench.spec).expect("corpus app runs");
        runner.bench(&format!("interp-hot/{name}/oracle-run"), || {
            black_box(run_app(&bench.registry, &bench.app_source, &bench.spec))
        });
    }

    let mut registry = pylite::Registry::new();
    registry.set_module(
        "m",
        "x = 1\ndef bump(n):\n    return n + x\nclass Acc:\n    def __init__(self):\n        self.total = 0\n    def add(self, n):\n        self.total = self.total + n\n",
    );
    const ATTR_LOOP: &str =
        "import m\nacc = m.Acc()\nfor i in range(200):\n    acc.add(m.bump(i))\n";
    runner.bench("interp-hot/attr-loop/exec", || {
        let mut it = pylite::Interpreter::new(registry.clone());
        it.exec_main(ATTR_LOOP).expect("loop runs");
        black_box(it.meter.snapshot())
    });

    let _ = registry.resolve_module("m");
    runner.bench("interp-hot/resolve-module/warm-slot", || {
        black_box(registry.resolve_module("m"))
    });
}
