//! Micro-benches for the Delta Debugging core: scaling with component
//! count, the probe-cache ablation, and parallel probing.

use std::hint::black_box;
use trim_bench::micro::Runner;
use trim_dd::{ddmin, ddmin_parallel, ddmin_with, DdOptions};

/// A monotone oracle requiring `needed` components spread over the range.
fn spread_oracle(n: u32, needed: usize) -> (Vec<u32>, Vec<u32>) {
    let items: Vec<u32> = (0..n).collect();
    let step = (n as usize / needed.max(1)).max(1) as u32;
    let required: Vec<u32> = (0..n).step_by(step as usize).take(needed).collect();
    (items, required)
}

fn main() {
    let runner = Runner::new();

    for &n in &[64u32, 256, 1024, 4096] {
        let (items, required) = spread_oracle(n, 8);
        runner.bench(&format!("ddmin/scaling/{n}"), || {
            let r = ddmin(&items, &mut |s: &[u32]| {
                required.iter().all(|x| s.contains(x))
            })
            .unwrap();
            black_box(r.minimized.len())
        });
    }

    let (items, required) = spread_oracle(512, 12);
    for (label, cache) in [("cached", true), ("uncached", false)] {
        runner.bench(&format!("ddmin/probe-cache/{label}"), || {
            let r = ddmin_with(
                &items,
                &mut |s: &[u32]| required.iter().all(|x| s.contains(x)),
                DdOptions {
                    cache,
                    ..DdOptions::default()
                },
            )
            .unwrap();
            black_box(r.stats.oracle_invocations)
        });
    }

    let (items, required) = spread_oracle(1024, 10);
    // Make each oracle call non-trivially expensive so parallelism matters.
    let slow_oracle = move |s: &[u32]| {
        let mut acc = 0u64;
        for _ in 0..2_000 {
            acc = acc
                .wrapping_mul(6364136223846793005)
                .wrapping_add(s.len() as u64);
        }
        black_box(acc);
        required.iter().all(|x| s.contains(x))
    };
    {
        let mut oracle = slow_oracle.clone();
        runner.bench("ddmin/parallel/sequential", || {
            black_box(ddmin(&items, &mut oracle).unwrap().minimized.len())
        });
    }
    for threads in [2usize, 4, 8] {
        runner.bench(&format!("ddmin/parallel/threads-{threads}"), || {
            let oracle = slow_oracle.clone();
            let r = ddmin_parallel(
                &items,
                move || {
                    let o = oracle.clone();
                    Box::new(move |s: &[u32]| o(s)) as Box<dyn FnMut(&[u32]) -> bool + Send>
                },
                threads,
                DdOptions::default(),
            )
            .unwrap();
            black_box(r.minimized.len())
        });
    }
}
