//! Criterion benches for the Delta Debugging core: scaling with component
//! count, the probe-cache ablation, and parallel probing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trim_dd::{ddmin, ddmin_parallel, ddmin_with, DdOptions};

/// A monotone oracle requiring `needed` components spread over the range.
fn spread_oracle(n: u32, needed: usize) -> (Vec<u32>, Vec<u32>) {
    let items: Vec<u32> = (0..n).collect();
    let step = (n as usize / needed.max(1)).max(1) as u32;
    let required: Vec<u32> = (0..n).step_by(step as usize).take(needed).collect();
    (items, required)
}

fn bench_ddmin_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ddmin/scaling");
    for &n in &[64u32, 256, 1024, 4096] {
        let (items, required) = spread_oracle(n, 8);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let r = ddmin(&items, &mut |s: &[u32]| {
                    required.iter().all(|x| s.contains(x))
                })
                .unwrap();
                black_box(r.minimized.len())
            })
        });
    }
    group.finish();
}

fn bench_probe_cache_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ddmin/probe-cache");
    let (items, required) = spread_oracle(512, 12);
    for (label, cache) in [("cached", true), ("uncached", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let r = ddmin_with(
                    &items,
                    &mut |s: &[u32]| required.iter().all(|x| s.contains(x)),
                    DdOptions {
                        cache,
                        ..DdOptions::default()
                    },
                )
                .unwrap();
                black_box(r.stats.oracle_invocations)
            })
        });
    }
    group.finish();
}

fn bench_parallel_dd(c: &mut Criterion) {
    let mut group = c.benchmark_group("ddmin/parallel");
    let (items, required) = spread_oracle(1024, 10);
    // Make each oracle call non-trivially expensive so parallelism matters.
    let slow_oracle = move |s: &[u32]| {
        let mut acc = 0u64;
        for _ in 0..2_000 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(s.len() as u64);
        }
        black_box(acc);
        required.iter().all(|x| s.contains(x))
    };
    group.bench_function("sequential", |b| {
        let mut oracle = slow_oracle.clone();
        b.iter(|| black_box(ddmin(&items, &mut oracle).unwrap().minimized.len()))
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let oracle = slow_oracle.clone();
                    let r = ddmin_parallel(
                        &items,
                        move || {
                            let o = oracle.clone();
                            Box::new(move |s: &[u32]| o(s))
                                as Box<dyn FnMut(&[u32]) -> bool + Send>
                        },
                        threads,
                    )
                    .unwrap();
                    black_box(r.minimized.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ddmin_scaling,
    bench_probe_cache_ablation,
    bench_parallel_dd
);
criterion_main!(benches);
