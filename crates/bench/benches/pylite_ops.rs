//! Criterion benches for the pylite substrate: lexing, parsing, unparsing,
//! module import, and full application initialization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pylite::{Interpreter, Registry};
use std::hint::black_box;

fn numpy_registry() -> Registry {
    let bench = trim_apps::app("pandas").expect("pandas app");
    bench.registry
}

fn bench_lex_parse(c: &mut Criterion) {
    let registry = numpy_registry();
    let src = registry.source("numpy").expect("numpy source").to_owned();
    let mut group = c.benchmark_group("pylite/frontend");
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("lex-numpy", |b| {
        b.iter(|| black_box(pylite::lexer::lex(&src).unwrap().len()))
    });
    group.bench_function("parse-numpy", |b| {
        b.iter(|| black_box(pylite::parse(&src).unwrap().body.len()))
    });
    let program = pylite::parse(&src).unwrap();
    group.bench_function("unparse-numpy", |b| {
        b.iter(|| black_box(pylite::unparse(&program).len()))
    });
    group.finish();
}

fn bench_import(c: &mut Criterion) {
    let registry = numpy_registry();
    let mut group = c.benchmark_group("pylite/import");
    group.bench_function("import-numpy-fresh", |b| {
        b.iter(|| {
            let mut it = Interpreter::new(registry.clone());
            it.exec_main("import numpy\n").unwrap();
            black_box(it.meter.clock_ns())
        })
    });
    group.bench_function("import-numpy-cached", |b| {
        let mut it = Interpreter::new(registry.clone());
        it.exec_main("import numpy\n").unwrap();
        b.iter(|| {
            // Second import hits sys.modules — measures cache lookup.
            black_box(it.import_module("numpy").unwrap().ns.len())
        })
    });
    group.finish();
}

fn bench_app_init(c: &mut Criterion) {
    let mut group = c.benchmark_group("pylite/app-init");
    for name in ["markdown", "lightgbm", "resnet"] {
        let bench = trim_apps::app(name).expect("corpus app");
        group.bench_with_input(BenchmarkId::from_parameter(name), &bench, |b, bench| {
            b.iter(|| {
                let mut it = Interpreter::new(bench.registry.clone());
                it.exec_main(&bench.app_source).unwrap();
                black_box(it.meter.mem_bytes())
            })
        });
    }
    group.finish();
}

fn bench_handler_exec(c: &mut Criterion) {
    let bench = trim_apps::app("markdown").expect("markdown app");
    let mut it = Interpreter::new(bench.registry.clone());
    it.exec_main(&bench.app_source).unwrap();
    c.bench_function("pylite/handler-exec", |b| {
        b.iter(|| {
            let event = pylite::Value::dict(vec![(
                pylite::Value::str("n"),
                pylite::Value::Int(3),
            )]);
            black_box(
                it.call_handler("handler", event, pylite::Value::None)
                    .unwrap(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_lex_parse,
    bench_import,
    bench_app_init,
    bench_handler_exec
);
criterion_main!(benches);
