//! Micro-benches for the pylite substrate: lexing, parsing, unparsing,
//! module import, and full application initialization.

use pylite::{Interpreter, Registry};
use std::hint::black_box;
use trim_bench::micro::Runner;

fn numpy_registry() -> Registry {
    let bench = trim_apps::app("pandas").expect("pandas app");
    bench.registry
}

fn main() {
    let runner = Runner::new();
    let registry = numpy_registry();
    let src = registry.source("numpy").expect("numpy source").to_owned();

    runner.bench("pylite/frontend/lex-numpy", || {
        black_box(pylite::lexer::lex(&src).unwrap().len())
    });
    runner.bench("pylite/frontend/parse-numpy", || {
        black_box(pylite::parse(&src).unwrap().body.len())
    });
    let program = pylite::parse(&src).unwrap();
    runner.bench("pylite/frontend/unparse-numpy", || {
        black_box(pylite::unparse(&program).len())
    });

    runner.bench("pylite/import/import-numpy-fresh", || {
        let mut it = Interpreter::new(registry.clone());
        it.exec_main("import numpy\n").unwrap();
        black_box(it.meter.clock_ns())
    });
    {
        let mut it = Interpreter::new(registry.clone());
        it.exec_main("import numpy\n").unwrap();
        runner.bench("pylite/import/import-numpy-cached", || {
            // Second import hits sys.modules — measures cache lookup.
            black_box(it.import_module("numpy").unwrap().ns.len())
        });
    }

    for name in ["markdown", "lightgbm", "resnet"] {
        let bench = trim_apps::app(name).expect("corpus app");
        runner.bench(&format!("pylite/app-init/{name}"), || {
            let mut it = Interpreter::new(bench.registry.clone());
            it.exec_main(&bench.app_source).unwrap();
            black_box(it.meter.mem_bytes())
        });
    }

    {
        let bench = trim_apps::app("markdown").expect("markdown app");
        let mut it = Interpreter::new(bench.registry.clone());
        it.exec_main(&bench.app_source).unwrap();
        runner.bench("pylite/handler-exec", || {
            let event = pylite::Value::dict(vec![(pylite::Value::str("n"), pylite::Value::Int(3))]);
            black_box(
                it.call_handler("handler", event, pylite::Value::None)
                    .unwrap(),
            )
        });
    }
}
