//! Ablation bench for §6.1's design choice: attribute-granularity DD
//! (λ-trim) vs statement-granularity static trimming (FaaSLight-style),
//! measured on trim quality proxies and wall-clock.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use trim_core::{trim_app, DebloatOptions};

fn bench_granularity(c: &mut Criterion) {
    let bench = trim_apps::app("lightgbm").expect("lightgbm app");
    let mut group = c.benchmark_group("ablation/granularity");
    group.sample_size(10);
    group.bench_function("attribute-dd", |b| {
        b.iter(|| {
            let r = trim_app(
                &bench.registry,
                &bench.app_source,
                &bench.spec,
                &DebloatOptions::default(),
            )
            .unwrap();
            black_box(r.attrs_removed())
        })
    });
    group.bench_function("statement-static", |b| {
        b.iter(|| {
            let r = trim_baselines::faaslight_trim(&bench.registry, &bench.app_source, &bench.spec)
                .unwrap();
            black_box(r.attrs_removed())
        })
    });
    group.bench_function("deadcode-static", |b| {
        b.iter(|| {
            let r = trim_baselines::vulture_trim(&bench.registry, &bench.app_source, &bench.spec)
                .unwrap();
            black_box(r.attrs_removed())
        })
    });
    group.finish();
}

fn bench_scoring_methods(c: &mut Criterion) {
    use trim_profiler::{profile_app, top_k, ScoringMethod};
    let bench = trim_apps::app("spacy").expect("spacy app");
    let profile = profile_app(&bench.app_source, &bench.registry).unwrap();
    let mut group = c.benchmark_group("ablation/scoring");
    for method in [
        ScoringMethod::Time,
        ScoringMethod::Memory,
        ScoringMethod::Combined,
        ScoringMethod::Random { seed: 7 },
    ] {
        group.bench_function(method.name(), |b| {
            b.iter(|| black_box(top_k(&profile, method, 20).len()))
        });
    }
    group.finish();
}

fn bench_algorithms(c: &mut Criterion) {
    let bench = trim_apps::app("igraph").expect("igraph app");
    let mut group = c.benchmark_group("ablation/algorithm");
    group.sample_size(10);
    for (label, algorithm) in [
        ("ddmin", trim_core::Algorithm::Ddmin),
        ("greedy", trim_core::Algorithm::Greedy),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let r = trim_app(
                    &bench.registry,
                    &bench.app_source,
                    &bench.spec,
                    &DebloatOptions {
                        algorithm,
                        ..DebloatOptions::default()
                    },
                )
                .unwrap();
                black_box((r.attrs_removed(), r.oracle_invocations))
            })
        });
    }
    group.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let bench = trim_apps::app("markdown").expect("markdown app");
    let cold = trim_app(
        &bench.registry,
        &bench.app_source,
        &bench.spec,
        &DebloatOptions::default(),
    )
    .unwrap();
    let log = trim_core::TrimLog::from_report(&cold);
    let mut group = c.benchmark_group("ablation/incremental");
    group.sample_size(10);
    group.bench_function("cold-trim", |b| {
        b.iter(|| {
            black_box(
                trim_app(
                    &bench.registry,
                    &bench.app_source,
                    &bench.spec,
                    &DebloatOptions::default(),
                )
                .unwrap()
                .oracle_invocations,
            )
        })
    });
    group.bench_function("seeded-retrim", |b| {
        b.iter(|| {
            black_box(
                trim_core::retrim_with_log(
                    &bench.registry,
                    &bench.app_source,
                    &bench.spec,
                    &log,
                    &DebloatOptions::default(),
                )
                .unwrap()
                .oracle_invocations,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_granularity,
    bench_scoring_methods,
    bench_algorithms,
    bench_incremental
);
criterion_main!(benches);
