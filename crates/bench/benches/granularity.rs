//! Ablation bench for §6.1's design choice: attribute-granularity DD
//! (λ-trim) vs statement-granularity static trimming (FaaSLight-style),
//! measured on trim quality proxies and wall-clock.

use std::hint::black_box;
use trim_bench::micro::Runner;
use trim_core::{trim_app, DebloatOptions};

fn main() {
    let runner = Runner::new();

    {
        let bench = trim_apps::app("lightgbm").expect("lightgbm app");
        runner.bench("ablation/granularity/attribute-dd", || {
            let r = trim_app(
                &bench.registry,
                &bench.app_source,
                &bench.spec,
                &DebloatOptions::default(),
            )
            .unwrap();
            black_box(r.attrs_removed())
        });
        runner.bench("ablation/granularity/statement-static", || {
            let r = trim_baselines::faaslight_trim(&bench.registry, &bench.app_source, &bench.spec)
                .unwrap();
            black_box(r.attrs_removed())
        });
        runner.bench("ablation/granularity/deadcode-static", || {
            let r = trim_baselines::vulture_trim(&bench.registry, &bench.app_source, &bench.spec)
                .unwrap();
            black_box(r.attrs_removed())
        });
    }

    {
        use trim_profiler::{profile_app, top_k, ScoringMethod};
        let bench = trim_apps::app("spacy").expect("spacy app");
        let profile = profile_app(&bench.app_source, &bench.registry).unwrap();
        for method in [
            ScoringMethod::Time,
            ScoringMethod::Memory,
            ScoringMethod::Combined,
            ScoringMethod::Random { seed: 7 },
        ] {
            runner.bench(&format!("ablation/scoring/{}", method.name()), || {
                black_box(top_k(&profile, method, 20).len())
            });
        }
    }

    {
        let bench = trim_apps::app("igraph").expect("igraph app");
        for (label, algorithm) in [
            ("ddmin", trim_core::Algorithm::Ddmin),
            ("greedy", trim_core::Algorithm::Greedy),
        ] {
            runner.bench(&format!("ablation/algorithm/{label}"), || {
                let r = trim_app(
                    &bench.registry,
                    &bench.app_source,
                    &bench.spec,
                    &DebloatOptions {
                        algorithm,
                        ..DebloatOptions::default()
                    },
                )
                .unwrap();
                black_box((r.attrs_removed(), r.oracle_invocations))
            });
        }
    }

    {
        let bench = trim_apps::app("markdown").expect("markdown app");
        let cold = trim_app(
            &bench.registry,
            &bench.app_source,
            &bench.spec,
            &DebloatOptions::default(),
        )
        .unwrap();
        let log = trim_core::TrimLog::from_report(&cold);
        runner.bench("ablation/incremental/cold-trim", || {
            black_box(
                trim_app(
                    &bench.registry,
                    &bench.app_source,
                    &bench.spec,
                    &DebloatOptions::default(),
                )
                .unwrap()
                .oracle_invocations,
            )
        });
        runner.bench("ablation/incremental/seeded-retrim", || {
            black_box(
                trim_core::retrim_with_log(
                    &bench.registry,
                    &bench.app_source,
                    &bench.spec,
                    &log,
                    &DebloatOptions::default(),
                )
                .unwrap()
                .oracle_invocations,
            )
        });
    }
}
