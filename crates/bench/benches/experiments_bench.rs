//! One Criterion bench per paper table/figure: each measures the code path
//! that regenerates that experiment (scaled to the mini corpus where the
//! full 21-app sweep would be too slow per iteration). The printable
//! rows/series themselves come from `--bin experiments`.

use criterion::{criterion_group, criterion_main, Criterion};
use lambda_sim::{
    generate_trace, nearest_function, simulate_pool, CheckpointModel, Platform,
    SnapStartPricing, StartMode, TraceConfig,
};
use std::hint::black_box;
use trim_bench::harness::*;
use trim_core::{invoke_with_fallback, FallbackInstanceState};
use trim_profiler::ScoringMethod;

fn measure(bench: &trim_apps::BenchApp) -> trim_core::Execution {
    trim_core::run_app(&bench.registry, &bench.app_source, &bench.spec).expect("app runs")
}

/// Figure 1: phase breakdown of one cold start.
fn bench_fig1(c: &mut Criterion) {
    let platform = Platform::default();
    let bench = trim_apps::app("resnet").unwrap();
    let exec = measure(&bench);
    let profile = profile_from_execution(&bench.name, bench.image_mb, &exec);
    c.bench_function("exp/fig1-phase-breakdown", |b| {
        b.iter(|| {
            black_box(
                platform
                    .cold_invocation(&profile, StartMode::Standard)
                    .e2e_secs(),
            )
        })
    });
}

/// Table 1 / Figure 2: measuring the corpus and pricing cold starts.
fn bench_table1_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp/table1-fig2");
    group.sample_size(10);
    let pricing = default_pricing();
    let corpus = trim_apps::mini_corpus();
    group.bench_function("measure-and-price", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for bench in &corpus {
                let exec = measure(bench);
                let billable_ms = (exec.init_secs + exec.exec_secs) * 1000.0;
                total += pricing.cost_for_invocations(exec.mem_mb, billable_ms, PRICED_INVOCATIONS);
            }
            black_box(total)
        })
    });
    group.finish();
}

/// Table 2: baseline comparison (FaaSLight / Vulture / λ-trim).
fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp/table2-baselines");
    group.sample_size(10);
    let bench = trim_apps::app("lightgbm").unwrap();
    group.bench_function("three-way-comparison", |b| {
        b.iter(|| {
            let fl =
                trim_baselines::faaslight_trim(&bench.registry, &bench.app_source, &bench.spec)
                    .unwrap();
            let vu = trim_baselines::vulture_trim(&bench.registry, &bench.app_source, &bench.spec)
                .unwrap();
            let lt = AppResult::compute_default(bench.clone());
            black_box((fl.attrs_removed(), vu.attrs_removed(), lt.report.attrs_removed()))
        })
    });
    group.finish();
}

/// Figure 8: the headline trim sweep (mini corpus per iteration).
fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp/fig8-trim-sweep");
    group.sample_size(10);
    let platform = Platform::default();
    group.bench_function("mini-corpus", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for bench in trim_apps::mini_corpus() {
                let r = AppResult::compute_default(bench);
                total += improvements(&platform, &r).cost_pct;
            }
            black_box(total)
        })
    });
    group.finish();
}

/// Figure 9: scoring ablation.
fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp/fig9-scoring");
    group.sample_size(10);
    for method in [
        ScoringMethod::Combined,
        ScoringMethod::Random { seed: 7 },
    ] {
        group.bench_function(method.name(), |b| {
            b.iter(|| {
                let bench = trim_apps::app("dna-visualization").unwrap();
                black_box(result_with_scoring(bench, method).report.attrs_removed())
            })
        });
    }
    group.finish();
}

/// Table 3: debloat-time accounting.
fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp/table3-debloat-accounting");
    group.sample_size(10);
    group.bench_function("markdown", |b| {
        b.iter(|| {
            let bench = trim_apps::app("markdown").unwrap();
            let r = AppResult::compute_default(bench);
            black_box((r.report.debloat_secs, r.report.oracle_invocations))
        })
    });
    group.finish();
}

/// Figure 10: K sweep.
fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp/fig10-k-sweep");
    group.sample_size(10);
    for k in [1usize, 5, 20] {
        group.bench_function(format!("k{k}"), |b| {
            b.iter(|| {
                let bench = trim_apps::app("dna-visualization").unwrap();
                black_box(result_with_k(bench, k).report.attrs_removed())
            })
        });
    }
    group.finish();
}

/// Figure 11: warm-start measurement.
fn bench_fig11(c: &mut Criterion) {
    let platform = Platform::default();
    let bench = trim_apps::app("markdown").unwrap();
    let exec = measure(&bench);
    let profile = profile_from_execution(&bench.name, bench.image_mb, &exec);
    c.bench_function("exp/fig11-warm-start", |b| {
        b.iter(|| black_box(platform.warm_invocation(&profile).e2e_secs()))
    });
}

/// Figure 12: checkpoint/restore model.
fn bench_fig12(c: &mut Criterion) {
    let ckpt = CheckpointModel::default();
    c.bench_function("exp/fig12-cr-model", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for mem in [40.0, 120.0, 420.0, 820.0] {
                total += ckpt.cr_init_secs(black_box(mem));
            }
            black_box(total)
        })
    });
}

/// Figure 13: Azure-trace generation + SnapStart pool simulation.
fn bench_fig13(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp/fig13-trace-sim");
    group.sample_size(10);
    let config = TraceConfig {
        functions: 100,
        ..TraceConfig::default()
    };
    group.bench_function("generate-trace", |b| {
        b.iter(|| black_box(generate_trace(&config).len()))
    });
    let trace = generate_trace(&config);
    let platform = Platform::default();
    group.bench_function("pool-sim-100fns", |b| {
        b.iter(|| {
            let mut cold = 0u64;
            for f in &trace {
                let profile = lambda_sim::AppProfile::new(
                    "f",
                    64.0,
                    0.5,
                    f.duration_ms / 1000.0,
                    f.mem_mb,
                );
                cold += simulate_pool(&platform, &profile, &f.arrivals, 900.0, StartMode::Restore)
                    .cold_starts;
            }
            black_box(cold)
        })
    });
    group.finish();
}

/// Figure 14: L2 matching + SnapStart accounting for one app.
fn bench_fig14(c: &mut Criterion) {
    let config = TraceConfig {
        functions: 200,
        ..TraceConfig::default()
    };
    let trace = generate_trace(&config);
    let platform = Platform::default();
    let pricing = SnapStartPricing::default();
    let ckpt = CheckpointModel::default();
    let bench = trim_apps::app("markdown").unwrap();
    let exec = measure(&bench);
    let profile = profile_from_execution(&bench.name, bench.image_mb, &exec);
    c.bench_function("exp/fig14-snapstart-accounting", |b| {
        b.iter(|| {
            let matched =
                nearest_function(&trace, profile.mem_mb, profile.exec_secs * 1000.0).unwrap();
            let acct = snapstart_account(
                &platform,
                &pricing,
                &ckpt,
                &profile,
                &matched.arrivals,
                900.0,
                config.window_secs,
            );
            black_box(acct.snapstart_share())
        })
    });
}

/// Table 4: fallback invocation path.
fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp/table4-fallback");
    group.sample_size(10);
    let bench = trim_apps::app("markdown").unwrap();
    let result = AppResult::compute_default(bench);
    let case = result.bench.rare_case();
    group.bench_function("fallback-cold", |b| {
        b.iter(|| {
            let (outcome, cost) = invoke_with_fallback(
                &result.report.trimmed,
                &result.bench.registry,
                &result.bench.app_source,
                &result.bench.spec.handler,
                &case,
                FallbackInstanceState::Cold,
            )
            .unwrap();
            black_box((outcome.fell_back(), cost.e2e_cold_secs()))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1,
    bench_table1_fig2,
    bench_table2,
    bench_fig8,
    bench_fig9,
    bench_table3,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_table4
);
criterion_main!(benches);
