//! One bench per paper table/figure: each measures the code path that
//! regenerates that experiment (scaled to the mini corpus where the full
//! 21-app sweep would be too slow per iteration). The printable
//! rows/series themselves come from `--bin experiments`.

use lambda_sim::{
    generate_trace, nearest_function, simulate_pool, CheckpointModel, Platform, SnapStartPricing,
    StartMode, TraceConfig,
};
use std::hint::black_box;
use trim_bench::harness::*;
use trim_bench::micro::Runner;
use trim_core::{invoke_with_fallback, FallbackInstanceState};
use trim_profiler::ScoringMethod;

fn measure(bench: &trim_apps::BenchApp) -> trim_core::Execution {
    trim_core::run_app(&bench.registry, &bench.app_source, &bench.spec).expect("app runs")
}

fn main() {
    let runner = Runner::new();
    let platform = Platform::default();

    // Figure 1: phase breakdown of one cold start.
    {
        let bench = trim_apps::app("resnet").unwrap();
        let exec = measure(&bench);
        let profile = profile_from_execution(&bench.name, bench.image_mb, &exec);
        runner.bench("exp/fig1-phase-breakdown", || {
            black_box(
                platform
                    .cold_invocation(&profile, StartMode::Standard)
                    .e2e_secs(),
            )
        });
    }

    // Table 1 / Figure 2: measuring the corpus and pricing cold starts.
    {
        let pricing = default_pricing();
        let corpus = trim_apps::mini_corpus();
        runner.bench("exp/table1-fig2/measure-and-price", || {
            let mut total = 0.0;
            for bench in &corpus {
                let exec = measure(bench);
                let billable_ms = (exec.init_secs + exec.exec_secs) * 1000.0;
                total += pricing.cost_for_invocations(exec.mem_mb, billable_ms, PRICED_INVOCATIONS);
            }
            black_box(total)
        });
    }

    // Table 2: baseline comparison (FaaSLight / Vulture / λ-trim).
    {
        let bench = trim_apps::app("lightgbm").unwrap();
        runner.bench("exp/table2-baselines/three-way", || {
            let fl =
                trim_baselines::faaslight_trim(&bench.registry, &bench.app_source, &bench.spec)
                    .unwrap();
            let vu = trim_baselines::vulture_trim(&bench.registry, &bench.app_source, &bench.spec)
                .unwrap();
            let lt = AppResult::compute_default(bench.clone());
            black_box((
                fl.attrs_removed(),
                vu.attrs_removed(),
                lt.report.attrs_removed(),
            ))
        });
    }

    // Figure 8: the headline trim sweep (mini corpus per iteration).
    runner.bench("exp/fig8-trim-sweep/mini-corpus", || {
        let mut total = 0.0;
        for bench in trim_apps::mini_corpus() {
            let r = AppResult::compute_default(bench);
            total += improvements(&platform, &r).cost_pct;
        }
        black_box(total)
    });

    // Figure 9: scoring ablation.
    for method in [ScoringMethod::Combined, ScoringMethod::Random { seed: 7 }] {
        runner.bench(&format!("exp/fig9-scoring/{}", method.name()), || {
            let bench = trim_apps::app("dna-visualization").unwrap();
            black_box(result_with_scoring(bench, method).report.attrs_removed())
        });
    }

    // Table 3: debloat-time accounting.
    runner.bench("exp/table3-debloat-accounting/markdown", || {
        let bench = trim_apps::app("markdown").unwrap();
        let r = AppResult::compute_default(bench);
        black_box((r.report.debloat_secs, r.report.oracle_invocations))
    });

    // Figure 10: K sweep.
    for k in [1usize, 5, 20] {
        runner.bench(&format!("exp/fig10-k-sweep/k{k}"), || {
            let bench = trim_apps::app("dna-visualization").unwrap();
            black_box(result_with_k(bench, k).report.attrs_removed())
        });
    }

    // Figure 11: warm-start measurement.
    {
        let bench = trim_apps::app("markdown").unwrap();
        let exec = measure(&bench);
        let profile = profile_from_execution(&bench.name, bench.image_mb, &exec);
        runner.bench("exp/fig11-warm-start", || {
            black_box(platform.warm_invocation(&profile).e2e_secs())
        });
    }

    // Figure 12: checkpoint/restore model.
    {
        let ckpt = CheckpointModel::default();
        runner.bench("exp/fig12-cr-model", || {
            let mut total = 0.0;
            for mem in [40.0, 120.0, 420.0, 820.0] {
                total += ckpt.cr_init_secs(black_box(mem));
            }
            black_box(total)
        });
    }

    // Figure 13: Azure-trace generation + SnapStart pool simulation.
    {
        let config = TraceConfig {
            functions: 100,
            ..TraceConfig::default()
        };
        runner.bench("exp/fig13-trace-sim/generate-trace", || {
            black_box(generate_trace(&config).functions.len())
        });
        let trace = generate_trace(&config);
        runner.bench("exp/fig13-trace-sim/pool-sim-100fns", || {
            let mut cold = 0u64;
            for f in &trace.functions {
                let profile =
                    lambda_sim::AppProfile::new("f", 64.0, 0.5, f.duration_ms / 1000.0, f.mem_mb);
                cold += simulate_pool(&platform, &profile, &f.arrivals, 900.0, StartMode::Restore)
                    .cold_starts;
            }
            black_box(cold)
        });
    }

    // Figure 14: L2 matching + SnapStart accounting for one app.
    {
        let config = TraceConfig {
            functions: 200,
            ..TraceConfig::default()
        };
        let trace = generate_trace(&config);
        let pricing = SnapStartPricing::default();
        let ckpt = CheckpointModel::default();
        let bench = trim_apps::app("markdown").unwrap();
        let exec = measure(&bench);
        let profile = profile_from_execution(&bench.name, bench.image_mb, &exec);
        runner.bench("exp/fig14-snapstart-accounting", || {
            let matched =
                nearest_function(&trace.functions, profile.mem_mb, profile.exec_secs * 1000.0)
                    .unwrap();
            let acct = snapstart_account(
                &platform,
                &pricing,
                &ckpt,
                &profile,
                &matched.arrivals,
                900.0,
                config.window_secs,
            );
            black_box(acct.snapstart_share())
        });
    }

    // Table 4: fallback invocation path.
    {
        let bench = trim_apps::app("markdown").unwrap();
        let result = AppResult::compute_default(bench);
        let case = result.bench.rare_case();
        runner.bench("exp/table4-fallback/fallback-cold", || {
            let (outcome, cost) = invoke_with_fallback(
                &result.report.trimmed,
                &result.bench.registry,
                &result.bench.app_source,
                &result.bench.spec.handler,
                &case,
                FallbackInstanceState::Cold,
            )
            .unwrap();
            black_box((outcome.fell_back(), cost.e2e_cold_secs()))
        });
    }
}
