//! Criterion benches for the full λ-trim pipeline and its stages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trim_core::{trim_app, DebloatOptions};
use trim_profiler::{profile_app, rank_modules, ScoringMethod};

fn bench_static_analysis(c: &mut Criterion) {
    let bench = trim_apps::app("wine").expect("wine app");
    let program = pylite::parse(&bench.app_source).unwrap();
    c.bench_function("pipeline/static-analysis-wine", |b| {
        b.iter(|| black_box(trim_analysis::analyze(&program, &bench.registry).accessed.len()))
    });
}

fn bench_profiler(c: &mut Criterion) {
    let bench = trim_apps::app("resnet").expect("resnet app");
    let mut group = c.benchmark_group("pipeline/profiler");
    group.bench_function("profile-resnet", |b| {
        b.iter(|| {
            black_box(
                profile_app(&bench.app_source, &bench.registry)
                    .unwrap()
                    .modules
                    .len(),
            )
        })
    });
    let profile = profile_app(&bench.app_source, &bench.registry).unwrap();
    group.bench_function("rank-combined", |b| {
        b.iter(|| black_box(rank_modules(&profile, ScoringMethod::Combined).len()))
    });
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/trim-app");
    group.sample_size(10);
    for name in ["markdown", "igraph", "lightgbm"] {
        let bench = trim_apps::app(name).expect("corpus app");
        group.bench_with_input(BenchmarkId::from_parameter(name), &bench, |b, bench| {
            b.iter(|| {
                let report = trim_app(
                    &bench.registry,
                    &bench.app_source,
                    &bench.spec,
                    &DebloatOptions::default(),
                )
                .unwrap();
                black_box(report.attrs_removed())
            })
        });
    }
    group.finish();
}

fn bench_parallel_pipeline(c: &mut Criterion) {
    let bench = trim_apps::app("dna-visualization").expect("dna app");
    let mut group = c.benchmark_group("pipeline/parallel-dd");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let report = trim_app(
                        &bench.registry,
                        &bench.app_source,
                        &bench.spec,
                        &DebloatOptions {
                            threads,
                            ..DebloatOptions::default()
                        },
                    )
                    .unwrap();
                    black_box(report.attrs_removed())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_static_analysis,
    bench_profiler,
    bench_full_pipeline,
    bench_parallel_pipeline
);
criterion_main!(benches);
