//! Micro-benches for the full λ-trim pipeline and its stages.

use std::hint::black_box;
use trim_bench::micro::Runner;
use trim_core::{trim_app, DebloatOptions};
use trim_profiler::{profile_app, rank_modules, ScoringMethod};

fn main() {
    let runner = Runner::new();

    {
        let bench = trim_apps::app("wine").expect("wine app");
        let program = pylite::parse(&bench.app_source).unwrap();
        runner.bench("pipeline/static-analysis-wine", || {
            black_box(
                trim_analysis::analyze(&program, &bench.registry)
                    .accessed
                    .len(),
            )
        });
    }

    {
        let bench = trim_apps::app("resnet").expect("resnet app");
        runner.bench("pipeline/profiler/profile-resnet", || {
            black_box(
                profile_app(&bench.app_source, &bench.registry)
                    .unwrap()
                    .modules
                    .len(),
            )
        });
        let profile = profile_app(&bench.app_source, &bench.registry).unwrap();
        runner.bench("pipeline/profiler/rank-combined", || {
            black_box(rank_modules(&profile, ScoringMethod::Combined).len())
        });
    }

    for name in ["markdown", "igraph", "lightgbm"] {
        let bench = trim_apps::app(name).expect("corpus app");
        runner.bench(&format!("pipeline/trim-app/{name}"), || {
            let report = trim_app(
                &bench.registry,
                &bench.app_source,
                &bench.spec,
                &DebloatOptions::default(),
            )
            .unwrap();
            black_box(report.attrs_removed())
        });
    }

    {
        let bench = trim_apps::app("dna-visualization").expect("dna app");
        for threads in [1usize, 4] {
            runner.bench(&format!("pipeline/parallel-dd/{threads}"), || {
                let report = trim_app(
                    &bench.registry,
                    &bench.app_source,
                    &bench.spec,
                    &DebloatOptions {
                        threads,
                        ..DebloatOptions::default()
                    },
                )
                .unwrap();
                black_box(report.attrs_removed())
            });
        }
    }
}
