//! Probe-count comparison: DD oracle invocations with the app-only static
//! analysis (seed behavior) vs the interprocedural analysis. A larger
//! up-front exclusion set means fewer DD probes for the same final trim.
//!
//! Both modes share one [`ProbeCache`]: a probe's verdict depends only on
//! (registry fingerprint, app, module, keep-set), not on which analysis
//! proposed it, so the second mode re-reads verdicts the first mode already
//! paid for. The cross-run hit counts are printed alongside the probe counts.

use std::hint::black_box;
use trim_bench::micro::Runner;
use trim_core::{trim_app, AnalysisMode, DebloatOptions, ProbeCache};

fn main() {
    let runner = Runner::new();
    // markdown is a control (no library re-exports, counts match); the
    // other three have __init__-style re-export chains where the eager
    // interprocedural exclusions collapse the DD search.
    for name in ["markdown", "scikit", "textblob", "dna-visualization"] {
        let bench = trim_apps::app(name).expect("corpus app");
        let cache = ProbeCache::shared();
        for (label, mode) in [
            ("app-only", AnalysisMode::AppOnly),
            ("interprocedural", AnalysisMode::Interprocedural),
        ] {
            let options = DebloatOptions {
                analysis: mode,
                probe_cache: Some(cache.clone()),
                ..DebloatOptions::default()
            };
            let hits_before = cache.hits();
            let probes = trim_app(&bench.registry, &bench.app_source, &bench.spec, &options)
                .unwrap()
                .oracle_invocations;
            println!(
                "analysis-probes/{name}/{label}: {probes} oracle probes, {} cross-run cache hits",
                cache.hits() - hits_before
            );
            runner.bench(&format!("analysis-probes/{name}/{label}"), || {
                let report =
                    trim_app(&bench.registry, &bench.app_source, &bench.spec, &options).unwrap();
                black_box(report.oracle_invocations)
            });
        }
        println!(
            "analysis-probes/{name}: cache totals {} hits / {} misses",
            cache.hits(),
            cache.misses()
        );
    }
}
