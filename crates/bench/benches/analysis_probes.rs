//! Probe-count comparison: DD oracle invocations with the app-only static
//! analysis (seed behavior) vs the interprocedural analysis. A larger
//! up-front exclusion set means fewer DD probes for the same final trim.

use std::hint::black_box;
use trim_bench::micro::Runner;
use trim_core::{trim_app, AnalysisMode, DebloatOptions};

fn main() {
    let runner = Runner::new();
    // markdown is a control (no library re-exports, counts match); the
    // other three have __init__-style re-export chains where the eager
    // interprocedural exclusions collapse the DD search.
    for name in ["markdown", "scikit", "textblob", "dna-visualization"] {
        let bench = trim_apps::app(name).expect("corpus app");
        for (label, mode) in [
            ("app-only", AnalysisMode::AppOnly),
            ("interprocedural", AnalysisMode::Interprocedural),
        ] {
            let options = DebloatOptions {
                analysis: mode,
                ..DebloatOptions::default()
            };
            let probes = trim_app(&bench.registry, &bench.app_source, &bench.spec, &options)
                .unwrap()
                .oracle_invocations;
            println!("analysis-probes/{name}/{label}: {probes} oracle probes");
            runner.bench(&format!("analysis-probes/{name}/{label}"), || {
                let report =
                    trim_app(&bench.registry, &bench.app_source, &bench.spec, &options).unwrap();
                black_box(report.oracle_invocations)
            });
        }
    }
}
