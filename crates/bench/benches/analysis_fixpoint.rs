//! Sharded-fixpoint micro-benchmarks: cold serial vs cold parallel vs
//! warm-cache incremental analysis, on a few representative corpus apps.
//!
//! The `analysis` bin (`cargo run -p trim-bench --bin analysis --release`)
//! runs the same three configurations over the *whole* corpus and writes
//! `BENCH_analysis.json`; this bench is the quick inner-loop view.

use std::hint::black_box;
use trim_analysis::summary::SummaryCache;
use trim_analysis::{analyze_full, AnalysisOptions};
use trim_bench::micro::Runner;

fn main() {
    let runner = Runner::new();
    for name in ["markdown", "scikit", "dna-visualization"] {
        let bench = trim_apps::app(name).expect("corpus app");
        let program = pylite::parse(&bench.app_source).expect("corpus app parses");

        runner.bench(&format!("analysis-fixpoint/{name}/cold-serial"), || {
            black_box(analyze_full(
                &program,
                &bench.registry,
                &AnalysisOptions::default(),
            ))
        });

        runner.bench(&format!("analysis-fixpoint/{name}/cold-jobs8"), || {
            black_box(analyze_full(
                &program,
                &bench.registry,
                &AnalysisOptions {
                    jobs: 8,
                    ..AnalysisOptions::default()
                },
            ))
        });

        // One-module edit against a warm summary cache: flip a module
        // between two contents so every iteration is a real incremental run
        // (never a pure fingerprint hit).
        let module = bench
            .registry
            .module_names()
            .pop()
            .expect("corpus registries are non-empty");
        let original = bench
            .registry
            .source(&module)
            .expect("module listed")
            .to_owned();
        let edited = format!("{original}\n0\n");
        let cache = SummaryCache::shared();
        let warm = AnalysisOptions {
            summary_cache: Some(cache.clone()),
            ..AnalysisOptions::default()
        };
        let mut work = bench.registry.clone();
        analyze_full(&program, &work, &warm); // prime the cache
        let mut flip = false;
        runner.bench(&format!("analysis-fixpoint/{name}/incremental"), || {
            flip = !flip;
            work.set_module(&module, if flip { &edited } else { &original });
            black_box(analyze_full(&program, &work, &warm))
        });
    }
}
