//! # trim-rng — a tiny, dependency-free, deterministic PRNG
//!
//! The repository must build with no network access, so the external `rand`
//! crate is replaced by this minimal xoshiro256** generator seeded via
//! splitmix64 (the reference initialization from Blackman & Vigna). It is
//! **not** cryptographically secure — it exists to make trace generation and
//! the profiler's random-scoring ablation deterministic and portable.
//!
//! ```
//! let mut a = trim_rng::Rng::seed_from_u64(7);
//! let mut b = trim_rng::Rng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

#![warn(missing_docs)]

/// A seeded xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Seed the generator from a single 64-bit value (splitmix64 expansion,
    /// the same scheme `rand`'s `SeedableRng::seed_from_u64` documents).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `usize` in `[lo, hi]` (inclusive). Uses rejection-free
    /// modulo reduction — bias is negligible for the small ranges used here.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }

    /// A uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn usize_inclusive_within_bounds() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.usize_inclusive(3, 60);
            assert!((3..=60).contains(&x));
        }
        // Both endpoints are reachable on a small range.
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(r.usize_inclusive(0, 3));
        }
        assert_eq!(seen.len(), 4);
    }
}
