//! # trim-dd — generic Delta Debugging for program minimization
//!
//! An implementation of the DD algorithm of §3.2 / Algorithm 1 of the λ-trim
//! paper (Zeller's `ddmin`, adapted for debloating): given a list of program
//! components and an oracle, find a **1-minimal** subset that still satisfies
//! the oracle — removing any single remaining component makes the oracle
//! return false.
//!
//! The algorithm is generic over the component type; λ-trim instantiates it
//! with module *attributes* (§6.1). Extras beyond the paper's pseudocode:
//!
//! * **probe caching** — candidate subsets are memoized so the quadratic
//!   tail of ddmin never re-runs an oracle on a seen subset;
//! * **oracle accounting** — invocation/cache-hit counters for the
//!   scalability experiments;
//! * **parallel probing** ([`ddmin_parallel`]) — the paper's §9 future-work
//!   item: each round's candidate subsets are evaluated concurrently, with
//!   a first-index tie-break that keeps the result bit-identical to the
//!   sequential algorithm.
//!
//! # Example
//!
//! ```
//! use trim_dd::ddmin;
//!
//! // Minimize a list of numbers subject to "contains 3 and 7".
//! let items: Vec<u32> = (0..20).collect();
//! let result = ddmin(&items, &mut |subset: &[u32]| {
//!     subset.contains(&3) && subset.contains(&7)
//! })
//! .expect("whole set satisfies the oracle");
//! assert_eq!(result.minimized, vec![3, 7]);
//! ```

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;

/// Statistics about a DD run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DdStats {
    /// Number of oracle invocations actually performed.
    pub oracle_invocations: u64,
    /// Number of candidate subsets answered from the probe cache.
    pub cache_hits: u64,
    /// Number of outer-loop iterations.
    pub iterations: u64,
}

/// The outcome of a DD run.
#[derive(Debug, Clone, PartialEq)]
pub struct DdResult<T> {
    /// The 1-minimal subset, in original order.
    pub minimized: Vec<T>,
    /// Run statistics.
    pub stats: DdStats,
}

/// Errors from [`ddmin`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DdError {
    /// The oracle rejected the full component list; DD requires `O(A) = T`.
    OracleRejectsWhole,
}

impl fmt::Display for DdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdError::OracleRejectsWhole => {
                write!(f, "oracle rejects the complete component list")
            }
        }
    }
}

impl std::error::Error for DdError {}

/// Options controlling a DD run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdOptions {
    /// Memoize oracle verdicts by candidate subset (default: on).
    pub cache: bool,
    /// Hard cap on oracle invocations (0 = unlimited). When hit, the best
    /// passing candidate found so far is returned — still sound (it passes
    /// the oracle) but possibly not 1-minimal.
    pub max_oracle_invocations: u64,
}

impl Default for DdOptions {
    fn default() -> Self {
        DdOptions {
            cache: true,
            max_oracle_invocations: 0,
        }
    }
}

/// Split index set `items` into `n` contiguous partitions of near-equal size.
/// All partitions are nonempty as long as `n <= items.len()`.
fn partitions(len: usize, n: usize) -> Vec<(usize, usize)> {
    let n = n.min(len).max(1);
    let base = len / n;
    let extra = len % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let size = base + usize::from(i < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

struct Runner<'a, T> {
    items: &'a [T],
    cache: HashMap<Vec<u32>, bool>,
    options: DdOptions,
    stats: DdStats,
    budget_exhausted: bool,
}

impl<'a, T: Clone> Runner<'a, T> {
    fn materialize(&self, idx: &[u32]) -> Vec<T> {
        idx.iter()
            .map(|&i| self.items[i as usize].clone())
            .collect()
    }

    fn test(&mut self, idx: &[u32], oracle: &mut dyn FnMut(&[T]) -> bool) -> bool {
        if self.options.cache {
            if let Some(&v) = self.cache.get(idx) {
                self.stats.cache_hits += 1;
                return v;
            }
        }
        if self.options.max_oracle_invocations > 0
            && self.stats.oracle_invocations >= self.options.max_oracle_invocations
        {
            self.budget_exhausted = true;
            return false;
        }
        self.stats.oracle_invocations += 1;
        let materialized = self.materialize(idx);
        let verdict = oracle(&materialized);
        if self.options.cache {
            self.cache.insert(idx.to_vec(), verdict);
        }
        verdict
    }
}

/// Run ddmin with default options.
///
/// # Errors
///
/// [`DdError::OracleRejectsWhole`] if the oracle rejects the full list.
pub fn ddmin<T: Clone>(
    items: &[T],
    oracle: &mut dyn FnMut(&[T]) -> bool,
) -> Result<DdResult<T>, DdError> {
    ddmin_with(items, oracle, DdOptions::default())
}

/// Run ddmin with explicit [`DdOptions`].
///
/// Returns a subset that satisfies the oracle and is 1-minimal (unless the
/// oracle budget was exhausted first).
///
/// # Errors
///
/// [`DdError::OracleRejectsWhole`] if the oracle rejects the full list.
pub fn ddmin_with<T: Clone>(
    items: &[T],
    oracle: &mut dyn FnMut(&[T]) -> bool,
    options: DdOptions,
) -> Result<DdResult<T>, DdError> {
    let mut runner = Runner {
        items,
        cache: HashMap::new(),
        options,
        stats: DdStats::default(),
        budget_exhausted: false,
    };
    let all: Vec<u32> = (0..items.len() as u32).collect();
    if !runner.test(&all, oracle) {
        return Err(DdError::OracleRejectsWhole);
    }
    let mut current = all;
    let mut n = 2usize;
    'outer: while current.len() >= 2 && !runner.budget_exhausted {
        runner.stats.iterations += 1;
        let parts = partitions(current.len(), n);
        // Phase 1: does any single partition satisfy the oracle?
        for &(s, e) in &parts {
            let candidate: Vec<u32> = current[s..e].to_vec();
            if runner.test(&candidate, oracle) {
                current = candidate;
                n = 2;
                continue 'outer;
            }
        }
        // Phase 2: does any complement satisfy the oracle? (For n == 2 the
        // complements equal the partitions in reverse order and were already
        // tested — the optimization Figure 6 of the paper points out.)
        if n > 2 {
            for &(s, e) in &parts {
                let complement: Vec<u32> = current[..s]
                    .iter()
                    .chain(current[e..].iter())
                    .copied()
                    .collect();
                if runner.test(&complement, oracle) {
                    current = complement;
                    n = (n - 1).max(2);
                    continue 'outer;
                }
            }
        }
        // Phase 3: increase granularity or stop.
        if n >= current.len() {
            break;
        }
        n = (2 * n).min(current.len());
    }
    // Classic ddmin stops at singletons; for debloating the empty set is a
    // legal (and common) result — probe it once.
    if current.len() == 1 && runner.test(&[], oracle) {
        current.clear();
    }
    Ok(DdResult {
        minimized: runner.materialize(&current),
        stats: runner.stats,
    })
}

/// Verify that `subset` (a) satisfies the oracle and (b) is 1-minimal:
/// removing any single element makes the oracle fail. Used by property tests
/// and the debloater's self-checks.
pub fn is_one_minimal<T: Clone>(subset: &[T], oracle: &mut dyn FnMut(&[T]) -> bool) -> bool {
    if !oracle(subset) {
        return false;
    }
    for skip in 0..subset.len() {
        let without: Vec<T> = subset
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, v)| v.clone())
            .collect();
        if oracle(&without) {
            return false;
        }
    }
    true
}

/// Parallel ddmin (§9 future work): evaluates each round's candidate subsets
/// concurrently on `threads` worker threads, then applies the same
/// first-passing-index rule as the sequential algorithm — results are
/// identical to [`ddmin_with`], only wall-clock differs.
///
/// Honors the same [`DdOptions`] as the sequential path: the subset cache
/// can be toggled, and on `max_oracle_invocations` exhaustion the best
/// passing subset found so far is returned (sound but possibly not
/// 1-minimal). Candidates past the budget are treated as failing, exactly
/// like the sequential runner.
///
/// The oracle must be buildable per worker thread via `oracle_factory`
/// (λ-trim builds a fresh isolated interpreter per probe anyway). Worker
/// oracles may borrow from the caller's stack (`'env`): probing runs on
/// scoped threads.
///
/// # Errors
///
/// [`DdError::OracleRejectsWhole`] if the oracle rejects the full list.
pub fn ddmin_parallel<'env, T, F>(
    items: &[T],
    oracle_factory: F,
    threads: usize,
    options: DdOptions,
) -> Result<DdResult<T>, DdError>
where
    T: Clone + Sync + Send,
    F: Fn() -> Box<dyn FnMut(&[T]) -> bool + Send + 'env> + Sync,
{
    let threads = threads.max(1);
    let mut stats = DdStats::default();
    let mut cache: HashMap<Vec<u32>, bool> = HashMap::new();
    let mut budget_exhausted = false;
    let materialize =
        |idx: &[u32]| -> Vec<T> { idx.iter().map(|&i| items[i as usize].clone()).collect() };

    // Evaluate a batch of candidates (by index lists) in parallel; returns
    // verdicts in batch order. Oracle invocations are charged as results
    // are collected — never up front — so an aborted batch cannot
    // overcount.
    let eval_batch = |batch: &[Vec<u32>],
                      stats: &mut DdStats,
                      cache: &mut HashMap<Vec<u32>, bool>,
                      budget_exhausted: &mut bool|
     -> Vec<bool> {
        let mut verdicts: Vec<Option<bool>> = vec![None; batch.len()];
        let mut pending: Vec<usize> = Vec::new();
        for (i, idx) in batch.iter().enumerate() {
            if options.cache {
                if let Some(&v) = cache.get(idx) {
                    stats.cache_hits += 1;
                    verdicts[i] = Some(v);
                    continue;
                }
            }
            pending.push(i);
        }
        // Budget: only dispatch as many probes as the cap allows; the rest
        // fail, mirroring the sequential runner's over-budget behavior.
        if options.max_oracle_invocations > 0 {
            let remaining = options
                .max_oracle_invocations
                .saturating_sub(stats.oracle_invocations) as usize;
            if pending.len() > remaining {
                *budget_exhausted = true;
                for &i in &pending[remaining..] {
                    verdicts[i] = Some(false);
                }
                pending.truncate(remaining);
            }
        }
        if !pending.is_empty() {
            // Snapshot-aware probe ordering: schedule the largest keep-sets
            // first and deal them round-robin across workers. Large subsets
            // execute the widest import cones, so they populate the shared
            // caches (probe verdicts, init snapshots) that the smaller
            // subsets then reuse as warm prefixes — and spreading sizes
            // round-robin balances per-worker wall time. Verdicts are
            // index-collected, so scheduling order never changes results.
            let mut by_size: Vec<usize> = pending.clone();
            by_size.sort_by_key(|&i| std::cmp::Reverse(batch[i].len()));
            let mut chunks: Vec<Vec<usize>> = vec![Vec::new(); threads.min(by_size.len())];
            for (slot, i) in by_size.into_iter().enumerate() {
                chunks[slot % threads].push(i);
            }
            let mut collected: Vec<(usize, bool)> = Vec::with_capacity(pending.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|chunk| {
                        let factory = &oracle_factory;
                        let materialize = &materialize;
                        scope.spawn(move || {
                            let mut oracle = factory();
                            chunk
                                .into_iter()
                                .map(|i| {
                                    let m = materialize(&batch[i]);
                                    (i, oracle(&m))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    collected.extend(h.join().expect("dd worker thread panicked"));
                }
            });
            for (i, v) in collected {
                stats.oracle_invocations += 1;
                if options.cache {
                    cache.insert(batch[i].clone(), v);
                }
                verdicts[i] = Some(v);
            }
        }
        verdicts
            .into_iter()
            .map(|v| v.expect("all candidates evaluated"))
            .collect()
    };

    let all: Vec<u32> = (0..items.len() as u32).collect();
    let whole = eval_batch(
        std::slice::from_ref(&all),
        &mut stats,
        &mut cache,
        &mut budget_exhausted,
    );
    if !whole[0] {
        return Err(DdError::OracleRejectsWhole);
    }
    let mut current = all;
    let mut n = 2usize;
    'outer: while current.len() >= 2 && !budget_exhausted {
        stats.iterations += 1;
        let parts = partitions(current.len(), n);
        let part_sets: Vec<Vec<u32>> = parts.iter().map(|&(s, e)| current[s..e].to_vec()).collect();
        let verdicts = eval_batch(&part_sets, &mut stats, &mut cache, &mut budget_exhausted);
        if let Some(i) = verdicts.iter().position(|&v| v) {
            current.clone_from(&part_sets[i]);
            n = 2;
            continue 'outer;
        }
        if n > 2 {
            let comp_sets: Vec<Vec<u32>> = parts
                .iter()
                .map(|&(s, e)| {
                    current[..s]
                        .iter()
                        .chain(current[e..].iter())
                        .copied()
                        .collect()
                })
                .collect();
            let verdicts = eval_batch(&comp_sets, &mut stats, &mut cache, &mut budget_exhausted);
            if let Some(i) = verdicts.iter().position(|&v| v) {
                current.clone_from(&comp_sets[i]);
                n = (n - 1).max(2);
                continue 'outer;
            }
        }
        if n >= current.len() {
            break;
        }
        n = (2 * n).min(current.len());
    }
    if current.len() == 1 && !budget_exhausted {
        let empty = eval_batch(&[Vec::new()], &mut stats, &mut cache, &mut budget_exhausted);
        if empty[0] {
            current.clear();
        }
    }
    Ok(DdResult {
        minimized: materialize(&current),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_cover_exactly() {
        for len in 1..30 {
            for n in 1..=len {
                let parts = partitions(len, n);
                assert_eq!(parts.len(), n.min(len));
                assert_eq!(parts[0].0, 0);
                assert_eq!(parts.last().unwrap().1, len);
                for w in parts.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "contiguous");
                }
                assert!(parts.iter().all(|(s, e)| e > s), "nonempty");
            }
        }
    }

    #[test]
    fn minimizes_to_required_pair() {
        let items: Vec<u32> = (0..64).collect();
        let r = ddmin(&items, &mut |s: &[u32]| s.contains(&5) && s.contains(&60)).unwrap();
        assert_eq!(r.minimized, vec![5, 60]);
    }

    #[test]
    fn minimizes_single_required_element() {
        let items: Vec<u32> = (0..100).collect();
        let r = ddmin(&items, &mut |s: &[u32]| s.contains(&42)).unwrap();
        assert_eq!(r.minimized, vec![42]);
    }

    #[test]
    fn empty_result_when_nothing_required() {
        let items: Vec<u32> = (0..16).collect();
        let r = ddmin(&items, &mut |_: &[u32]| true).unwrap();
        assert!(r.minimized.is_empty(), "nothing required => empty result");
    }

    #[test]
    fn rejecting_oracle_is_an_error() {
        let items = vec![1, 2, 3];
        assert_eq!(
            ddmin(&items, &mut |_: &[i32]| false).unwrap_err(),
            DdError::OracleRejectsWhole
        );
    }

    #[test]
    fn result_is_one_minimal_for_superset_oracles() {
        // Oracle: must contain all of a required set (monotone).
        let required = [3u32, 17, 31, 54];
        let items: Vec<u32> = (0..64).collect();
        let mut oracle = |s: &[u32]| required.iter().all(|r| s.contains(r));
        let r = ddmin(&items, &mut oracle).unwrap();
        assert!(is_one_minimal(&r.minimized, &mut oracle));
        assert_eq!(r.minimized, required);
    }

    #[test]
    fn handles_non_monotone_oracles() {
        // Passes iff subset contains 0 and has even length — non-monotone.
        let items: Vec<u32> = (0..8).collect();
        let mut oracle = |s: &[u32]| s.contains(&0) && s.len().is_multiple_of(2);
        let r = ddmin(&items, &mut oracle).unwrap();
        assert!(oracle(&r.minimized), "result satisfies oracle");
    }

    #[test]
    fn caching_reduces_oracle_invocations() {
        let items: Vec<u32> = (0..64).collect();
        let oracle = |s: &[u32]| s.contains(&1) && s.contains(&62);
        let cached = ddmin_with(&items, &mut { oracle }, DdOptions::default()).unwrap();
        let uncached = ddmin_with(
            &items,
            &mut { oracle },
            DdOptions {
                cache: false,
                ..DdOptions::default()
            },
        )
        .unwrap();
        assert_eq!(cached.minimized, uncached.minimized);
        assert!(cached.stats.oracle_invocations <= uncached.stats.oracle_invocations);
    }

    #[test]
    fn budget_exhaustion_still_returns_passing_subset() {
        let items: Vec<u32> = (0..128).collect();
        let mut oracle = |s: &[u32]| s.contains(&7);
        let r = ddmin_with(
            &items,
            &mut oracle,
            DdOptions {
                max_oracle_invocations: 5,
                ..DdOptions::default()
            },
        )
        .unwrap();
        assert!(oracle(&r.minimized));
        assert!(r.stats.oracle_invocations <= 5);
    }

    #[test]
    fn preserves_original_order() {
        let items = vec!["d", "c", "b", "a"];
        let r = ddmin(&items, &mut |s: &[&str]| {
            s.contains(&"c") && s.contains(&"a")
        })
        .unwrap();
        assert_eq!(r.minimized, vec!["c", "a"], "original relative order kept");
    }

    #[test]
    fn parallel_matches_sequential() {
        let items: Vec<u32> = (0..48).collect();
        let needed = [2u32, 9, 33, 40, 47];
        let mut seq_oracle = |s: &[u32]| needed.iter().all(|r| s.contains(r));
        let seq = ddmin(&items, &mut seq_oracle).unwrap();
        let par = ddmin_parallel(
            &items,
            || {
                Box::new(move |s: &[u32]| needed.iter().all(|r| s.contains(r)))
                    as Box<dyn FnMut(&[u32]) -> bool + Send>
            },
            4,
            DdOptions::default(),
        )
        .unwrap();
        assert_eq!(seq.minimized, par.minimized);
    }

    #[test]
    fn parallel_rejecting_oracle_is_an_error() {
        let items = vec![1, 2, 3];
        let err = ddmin_parallel(
            &items,
            || Box::new(|_: &[i32]| false) as Box<dyn FnMut(&[i32]) -> bool + Send>,
            2,
            DdOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, DdError::OracleRejectsWhole);
    }

    #[test]
    fn parallel_budget_exhaustion_still_returns_passing_subset() {
        let items: Vec<u32> = (0..128).collect();
        let oracle = |s: &[u32]| s.contains(&7);
        let r = ddmin_parallel(
            &items,
            || Box::new(|s: &[u32]| s.contains(&7)) as Box<dyn FnMut(&[u32]) -> bool + Send>,
            4,
            DdOptions {
                max_oracle_invocations: 5,
                ..DdOptions::default()
            },
        )
        .unwrap();
        assert!(oracle(&r.minimized), "budget-capped result still passes");
        assert!(r.stats.oracle_invocations <= 5);
    }

    #[test]
    fn parallel_without_cache_matches_cached_result() {
        let items: Vec<u32> = (0..48).collect();
        let factory = || {
            Box::new(|s: &[u32]| s.contains(&11) && s.contains(&37))
                as Box<dyn FnMut(&[u32]) -> bool + Send>
        };
        let cached = ddmin_parallel(&items, factory, 3, DdOptions::default()).unwrap();
        let uncached = ddmin_parallel(
            &items,
            factory,
            3,
            DdOptions {
                cache: false,
                ..DdOptions::default()
            },
        )
        .unwrap();
        assert_eq!(cached.minimized, uncached.minimized);
        assert_eq!(uncached.stats.cache_hits, 0);
        assert!(cached.stats.oracle_invocations <= uncached.stats.oracle_invocations);
    }

    #[test]
    fn parallel_invocations_are_counted_on_collection() {
        // Every dispatched probe is counted exactly once: the total equals
        // the number of distinct subsets the oracle actually saw.
        use std::collections::HashSet;
        use std::sync::{Arc, Mutex};
        let seen: Arc<Mutex<HashSet<Vec<u32>>>> = Arc::new(Mutex::new(HashSet::new()));
        let items: Vec<u32> = (0..16).collect();
        let r = ddmin_parallel(
            &items,
            || {
                let seen = Arc::clone(&seen);
                Box::new(move |s: &[u32]| {
                    seen.lock().unwrap().insert(s.to_vec());
                    s.contains(&3)
                }) as Box<dyn FnMut(&[u32]) -> bool + Send>
            },
            4,
            DdOptions::default(),
        )
        .unwrap();
        assert_eq!(
            r.stats.oracle_invocations,
            seen.lock().unwrap().len() as u64,
            "invocation count must equal the oracle's actually-run probes"
        );
    }

    #[test]
    fn single_element_input() {
        let items = vec![9u32];
        let r = ddmin(&items, &mut |s: &[u32]| s.contains(&9)).unwrap();
        assert_eq!(r.minimized, vec![9]);
    }

    #[test]
    fn empty_input_passes_through() {
        let items: Vec<u32> = vec![];
        let r = ddmin(&items, &mut |_: &[u32]| true).unwrap();
        assert!(r.minimized.is_empty());
    }

    #[test]
    fn stats_count_iterations() {
        let items: Vec<u32> = (0..32).collect();
        let r = ddmin(&items, &mut |s: &[u32]| s.contains(&31)).unwrap();
        assert!(r.stats.iterations > 0);
        assert!(r.stats.oracle_invocations > 0);
    }
}

/// Greedy one-pass reduction: probe the empty set, then try removing each
/// component individually from the current candidate, keeping removals that
/// still satisfy the oracle.
///
/// This is the cheap end of the paper's §8.3 speed-up spectrum ("learning
/// techniques to choose the attribute set that is most probable to pass"):
/// exactly `n + 1` oracle invocations in the worst case, versus ddmin's
/// super-linear tail. The result satisfies the oracle and is 1-minimal with
/// respect to *forward* removal order, but unlike [`ddmin`] it can miss
/// removals that only pass in combination.
///
/// # Errors
///
/// [`DdError::OracleRejectsWhole`] if the oracle rejects the full list.
pub fn greedy_min<T: Clone>(
    items: &[T],
    oracle: &mut dyn FnMut(&[T]) -> bool,
) -> Result<DdResult<T>, DdError> {
    let mut stats = DdStats::default();
    let mut test = |idx: &[u32], stats: &mut DdStats| -> bool {
        stats.oracle_invocations += 1;
        let materialized: Vec<T> = idx.iter().map(|&i| items[i as usize].clone()).collect();
        oracle(&materialized)
    };
    let all: Vec<u32> = (0..items.len() as u32).collect();
    if !test(&all, &mut stats) {
        return Err(DdError::OracleRejectsWhole);
    }
    // Fast path: nothing needed at all.
    if !items.is_empty() && test(&[], &mut stats) {
        return Ok(DdResult {
            minimized: Vec::new(),
            stats,
        });
    }
    let mut current = all;
    let mut i = 0;
    while i < current.len() {
        stats.iterations += 1;
        let mut candidate = current.clone();
        candidate.remove(i);
        if test(&candidate, &mut stats) {
            current = candidate;
            // Do not advance: position i now holds the next element.
        } else {
            i += 1;
        }
    }
    Ok(DdResult {
        minimized: current.iter().map(|&i| items[i as usize].clone()).collect(),
        stats,
    })
}

/// Maximize a *droppable* subset: the dual of [`ddmin_with`] used by the
/// statement-slicing pass. The oracle receives the candidate **dropped**
/// subset and answers whether the program still behaves correctly with
/// those components removed. Returns a 1-maximal droppable subset — adding
/// any single remaining component to the dropped set makes the oracle fail
/// (unless the probe budget ran out first).
///
/// Implemented by complement reduction: `drop(D)` passes iff `keep(A \ D)`
/// passes, so running [`ddmin_with`] on the keep-oracle over component
/// indices yields a 1-minimal keep set whose complement is the 1-maximal
/// drop set.
///
/// # Errors
///
/// [`DdError::OracleRejectsWhole`] if even dropping *nothing* fails — the
/// caller's baseline is broken, not the reduction.
pub fn ddmax_with<T: Clone>(
    items: &[T],
    oracle: &mut dyn FnMut(&[T]) -> bool,
    options: DdOptions,
) -> Result<DdResult<T>, DdError> {
    let indices: Vec<u32> = (0..items.len() as u32).collect();
    let mut keep_oracle = |kept: &[u32]| -> bool {
        let dropped: Vec<T> = indices
            .iter()
            .filter(|i| !kept.contains(i))
            .map(|&i| items[i as usize].clone())
            .collect();
        oracle(&dropped)
    };
    let kept = ddmin_with(&indices, &mut keep_oracle, options)?;
    let minimized: Vec<T> = indices
        .iter()
        .filter(|i| !kept.minimized.contains(i))
        .map(|&i| items[i as usize].clone())
        .collect();
    Ok(DdResult {
        minimized,
        stats: kept.stats,
    })
}

#[cfg(test)]
mod ddmax_tests {
    use super::*;

    #[test]
    fn ddmax_finds_the_full_droppable_complement() {
        // Components 3 and 7 are load-bearing: any drop set containing
        // them fails. The maximal droppable set is everything else.
        let items: Vec<u32> = (0..12).collect();
        let mut oracle = |dropped: &[u32]| !dropped.contains(&3) && !dropped.contains(&7);
        let r = ddmax_with(&items, &mut oracle, DdOptions::default()).unwrap();
        let expected: Vec<u32> = (0..12).filter(|&i| i != 3 && i != 7).collect();
        assert_eq!(r.minimized, expected);
    }

    #[test]
    fn ddmax_result_is_one_maximal() {
        let items: Vec<u32> = (0..16).collect();
        let mut oracle = |dropped: &[u32]| dropped.iter().all(|d| d % 3 != 0);
        let r = ddmax_with(&items, &mut oracle, DdOptions::default()).unwrap();
        assert!(oracle(&r.minimized), "result must pass the oracle");
        for extra in items.iter().filter(|i| !r.minimized.contains(i)) {
            let mut grown = r.minimized.clone();
            grown.push(*extra);
            assert!(!oracle(&grown), "adding {extra} must fail: 1-maximality");
        }
    }

    #[test]
    fn ddmax_on_broken_baseline_is_an_error() {
        // Even the empty drop fails: the caller's baseline is broken.
        let items = vec![1u32, 2];
        assert_eq!(
            ddmax_with(&items, &mut |_: &[u32]| false, DdOptions::default()).unwrap_err(),
            DdError::OracleRejectsWhole
        );
    }

    #[test]
    fn ddmax_with_nothing_droppable_returns_empty() {
        let items: Vec<u32> = (0..6).collect();
        let mut oracle = |dropped: &[u32]| dropped.is_empty();
        let r = ddmax_with(&items, &mut oracle, DdOptions::default()).unwrap();
        assert!(r.minimized.is_empty());
    }
}

#[cfg(test)]
mod greedy_tests {
    use super::*;

    #[test]
    fn greedy_matches_ddmin_on_monotone_oracles() {
        let required = [4u32, 19, 40];
        let items: Vec<u32> = (0..48).collect();
        let mut oracle = |s: &[u32]| required.iter().all(|r| s.contains(r));
        let greedy = greedy_min(&items, &mut oracle).unwrap();
        let dd = ddmin(&items, &mut oracle).unwrap();
        assert_eq!(greedy.minimized, dd.minimized);
    }

    #[test]
    fn greedy_is_linear_in_probes() {
        let items: Vec<u32> = (0..200).collect();
        let mut oracle = |s: &[u32]| s.contains(&100);
        let r = greedy_min(&items, &mut oracle).unwrap();
        assert!(r.stats.oracle_invocations <= items.len() as u64 + 2);
        assert_eq!(r.minimized, vec![100]);
    }

    #[test]
    fn greedy_result_satisfies_oracle_on_non_monotone() {
        // Needs 0 and an even-sized set: individual removals from the full
        // even set flip parity and fail, so greedy may keep more than ddmin
        // — but the result must still pass.
        let items: Vec<u32> = (0..8).collect();
        let mut oracle = |s: &[u32]| s.contains(&0) && s.len().is_multiple_of(2);
        let r = greedy_min(&items, &mut oracle).unwrap();
        assert!(oracle(&r.minimized));
    }

    #[test]
    fn greedy_empty_fast_path() {
        let items: Vec<u32> = (0..64).collect();
        let mut oracle = |_: &[u32]| true;
        let r = greedy_min(&items, &mut oracle).unwrap();
        assert!(r.minimized.is_empty());
        assert_eq!(r.stats.oracle_invocations, 2, "whole + empty probes only");
    }

    #[test]
    fn greedy_rejecting_oracle_is_error() {
        let items = vec![1, 2];
        assert_eq!(
            greedy_min(&items, &mut |_: &[i32]| false).unwrap_err(),
            DdError::OracleRejectsWhole
        );
    }
}
