//! # trim-apps — the 21-application benchmark corpus
//!
//! A from-scratch reconstruction of the paper's benchmark set (Table 1):
//! 8 applications from FaaSLight, 6 from RainbowCake and 7 new ones, each
//! with the synthetic library ecosystem it depends on (torch, transformers,
//! numpy, pandas, sklearn, tensorflow, …) generated from specs calibrated
//! to the paper's measurements:
//!
//! * attribute counts match Table 3's "Pre" column per example module;
//! * full-load import times land near Table 1's `Import` column;
//! * the unavoidable/removable cost split is tuned so trimming lands near
//!   Figure 8's improvements;
//! * every app has a `getattr`-reachable *rare* attribute that the oracle
//!   set does not exercise — the Table 4 fallback trigger.
//!
//! # Example
//!
//! ```
//! let bench = trim_apps::app("markdown").expect("corpus app");
//! let exec = trim_core::run_app(&bench.registry, &bench.app_source, &bench.spec)
//!     .expect("app passes its own oracle");
//! assert!(exec.init_secs > 0.0);
//! ```

#![warn(missing_docs)]

pub mod apps;
pub mod libgen;
pub mod specs;

pub use apps::{app, app_names, corpus, mini_corpus, BenchApp, PaperRow};
pub use libgen::{attr_is_function, attr_name, generate_library, LibSpec, SubSpec};
pub use specs::{library_spec, library_specs};
