//! Synthetic library generator.
//!
//! Real PyPI libraries are unavailable, so the corpus generates pylite
//! packages from [`LibSpec`]s calibrated to the paper's Tables 1 and 3:
//! attribute counts, import-time and memory costs, submodule structure, and
//! cross-library dependencies. The three observables Delta Debugging cares
//! about — the attribute namespace, the marginal import cost, and which
//! attributes an app touches — are reproduced; the numerical kernels inside
//! are modeled by the `__lt_work__`/`__lt_alloc__` intrinsics.

use std::fmt::Write as _;

/// A submodule of a generated library.
#[derive(Debug, Clone, PartialEq)]
pub struct SubSpec {
    /// Submodule name (e.g. `nn` for `torch.nn`).
    pub name: &'static str,
    /// Number of top-level attributes the submodule defines.
    pub attrs: usize,
    /// Import work of the submodule body in milliseconds (full load).
    pub import_ms: f64,
    /// Memory allocated by the submodule body in MB (full load).
    pub alloc_mb: f64,
    /// How many of its attributes the package `__init__` re-exports via
    /// `from pkg.sub import a, b, …` (the Figure 7 pattern).
    pub reexports: usize,
}

/// Specification of one synthetic library.
#[derive(Debug, Clone, PartialEq)]
pub struct LibSpec {
    /// Package name (`torch`, `numpy`, …).
    pub name: &'static str,
    /// Attribute-name prefix (short, unique across libraries).
    pub prefix: &'static str,
    /// Number of top-level attributes in `__init__` **excluding**
    /// re-exports (the Table 3 "Pre" count is attrs + Σ reexports).
    pub init_attrs: usize,
    /// Total import work of `__init__`'s own body in ms (full load,
    /// excluding submodules).
    pub init_ms: f64,
    /// Total memory allocated by `__init__`'s own body in MB.
    pub init_mb: f64,
    /// Fraction of `init_ms` that is unavoidable (bare statements that no
    /// attribute removal can eliminate — runtime bootstrap, C extension
    /// loading).
    pub core_frac: f64,
    /// Fraction of `init_mb` that is unavoidable. Typically higher than
    /// `core_frac`: most of a library's post-import footprint is interpreter
    /// state for the code that loaded, which trimming individual attributes
    /// recovers only partially (the paper's mean memory win is 10.3%).
    pub mem_core_frac: f64,
    /// Submodules.
    pub subs: Vec<SubSpec>,
    /// Libraries this package imports at the top of its `__init__`
    /// (e.g. pandas → numpy). Emitted as plain `import dep`.
    pub deps: Vec<&'static str>,
    /// On-disk package size in MB (deployment image accounting).
    pub disk_mb: f64,
}

impl LibSpec {
    /// Total top-level attribute count of `__init__` (Table 3 "Pre"):
    /// dependency imports + re-exports + own attributes.
    pub fn total_init_attrs(&self) -> usize {
        self.deps.len() + self.subs.iter().map(|s| s.reexports).sum::<usize>() + self.init_attrs
    }

    /// Full-load import cost in ms (init body + all submodules).
    pub fn full_import_ms(&self) -> f64 {
        self.init_ms + self.subs.iter().map(|s| s.import_ms).sum::<f64>()
    }

    /// Full-load memory in MB (init body + all submodules).
    pub fn full_alloc_mb(&self) -> f64 {
        self.init_mb + self.subs.iter().map(|s| s.alloc_mb).sum::<f64>()
    }
}

/// The name of attribute `i` of library/submodule with `prefix`.
///
/// Attribute kinds cycle with `i`:
/// `i % 5 == 0` → function, `1` → class, `2` → memory-carrying constant,
/// `3` → import-work-carrying constant, `4` → plain constant.
pub fn attr_name(prefix: &str, i: usize) -> String {
    format!("{prefix}_a{i}")
}

/// Whether attribute `i` is a callable function (usable as `lib.attr(x)`).
pub fn attr_is_function(i: usize) -> bool {
    i.is_multiple_of(5)
}

/// Generate the body of attributes for a module.
///
/// `work_ms`/`alloc_mb` are spread over the work/memory-carrying attribute
/// kinds so that removing those attributes removes their cost.
fn gen_attr_block(out: &mut String, prefix: &str, n: usize, work_ms: f64, alloc_mb: f64) {
    if n == 0 {
        return;
    }
    let work_carriers = n.div_ceil(5);
    let mem_carriers = n.div_ceil(5);
    let ms_each = work_ms / work_carriers.max(1) as f64;
    let mb_each = alloc_mb / mem_carriers.max(1) as f64;
    for i in 0..n {
        let name = attr_name(prefix, i);
        // Real libraries are densely self-referential: function and method
        // bodies name other module attributes, so *every* name appears in a
        // load position somewhere. This is what defeats purely static
        // dead-code tools (the names are referenced, just never executed)
        // while DD's dynamic oracle still trims them — references inside a
        // never-called body cost nothing at import time.
        let peer = attr_name(prefix, (i + 2) % n);
        let peer2 = attr_name(prefix, (i + 3) % n);
        match i % 5 {
            0 => {
                // References both the alloc carrier (i+2) and the work
                // carrier (i+3) so every cost-bearing name has a static use.
                let _ = writeln!(
                    out,
                    "def {name}(x):\n    if x is None:\n        return ({peer}, {peer2})\n    return x + {i}"
                );
            }
            1 => {
                let _ = writeln!(
                    out,
                    "class {name}:\n    def run(self, x):\n        return ({peer2}, x)"
                );
            }
            2 => {
                let _ = writeln!(out, "{name} = __lt_alloc__({mb_each:.6})");
            }
            3 => {
                let _ = writeln!(out, "{name} = __lt_work__({ms_each:.6})");
            }
            _ => {
                // Alternate plain constants with comprehension/slice-built
                // tables — the import-time patterns real libraries use.
                if i % 10 == 4 {
                    let _ = writeln!(out, "{name} = [j + {i} for j in range(3)]");
                } else {
                    let _ = writeln!(out, "{name} = {i}");
                }
            }
        }
    }
}

/// Generate a library into `registry`: `name` plus `name.sub` modules.
pub fn generate_library(spec: &LibSpec, registry: &mut pylite::Registry) {
    // Submodules first (content referenced by the package init).
    for sub in &spec.subs {
        let sub_prefix = format!("{}_{}", spec.prefix, sub.name);
        let mut src = String::new();
        let core_ms = sub.import_ms * 0.3;
        let core_mb = sub.alloc_mb * 0.5;
        let _ = writeln!(src, "__lt_work__({core_ms:.6})");
        let _ = writeln!(src, "__lt_alloc__({core_mb:.6})");
        gen_attr_block(
            &mut src,
            &sub_prefix,
            sub.attrs,
            sub.import_ms - core_ms,
            sub.alloc_mb - core_mb,
        );
        registry.set_module(format!("{}.{}", spec.name, sub.name), src);
    }

    let mut src = String::new();
    let _ = writeln!(src, "__version__ = \"1.0.0\"");
    // Unavoidable bootstrap cost (bare statements, untouched by DD).
    let core_ms = spec.init_ms * spec.core_frac;
    let core_mb = spec.init_mb * spec.mem_core_frac;
    let _ = writeln!(src, "__lt_work__({core_ms:.6})");
    let _ = writeln!(src, "__lt_alloc__({core_mb:.6})");
    // Dependency imports. The bare module reference right after makes the
    // import load-bearing at module-execution time (as in real libraries,
    // where module-level code uses the dependency): DD cannot drop it.
    for dep in &spec.deps {
        let _ = writeln!(src, "import {dep}");
        let _ = writeln!(src, "{dep}.__version__");
    }
    // Re-exports from submodules (the Figure 7 from-import lists).
    for sub in &spec.subs {
        if sub.reexports == 0 {
            continue;
        }
        let sub_prefix = format!("{}_{}", spec.prefix, sub.name);
        let names: Vec<String> = (0..sub.reexports.min(sub.attrs))
            .map(|i| attr_name(&sub_prefix, i))
            .collect();
        let _ = writeln!(
            src,
            "from {}.{} import {}",
            spec.name,
            sub.name,
            names.join(", ")
        );
    }
    // Own attributes carrying the removable share of the cost.
    gen_attr_block(
        &mut src,
        spec.prefix,
        spec.init_attrs,
        spec.init_ms - core_ms,
        spec.init_mb - core_mb,
    );
    registry.set_module(spec.name, src);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pylite::{Interpreter, Registry};

    fn toy_spec() -> LibSpec {
        LibSpec {
            name: "toylib",
            prefix: "toy",
            init_attrs: 20,
            init_ms: 100.0,
            init_mb: 50.0,
            core_frac: 0.2,
            mem_core_frac: 0.2,
            subs: vec![SubSpec {
                name: "ops",
                attrs: 10,
                import_ms: 40.0,
                alloc_mb: 20.0,
                reexports: 3,
            }],
            deps: vec![],
            disk_mb: 10.0,
        }
    }

    #[test]
    fn generated_library_parses_and_imports() {
        let mut r = Registry::new();
        generate_library(&toy_spec(), &mut r);
        assert!(r.contains("toylib"));
        assert!(r.contains("toylib.ops"));
        let mut it = Interpreter::new(r);
        it.exec_main("import toylib\nprint(toylib.toy_a0(1))\n")
            .expect("library imports cleanly");
        assert_eq!(it.stdout, vec!["1"]);
    }

    #[test]
    fn import_cost_matches_spec_within_tolerance() {
        let spec = toy_spec();
        let mut r = Registry::new();
        generate_library(&spec, &mut r);
        let mut it = Interpreter::new(r);
        it.exec_main("import toylib\n").unwrap();
        let secs = it.meter.clock_secs();
        let expected = spec.full_import_ms() / 1000.0;
        assert!(
            (secs - expected).abs() / expected < 0.25,
            "import time {secs:.4}s vs spec {expected:.4}s"
        );
        let mb = it.meter.mem_mb();
        let expected_mb = spec.full_alloc_mb();
        assert!(
            (mb - expected_mb).abs() / expected_mb < 0.25,
            "memory {mb:.1}MB vs spec {expected_mb:.1}MB"
        );
    }

    #[test]
    fn attribute_count_matches_table() {
        let spec = toy_spec();
        let mut r = Registry::new();
        generate_library(&spec, &mut r);
        let program = r.parse_module("toylib").unwrap();
        let attrs = trim_core::module_attributes(&program);
        assert_eq!(attrs.len(), spec.total_init_attrs());
    }

    #[test]
    fn reexports_resolve() {
        let mut r = Registry::new();
        generate_library(&toy_spec(), &mut r);
        let mut it = Interpreter::new(r);
        it.exec_main(
            "import toylib\nprint(toylib.toy_ops_a0(2))\nprint(toylib.ops.toy_ops_a0(3))\n",
        )
        .unwrap();
        assert_eq!(it.stdout, vec!["2", "3"]);
    }

    #[test]
    fn dependency_imports_load_dependency() {
        let mut r = Registry::new();
        generate_library(&toy_spec(), &mut r);
        let dep_user = LibSpec {
            name: "wrapper",
            prefix: "wr",
            init_attrs: 5,
            init_ms: 10.0,
            init_mb: 2.0,
            core_frac: 0.5,
            mem_core_frac: 0.5,
            subs: vec![],
            deps: vec!["toylib"],
            disk_mb: 1.0,
        };
        generate_library(&dep_user, &mut r);
        let mut it = Interpreter::new(r);
        it.exec_main("import wrapper\nprint(wrapper.toylib.toy_a4)\n")
            .unwrap();
        // toy_a4 is one of the comprehension-built tables.
        assert_eq!(it.stdout, vec!["[4, 5, 6]"]);
    }

    #[test]
    fn attr_kind_helpers() {
        assert!(attr_is_function(0));
        assert!(attr_is_function(5));
        assert!(!attr_is_function(2));
        assert_eq!(attr_name("np", 7), "np_a7");
    }
}
