//! Library specifications calibrated to the paper.
//!
//! Attribute counts come from Table 3 ("Attributes Pre" of each app's
//! example module); import times and memory are chosen so that each
//! application's full-load Function Initialization lands near its Table 1
//! `Import` column, and the unavoidable (`core_frac`) share is chosen so
//! trimmed results land near Figure 8's improvements.

use crate::libgen::{LibSpec, SubSpec};

fn sub(
    name: &'static str,
    attrs: usize,
    import_ms: f64,
    alloc_mb: f64,
    reexports: usize,
) -> SubSpec {
    SubSpec {
        name,
        attrs,
        import_ms,
        alloc_mb,
        reexports,
    }
}

/// All library specifications of the corpus, keyed by name.
pub fn library_specs() -> Vec<LibSpec> {
    vec![
        LibSpec {
            name: "torch",
            prefix: "th",
            // 1414 total = 140 re-exports + 1274 own.
            init_attrs: 1274,
            init_ms: 2500.0,
            init_mb: 180.0,
            // resnet's 2x E2E speedup (Fig. 8) requires torch's import cost
            // to be mostly attribute-attached; huggingface keeps it by
            // actually using most of torch.
            core_frac: 0.10,
            mem_core_frac: 0.75,
            subs: vec![
                sub("nn", 400, 700.0, 60.0, 60),
                sub("optim", 120, 180.0, 10.0, 25),
                sub("cuda", 80, 250.0, 25.0, 10),
                sub("autograd", 90, 200.0, 15.0, 15),
                sub("jit", 60, 150.0, 8.0, 10),
                sub("utils", 100, 120.0, 12.0, 20),
            ],
            deps: vec![],
            disk_mb: 720.0,
        },
        LibSpec {
            name: "transformers",
            prefix: "tf",
            // 3300 total = 1 dep + 199 re-exports + 3100 own.
            init_attrs: 3100,
            init_ms: 900.0,
            init_mb: 100.0,
            // Most of transformers' import cost survives trimming in the
            // huggingface app (Table 2: import improves only ~10%).
            core_frac: 0.55,
            mem_core_frac: 0.92,
            subs: vec![
                sub("models", 600, 180.0, 25.0, 80),
                sub("tokenization", 300, 120.0, 15.0, 40),
                sub("pipelines", 150, 90.0, 10.0, 30),
                sub("configuration", 120, 60.0, 6.0, 20),
                sub("generation", 100, 50.0, 5.0, 29),
            ],
            deps: vec!["torch"],
            disk_mb: 80.0,
        },
        LibSpec {
            name: "numpy",
            prefix: "np",
            // 537 total = 55 re-exports + 482 own.
            init_attrs: 482,
            init_ms: 220.0,
            init_mb: 28.0,
            core_frac: 0.30,
            mem_core_frac: 0.80,
            // Deliberately mixed shapes (§5.2's ablation): linalg is slow
            // but light, random is fast but memory-heavy — a time-only or
            // memory-only ranking each picks the wrong one.
            subs: vec![
                sub("linalg", 120, 95.0, 1.0, 20),
                sub("fft", 60, 15.0, 2.0, 10),
                sub("random", 90, 8.0, 14.0, 15),
                sub("ma", 70, 12.0, 1.0, 10),
            ],
            deps: vec![],
            disk_mb: 60.0,
        },
        LibSpec {
            name: "PIL",
            prefix: "pil",
            init_attrs: 140,
            init_ms: 150.0,
            init_mb: 20.0,
            core_frac: 0.30,
            mem_core_frac: 0.92,
            subs: vec![
                sub("image", 150, 60.0, 6.0, 30),
                sub("filters", 60, 30.0, 4.0, 10),
            ],
            deps: vec![],
            disk_mb: 45.0,
        },
        LibSpec {
            name: "boto3",
            prefix: "b3",
            init_attrs: 90,
            init_ms: 180.0,
            init_mb: 24.0,
            core_frac: 0.65,
            mem_core_frac: 0.92,
            subs: vec![
                sub("session", 40, 40.0, 4.0, 10),
                sub("client", 50, 50.0, 4.0, 12),
                sub("resources", 30, 25.0, 3.0, 8),
            ],
            deps: vec![],
            disk_mb: 55.0,
        },
        LibSpec {
            name: "wand",
            prefix: "wd",
            // Example module is wand.image (91 attrs).
            init_attrs: 40,
            init_ms: 120.0,
            init_mb: 12.0,
            core_frac: 0.90,
            mem_core_frac: 0.92,
            subs: vec![
                sub("image", 91, 180.0, 18.0, 12),
                sub("api", 40, 40.0, 5.0, 8),
            ],
            deps: vec![],
            disk_mb: 95.0,
        },
        LibSpec {
            name: "lightgbm",
            prefix: "lgb",
            // 45 total = 1 dep + 18 re-exports + 26 own.
            init_attrs: 26,
            init_ms: 140.0,
            init_mb: 40.0,
            core_frac: 0.25,
            mem_core_frac: 0.70,
            subs: vec![
                sub("basic", 60, 50.0, 12.0, 10),
                sub("engine", 40, 30.0, 8.0, 8),
            ],
            deps: vec!["numpy"],
            disk_mb: 60.0,
        },
        LibSpec {
            name: "requests",
            prefix: "rq",
            init_attrs: 62,
            init_ms: 120.0,
            init_mb: 12.0,
            core_frac: 0.40,
            mem_core_frac: 0.92,
            subs: vec![
                sub("adapters", 50, 30.0, 4.0, 8),
                sub("models", 60, 30.0, 4.0, 10),
            ],
            deps: vec![],
            disk_mb: 25.0,
        },
        LibSpec {
            name: "lxml",
            prefix: "lx",
            // Example module is lxml.html (84 attrs).
            init_attrs: 125,
            init_ms: 90.0,
            init_mb: 12.0,
            core_frac: 0.40,
            mem_core_frac: 0.92,
            subs: vec![
                sub("html", 84, 50.0, 6.0, 12),
                sub("etree", 90, 60.0, 7.0, 13),
            ],
            deps: vec![],
            disk_mb: 50.0,
        },
        LibSpec {
            name: "sklearn",
            prefix: "sk",
            // 220 total = 2 deps + 55 re-exports + 163 own.
            init_attrs: 163,
            init_ms: 180.0,
            init_mb: 30.0,
            // Table 2: scikit's import improves ~20%.
            core_frac: 0.45,
            mem_core_frac: 0.92,
            subs: vec![
                sub("linear_model", 80, 60.0, 5.0, 12),
                sub("ensemble", 90, 70.0, 6.0, 15),
                sub("preprocessing", 60, 40.0, 4.0, 10),
                sub("metrics", 70, 45.0, 4.0, 10),
                sub("cluster", 50, 35.0, 3.0, 8),
            ],
            deps: vec!["numpy", "joblib"],
            disk_mb: 160.0,
        },
        LibSpec {
            name: "joblib",
            prefix: "jb",
            init_attrs: 50,
            init_ms: 90.0,
            init_mb: 12.0,
            core_frac: 0.30,
            mem_core_frac: 0.92,
            subs: vec![],
            deps: vec![],
            disk_mb: 12.0,
        },
        LibSpec {
            name: "skimage",
            prefix: "ski",
            // 18 total = 16 re-exports + 2 own; the heft is in submodules.
            init_attrs: 2,
            init_ms: 120.0,
            init_mb: 10.0,
            core_frac: 0.15,
            mem_core_frac: 0.20,
            subs: vec![
                sub("filters", 120, 280.0, 25.0, 4),
                sub("color", 80, 180.0, 18.0, 3),
                sub("transform", 90, 240.0, 20.0, 3),
                sub("io", 60, 150.0, 12.0, 2),
                sub("feature", 70, 200.0, 16.0, 2),
                sub("morphology", 60, 160.0, 14.0, 2),
            ],
            deps: vec![],
            disk_mb: 155.0,
        },
        LibSpec {
            name: "tensorflow",
            prefix: "tfl",
            // 355 total = 1 dep + 64 re-exports + 290 own.
            init_attrs: 290,
            init_ms: 2600.0,
            init_mb: 180.0,
            // Table 2: tensorflow's import improves only ~16% — the bulk of
            // its import cost is untrimmable C-extension bootstrap.
            core_frac: 0.85,
            mem_core_frac: 0.92,
            subs: vec![
                sub("keras", 120, 500.0, 40.0, 20),
                sub("ops", 100, 400.0, 30.0, 15),
                sub("data", 60, 200.0, 15.0, 10),
                sub("io", 40, 150.0, 10.0, 8),
                sub("signal", 30, 100.0, 8.0, 5),
                sub("lite", 40, 120.0, 10.0, 6),
            ],
            deps: vec!["numpy"],
            disk_mb: 580.0,
        },
        LibSpec {
            name: "squiggle",
            prefix: "sq",
            init_attrs: 34,
            init_ms: 80.0,
            init_mb: 10.0,
            core_frac: 0.30,
            mem_core_frac: 0.70,
            subs: vec![sub("plot", 30, 40.0, 5.0, 5)],
            deps: vec!["numpy"],
            disk_mb: 12.0,
        },
        LibSpec {
            name: "ffmpeg",
            prefix: "ff",
            init_attrs: 42,
            init_ms: 40.0,
            init_mb: 6.0,
            core_frac: 0.80,
            mem_core_frac: 0.92,
            subs: vec![sub("probe", 20, 15.0, 2.0, 4)],
            deps: vec![],
            disk_mb: 295.0,
        },
        LibSpec {
            name: "igraph",
            prefix: "ig",
            init_attrs: 177,
            init_ms: 70.0,
            init_mb: 12.0,
            core_frac: 0.35,
            mem_core_frac: 0.92,
            subs: vec![sub("drawing", 60, 25.0, 4.0, 8)],
            deps: vec![],
            disk_mb: 40.0,
        },
        LibSpec {
            name: "markdown",
            prefix: "md",
            init_attrs: 28,
            init_ms: 35.0,
            init_mb: 5.0,
            core_frac: 0.30,
            mem_core_frac: 0.92,
            subs: vec![],
            deps: vec![],
            disk_mb: 32.0,
        },
        LibSpec {
            name: "textblob",
            prefix: "tb",
            init_attrs: 133,
            init_ms: 120.0,
            init_mb: 18.0,
            core_frac: 0.30,
            mem_core_frac: 0.92,
            subs: vec![sub("en", 40, 50.0, 5.0, 6)],
            deps: vec!["nltk"],
            disk_mb: 45.0,
        },
        LibSpec {
            name: "nltk",
            prefix: "nl",
            init_attrs: 515,
            init_ms: 150.0,
            init_mb: 20.0,
            core_frac: 0.30,
            mem_core_frac: 0.92,
            subs: vec![
                sub("corpus", 200, 60.0, 6.0, 20),
                sub("tokenize", 120, 50.0, 5.0, 15),
                sub("stem", 80, 40.0, 4.0, 10),
            ],
            deps: vec![],
            disk_mb: 60.0,
        },
        LibSpec {
            name: "chdb",
            prefix: "ch",
            // Embedded DB engine: mostly unavoidable bootstrap.
            init_attrs: 25,
            init_ms: 700.0,
            init_mb: 60.0,
            core_frac: 0.55,
            mem_core_frac: 0.92,
            subs: vec![
                sub("engine", 20, 150.0, 15.0, 4),
                sub("session", 15, 100.0, 10.0, 3),
            ],
            deps: vec![],
            disk_mb: 290.0,
        },
        LibSpec {
            name: "reportlab",
            prefix: "rl",
            init_attrs: 102,
            init_ms: 140.0,
            init_mb: 18.0,
            core_frac: 0.35,
            mem_core_frac: 0.92,
            subs: vec![
                sub("pdfgen", 60, 50.0, 5.0, 10),
                sub("lib", 50, 40.0, 4.0, 8),
            ],
            deps: vec![],
            disk_mb: 60.0,
        },
        LibSpec {
            name: "pptx",
            prefix: "px",
            // 38 total = 10 re-exports + 28 own.
            init_attrs: 28,
            init_ms: 110.0,
            init_mb: 15.0,
            core_frac: 0.30,
            mem_core_frac: 0.92,
            subs: vec![
                sub("util", 20, 35.0, 4.0, 4),
                sub("chart", 30, 30.0, 4.0, 6),
            ],
            deps: vec![],
            disk_mb: 35.0,
        },
        LibSpec {
            name: "docx",
            prefix: "dx",
            init_attrs: 52,
            init_ms: 100.0,
            init_mb: 12.0,
            core_frac: 0.30,
            mem_core_frac: 0.92,
            subs: vec![sub("oxml", 40, 35.0, 4.0, 8)],
            deps: vec![],
            disk_mb: 25.0,
        },
        LibSpec {
            name: "sympy",
            prefix: "sy",
            // 938 total = 100 re-exports + 838 own.
            init_attrs: 838,
            init_ms: 250.0,
            init_mb: 30.0,
            core_frac: 0.25,
            mem_core_frac: 0.90,
            subs: vec![
                sub("core", 300, 90.0, 8.0, 40),
                sub("solvers", 150, 70.0, 6.0, 20),
                sub("matrices", 120, 60.0, 5.0, 15),
                sub("functions", 200, 80.0, 7.0, 25),
            ],
            deps: vec![],
            disk_mb: 83.0,
        },
        LibSpec {
            name: "qiskit",
            prefix: "qk",
            // 49 total = 35 re-exports + 14 own.
            init_attrs: 14,
            init_ms: 450.0,
            init_mb: 55.0,
            core_frac: 0.35,
            mem_core_frac: 0.92,
            subs: vec![
                sub("circuit", 100, 180.0, 12.0, 15),
                sub("quantum_info", 80, 150.0, 10.0, 12),
                sub("transpiler", 60, 100.0, 8.0, 8),
            ],
            deps: vec![],
            disk_mb: 120.0,
        },
        LibSpec {
            name: "qiskit_nature",
            prefix: "qn",
            init_attrs: 44,
            init_ms: 500.0,
            init_mb: 60.0,
            core_frac: 0.30,
            mem_core_frac: 0.92,
            subs: vec![
                sub("drivers", 40, 180.0, 10.0, 8),
                sub("mappers", 30, 120.0, 8.0, 6),
            ],
            deps: vec!["qiskit", "numpy"],
            disk_mb: 160.0,
        },
        LibSpec {
            name: "shapely",
            prefix: "sh",
            // 176 total = 23 re-exports + 153 own.
            init_attrs: 153,
            init_ms: 110.0,
            init_mb: 15.0,
            core_frac: 0.35,
            mem_core_frac: 0.92,
            subs: vec![
                sub("geometry", 90, 50.0, 5.0, 15),
                sub("ops", 50, 40.0, 4.0, 8),
            ],
            deps: vec![],
            disk_mb: 30.0,
        },
        LibSpec {
            name: "spacy",
            prefix: "sp",
            // 60 total = 1 dep + 26 re-exports + 33 own.
            init_attrs: 33,
            init_ms: 1100.0,
            init_mb: 90.0,
            // The language-model load is untrimmable (S8.6 notes C/R beats
            // trim here because model loading dominates).
            core_frac: 0.45,
            mem_core_frac: 0.92,
            subs: vec![
                sub("lang", 60, 260.0, 4.0, 8),
                sub("pipeline", 50, 180.0, 18.0, 8),
                sub("tokens", 40, 120.0, 12.0, 6),
                sub("vocab", 30, 40.0, 26.0, 4),
            ],
            deps: vec!["numpy"],
            disk_mb: 200.0,
        },
        LibSpec {
            name: "pandas",
            prefix: "pd",
            // 141 total = 1 dep + 24 re-exports + 116 own.
            init_attrs: 116,
            init_ms: 220.0,
            init_mb: 30.0,
            core_frac: 0.30,
            mem_core_frac: 0.92,
            subs: vec![
                sub("core", 60, 60.0, 8.0, 10),
                sub("io", 40, 50.0, 6.0, 8),
                sub("tseries", 30, 40.0, 5.0, 6),
            ],
            deps: vec!["numpy"],
            disk_mb: 55.0,
        },
    ]
}

/// Look up a library spec by name.
pub fn library_spec(name: &str) -> Option<LibSpec> {
    library_specs().into_iter().find(|l| l.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_pre_attribute_counts() {
        // Table 3 "Pre" column for each app's example module.
        let expect = [
            ("chdb", 32),
            ("numpy", 537),
            ("pptx", 38),
            ("ffmpeg", 46),
            ("transformers", 3300),
            ("igraph", 185),
            ("sympy", 938),
            ("lightgbm", 45),
            ("markdown", 28),
            ("pandas", 141),
            ("torch", 1414),
            ("joblib", 50),
            ("shapely", 176),
            ("skimage", 18),
            ("spacy", 60),
            ("tensorflow", 355),
            ("nltk", 560),
        ];
        for (name, want) in expect {
            let spec = library_spec(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(
                spec.total_init_attrs(),
                want,
                "{name} attribute count must match Table 3"
            );
        }
    }

    #[test]
    fn table3_submodule_example_counts() {
        // wand.image (91) and lxml.html (84) are submodules in Table 3.
        let wand = library_spec("wand").unwrap();
        assert_eq!(
            wand.subs.iter().find(|s| s.name == "image").unwrap().attrs,
            91
        );
        let lxml = library_spec("lxml").unwrap();
        assert_eq!(
            lxml.subs.iter().find(|s| s.name == "html").unwrap().attrs,
            84
        );
    }

    #[test]
    fn reexports_never_exceed_submodule_attrs() {
        for spec in library_specs() {
            for s in &spec.subs {
                assert!(
                    s.reexports <= s.attrs,
                    "{}.{}: {} re-exports > {} attrs",
                    spec.name,
                    s.name,
                    s.reexports,
                    s.attrs
                );
            }
        }
    }

    #[test]
    fn dependencies_exist() {
        let names: Vec<&str> = library_specs().iter().map(|l| l.name).collect();
        for spec in library_specs() {
            for dep in &spec.deps {
                assert!(
                    names.contains(dep),
                    "{} depends on missing {dep}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn prefixes_are_unique() {
        let mut prefixes: Vec<&str> = library_specs().iter().map(|l| l.prefix).collect();
        let n = prefixes.len();
        prefixes.sort_unstable();
        prefixes.dedup();
        assert_eq!(prefixes.len(), n, "attribute prefixes must not collide");
    }

    #[test]
    fn core_fractions_are_sane() {
        for spec in library_specs() {
            assert!(
                (0.0..=0.95).contains(&spec.core_frac),
                "{}: core_frac out of range",
                spec.name
            );
        }
    }
}
