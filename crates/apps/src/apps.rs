//! The 21 benchmark applications of Table 1.
//!
//! Each application is generated from an [`AppDef`]: which libraries it
//! imports, how many of each library's attributes it actually touches
//! (calibrated to Table 3's removed/kept counts), its handler work
//! (Table 1's `Exec` column) and external-service calls. Every app also
//! carries the paper's reported numbers so harnesses can print
//! paper-vs-measured side by side.

use crate::libgen::{attr_is_function, attr_name, generate_library};
use crate::specs::library_spec;
use pylite::Registry;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use trim_core::oracle::{OracleSpec, TestCase};

/// The paper's reported measurements for an application (Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Deployment size in MB.
    pub size_mb: f64,
    /// Function Initialization (Import) time in seconds.
    pub import_s: f64,
    /// Function Execution time in seconds.
    pub exec_s: f64,
    /// End-to-end cold-start latency in seconds.
    pub e2e_s: f64,
}

/// How an application uses one library.
#[derive(Debug, Clone, Copy)]
struct LibUse {
    /// Library name.
    lib: &'static str,
    /// Reached through an attribute of another imported library instead of
    /// a direct `import` (e.g. numpy via `squiggle.numpy`).
    via: Option<&'static str>,
    /// Number of `__init__` attributes referenced.
    used: usize,
    /// `(submodule, referenced attr count)` pairs, accessed as
    /// `lib.sub.attr` chains.
    sub_used: &'static [(&'static str, usize)],
}

/// Definition of one benchmark application.
struct AppDef {
    name: &'static str,
    libs: Vec<LibUse>,
    /// Handler execution work in milliseconds (Table 1 Exec).
    exec_ms: f64,
    /// External calls the handler makes, as `(service, operation)`.
    extcalls: &'static [(&'static str, &'static str)],
    paper: PaperRow,
    /// The Table 3 example module for this app.
    example_module: &'static str,
}

/// A fully generated benchmark application.
#[derive(Debug, Clone)]
pub struct BenchApp {
    /// Application name (Table 1).
    pub name: String,
    /// Virtual site-packages with every library the app (transitively) needs.
    pub registry: Registry,
    /// The application (handler) source.
    pub app_source: String,
    /// Oracle specification (1–3 cases, per §8's methodology).
    pub spec: OracleSpec,
    /// The paper's reported numbers.
    pub paper: PaperRow,
    /// The Table 3 example module.
    pub example_module: String,
    /// Deployment image size in MB (drives image-transmission latency).
    pub image_mb: f64,
    /// A `(library, attribute)` pair that exists in the original library,
    /// is reachable only through `getattr` on a rare input, and is expected
    /// to be trimmed — the Table 4 fallback trigger.
    pub rare: (String, String),
    /// The `(library, [attr_a, attr_b])` of the bounded dynamic-access path:
    /// the handler's `probe` op computes a *non-literal* getattr name that
    /// string-value analysis bounds to exactly these two attributes. Under
    /// blanket hazard routing the whole library falls back; per-attribute
    /// routing pins just these two and still trims the rest.
    pub probe: (String, [String; 2]),
}

impl BenchApp {
    /// The oracle test case that exercises the rare (fallback) path.
    pub fn rare_case(&self) -> TestCase {
        TestCase::event("{\"op\": \"diag\", \"n\": 1}")
    }

    /// A test case that exercises the bounded dynamic-access (`probe`) path.
    /// `deep` selects between the two statically-bounded attribute names.
    pub fn probe_case(&self, deep: bool) -> TestCase {
        if deep {
            TestCase::event("{\"op\": \"probe\", \"deep\": True, \"n\": 2}")
        } else {
            TestCase::event("{\"op\": \"probe\", \"n\": 2}")
        }
    }
}

fn used_indices(total: usize, count: usize) -> Vec<usize> {
    let count = count.min(total);
    if count == 0 {
        return Vec::new();
    }
    let mut out = BTreeSet::new();
    for j in 0..count {
        out.insert((j * total / count).min(total - 1));
    }
    // Fill forward if integer division collapsed any indices.
    let mut i = 0;
    while out.len() < count && i < total {
        out.insert(i);
        i += 1;
    }
    out.into_iter().collect()
}

fn lib_expr(u: &LibUse) -> String {
    match u.via {
        Some(parent) => format!("{parent}.{}", u.lib),
        None => u.lib.to_owned(),
    }
}

fn generate_app(def: &AppDef) -> BenchApp {
    // Build the registry: every used library plus its transitive deps.
    let mut registry = Registry::new();
    let mut pending: Vec<&'static str> = def.libs.iter().map(|u| u.lib).collect();
    let mut done: BTreeSet<&'static str> = BTreeSet::new();
    while let Some(lib) = pending.pop() {
        if !done.insert(lib) {
            continue;
        }
        let spec = library_spec(lib)
            .unwrap_or_else(|| panic!("app {} uses unknown library {lib}", def.name));
        pending.extend(spec.deps.iter().copied());
        generate_library(&spec, &mut registry);
    }

    let mut src = String::new();
    // Runtime baseline: interpreter + handler shim footprint (untouchable).
    let _ = writeln!(src, "__lt_work__(12)");
    let _ = writeln!(src, "__lt_alloc__(34)");
    for u in &def.libs {
        if u.via.is_none() {
            let _ = writeln!(src, "import {}", u.lib);
        }
    }
    // Initialization-time usage bindings: each referenced attribute is read
    // once at module top level (and therefore covered by the oracle).
    let mut result_call: Option<String> = None;
    for u in &def.libs {
        let spec = library_spec(u.lib).expect("spec exists");
        let expr = lib_expr(u);
        for (k, i) in used_indices(spec.init_attrs, u.used)
            .into_iter()
            .enumerate()
        {
            let attr = attr_name(spec.prefix, i);
            let _ = writeln!(src, "_u_{}_{k} = {expr}.{attr}", spec.prefix);
            if result_call.is_none() && attr_is_function(i) {
                result_call = Some(format!("{expr}.{attr}(n)"));
            }
        }
        for (sub_name, count) in u.sub_used {
            let sub = spec
                .subs
                .iter()
                .find(|s| s.name == *sub_name)
                .unwrap_or_else(|| panic!("{} has no submodule {sub_name}", u.lib));
            let sub_prefix = format!("{}_{}", spec.prefix, sub_name);
            for (k, i) in used_indices(sub.attrs, *count).into_iter().enumerate() {
                let attr = attr_name(&sub_prefix, i);
                let _ = writeln!(src, "_s_{sub_prefix}_{k} = {expr}.{sub_name}.{attr}");
            }
        }
    }

    // The rare (fallback) attribute: a function of the main library that is
    // referenced only through getattr on an input the oracle set does not
    // contain — static analysis cannot see it and DD will trim it (§5.4).
    let main_use = def
        .libs
        .iter()
        .find(|u| u.via.is_none())
        .expect("every app imports at least one library directly");
    let main_spec = library_spec(main_use.lib).expect("spec exists");
    let used: BTreeSet<usize> = used_indices(main_spec.init_attrs, main_use.used)
        .into_iter()
        .collect();
    // Prefer a callable (function or class); otherwise any unused attribute
    // works — the rare path returns it without calling.
    let rare_idx = (0..main_spec.init_attrs)
        .rev()
        .find(|i| i % 5 <= 1 && !used.contains(i))
        .or_else(|| (0..main_spec.init_attrs).rev().find(|i| !used.contains(i)))
        .unwrap_or_else(|| panic!("{}: every attribute of {} is used", def.name, main_use.lib));
    let rare_attr = attr_name(main_spec.prefix, rare_idx);
    let rare_is_callable = rare_idx % 5 <= 1;

    // The bounded dynamic-access pair: two function attributes reached only
    // through a *non-literal* getattr whose name the string-value analysis
    // bounds to exactly these two. Prefer attributes the oracle does not
    // otherwise use (so per-attribute hazard routing visibly pins them);
    // fall back to used ones for apps that touch nearly everything.
    let mut probe_candidates: Vec<String> = (0..main_spec.init_attrs)
        .filter(|i| i % 5 == 0 && *i != rare_idx && !used.contains(i))
        .map(|i| attr_name(main_spec.prefix, i))
        .collect();
    // Re-exported submodule functions are top-level bindings of the package
    // too — they carry thin libraries (e.g. skimage's 2 own attributes)
    // past the two-candidate requirement.
    for sub in &main_spec.subs {
        for i in (0..sub.reexports.min(sub.attrs)).filter(|i| i % 5 == 0) {
            probe_candidates.push(attr_name(&format!("{}_{}", main_spec.prefix, sub.name), i));
        }
    }
    probe_candidates.extend(
        (0..main_spec.init_attrs)
            .filter(|i| i % 5 == 0 && *i != rare_idx && used.contains(i))
            .map(|i| attr_name(main_spec.prefix, i)),
    );
    assert!(
        probe_candidates.len() >= 2,
        "{}: {} has no two probe functions",
        def.name,
        main_use.lib
    );
    let [probe_a, probe_b] = &probe_candidates[..2] else {
        unreachable!()
    };
    let probe_a = probe_a.clone();
    let probe_b = probe_b.clone();

    let _ = writeln!(src, "def handler(event, context):");
    let _ = writeln!(src, "    op = event.get(\"op\", \"run\")");
    let _ = writeln!(src, "    if op == \"diag\":");
    let _ = writeln!(
        src,
        "        tool = getattr({}, \"{rare_attr}\")",
        main_use.lib
    );
    if rare_is_callable {
        let _ = writeln!(src, "        return tool(event.get(\"n\", 1))");
    } else {
        let _ = writeln!(src, "        return tool");
    }
    let _ = writeln!(src, "    if op == \"probe\":");
    let _ = writeln!(
        src,
        "        key = \"{probe_a}\" if event.get(\"deep\") else \"{probe_b}\""
    );
    let _ = writeln!(src, "        fn = getattr({}, key)", main_use.lib);
    let _ = writeln!(src, "        return fn(event.get(\"n\", 1))");
    let _ = writeln!(src, "    __lt_work__({:.3})", def.exec_ms);
    for (service, op) in def.extcalls {
        let _ = writeln!(src, "    __lt_extcall__(\"{service}\", \"{op}\")");
    }
    let _ = writeln!(src, "    n = event.get(\"n\", 1)");
    match &result_call {
        Some(call) => {
            let _ = writeln!(src, "    return {call}");
        }
        None => {
            let _ = writeln!(src, "    return n");
        }
    }

    let spec = OracleSpec::new(vec![
        TestCase::event("{\"n\": 3}"),
        TestCase::event("{\"n\": 11}"),
    ]);
    BenchApp {
        name: def.name.to_owned(),
        registry,
        app_source: src,
        spec,
        paper: def.paper,
        example_module: def.example_module.to_owned(),
        image_mb: def.paper.size_mb,
        rare: (main_use.lib.to_owned(), rare_attr),
        probe: (main_use.lib.to_owned(), [probe_a, probe_b]),
    }
}

fn defs() -> Vec<AppDef> {
    let row = |size_mb, import_s, exec_s, e2e_s| PaperRow {
        size_mb,
        import_s,
        exec_s,
        e2e_s,
    };
    vec![
        // ---- From FaaSLight ------------------------------------------
        AppDef {
            name: "huggingface",
            libs: vec![
                LibUse {
                    lib: "transformers",
                    via: None,
                    used: 6,
                    sub_used: &[("models", 3)],
                },
                // transformers needs nearly all of torch at import time, so
                // the app's effective torch usage is close to total — this is
                // why huggingface's import only improves ~10% (Table 2) while
                // resnet's torch trims down to 108 attributes (Table 3).
                LibUse {
                    lib: "torch",
                    via: None,
                    used: 1250,
                    sub_used: &[
                        ("nn", 60),
                        ("optim", 20),
                        ("cuda", 12),
                        ("autograd", 15),
                        ("jit", 10),
                        ("utils", 15),
                    ],
                },
            ],
            exec_ms: 860.0,
            extcalls: &[],
            paper: row(799.38, 5.52, 0.86, 10.12),
            example_module: "transformers",
        },
        AppDef {
            name: "image-resize",
            libs: vec![
                // Thin wrappers around ImageMagick + the AWS SDK: nearly all
                // of both libraries is exercised, so trimming buys almost
                // nothing (Fig. 8 shows ~no benefit for this app).
                LibUse {
                    lib: "wand",
                    via: None,
                    used: 36,
                    sub_used: &[("image", 60), ("api", 10)],
                },
                LibUse {
                    lib: "boto3",
                    via: None,
                    used: 60,
                    sub_used: &[("client", 25), ("session", 10)],
                },
            ],
            exec_ms: 950.0,
            extcalls: &[
                ("s3", "get_object"),
                ("imagemagick", "resize"),
                ("s3", "put_object"),
            ],
            paper: row(102.05, 0.42, 0.95, 1.88),
            example_module: "wand.image",
        },
        AppDef {
            name: "lightgbm",
            libs: vec![
                LibUse {
                    lib: "lightgbm",
                    via: None,
                    used: 8,
                    sub_used: &[("basic", 3)],
                },
                LibUse {
                    lib: "numpy",
                    via: None,
                    used: 35,
                    sub_used: &[],
                },
            ],
            exec_ms: 40.0,
            extcalls: &[],
            paper: row(120.22, 0.57, 0.04, 1.14),
            example_module: "lightgbm",
        },
        AppDef {
            name: "lxml",
            libs: vec![
                LibUse {
                    lib: "requests",
                    via: None,
                    used: 12,
                    sub_used: &[("models", 2)],
                },
                LibUse {
                    lib: "lxml",
                    via: None,
                    used: 20,
                    sub_used: &[("html", 25)],
                },
            ],
            exec_ms: 390.0,
            extcalls: &[("http", "get")],
            paper: row(58.01, 0.24, 0.39, 1.12),
            example_module: "lxml.html",
        },
        AppDef {
            name: "scikit",
            libs: vec![
                LibUse {
                    lib: "sklearn",
                    via: None,
                    used: 120,
                    sub_used: &[("linear_model", 30), ("metrics", 20)],
                },
                LibUse {
                    lib: "joblib",
                    via: Some("sklearn"),
                    used: 15,
                    sub_used: &[],
                },
            ],
            exec_ms: 10.0,
            extcalls: &[],
            paper: row(177.01, 0.30, 0.01, 1.93),
            example_module: "joblib",
        },
        AppDef {
            name: "skimage",
            libs: vec![LibUse {
                lib: "skimage",
                via: None,
                used: 1,
                sub_used: &[
                    ("filters", 30),
                    ("color", 20),
                    ("transform", 25),
                    ("io", 10),
                ],
            }],
            exec_ms: 100.0,
            extcalls: &[],
            paper: row(155.37, 1.87, 0.10, 2.76),
            example_module: "skimage",
        },
        AppDef {
            name: "tensorflow",
            libs: vec![
                LibUse {
                    lib: "tensorflow",
                    via: None,
                    used: 35,
                    sub_used: &[("keras", 30), ("ops", 25), ("data", 10), ("io", 8)],
                },
                LibUse {
                    lib: "numpy",
                    via: None,
                    used: 20,
                    sub_used: &[],
                },
            ],
            exec_ms: 40.0,
            extcalls: &[],
            paper: row(586.13, 4.53, 0.04, 5.33),
            example_module: "tensorflow",
        },
        AppDef {
            name: "wine",
            libs: vec![
                LibUse {
                    lib: "numpy",
                    via: None,
                    used: 450,
                    sub_used: &[("linalg", 30), ("random", 20)],
                },
                LibUse {
                    lib: "pandas",
                    via: None,
                    used: 40,
                    sub_used: &[("core", 8)],
                },
                LibUse {
                    lib: "sklearn",
                    via: None,
                    used: 30,
                    sub_used: &[("ensemble", 6)],
                },
                LibUse {
                    lib: "boto3",
                    via: None,
                    used: 10,
                    sub_used: &[("client", 2)],
                },
            ],
            exec_ms: 290.0,
            extcalls: &[("s3", "put_object")],
            paper: row(271.01, 1.96, 0.29, 2.81),
            example_module: "numpy",
        },
        // ---- From RainbowCake ----------------------------------------
        AppDef {
            name: "dna-visualization",
            libs: vec![
                LibUse {
                    lib: "squiggle",
                    via: None,
                    used: 10,
                    sub_used: &[("plot", 4)],
                },
                LibUse {
                    lib: "numpy",
                    via: Some("squiggle"),
                    used: 30,
                    sub_used: &[],
                },
            ],
            exec_ms: 20.0,
            extcalls: &[],
            paper: row(57.01, 0.18, 0.02, 0.72),
            example_module: "numpy",
        },
        AppDef {
            name: "ffmpeg",
            libs: vec![LibUse {
                lib: "ffmpeg",
                via: None,
                used: 8,
                sub_used: &[("probe", 2)],
            }],
            exec_ms: 2500.0,
            extcalls: &[("ffmpeg", "transcode")],
            paper: row(297.00, 0.06, 2.50, 3.07),
            example_module: "ffmpeg",
        },
        AppDef {
            name: "igraph",
            libs: vec![LibUse {
                lib: "igraph",
                via: None,
                used: 40,
                sub_used: &[("drawing", 5)],
            }],
            exec_ms: 10.0,
            extcalls: &[],
            paper: row(40.00, 0.09, 0.01, 0.59),
            example_module: "igraph",
        },
        AppDef {
            name: "markdown",
            libs: vec![LibUse {
                lib: "markdown",
                via: None,
                used: 10,
                sub_used: &[],
            }],
            exec_ms: 30.0,
            extcalls: &[],
            paper: row(32.21, 0.04, 0.03, 0.54),
            example_module: "markdown",
        },
        AppDef {
            name: "resnet",
            libs: vec![
                LibUse {
                    lib: "torch",
                    via: None,
                    used: 70,
                    sub_used: &[("nn", 20), ("utils", 5)],
                },
                LibUse {
                    lib: "numpy",
                    via: None,
                    used: 40,
                    sub_used: &[],
                },
                LibUse {
                    lib: "PIL",
                    via: None,
                    used: 10,
                    sub_used: &[("image", 8)],
                },
            ],
            exec_ms: 5300.0,
            extcalls: &[],
            paper: row(742.56, 6.30, 5.30, 11.71),
            example_module: "torch",
        },
        AppDef {
            name: "textblob",
            libs: vec![
                LibUse {
                    lib: "textblob",
                    via: None,
                    used: 25,
                    sub_used: &[("en", 5)],
                },
                LibUse {
                    lib: "nltk",
                    via: Some("textblob"),
                    used: 6,
                    sub_used: &[],
                },
            ],
            exec_ms: 380.0,
            extcalls: &[],
            paper: row(104.00, 0.42, 0.38, 1.28),
            example_module: "nltk",
        },
        // ---- New applications ----------------------------------------
        AppDef {
            name: "chdb-olap",
            libs: vec![LibUse {
                lib: "chdb",
                via: None,
                used: 15,
                sub_used: &[("engine", 4), ("session", 2)],
            }],
            exec_ms: 80.0,
            extcalls: &[],
            paper: row(293.64, 1.01, 0.08, 1.77),
            example_module: "chdb",
        },
        AppDef {
            name: "epub-pdf",
            libs: vec![
                LibUse {
                    lib: "reportlab",
                    via: None,
                    used: 20,
                    sub_used: &[("pdfgen", 5)],
                },
                LibUse {
                    lib: "pptx",
                    via: None,
                    used: 12,
                    sub_used: &[("util", 3)],
                },
                LibUse {
                    lib: "docx",
                    via: None,
                    used: 10,
                    sub_used: &[("oxml", 3)],
                },
                LibUse {
                    lib: "boto3",
                    via: None,
                    used: 8,
                    sub_used: &[("client", 2)],
                },
            ],
            exec_ms: 1430.0,
            extcalls: &[("s3", "get_object"), ("s3", "put_object")],
            paper: row(143.68, 0.62, 1.43, 2.54),
            example_module: "pptx",
        },
        AppDef {
            name: "jsym",
            libs: vec![LibUse {
                lib: "sympy",
                via: None,
                used: 18,
                sub_used: &[("core", 4)],
            }],
            exec_ms: 310.0,
            extcalls: &[],
            paper: row(83.01, 0.56, 0.31, 1.36),
            example_module: "sympy",
        },
        AppDef {
            name: "pandas",
            libs: vec![
                LibUse {
                    lib: "numpy",
                    via: None,
                    used: 30,
                    sub_used: &[],
                },
                LibUse {
                    lib: "pandas",
                    via: None,
                    used: 10,
                    sub_used: &[("core", 3)],
                },
            ],
            exec_ms: 10.0,
            extcalls: &[],
            paper: row(114.27, 0.67, 0.01, 1.19),
            example_module: "pandas",
        },
        AppDef {
            name: "qiskit-nature",
            libs: vec![
                LibUse {
                    lib: "qiskit_nature",
                    via: None,
                    used: 15,
                    sub_used: &[("drivers", 3)],
                },
                LibUse {
                    lib: "qiskit",
                    via: Some("qiskit_nature"),
                    used: 8,
                    sub_used: &[],
                },
            ],
            exec_ms: 490.0,
            extcalls: &[],
            paper: row(281.15, 1.96, 0.49, 3.05),
            example_module: "qiskit",
        },
        AppDef {
            name: "shapely-numpy",
            libs: vec![
                LibUse {
                    lib: "numpy",
                    via: None,
                    used: 25,
                    sub_used: &[],
                },
                LibUse {
                    lib: "shapely",
                    via: None,
                    used: 10,
                    sub_used: &[("geometry", 3)],
                },
            ],
            exec_ms: 10.0,
            extcalls: &[],
            paper: row(58.42, 0.20, 0.01, 0.71),
            example_module: "shapely",
        },
        AppDef {
            name: "spacy",
            libs: vec![
                LibUse {
                    lib: "spacy",
                    via: None,
                    used: 15,
                    sub_used: &[("lang", 4), ("tokens", 3)],
                },
                LibUse {
                    lib: "boto3",
                    via: None,
                    used: 8,
                    sub_used: &[("client", 2)],
                },
            ],
            exec_ms: 20.0,
            extcalls: &[("s3", "get_object")],
            paper: row(202.00, 2.06, 0.02, 2.60),
            example_module: "spacy",
        },
    ]
}

/// Generate the full 21-application corpus (Table 1 order).
pub fn corpus() -> Vec<BenchApp> {
    defs().iter().map(generate_app).collect()
}

/// Generate a single application by name.
pub fn app(name: &str) -> Option<BenchApp> {
    defs().iter().find(|d| d.name == name).map(generate_app)
}

/// Names of all corpus applications (Table 1 order).
pub fn app_names() -> Vec<String> {
    defs().iter().map(|d| d.name.to_owned()).collect()
}

/// A small three-app slice (fast enough for debug-mode tests):
/// markdown, igraph and dna-visualization.
pub fn mini_corpus() -> Vec<BenchApp> {
    ["markdown", "igraph", "dna-visualization"]
        .iter()
        .map(|n| app(n).expect("mini corpus app exists"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trim_core::oracle::run_app;

    #[test]
    fn corpus_has_21_apps() {
        assert_eq!(corpus().len(), 21);
        assert_eq!(app_names().len(), 21);
    }

    #[test]
    fn every_app_runs_and_passes_its_oracle() {
        for bench in corpus() {
            let result = run_app(&bench.registry, &bench.app_source, &bench.spec);
            let exec = result.unwrap_or_else(|e| panic!("{} failed: {e}", bench.name));
            assert_eq!(exec.results.len(), 2, "{}: two oracle cases", bench.name);
        }
    }

    #[test]
    fn measured_import_time_tracks_table1() {
        // Shape check: measured init within a factor of 2 of the paper's
        // Import column (exact matching is impossible with shared library
        // specs; EXPERIMENTS.md records the deltas).
        for bench in corpus() {
            let exec = run_app(&bench.registry, &bench.app_source, &bench.spec).unwrap();
            let paper = bench.paper.import_s;
            let measured = exec.init_secs;
            // scikit is the one structural outlier: the paper reports
            // 0.30 s for sklearn alone but 1.96 s for wine's sklearn+numpy+
            // pandas+boto3 — mutually inconsistent with shared library
            // costs. A factor-3 band accommodates it.
            assert!(
                measured > paper / 3.0 && measured < paper * 3.0,
                "{}: measured import {measured:.2}s vs paper {paper:.2}s",
                bench.name
            );
        }
    }

    #[test]
    fn import_order_shape_matches_paper() {
        // The heavy ML apps must dwarf the tiny ones.
        let get = |name: &str| {
            let b = app(name).unwrap();
            run_app(&b.registry, &b.app_source, &b.spec)
                .unwrap()
                .init_secs
        };
        let resnet = get("resnet");
        let markdown = get("markdown");
        let igraph = get("igraph");
        assert!(resnet > 20.0 * markdown);
        assert!(resnet > 10.0 * igraph);
    }

    #[test]
    fn rare_attribute_exists_and_is_unused_by_oracle() {
        for bench in mini_corpus() {
            let (lib, attr) = &bench.rare;
            let program = bench.registry.parse_module(lib).unwrap();
            let attrs = trim_core::module_attributes(&program);
            assert!(
                attrs.contains(attr),
                "{}: rare attr {attr} must exist in {lib}",
                bench.name
            );
            // The rare path is reachable: invoking with op=diag works on the
            // ORIGINAL app (nothing trimmed yet).
            let mut spec = bench.spec.clone();
            spec.cases = vec![bench.rare_case()];
            let exec = run_app(&bench.registry, &bench.app_source, &spec).unwrap();
            assert_eq!(exec.results.len(), 1);
        }
    }

    #[test]
    fn probe_attributes_exist_and_both_arms_run() {
        for bench in mini_corpus() {
            let (lib, [a, b]) = &bench.probe;
            let program = bench.registry.parse_module(lib).unwrap();
            let attrs = trim_core::module_attributes(&program);
            for attr in [a, b] {
                assert!(
                    attrs.contains(attr),
                    "{}: probe attr {attr} must exist in {lib}",
                    bench.name
                );
            }
            assert_ne!(
                &bench.rare.1, a,
                "{}: probe must not alias rare",
                bench.name
            );
            assert_ne!(
                &bench.rare.1, b,
                "{}: probe must not alias rare",
                bench.name
            );
            // Both statically-bounded arms execute on the original app.
            let mut spec = bench.spec.clone();
            spec.cases = vec![bench.probe_case(false), bench.probe_case(true)];
            let exec = run_app(&bench.registry, &bench.app_source, &spec).unwrap();
            assert_eq!(exec.results.len(), 2, "{}", bench.name);
        }
    }

    #[test]
    fn extcall_apps_log_external_calls() {
        let b = app("image-resize").unwrap();
        let exec = run_app(&b.registry, &b.app_source, &b.spec).unwrap();
        assert!(exec.extcalls.iter().any(|c| c.starts_with("s3:")));
    }

    #[test]
    fn used_indices_are_unique_sorted_and_bounded() {
        for (total, count) in [(10, 3), (537, 450), (5, 10), (100, 0), (1, 1)] {
            let idx = used_indices(total, count);
            assert_eq!(idx.len(), count.min(total));
            for w in idx.windows(2) {
                assert!(w[0] < w[1]);
            }
            assert!(idx.iter().all(|i| *i < total.max(1)));
        }
    }

    #[test]
    fn registries_contain_transitive_deps() {
        let b = app("wine").unwrap();
        for lib in ["numpy", "pandas", "sklearn", "boto3", "joblib"] {
            assert!(b.registry.contains(lib), "wine needs {lib}");
        }
    }

    #[test]
    fn mini_corpus_is_fast_subset() {
        let mini = mini_corpus();
        assert_eq!(mini.len(), 3);
        for b in &mini {
            let exec = run_app(&b.registry, &b.app_source, &b.spec).unwrap();
            assert!(exec.init_secs < 1.0, "{} is supposed to be small", b.name);
        }
    }
}
