//! # lambda-sim — a serverless platform simulator
//!
//! The AWS-Lambda-like substrate of the λ-trim reproduction. It models the
//! parts of a serverless platform that the paper's evaluation measures:
//!
//! * [`pricing`] — Equation (1) billing with per-platform rounding, the
//!   128 MB minimum threshold, and SnapStart restore/cache pricing;
//! * [`platform`] — cold/warm start lifecycle phases (Figure 1), a
//!   keep-alive instance pool, and invocation cost/latency accounting;
//! * [`snapshot`] — the CRIU/SnapStart checkpoint/restore cost model (§8.6);
//! * [`trace`] — invocation traces (Figures 13–14): a seeded synthetic
//!   Azure-Functions-style generator with diurnal modulation, a loader for
//!   the Azure-dataset CSV schema with deterministic arrival
//!   reconstruction, L2 nearest-function matching, and an event-driven
//!   replay engine across start modes and keep-alive settings;
//! * [`metrics`] — means/medians/percentiles/CDFs for the harnesses.
//!
//! # Example
//!
//! ```
//! use lambda_sim::{AppProfile, Platform, StartMode};
//!
//! let platform = Platform::default();
//! let app = AppProfile::new("resnet", 742.56, 6.30, 5.30, 820.0);
//! let cold = platform.cold_invocation(&app, StartMode::Standard);
//! let warm = platform.warm_invocation(&app);
//! assert!(cold.e2e_secs() > warm.e2e_secs());
//! assert!(cold.cost > warm.cost);
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod platform;
pub mod pool;
pub mod pricing;
pub mod providers;
pub mod snapshot;
pub mod trace;

pub use platform::{
    simulate_pool, AppProfile, Invocation, PhaseBreakdown, Platform, PlatformConfig, PoolStats,
    StartKind, StartMode,
};
pub use pool::{
    simulate_pool_ext, simulate_pool_ext_naive_traced, simulate_pool_ext_stream_traced,
    simulate_pool_ext_traced, try_simulate_pool_ext, try_simulate_pool_ext_traced,
    validate_arrivals, ExtPoolStats, PoolError, PoolEvent, PoolOptions,
};
pub use pricing::{PricingModel, Rounding, SnapStartPricing};
pub use providers::{min_visible_saving_ms, providers, quote_all, Provider, ProviderQuote};
pub use snapshot::CheckpointModel;
pub use trace::{
    generate_trace, load_trace_csv, nearest_function, parse_trace_csv, render_fleet_metrics_json,
    replay_fleet, replay_trace, synthesize_function, ArrivalClass, DiurnalProfile, FleetReport,
    FleetVariantReport, FunctionReplay, FunctionTrace, ReplayOptions, ReplayReport,
    SyntheticFunction, TraceConfig, TraceError, TraceSet, TraceSource, VariantReport,
};
