//! Small statistics helpers shared by the experiment harnesses: means,
//! medians, percentiles and CDF construction.

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Median (by sorting a copy). Returns 0.0 for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Percentile `p` in [0, 100] using linear interpolation between order
/// statistics. Returns 0.0 for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or any value is NaN.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Build an empirical CDF: sorted `(value, cumulative_fraction)` points.
pub fn cdf(xs: &[f64]) -> Vec<(f64, f64)> {
    if xs.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in cdf input"));
    let n = sorted.len() as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// Relative improvement of `new` over `old` as a percentage:
/// positive = improvement (reduction).
pub fn improvement_pct(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (old - new) / old * 100.0
    }
}

/// Speedup factor `old / new` (∞-safe: returns 1.0 when `new` is 0).
pub fn speedup(old: f64, new: f64) -> f64 {
    if new <= 0.0 {
        1.0
    } else {
        old / new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_median_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(median(&[1.0, 3.0, 2.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert!((percentile(&xs, 50.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn percentile_rejects_out_of_range() {
        percentile(&[1.0], 150.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let points = cdf(&[3.0, 1.0, 2.0]);
        assert_eq!(points.len(), 3);
        assert_eq!(points.last().unwrap().1, 1.0);
        for w in points.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!(cdf(&[]).is_empty());
    }

    #[test]
    fn improvement_and_speedup() {
        assert_eq!(improvement_pct(10.0, 5.0), 50.0);
        assert_eq!(improvement_pct(0.0, 5.0), 0.0);
        assert_eq!(speedup(10.0, 5.0), 2.0);
        assert_eq!(speedup(10.0, 0.0), 1.0);
    }
}
